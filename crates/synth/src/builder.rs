//! Graph assembly and elaboration into an elastic circuit.

use std::collections::BTreeMap;

use elastic_core::{ArbiterKind, ForkMode, MebKind};
use elastic_sim::{ChannelId, LatencyModel, ReadyPolicy, Token};

use crate::circuit::SynthCircuit;
use crate::graph::{BufferPolicy, Node, OpLatency, SynthError, Wire};
use crate::ir::{ElasticIr, IrChannelId, IrNodeKind};
use crate::passes::{CycleCoverLint, MebSubstitution, PassManager, ProtocolLint};

/// Elaboration options.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// MEB microarchitecture for every inserted buffer.
    pub meb: MebKind,
    /// Arbitration policy inside every inserted buffer.
    pub arbiter: ArbiterKind,
    /// Automatic buffer insertion policy.
    pub buffers: BufferPolicy,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            meb: MebKind::Reduced,
            arbiter: ArbiterKind::RoundRobin,
            buffers: BufferPolicy::AfterOps,
        }
    }
}

/// Assembles a dataflow graph and elaborates it into a multithreaded
/// elastic circuit built from the paper's primitives.
///
/// # Examples
///
/// A two-input adder with an external result port:
///
/// ```
/// use elastic_synth::{DataflowBuilder, OpLatency, SynthConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = DataflowBuilder::<u64>::new(2);
/// let a = g.input("a");
/// let b = g.input("b");
/// let sum = g.op2("add", OpLatency::Combinational, a, b, |x, y| x + y);
/// g.output("sum", sum);
/// let mut s = g.elaborate(SynthConfig::default())?;
/// s.push("a", 0, 2)?;
/// s.push("b", 0, 40)?;
/// s.run_until_outputs("sum", 1, 100)?;
/// assert_eq!(s.collected("sum", 0), vec![42]);
/// # Ok(())
/// # }
/// ```
pub struct DataflowBuilder<T: Token> {
    threads: usize,
    nodes: Vec<Node<T>>,
    /// Wires consumed by each node, in port order.
    node_inputs: Vec<Vec<Wire>>,
    /// `(producer node, output port)` per wire.
    producer: Vec<(usize, usize)>,
    /// Consuming node per wire, filled as nodes are added.
    consumer: Vec<Option<usize>>,
    /// Nodes removed by [`loopback`](DataflowBuilder::loopback).
    dead_nodes: Vec<bool>,
    /// Wires removed by [`loopback`](DataflowBuilder::loopback).
    dead_wires: Vec<bool>,
}

impl<T: Token> DataflowBuilder<T> {
    /// An empty graph whose channels support `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a graph needs at least one thread");
        Self {
            threads,
            nodes: Vec::new(),
            node_inputs: Vec::new(),
            producer: Vec::new(),
            consumer: Vec::new(),
            dead_nodes: Vec::new(),
            dead_wires: Vec::new(),
        }
    }

    /// Thread count of every channel in the elaborated circuit.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn add_node(&mut self, node: Node<T>, inputs: Vec<Wire>) -> usize {
        let idx = self.nodes.len();
        for &w in &inputs {
            assert!(w.0 < self.producer.len(), "wire belongs to another graph");
            assert!(
                self.consumer[w.0].is_none(),
                "wire #{} (from `{}`) is already consumed — insert a fork for fan-out",
                w.0,
                self.nodes[self.producer[w.0].0].name()
            );
            self.consumer[w.0] = Some(idx);
        }
        debug_assert_eq!(inputs.len(), node.inputs());
        self.nodes.push(node);
        self.node_inputs.push(inputs);
        self.dead_nodes.push(false);
        idx
    }

    fn add_outputs(&mut self, node: usize, n: usize) -> Vec<Wire> {
        (0..n)
            .map(|port| {
                let w = Wire(self.producer.len());
                self.producer.push((node, port));
                self.consumer.push(None);
                self.dead_wires.push(false);
                w
            })
            .collect()
    }

    /// Declares an external input port.
    pub fn input(&mut self, name: impl Into<String>) -> Wire {
        let idx = self.add_node(Node::Input { name: name.into() }, vec![]);
        self.add_outputs(idx, 1)[0]
    }

    /// Declares an external output port consuming `wire`.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is already consumed.
    pub fn output(&mut self, name: impl Into<String>, wire: Wire) {
        self.add_node(Node::Output { name: name.into() }, vec![wire]);
    }

    /// An N-ary operation over `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any wire is already consumed.
    pub fn op(
        &mut self,
        name: impl Into<String>,
        latency: OpLatency,
        inputs: &[Wire],
        f: impl Fn(&[&T]) -> T + Send + 'static,
    ) -> Wire {
        assert!(!inputs.is_empty(), "an op needs at least one input");
        let node = Node::Op {
            name: name.into(),
            arity: inputs.len(),
            f: Box::new(f),
            latency,
        };
        let idx = self.add_node(node, inputs.to_vec());
        self.add_outputs(idx, 1)[0]
    }

    /// A unary operation.
    pub fn op1(
        &mut self,
        name: impl Into<String>,
        latency: OpLatency,
        a: Wire,
        f: impl Fn(&T) -> T + Send + 'static,
    ) -> Wire {
        self.op(name, latency, &[a], move |ins| f(ins[0]))
    }

    /// A binary operation.
    pub fn op2(
        &mut self,
        name: impl Into<String>,
        latency: OpLatency,
        a: Wire,
        b: Wire,
        f: impl Fn(&T, &T) -> T + Send + 'static,
    ) -> Wire {
        self.op(name, latency, &[a, b], move |ins| f(ins[0], ins[1]))
    }

    /// A conditional router; returns `(taken, not_taken)` wires.
    pub fn branch(
        &mut self,
        name: impl Into<String>,
        input: Wire,
        cond: impl Fn(&T) -> bool + Send + 'static,
    ) -> (Wire, Wire) {
        let idx = self.add_node(
            Node::Branch {
                name: name.into(),
                cond: Box::new(cond),
            },
            vec![input],
        );
        let outs = self.add_outputs(idx, 2);
        (outs[0], outs[1])
    }

    /// An N-way merge.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are given.
    pub fn merge(&mut self, name: impl Into<String>, inputs: &[Wire]) -> Wire {
        assert!(inputs.len() >= 2, "a merge needs at least two inputs");
        let node = Node::Merge {
            name: name.into(),
            arity: inputs.len(),
        };
        let idx = self.add_node(node, inputs.to_vec());
        self.add_outputs(idx, 1)[0]
    }

    /// Replicates `input` to `n` consumers (eager fork).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn fork(&mut self, name: impl Into<String>, input: Wire, n: usize) -> Vec<Wire> {
        assert!(n >= 2, "a fork needs at least two outputs");
        let idx = self.add_node(
            Node::Fork {
                name: name.into(),
                arity: n,
            },
            vec![input],
        );
        self.add_outputs(idx, n)
    }

    /// Inserts an explicit MEB.
    pub fn buffer(&mut self, name: impl Into<String>, input: Wire, kind: MebKind) -> Wire {
        self.buffer_with_initial(name, input, kind, Vec::new())
    }

    /// Inserts an explicit MEB pre-loaded with `initial` tokens — the
    /// dataflow "token on the back edge" that seeds accumulator loops
    /// (each thread's first join partner before any looped value exists).
    ///
    /// # Panics
    ///
    /// The elaborated buffer panics at construction if the initial tokens
    /// exceed the MEB kind's per-thread capacity.
    pub fn buffer_with_initial(
        &mut self,
        name: impl Into<String>,
        input: Wire,
        kind: MebKind,
        initial: Vec<(usize, T)>,
    ) -> Wire {
        let idx = self.add_node(
            Node::Buffer {
                name: name.into(),
                kind,
                initial,
            },
            vec![input],
        );
        self.add_outputs(idx, 1)[0]
    }

    /// Inserts a thread barrier across all threads of the graph.
    pub fn barrier(&mut self, name: impl Into<String>, input: Wire) -> Wire {
        let idx = self.add_node(Node::Barrier { name: name.into() }, vec![input]);
        self.add_outputs(idx, 1)[0]
    }

    /// Closes a feedback loop: rebinds the placeholder input port `port`
    /// so that its consumer reads from `wire` instead. The placeholder
    /// input node and its wire are removed from the graph.
    ///
    /// This is how iterative circuits (the GCD example, the MD5 round
    /// loop) are described: declare an input as a stand-in for the value
    /// coming around the loop, build the body, then `loopback` the body's
    /// result onto the stand-in.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::UnconsumedWire`]-style diagnostics via
    /// [`SynthError::Build`] when `port` is not a placeholder input, the
    /// placeholder is not yet consumed, or `wire` is already consumed.
    pub fn loopback(&mut self, port: &str, wire: Wire) -> Result<(), SynthError> {
        let node_idx = self
            .nodes
            .iter()
            .position(|n| matches!(n, Node::Input { name } if name == port))
            .ok_or_else(|| SynthError::Build(format!("no input port named `{port}`")))?;
        let placeholder = (0..self.producer.len())
            .find(|&w| !self.dead_wires[w] && self.producer[w].0 == node_idx)
            .map(Wire)
            .ok_or_else(|| SynthError::Build(format!("input `{port}` has no live wire")))?;
        let consumer_node = self.consumer[placeholder.0].ok_or_else(|| {
            SynthError::Build(format!(
                "placeholder `{port}` is not consumed by anything yet"
            ))
        })?;
        if self.consumer[wire.0].is_some() {
            return Err(SynthError::Build(format!(
                "loopback source wire #{} is already consumed",
                wire.0
            )));
        }
        for slot in &mut self.node_inputs[consumer_node] {
            if *slot == placeholder {
                *slot = wire;
            }
        }
        self.consumer[wire.0] = Some(consumer_node);
        self.dead_nodes[node_idx] = true;
        self.dead_wires[placeholder.0] = true;
        Ok(())
    }

    /// Renders the (pre-elaboration) dataflow graph in Graphviz DOT
    /// syntax — ops as boxes, branches as diamonds, buffers as cylinders.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph dataflow {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
        for (i, node) in self.nodes.iter().enumerate() {
            if self.dead_nodes[i] {
                continue;
            }
            let shape = match node {
                Node::Input { .. } | Node::Output { .. } => "ellipse",
                Node::Branch { .. } | Node::Merge { .. } => "diamond",
                Node::Buffer { .. } => "cylinder",
                Node::Barrier { .. } => "octagon",
                _ => "box",
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}\", shape={shape}];",
                node.name().replace('"', "'")
            );
        }
        for w in 0..self.producer.len() {
            if self.dead_wires[w] {
                continue;
            }
            let (p, _) = self.producer[w];
            if let Some(c) = self.consumer[w] {
                let _ = writeln!(out, "  n{p} -> n{c} [label=\"w{w}\"];");
            }
        }
        out.push_str("}\n");
        out
    }

    fn validate(&self) -> Result<(), SynthError> {
        if self.nodes.is_empty() {
            return Err(SynthError::EmptyGraph);
        }
        for (w, consumer) in self.consumer.iter().enumerate() {
            if self.dead_wires[w] {
                continue;
            }
            if consumer.is_none() {
                return Err(SynthError::UnconsumedWire {
                    wire: w,
                    producer: self.nodes[self.producer[w].0].name().to_string(),
                });
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if self.dead_nodes[i] {
                continue;
            }
            match node {
                Node::Op { arity, .. } if *arity == 0 => {
                    return Err(SynthError::BadArity {
                        node: node.name().to_string(),
                        arity: 0,
                    })
                }
                Node::Merge { arity, .. } | Node::Fork { arity, .. } if *arity < 2 => {
                    return Err(SynthError::BadArity {
                        node: node.name().to_string(),
                        arity: *arity,
                    })
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Lowers the graph into a structural [`ElasticIr`] netlist — stage
    /// one of elaboration.
    ///
    /// The lowering maps dataflow nodes onto the paper's primitives (ops
    /// become transforms/joins plus latency units, conditionals become
    /// branches/merges, the buffer policy inserts auto-MEBs) and then
    /// runs the standard pass pipeline: [`MebSubstitution::auto`]
    /// retargets the inserted buffers to `config.meb`/`config.arbiter`,
    /// and the protocol and cycle-cover lints verify the netlist — so a
    /// feedback loop with no buffer on it is rejected *here*, as a typed
    /// [`SynthError::Lint`], before any component is constructed.
    ///
    /// The returned [`SynthIr`] can be inspected (`ir.to_dot()`), costed
    /// (`Inventory::from_ir`), rewritten with further passes, and finally
    /// [`SynthIr::elaborate`]d into a runnable circuit.
    ///
    /// # Errors
    ///
    /// Returns a [`SynthError`] for dangling wires, invalid arities, an
    /// empty graph, or a lint rejection.
    pub fn build_ir(self, config: SynthConfig) -> Result<SynthIr<T>, SynthError> {
        self.validate()?;
        let threads = self.threads;
        let mut ir = ElasticIr::<T>::new();

        // One channel per wire, plus an auto-buffer stage where the policy
        // asks for it. `wire_out[w]` is the channel the producer drives;
        // `wire_in[w]` is the channel the consumer reads.
        let n_wires = self.producer.len();
        let mut wire_out: Vec<Option<IrChannelId>> = vec![None; n_wires];
        let mut wire_in: Vec<Option<IrChannelId>> = vec![None; n_wires];
        for w in 0..n_wires {
            if self.dead_wires[w] {
                continue;
            }
            let (pnode, pport) = self.producer[w];
            let pname = self.nodes[pnode].name();
            let auto =
                config.buffers == BufferPolicy::AfterOps && self.nodes[pnode].wants_auto_buffer();
            let ch = ir.channel(format!("w{w}:{pname}.{pport}"), threads);
            if auto {
                let buffered = ir.channel(format!("w{w}:{pname}.{pport}:buf"), threads);
                // Placeholder microarchitecture; the meb-substitution pass
                // below retargets every `auto` buffer to `config.meb`.
                ir.add(
                    format!("autobuf:w{w}"),
                    IrNodeKind::Meb {
                        kind: MebKind::Reduced,
                        arbiter: config.arbiter,
                        initial: Vec::new(),
                        auto: true,
                    },
                    vec![ch],
                    vec![buffered],
                );
                wire_out[w] = Some(ch);
                wire_in[w] = Some(buffered);
            } else {
                wire_out[w] = Some(ch);
                wire_in[w] = Some(ch);
            }
        }
        let outc = |w: Wire| wire_out[w.0].expect("channel assigned");
        let inc = |w: Wire| wire_in[w.0].expect("channel assigned");

        let mut inputs: BTreeMap<String, String> = BTreeMap::new();
        let mut outputs: BTreeMap<String, (String, IrChannelId)> = BTreeMap::new();

        for (idx, node) in self.nodes.into_iter().enumerate() {
            if self.dead_nodes[idx] {
                continue;
            }
            let ins = &self.node_inputs[idx];
            // Output wires of this node, in port order.
            let outs: Vec<Wire> = (0..n_wires)
                .filter(|&w| !self.dead_wires[w] && self.producer[w].0 == idx)
                .map(Wire)
                .collect();
            match node {
                Node::Input { name } => {
                    let comp = format!("in:{name}");
                    ir.add(
                        comp.clone(),
                        IrNodeKind::Source,
                        vec![],
                        vec![outc(outs[0])],
                    );
                    inputs.insert(name, comp);
                }
                Node::Output { name } => {
                    let comp = format!("out:{name}");
                    let ch = inc(ins[0]);
                    ir.add(
                        comp.clone(),
                        IrNodeKind::Sink {
                            capture: true,
                            policy: ReadyPolicy::Always,
                        },
                        vec![ch],
                        vec![],
                    );
                    outputs.insert(name, (comp, ch));
                }
                Node::Op {
                    name,
                    arity,
                    f,
                    latency,
                } => {
                    let out_ch = outc(outs[0]);
                    // The joined/combined value either goes straight out
                    // (combinational) or through a latency unit.
                    let (combine_target, delay_src) = match latency {
                        OpLatency::Combinational => (out_ch, None),
                        _ => {
                            let mid = ir.channel(format!("{name}:joined"), threads);
                            (mid, Some(mid))
                        }
                    };
                    if arity == 1 {
                        ir.add(
                            format!("{name}:fn"),
                            IrNodeKind::Transform {
                                f: Box::new(move |t: &T| f(&[t])),
                            },
                            vec![inc(ins[0])],
                            vec![combine_target],
                        );
                    } else {
                        let chans: Vec<IrChannelId> = ins.iter().map(|&w| inc(w)).collect();
                        ir.add(
                            format!("{name}:join"),
                            IrNodeKind::Join { combine: f },
                            chans,
                            vec![combine_target],
                        );
                    }
                    if let Some(src) = delay_src {
                        let model = match latency {
                            OpLatency::Fixed(n) => LatencyModel::Fixed(n),
                            OpLatency::Variable { min, max, seed } => {
                                LatencyModel::Uniform { min, max, seed }
                            }
                            OpLatency::Combinational => unreachable!("handled above"),
                        };
                        ir.add(
                            format!("{name}:unit"),
                            IrNodeKind::VarLatency {
                                servers: threads.max(2),
                                model,
                                transform: None,
                            },
                            vec![src],
                            vec![out_ch],
                        );
                    }
                }
                Node::Branch { name, cond } => {
                    ir.add(
                        name,
                        IrNodeKind::Branch { cond },
                        vec![inc(ins[0])],
                        vec![outc(outs[0]), outc(outs[1])],
                    );
                }
                Node::Merge { name, .. } => {
                    let chans: Vec<IrChannelId> = ins.iter().map(|&w| inc(w)).collect();
                    ir.add(name, IrNodeKind::Merge, chans, vec![outc(outs[0])]);
                }
                Node::Fork { name, .. } => {
                    let chans: Vec<IrChannelId> = outs.iter().map(|&w| outc(w)).collect();
                    ir.add(
                        name,
                        IrNodeKind::Fork {
                            mode: ForkMode::Eager,
                            route: None,
                        },
                        vec![inc(ins[0])],
                        chans,
                    );
                }
                Node::Buffer {
                    name,
                    kind,
                    initial,
                } => {
                    ir.add(
                        name,
                        IrNodeKind::Meb {
                            kind,
                            arbiter: config.arbiter,
                            initial,
                            auto: false,
                        },
                        vec![inc(ins[0])],
                        vec![outc(outs[0])],
                    );
                }
                Node::Barrier { name } => {
                    ir.add(
                        name,
                        IrNodeKind::Barrier {
                            participants: None,
                            on_release: None,
                        },
                        vec![inc(ins[0])],
                        vec![outc(outs[0])],
                    );
                }
            }
        }

        PassManager::new()
            .with(MebSubstitution::auto(config.meb))
            .with(ProtocolLint)
            .with(CycleCoverLint)
            .run(&mut ir)
            .map_err(SynthError::Lint)?;

        Ok(SynthIr {
            ir,
            inputs,
            outputs,
            threads,
        })
    }

    /// Elaborates the graph into a runnable [`SynthCircuit`] — both
    /// stages at once: [`build_ir`](Self::build_ir) followed by
    /// [`SynthIr::elaborate`].
    ///
    /// # Errors
    ///
    /// Returns a [`SynthError`] for dangling wires, invalid arities, an
    /// empty graph, a lint rejection (e.g. an unbuffered feedback loop),
    /// or (should the builder itself be buggy) an invalid netlist.
    pub fn elaborate(self, config: SynthConfig) -> Result<SynthCircuit<T>, SynthError> {
        self.build_ir(config)?.elaborate()
    }
}

/// Stage-one output of synthesis: the structural [`ElasticIr`] netlist
/// plus the external port bookkeeping needed to wrap the elaborated
/// circuit in a [`SynthCircuit`].
///
/// The IR is public — inspect it, render it (`synth.ir.to_dot()`), cost
/// it (`Inventory::from_ir(&synth.ir)`), or rewrite it with further
/// passes (e.g. [`MebSubstitution::named`] to retarget one buffer) before
/// elaborating.
pub struct SynthIr<T: Token> {
    /// The lowered netlist.
    pub ir: ElasticIr<T>,
    /// External input port → source component name.
    inputs: BTreeMap<String, String>,
    /// External output port → (sink component name, sink input channel).
    outputs: BTreeMap<String, (String, IrChannelId)>,
    threads: usize,
}

impl<T: Token> SynthIr<T> {
    /// Thread count of every channel in the netlist.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Elaborates the IR into a runnable [`SynthCircuit`] — stage two.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Build`] when the netlist fails construction
    /// (ill-fitting ports, initial-token overflow, or circuit-builder
    /// rejection) — all conditions the lint passes in
    /// [`build_ir`](DataflowBuilder::build_ir) catch earlier with typed
    /// errors.
    pub fn elaborate(self) -> Result<SynthCircuit<T>, SynthError> {
        let elaborated = self
            .ir
            .elaborate()
            .map_err(|e| SynthError::Build(e.to_string()))?;
        let outputs: BTreeMap<String, (String, ChannelId)> = self
            .outputs
            .into_iter()
            .map(|(port, (comp, ch))| (port, (comp, elaborated.channel(ch))))
            .collect();
        Ok(SynthCircuit::new(
            elaborated.circuit,
            self.threads,
            self.inputs,
            outputs,
        ))
    }
}

impl<T: Token> std::fmt::Debug for SynthIr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthIr")
            .field("threads", &self.threads)
            .field("ir", &self.ir)
            .field("inputs", &self.inputs.keys().collect::<Vec<_>>())
            .field("outputs", &self.outputs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl<T: Token> std::fmt::Debug for DataflowBuilder<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataflowBuilder")
            .field("threads", &self.threads)
            .field("nodes", &self.nodes)
            .field("wires", &self.producer.len())
            .finish()
    }
}
