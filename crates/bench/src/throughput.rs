//! Throughput experiments from the paper's Sec. III-A analysis:
//!
//! * **1/M sharing** — with `M` of `S` threads active, each receives
//!   `1/M` of the channel;
//! * **worst case** — when all threads but one are blocked long enough
//!   for the backpressure to reach the source, the lone active thread
//!   keeps 100 % of a full-MEB pipeline but only 50 % of a reduced one.

use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
use elastic_sim::ReadyPolicy;

/// One point of the throughput-vs-active-threads sweep.
#[derive(Clone, PartialEq, Debug)]
pub struct ThroughputPoint {
    /// MEB microarchitecture.
    pub kind: MebKind,
    /// Hardware thread count `S`.
    pub threads: usize,
    /// Active thread count `M` (the rest inject nothing).
    pub active: usize,
    /// Measured steady-state per-active-thread throughput.
    pub per_thread: f64,
    /// Measured aggregate channel throughput.
    pub aggregate: f64,
}

/// Measures steady-state throughput for `active` of `threads` threads on
/// a `stages`-deep MEB pipeline.
///
/// Uses a warm-up window before measuring so fill latency does not skew
/// the rates.
///
/// # Panics
///
/// Panics if `active == 0 || active > threads`, or if the simulation
/// reports a protocol error.
pub fn measure_throughput(
    kind: MebKind,
    threads: usize,
    active: usize,
    stages: usize,
) -> ThroughputPoint {
    assert!(active > 0 && active <= threads, "invalid active count");
    let measure_cycles = 600u64;
    let warmup = 40u64;
    let tokens = measure_cycles + warmup + 50;
    let mut cfg = PipelineConfig::free_flowing(threads, stages, kind, tokens);
    for t in active..threads {
        cfg.tokens_per_thread[t] = 0;
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(warmup).expect("warmup runs clean");
    h.circuit.reset_stats();
    h.circuit
        .run(measure_cycles)
        .expect("measurement runs clean");
    let out = h.pipeline.output;
    let per_thread = (0..active)
        .map(|t| h.circuit.stats().throughput(out, t))
        .sum::<f64>()
        / active as f64;
    ThroughputPoint {
        kind,
        threads,
        active,
        per_thread,
        aggregate: h.circuit.stats().channel_throughput(out),
    }
}

/// Result of the all-but-one-blocked worst case.
#[derive(Clone, PartialEq, Debug)]
pub struct WorstcaseResult {
    /// MEB microarchitecture.
    pub kind: MebKind,
    /// Pipeline depth.
    pub stages: usize,
    /// Steady-state throughput of the lone active thread.
    pub active_throughput: f64,
}

/// Blocks every thread except thread 0 at the sink forever and measures
/// thread 0's steady-state throughput once the stall has propagated to
/// the source (paper, Sec. III-A: "the only active thread will obtain
/// 50 % of throughput" with reduced MEBs; "Full MEB, on the other hand,
/// will allow the active thread to fully utilize the channel").
///
/// # Panics
///
/// Panics if the simulation reports a protocol error.
pub fn reduced_worstcase(kind: MebKind, threads: usize, stages: usize) -> WorstcaseResult {
    let measure_cycles = 600u64;
    // Enough warm-up for the blocked threads' backpressure to fill every
    // stage back to the source.
    let warmup = 60 + 4 * stages as u64;
    let tokens = measure_cycles + warmup + 50;
    let mut cfg = PipelineConfig::free_flowing(threads, stages, kind, tokens);
    for t in 1..threads {
        cfg = cfg.with_sink_policy(t, ReadyPolicy::Never);
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(warmup).expect("warmup runs clean");
    h.circuit.reset_stats();
    h.circuit
        .run(measure_cycles)
        .expect("measurement runs clean");
    WorstcaseResult {
        kind,
        stages,
        active_throughput: h.circuit.stats().throughput(h.pipeline.output, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sec. III-A: per-thread throughput ≈ 1/M for every MEB kind.
    #[test]
    fn one_over_m_sharing_law() {
        for kind in [MebKind::Full, MebKind::Reduced] {
            for active in [1usize, 2, 4, 8] {
                let p = measure_throughput(kind, 8, active, 3);
                let expect = 1.0 / active as f64;
                assert!(
                    (p.per_thread - expect).abs() < 0.06,
                    "{kind} M={active}: per-thread {:.3} vs 1/M {:.3}",
                    p.per_thread,
                    expect
                );
                assert!(
                    p.aggregate > 0.9,
                    "{kind} M={active}: aggregate {:.3}",
                    p.aggregate
                );
            }
        }
    }

    /// The one behavioural difference between the MEB variants.
    #[test]
    fn worstcase_separates_full_from_reduced() {
        let full = reduced_worstcase(MebKind::Full, 2, 4);
        let reduced = reduced_worstcase(MebKind::Reduced, 2, 4);
        assert!(
            full.active_throughput > 0.93,
            "full: {:.3}",
            full.active_throughput
        );
        assert!(
            (reduced.active_throughput - 0.5).abs() < 0.06,
            "reduced: {:.3}",
            reduced.active_throughput
        );
    }
}
