//! Multithreaded elastic channels.
//!
//! A channel carries the data of **one thread per cycle** plus one
//! `valid(i)/ready(i)` handshake pair per thread (paper, Sec. III). A
//! single-thread channel (`threads == 1`) degenerates to the baseline
//! elastic channel of Sec. II. The handshake bits live in packed
//! [`ThreadMask`] words (see `mask.rs`), so popcounts, invariant checks
//! and change detection are word-level operations.

use crate::mask::ThreadMask;
use crate::token::Token;

/// Opaque handle to a channel inside a circuit.
///
/// Created by [`CircuitBuilder::channel`](crate::CircuitBuilder::channel)
/// and passed to components at construction time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub(crate) usize);

impl ChannelId {
    /// Raw index of this channel inside its circuit.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Static description of a channel: its name and thread count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChannelSpec {
    /// Human-readable name, used in traces and error messages.
    pub name: String,
    /// Number of concurrent threads the channel supports (`S` in the paper).
    pub threads: usize,
}

/// The live signal state of one channel during a cycle.
///
/// All signals are combinationally re-driven on every settle iteration;
/// they are reset at the start of each cycle.
#[derive(Clone, Debug)]
pub(crate) struct ChannelState<T: Token> {
    pub spec: ChannelSpec,
    /// Per-thread `valid` bits, driven by the producer.
    pub valid: ThreadMask,
    /// Per-thread `ready` bits, driven by the consumer.
    pub ready: ThreadMask,
    /// The (single) data word, driven by the producer.
    pub data: Option<T>,
}

impl<T: Token> ChannelState<T> {
    pub fn new(spec: ChannelSpec) -> Self {
        let threads = spec.threads;
        Self {
            spec,
            valid: ThreadMask::new(threads),
            ready: ThreadMask::new(threads),
            data: None,
        }
    }

    /// Returns `Some(thread)` if exactly the one thread `thread` is valid.
    pub fn single_valid(&self) -> Option<usize> {
        self.valid.single()
    }

    /// True when thread `t`'s transfer fires this cycle (`valid && ready`).
    pub fn fires(&self, t: usize) -> bool {
        self.valid.get(t) && self.ready.get(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> ChannelState<u64> {
        ChannelState::new(ChannelSpec {
            name: "c".into(),
            threads: 3,
        })
    }

    #[test]
    fn new_channel_starts_idle() {
        let c = ch();
        assert!(!c.valid.any());
        assert!(!c.ready.any());
        assert_eq!(c.data, None);
    }

    #[test]
    fn single_valid_detects_exactly_one() {
        let mut c = ch();
        assert_eq!(c.single_valid(), None);
        c.valid.set(2, true);
        assert_eq!(c.single_valid(), Some(2));
        c.valid.set(0, true);
        assert_eq!(c.single_valid(), None);
        assert_eq!(c.valid.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn fires_requires_both_valid_and_ready() {
        let mut c = ch();
        c.valid.set(0, true);
        assert!(!c.fires(0));
        c.ready.set(0, true);
        assert!(c.fires(0));
        assert!(!c.fires(1));
    }
}
