//! Build-time levelized rank schedule for the settle loop.
//!
//! The elastic protocol guarantees that between sequential boundaries
//! (EB/MEB registers) the combinational forward (`valid`/`data`) and
//! backward (`ready`) networks form a DAG — that is what makes
//! latency-insensitive synthesis legal in the first place (paper Sec. III;
//! Cortadella et al., DAC 2006). This module exploits the guarantee at
//! `build()` time instead of paying for it at runtime:
//!
//! 1. Every component declares its combinational paths
//!    ([`Component::comb_paths`]); the declarations are assembled into a
//!    **signal-level dependency graph** with two nodes per channel —
//!    `valid`/`data` (forward) and `ready` (backward).
//! 2. Tarjan SCC over the *strict* (undamped) edges rejects true
//!    combinational cycles with a named
//!    [`BuildError::CombinationalLoop`] — the runtime iteration cap is no
//!    longer the detector, just a safety net for damped hysteretic loops.
//! 3. Tarjan SCC over *all* edges marks `feedback` channels (those whose
//!    `valid` and `ready` take part in one combinational cycle); only
//!    those channels keep the kernel's self-wake and the arbiters'
//!    anti-swap guards.
//! 4. The component-level condensation of the graph is levelized, and the
//!    evaluation order is permuted to rank order: every component is
//!    evaluated after everything it combinationally depends on, so the
//!    round-1 full sweep settles almost every cycle in exactly one pass.

use crate::channel::ChannelSpec;
use crate::component::{CombPath, Component};
use crate::error::BuildError;
use crate::token::Token;

/// How [`CircuitBuilder::build`](crate::CircuitBuilder::build) orders
/// components for the settle loop.
///
/// Loop rejection, feedback detection and wake-map narrowing are
/// identical in every mode; only the evaluation permutation differs. The
/// non-default modes exist for ablation (`kernel_ablation --schedule`)
/// and for stress-testing order independence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ScheduleMode {
    /// Levelized rank order (the default): dependency sources first, so
    /// an acyclic net settles in a single sweep.
    #[default]
    Ranked,
    /// The order components were added to the builder — the historical
    /// behaviour, kept as the ablation baseline.
    Insertion,
    /// Insertion order reversed — the adversarial baseline.
    Reversed,
}

/// The static schedule computed at build time.
#[derive(Debug)]
pub(crate) struct Schedule {
    /// `order[k]` is the insertion index of the k-th component to
    /// evaluate.
    pub order: Vec<usize>,
    /// Per-channel: the reader declared a path triggered by this
    /// channel's `valid`/`data` — a change must wake it.
    pub listen_valid: Vec<bool>,
    /// Per-channel: the driver declared a path triggered by this
    /// channel's `ready` — a change must wake it.
    pub listen_ready: Vec<bool>,
    /// Per-channel: `valid` and `ready` belong to one combinational SCC,
    /// so hysteretic selection on it must keep its guard and self-wake.
    pub feedback: Vec<bool>,
    /// Largest number of components sharing one rank level.
    pub rank_width: u64,
}

/// One edge of the signal-level dependency graph.
struct SigEdge {
    from: usize,
    to: usize,
    damped: bool,
    /// Insertion index of the component whose eval implements the path.
    owner: usize,
}

/// Signal-node encoding: two nodes per channel.
#[inline]
fn v_node(ch: usize) -> usize {
    2 * ch
}
#[inline]
fn r_node(ch: usize) -> usize {
    2 * ch + 1
}

/// Iterative Tarjan SCC. Returns the SCC id of every node; ids are
/// assigned in emission order, which for Tarjan is reverse topological:
/// if an edge `a -> b` crosses SCCs then `scc[b] < scc[a]`.
fn tarjan(n: usize, adj: &[Vec<usize>]) -> (Vec<usize>, usize) {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut work: Vec<(usize, usize)> = Vec::new();
    let mut next = 0usize;
    let mut count = 0usize;
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        work.push((start, 0));
        while let Some(frame) = work.last_mut() {
            let (v, ci) = (frame.0, frame.1);
            if ci == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                frame.1 += 1;
                let w = adj[v][ci];
                if index[w] == UNSET {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    (scc, count)
}

/// Collects and validates every component's combinational-path
/// declarations into signal-graph edges.
fn collect_edges<T: Token>(
    components: &[Box<dyn Component<T>>],
    specs: &[ChannelSpec],
) -> Result<Vec<SigEdge>, BuildError> {
    let mut edges = Vec::new();
    for (i, comp) in components.iter().enumerate() {
        let ports = comp.ports();
        let bad = |ch: crate::channel::ChannelId| BuildError::InvalidCombPath {
            component: comp.name().to_string(),
            channel: specs
                .get(ch.index())
                .map_or_else(|| format!("#{}", ch.index()), |s| s.name.clone()),
        };
        for path in comp.comb_paths() {
            let (from, to, damped) = match path {
                CombPath::ValidToValid { from, to } => {
                    if !ports.inputs.contains(&from) || !ports.outputs.contains(&to) {
                        return Err(bad(if ports.inputs.contains(&from) {
                            to
                        } else {
                            from
                        }));
                    }
                    (v_node(from.index()), v_node(to.index()), false)
                }
                CombPath::ValidToReady { from, to } => {
                    if !ports.inputs.contains(&from) || !ports.inputs.contains(&to) {
                        return Err(bad(if ports.inputs.contains(&from) {
                            to
                        } else {
                            from
                        }));
                    }
                    (v_node(from.index()), r_node(to.index()), false)
                }
                CombPath::ReadyToValid { from, to, damped } => {
                    if !ports.outputs.contains(&from) || !ports.outputs.contains(&to) {
                        return Err(bad(if ports.outputs.contains(&from) {
                            to
                        } else {
                            from
                        }));
                    }
                    (r_node(from.index()), v_node(to.index()), damped)
                }
                CombPath::ReadyToReady { from, to } => {
                    if !ports.outputs.contains(&from) || !ports.inputs.contains(&to) {
                        return Err(bad(if ports.outputs.contains(&from) {
                            to
                        } else {
                            from
                        }));
                    }
                    (r_node(from.index()), r_node(to.index()), false)
                }
            };
            edges.push(SigEdge {
                from,
                to,
                damped,
                owner: i,
            });
        }
    }
    Ok(edges)
}

/// Computes the rank schedule for a validated netlist.
///
/// `driver[ch]` / `reader[ch]` are insertion-order component indices (the
/// builder resolves them before calling this); the returned
/// [`Schedule::order`] is likewise in insertion indices — the builder
/// applies the permutation.
pub(crate) fn compute_schedule<T: Token>(
    components: &[Box<dyn Component<T>>],
    specs: &[ChannelSpec],
    driver: &[usize],
    reader: &[usize],
    mode: ScheduleMode,
) -> Result<Schedule, BuildError> {
    let n = components.len();
    let n_ch = specs.len();
    let edges = collect_edges(components, specs)?;

    // 1. Reject all-strict cycles: any cycle in the strict-edge subgraph
    // can never settle, regardless of evaluation order. Cycles that pass
    // through at least one damped (hysteretic) path converge under the
    // runtime iteration cap and stay legal.
    let mut strict_adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * n_ch];
    for e in edges.iter().filter(|e| !e.damped) {
        strict_adj[e.from].push(e.to);
    }
    let (strict_scc, strict_count) = tarjan(2 * n_ch, &strict_adj);
    let mut scc_size = vec![0usize; strict_count];
    for &s in &strict_scc {
        scc_size[s] += 1;
    }
    let cyclic_scc = (0..strict_count).find(|&s| {
        scc_size[s] > 1
            || edges
                .iter()
                .any(|e| !e.damped && e.from == e.to && strict_scc[e.from] == s)
    });
    if let Some(s) = cyclic_scc {
        // Name the components whose declared paths form the cycle, in
        // insertion order, deduplicated.
        let mut owners: Vec<usize> = edges
            .iter()
            .filter(|e| !e.damped && strict_scc[e.from] == s && strict_scc[e.to] == s)
            .map(|e| e.owner)
            .collect();
        owners.sort_unstable();
        owners.dedup();
        return Err(BuildError::CombinationalLoop {
            components: owners
                .into_iter()
                .map(|i| components[i].name().to_string())
                .collect(),
        });
    }

    // 2. Feedback channels: valid and ready of the channel share an SCC
    // of the full (strict + damped) signal graph. Such a channel is part
    // of a legal hysteretic loop — its selection guards and self-wake
    // must stay active.
    let mut full_adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * n_ch];
    for e in &edges {
        full_adj[e.from].push(e.to);
    }
    let (full_scc, _) = tarjan(2 * n_ch, &full_adj);
    let feedback: Vec<bool> = (0..n_ch)
        .map(|ch| full_scc[v_node(ch)] == full_scc[r_node(ch)])
        .collect();

    // 3. Wake-map narrowing: a signal change only needs to wake a
    // component that declared a path triggered by that signal.
    let mut listen_valid = vec![false; n_ch];
    let mut listen_ready = vec![false; n_ch];
    for e in &edges {
        if e.from % 2 == 0 {
            listen_valid[e.from / 2] = true;
        } else {
            listen_ready[e.from / 2] = true;
        }
    }

    // 4. Component-level levelization. An edge `a -> b` means component
    // b's eval reads a signal that component a drives, so a must come
    // first: the trigger of a forward (`valid`) path is driven by the
    // channel's driver, of a backward (`ready`) path by its reader.
    let mut comp_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &edges {
        let ch = e.from / 2;
        let src = if e.from % 2 == 0 {
            driver[ch]
        } else {
            reader[ch]
        };
        if src != e.owner {
            comp_adj[src].push(e.owner);
        }
    }
    let (comp_scc, comp_count) = tarjan(n, &comp_adj);
    let mut cond: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
    for (a, adj) in comp_adj.iter().enumerate() {
        for &b in adj {
            if comp_scc[a] != comp_scc[b] {
                cond[comp_scc[a]].push(comp_scc[b]);
            }
        }
    }
    // Tarjan emits SCCs in reverse topological order, so iterating ids
    // from high to low visits every dependency source before its targets.
    let mut level = vec![0usize; comp_count];
    for s in (0..comp_count).rev() {
        for &d in &cond[s] {
            level[d] = level[d].max(level[s] + 1);
        }
    }
    let comp_level: Vec<usize> = (0..n).map(|i| level[comp_scc[i]]).collect();
    let mut width = vec![0u64; comp_level.iter().map(|&l| l + 1).max().unwrap_or(1)];
    for &l in &comp_level {
        width[l] += 1;
    }
    let rank_width = width.into_iter().max().unwrap_or(1);

    let mut order: Vec<usize> = (0..n).collect();
    match mode {
        ScheduleMode::Ranked => order.sort_by_key(|&i| (comp_level[i], i)),
        ScheduleMode::Insertion => {}
        ScheduleMode::Reversed => order.reverse(),
    }

    Ok(Schedule {
        order,
        listen_valid,
        listen_ready,
        feedback,
        rank_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelId;
    use crate::circuit::{EvalCtx, TickCtx};
    use crate::component::Ports;

    /// A declaration-only component for schedule tests.
    struct Decl {
        name: String,
        ports: Ports,
        paths: Vec<CombPath>,
    }

    impl Component<u64> for Decl {
        fn name(&self) -> &str {
            &self.name
        }
        fn ports(&self) -> Ports {
            self.ports.clone()
        }
        fn comb_paths(&self) -> Vec<CombPath> {
            self.paths.clone()
        }
        fn eval(&mut self, _ctx: &mut EvalCtx<'_, u64>) {}
        fn tick(&mut self, _ctx: &TickCtx<'_, u64>) {}
        crate::impl_as_any!();
    }

    fn decl(
        name: &str,
        inputs: Vec<ChannelId>,
        outputs: Vec<ChannelId>,
        paths: Vec<CombPath>,
    ) -> Box<dyn Component<u64>> {
        Box::new(Decl {
            name: name.into(),
            ports: Ports { inputs, outputs },
            paths,
        })
    }

    fn specs(n: usize) -> Vec<ChannelSpec> {
        (0..n)
            .map(|i| ChannelSpec {
                name: format!("ch{i}"),
                threads: 1,
            })
            .collect()
    }

    /// src -(a)-> buf -(b)-> snk, where buf registers both directions
    /// (an EB): the schedule is a pure chain ranked sink-to-source for
    /// the backward signals only where declared.
    #[test]
    fn registered_pipeline_ranks_consumers_first() {
        let a = ChannelId(0);
        let b = ChannelId(1);
        let comps = vec![
            // src reads ready(a) to pick what to offer (damped, like Source).
            decl(
                "src",
                vec![],
                vec![a],
                vec![CombPath::ReadyToValid {
                    from: a,
                    to: a,
                    damped: true,
                }],
            ),
            // buf cuts every path (an EB) but still listens on ready(b).
            decl(
                "buf",
                vec![a],
                vec![b],
                vec![CombPath::ReadyToValid {
                    from: b,
                    to: b,
                    damped: true,
                }],
            ),
            decl("snk", vec![b], vec![], vec![]),
        ];
        let s = compute_schedule(&comps, &specs(2), &[0, 1], &[1, 2], ScheduleMode::Ranked)
            .expect("acyclic");
        // Dependencies: snk drives ready(b) -> buf; buf drives ready(a) -> src.
        assert_eq!(s.order, vec![2, 1, 0]);
        assert_eq!(s.rank_width, 1);
        assert_eq!(s.feedback, vec![false, false]);
        assert_eq!(s.listen_valid, vec![false, false]);
        assert_eq!(s.listen_ready, vec![true, true]);
    }

    #[test]
    fn insertion_and_reversed_modes_keep_analysis_but_not_order() {
        let a = ChannelId(0);
        let comps = vec![
            decl("src", vec![], vec![a], vec![]),
            decl("snk", vec![a], vec![], vec![]),
        ];
        let sp = specs(1);
        let ins = compute_schedule(&comps, &sp, &[0], &[1], ScheduleMode::Insertion).unwrap();
        assert_eq!(ins.order, vec![0, 1]);
        let rev = compute_schedule(&comps, &sp, &[0], &[1], ScheduleMode::Reversed).unwrap();
        assert_eq!(rev.order, vec![1, 0]);
        assert_eq!(ins.feedback, rev.feedback);
        assert_eq!(ins.rank_width, rev.rank_width);
    }

    /// Two pass-through stages wired in a ring: valid chases valid around
    /// the loop with no register and no damping — rejected, both names
    /// reported in insertion order.
    #[test]
    fn strict_ring_is_rejected_with_names() {
        let a = ChannelId(0);
        let b = ChannelId(1);
        let passthrough = |name: &str, inp: ChannelId, out: ChannelId| {
            decl(
                name,
                vec![inp],
                vec![out],
                vec![
                    CombPath::ValidToValid { from: inp, to: out },
                    CombPath::ReadyToReady { from: out, to: inp },
                ],
            )
        };
        let comps = vec![passthrough("t1", a, b), passthrough("t2", b, a)];
        let err = compute_schedule(&comps, &specs(2), &[1, 0], &[0, 1], ScheduleMode::Ranked)
            .expect_err("strict ring");
        assert_eq!(
            err,
            BuildError::CombinationalLoop {
                components: vec!["t1".into(), "t2".into()],
            }
        );
    }

    /// The same ring with one damped edge converges under hysteresis:
    /// legal, and every channel on the cycle is marked feedback.
    #[test]
    fn damped_cycle_is_legal_and_marks_feedback() {
        let a = ChannelId(0);
        let b = ChannelId(1);
        let comps = vec![
            decl(
                "sel",
                vec![a],
                vec![b],
                vec![
                    CombPath::ReadyToValid {
                        from: b,
                        to: b,
                        damped: true,
                    },
                    CombPath::ValidToReady { from: a, to: a },
                ],
            ),
            decl(
                "join",
                vec![b],
                vec![a],
                vec![
                    CombPath::ValidToValid { from: b, to: a },
                    CombPath::ReadyToReady { from: a, to: b },
                ],
            ),
        ];
        let s = compute_schedule(&comps, &specs(2), &[1, 0], &[0, 1], ScheduleMode::Ranked)
            .expect("damped cycle is legal");
        // R(b) -> V(b) (damped) -> V(a) -> R(a) -> R(b): one SCC touching
        // both signals of both channels.
        assert_eq!(s.feedback, vec![true, true]);
        // Both components sit in one component-level SCC: same rank, kept
        // in insertion order.
        assert_eq!(s.order, vec![0, 1]);
        assert_eq!(s.rank_width, 2);
    }

    /// A strict sub-cycle hidden inside a larger SCC that also contains
    /// damped edges must still be rejected: legality is a property of the
    /// strict subgraph, not of whole mixed SCCs.
    #[test]
    fn strict_subcycle_inside_damped_scc_is_rejected() {
        let a = ChannelId(0);
        let b = ChannelId(1);
        let comps = vec![
            decl(
                "t1",
                vec![a],
                vec![b],
                vec![
                    CombPath::ValidToValid { from: a, to: b },
                    // A damped self path that merges into the same SCC.
                    CombPath::ReadyToValid {
                        from: b,
                        to: b,
                        damped: true,
                    },
                ],
            ),
            decl(
                "t2",
                vec![b],
                vec![a],
                vec![
                    CombPath::ValidToValid { from: b, to: a },
                    CombPath::ReadyToReady { from: a, to: b },
                ],
            ),
        ];
        let err = compute_schedule(&comps, &specs(2), &[1, 0], &[0, 1], ScheduleMode::Ranked)
            .expect_err("strict V-ring survives damping elsewhere");
        match err {
            BuildError::CombinationalLoop { components } => {
                assert_eq!(components, vec!["t1".to_string(), "t2".to_string()]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn misdeclared_path_is_rejected() {
        let a = ChannelId(0);
        let comps = vec![
            decl(
                "src",
                vec![],
                vec![a],
                // Claims a valid trigger on a channel it does not read.
                vec![CombPath::ValidToValid { from: a, to: a }],
            ),
            decl("snk", vec![a], vec![], vec![]),
        ];
        let err = compute_schedule(&comps, &specs(1), &[0], &[1], ScheduleMode::Ranked)
            .expect_err("bad declaration");
        assert_eq!(
            err,
            BuildError::InvalidCombPath {
                component: "src".into(),
                channel: "ch0".into(),
            }
        );
    }

    /// A diamond gives parallel ranks: the two middle components share a
    /// level, so the rank width is 2.
    #[test]
    fn diamond_rank_width_is_two() {
        let (a, b, c, d) = (ChannelId(0), ChannelId(1), ChannelId(2), ChannelId(3));
        let pass = |name: &str, inp: ChannelId, out: ChannelId| {
            decl(
                name,
                vec![inp],
                vec![out],
                vec![CombPath::ReadyToReady { from: out, to: inp }],
            )
        };
        let comps = vec![
            decl("fork", vec![], vec![a, b], vec![]),
            pass("l", a, c),
            pass("r", b, d),
            decl("join", vec![c, d], vec![], vec![]),
        ];
        let s = compute_schedule(
            &comps,
            &specs(4),
            &[0, 0, 1, 2],
            &[1, 2, 3, 3],
            ScheduleMode::Ranked,
        )
        .expect("acyclic");
        // join drives ready(c)/ready(d) -> l and r depend on it; fork has
        // no declared reads at all.
        assert_eq!(s.rank_width, 2);
        let pos = |n: usize| s.order.iter().position(|&i| i == n).unwrap();
        assert!(pos(3) < pos(1), "join before l");
        assert!(pos(3) < pos(2), "join before r");
        assert!(pos(1) < pos(2), "ties stay in insertion order");
    }
}
