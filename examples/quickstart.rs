//! Quickstart: build a small multithreaded elastic circuit by hand, run
//! it, and inspect throughput — the five-minute tour of the library.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mt_elastic::core::{ArbiterKind, MebKind, ReducedMeb};
use mt_elastic::sim::{
    CircuitBuilder, LatencyModel, ReadyPolicy, Sink, Source, Tagged, VarLatency,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const THREADS: usize = 3;

    // 1. Declare channels. A multithreaded elastic channel carries one
    //    thread's data per cycle plus a valid/ready pair per thread.
    let mut b = CircuitBuilder::<Tagged>::new();
    let inject = b.channel("inject", THREADS);
    let buffered = b.channel("buffered", THREADS);
    let computed = b.channel("computed", THREADS);

    // 2. A source with some work per thread.
    let mut src = Source::new("src", inject, THREADS);
    for t in 0..THREADS {
        src.extend(t, (0..10).map(|i| Tagged::new(t, i, i * 10 + t as u64)));
    }
    b.add(src);

    // 3. The paper's reduced MEB: S main registers + one shared auxiliary
    //    slot, arbitrated round-robin.
    b.add(ReducedMeb::new(
        "meb",
        inject,
        buffered,
        THREADS,
        ArbiterKind::RoundRobin.build(),
    ));

    // 4. A variable-latency computation unit (1–3 cycles), as elasticity
    //    is designed to tolerate.
    b.add(
        VarLatency::new(
            "unit",
            buffered,
            computed,
            THREADS,
            2,
            LatencyModel::Uniform {
                min: 1,
                max: 3,
                seed: 42,
            },
        )
        .with_transform(|tok: &Tagged| Tagged::new(tok.thread, tok.seq, tok.payload * 2)),
    );

    // 5. A consumer that occasionally back-pressures.
    b.add(Sink::with_capture(
        "snk",
        computed,
        THREADS,
        ReadyPolicy::Period {
            on: 3,
            off: 1,
            phase: 0,
        },
    ));

    // 6. Build (the netlist is validated) and run.
    let mut circuit = b.build()?;
    circuit.run(120)?;

    let snk: &Sink<Tagged> = circuit.get("snk").expect("sink exists");
    println!("consumed per thread:");
    for t in 0..THREADS {
        let first: Vec<u64> = snk
            .captured(t)
            .iter()
            .take(4)
            .map(|(_, tok)| tok.payload)
            .collect();
        println!(
            "  thread {t}: {} tokens (first payloads: {:?}), throughput {:.3}",
            snk.consumed(t),
            first,
            circuit.stats().throughput(computed, t)
        );
    }
    println!(
        "channel `computed`: utilization {:.1}%, stall rate {:.1}%",
        100.0 * circuit.stats().utilization(computed),
        100.0 * circuit.stats().stall_rate(computed)
    );
    println!("\nnext stops: DESIGN.md, `cargo run --bin fig5_pipeline_trace`, `cargo run --example md5_pipeline`");
    assert_eq!(snk.consumed_total(), 30);
    let _ = MebKind::Full; // see `reduced_vs_full` for the comparison
    Ok(())
}
