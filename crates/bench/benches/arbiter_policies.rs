//! Criterion bench: arbiter policies — raw `choose` cost on dense request
//! vectors and the end-to-end cost of a shared channel under each policy
//! (the E-X5 ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use elastic_core::{ArbiterKind, MebKind, PipelineConfig, PipelineHarness};
use elastic_sim::ThreadMask;

fn bench_choose(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter_choose");
    let bits: Vec<bool> = (0..64).map(|i| i % 3 != 0).collect();
    let requests = ThreadMask::from_bools(&bits);
    for kind in ArbiterKind::all() {
        let mut arb = kind.build();
        // Exercise some state so LeastRecent has history.
        for t in 0..16 {
            arb.commit(t);
        }
        group.bench_with_input(
            BenchmarkId::new("64-wide", kind.to_string()),
            &kind,
            |b, _| b.iter(|| arb.choose(std::hint::black_box(&requests))),
        );
    }
    group.finish();
}

fn bench_policy_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter_pipeline");
    for kind in ArbiterKind::all() {
        group.bench_with_input(
            BenchmarkId::new("8t", kind.to_string()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut cfg = PipelineConfig::free_flowing(8, 2, MebKind::Reduced, 500);
                    cfg.arbiter = kind;
                    let mut h = PipelineHarness::build(cfg);
                    h.circuit.run(500).expect("pipeline runs clean");
                    h.sink().consumed_total()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_choose, bench_policy_pipeline);
criterion_main!(benches);
