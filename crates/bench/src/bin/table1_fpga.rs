//! Regenerates the paper's **Table I** ("FPGA implementation results of
//! the 8-thread design examples") from the structural cost model, with
//! the paper's reported numbers side by side, plus the 16-thread
//! extension behind the paper's ">22 % savings" remark.
//!
//! The per-thread-count sections are independent, so the sweep runs as
//! [`run_sweep`] jobs — results come back in submission order, making
//! the concatenated table byte-identical to the serial
//! [`elastic_cost::render`] output (asserted below).
//!
//! With `--inventory`, also prints the itemized LE breakdown of every
//! design/buffer combination.
//!
//! ```text
//! cargo run --release --bin table1_fpga [--inventory]
//! ```

use elastic_core::MebKind;
use elastic_cost::{
    frequency_mhz, gcd_design, md5_design, processor_design, render, render_header, render_section,
    BufferKind, Inventory,
};
use elastic_md5::Md5Circuit;
use elastic_proc::Cpu;
use elastic_sim::{run_sweep, SimJob};
use elastic_synth::{MebSubstitution, Pass};

const THREAD_COUNTS: [usize; 2] = [8, 16];

fn main() {
    let inventory = std::env::args().any(|a| a == "--inventory");

    let jobs: Vec<SimJob<String>> = THREAD_COUNTS
        .iter()
        .map(|&s| SimJob::new(format!("table1 S={s}"), move || Ok(render_section(s))))
        .collect();
    let sections = run_sweep(jobs).unwrap_all();
    let table = format!("{}{}", render_header(), sections.concat());
    assert_eq!(
        table,
        render(&THREAD_COUNTS),
        "sweep-assembled Table I diverged from the serial render"
    );
    print!("{table}");

    // Extension: the same model applied to the circuit synthesized by the
    // elastic-synth flow (examples/gcd_synthesis.rs).
    println!("extension — synthesized GCD loop (not in the paper):");
    let gcd = gcd_design();
    for kind in [BufferKind::Full, BufferKind::Reduced] {
        let area = gcd.area_les(kind, 8);
        println!(
            "  {:<12} 8 threads: {:>6} LEs @ {:>5.1} MHz",
            kind.to_string(),
            area,
            frequency_mhz(gcd.logic_levels, area)
        );
    }
    println!();

    // Cross-check: the same totals, derived structurally from each
    // design's elastic IR instead of the hand-written spec. One circuit
    // description feeds simulation, DOT *and* cost.
    println!("IR cross-check (Inventory::from_ir vs hand-written spec):");
    for s in THREAD_COUNTS {
        for (meb, kind) in [
            (MebKind::Full, BufferKind::Full),
            (MebKind::Reduced, BufferKind::Reduced),
        ] {
            let mut md5 = Md5Circuit::ir(s, s, 1);
            MebSubstitution::all(meb)
                .run(&mut md5.ir)
                .expect("rewrites");
            let md5_ir = Inventory::from_ir(&md5.ir).total_les();
            assert_eq!(md5_ir, md5_design().area_les(kind, s));

            let mut cpu = Cpu::cost_ir(s);
            MebSubstitution::all(meb)
                .run(&mut cpu.ir)
                .expect("rewrites");
            let cpu_ir = Inventory::from_ir(&cpu.ir).total_les();
            assert_eq!(cpu_ir, processor_design().area_les(kind, s));

            println!(
                "  S={s:<2} {:<12} md5 {md5_ir:>6} LEs, processor {cpu_ir:>6} LEs — both match",
                kind.to_string()
            );
        }
    }
    println!();

    if inventory {
        for spec in [md5_design(), processor_design()] {
            for kind in [BufferKind::Full, BufferKind::Reduced] {
                println!("\n=== {} — {} (8 threads) ===", spec.name, kind);
                print!("{}", spec.inventory(kind, 8).render());
            }
        }
    } else {
        println!("(run with --inventory for the itemized LE breakdown)");
    }
}
