//! Criterion bench: simulation throughput of MEB pipelines across
//! microarchitectures and thread counts (full vs reduced vs FIFO
//! ablation) — how expensive each buffer's control is to evaluate, and
//! the harness behind the E-X1 throughput experiment. A second group
//! compares the event-driven dirty-set kernel against the exhaustive
//! sweep oracle on the same pipelines (see `docs/kernel.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
use elastic_sim::EvalMode;

fn run_pipeline(kind: MebKind, threads: usize, cycles: u64, mode: EvalMode) -> u64 {
    let cfg = PipelineConfig::free_flowing(threads, 3, kind, cycles).with_eval_mode(mode);
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(cycles).expect("pipeline runs clean");
    h.sink().consumed_total()
}

fn bench_meb_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("meb_pipeline");
    const CYCLES: u64 = 2_000;
    group.throughput(Throughput::Elements(CYCLES));
    for kind in [MebKind::Full, MebKind::Reduced, MebKind::Fifo { depth: 2 }] {
        for threads in [2usize, 4, 8, 16] {
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), threads),
                &threads,
                |b, &threads| b.iter(|| run_pipeline(kind, threads, CYCLES, EvalMode::EventDriven)),
            );
        }
    }
    group.finish();
}

fn bench_eval_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_mode");
    const CYCLES: u64 = 2_000;
    group.throughput(Throughput::Elements(CYCLES));
    for mode in [EvalMode::EventDriven, EvalMode::Exhaustive] {
        for threads in [4usize, 16] {
            group.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), threads),
                &threads,
                |b, &threads| b.iter(|| run_pipeline(MebKind::Reduced, threads, CYCLES, mode)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_meb_throughput, bench_eval_modes);
criterion_main!(benches);
