//! Per-token latency measurement from recorded traces.
//!
//! Elasticity trades fixed schedules for variable per-token latency;
//! this module quantifies that variability: given a recorded trace, it
//! pairs each token's transfer on an *entry* channel with its transfer on
//! an *exit* channel (matched per thread, in FIFO order) and summarizes
//! the distribution.

use crate::channel::ChannelId;
use crate::trace::TraceRecorder;

/// Latency distribution summary (cycles from entry fire to exit fire).
#[derive(Clone, PartialEq, Debug)]
pub struct LatencySummary {
    /// Number of matched tokens.
    pub count: usize,
    /// Minimum latency.
    pub min: u64,
    /// Maximum latency.
    pub max: u64,
    /// Mean latency.
    pub mean: f64,
    /// 50th percentile.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
}

impl LatencySummary {
    fn from_samples(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let pct = |p: f64| samples[((count - 1) as f64 * p).round() as usize];
        Some(Self {
            count,
            min: samples[0],
            max: samples[count - 1],
            mean: samples.iter().sum::<u64>() as f64 / count as f64,
            p50: pct(0.50),
            p95: pct(0.95),
        })
    }
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} p50={} mean={:.1} p95={} max={}",
            self.count, self.min, self.p50, self.mean, self.p95, self.max
        )
    }
}

/// Matched per-thread latencies between two channels of a trace.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TokenLatencies {
    /// `(thread, entry cycle, exit cycle)` per matched token, in exit
    /// order.
    pub samples: Vec<(usize, u64, u64)>,
}

impl TokenLatencies {
    /// Raw latency values in cycles.
    pub fn cycles(&self) -> Vec<u64> {
        self.samples.iter().map(|&(_, a, b)| b - a).collect()
    }

    /// Distribution summary over all threads, or `None` with no samples.
    pub fn summary(&self) -> Option<LatencySummary> {
        LatencySummary::from_samples(self.cycles())
    }

    /// Distribution summary for one thread.
    pub fn summary_for(&self, thread: usize) -> Option<LatencySummary> {
        LatencySummary::from_samples(
            self.samples
                .iter()
                .filter(|&&(t, _, _)| t == thread)
                .map(|&(_, a, b)| b - a)
                .collect(),
        )
    }
}

/// Pairs each token fired on `entry` with the same thread's next token
/// fired on `exit` (FIFO matching — valid whenever the structure between
/// the two channels preserves per-thread order, which every buffer and
/// datapath unit in this workspace does).
///
/// Tokens still in flight at the end of the trace are ignored.
pub fn token_latencies(
    recorder: &TraceRecorder,
    entry: ChannelId,
    exit: ChannelId,
) -> TokenLatencies {
    let entries = recorder.transfers_on(entry);
    let exits = recorder.transfers_on(exit);
    let threads = entries
        .iter()
        .chain(exits.iter())
        .map(|&(_, t, _)| t + 1)
        .max()
        .unwrap_or(0);
    let mut pending: Vec<std::collections::VecDeque<u64>> = (0..threads)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    for &(cycle, t, _) in &entries {
        pending[t].push_back(cycle);
    }
    let mut samples = Vec::new();
    for &(cycle, t, _) in &exits {
        if let Some(entered) = pending[t].pop_front() {
            samples.push((t, entered, cycle));
        }
    }
    TokenLatencies { samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::schedule::{ReadyPolicy, Sink, Source};
    use crate::token::Tagged;
    use crate::varlat::{LatencyModel, VarLatency};

    #[test]
    fn summary_percentiles() {
        let s = LatencySummary::from_samples(vec![1, 2, 3, 4, 100]).expect("non-empty");
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 3);
        assert_eq!(s.mean, 22.0);
        assert!(LatencySummary::from_samples(vec![]).is_none());
        assert!(s.to_string().contains("p95"));
    }

    #[test]
    fn measures_variable_latency_unit() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let a = b.channel("a", 2);
        let c = b.channel("c", 2);
        let mut src = Source::new("src", a, 2);
        for t in 0..2 {
            src.extend(t, (0..15).map(|i| Tagged::new(t, i, i)));
        }
        b.add(src);
        b.add(VarLatency::new(
            "unit",
            a,
            c,
            2,
            2,
            LatencyModel::Uniform {
                min: 2,
                max: 6,
                seed: 3,
            },
        ));
        b.add(Sink::new("snk", c, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.enable_trace();
        circuit.run(300).expect("clean");
        let lat = token_latencies(circuit.trace().expect("traced"), a, c);
        let summary = lat.summary().expect("tokens flowed");
        assert_eq!(summary.count, 30);
        // Service latency 2–6 plus queueing: never below the service floor.
        assert!(summary.min >= 2, "{summary}");
        assert!(summary.max >= summary.min);
        assert!(lat.summary_for(0).is_some());
        assert!(lat.summary_for(1).is_some());
    }

    #[test]
    fn in_flight_tokens_are_ignored() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, (0..5).map(|i| Tagged::new(0, i, i)));
        b.add(src);
        b.add(VarLatency::new("unit", a, c, 1, 4, LatencyModel::Fixed(50)));
        b.add(Sink::new("snk", c, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.enable_trace();
        circuit.run(60).expect("clean");
        let lat = token_latencies(circuit.trace().expect("traced"), a, c);
        // Only the first token(s) can have exited within 60 cycles.
        assert!(lat.samples.len() < 5);
    }
}
