//! Merge: reconvergence of branch paths onto one channel (paper, Fig. 3
//! and Fig. 7(d)).
//!
//! Per thread, at most one input path carries data (guaranteed by the
//! matching branch), so per-thread merging is trivial — "two baseline
//! merge units suffice" in the paper's construction. Across *threads*,
//! however, two different threads may arrive on the two paths in the same
//! cycle while the output channel can carry only one thread's data.
//! The paper does not elaborate this case; this implementation adds a
//! per-cycle selector (downstream-ready-first, rotating between
//! inputs) so the MT channel invariant always holds. The non-selected
//! input simply sees `ready` low and retries — no token is lost.
//! This clarification is recorded in `DESIGN.md`.

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, NextEvent, Ports,
    TickCtx, Token,
};

/// An N-input merge onto one channel.
///
/// # Examples
///
/// Reconverging a branch:
///
/// ```
/// use elastic_core::{Branch, Merge};
/// use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<u64>::new();
/// let x = b.channel("x", 1);
/// let hi = b.channel("hi", 1);
/// let lo = b.channel("lo", 1);
/// let y = b.channel("y", 1);
/// let mut src = Source::new("src", x, 1);
/// src.extend(0, [3, 14, 6]);
/// b.add(src);
/// b.add(Branch::new("br", x, hi, lo, 1, |v| *v >= 10));
/// b.add(Merge::new("mg", vec![hi, lo], y, 1));
/// b.add(Sink::with_capture("snk", y, 1, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(8)?;
/// let snk: &Sink<u64> = circuit.get("snk").expect("sink");
/// assert_eq!(snk.consumed_total(), 3);
/// # Ok(())
/// # }
/// ```
pub struct Merge<T: Token> {
    name: String,
    inputs: Vec<ChannelId>,
    out: ChannelId,
    /// Rotating preference among inputs (committed on fire).
    prefer: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Token> Merge<T> {
    /// A merge of `inputs` onto `out`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are given.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<ChannelId>,
        out: ChannelId,
        _threads: usize,
    ) -> Self {
        assert!(inputs.len() >= 2, "a merge needs at least two inputs");
        Self {
            name: name.into(),
            inputs,
            out,
            prefer: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Chooses the `(input index, thread)` to forward this settle
    /// iteration. Scans inputs in rotating-preference order over their
    /// packed valid masks — no candidate list is materialised.
    fn choose(&self, ctx: &EvalCtx<'_, T>) -> Option<(usize, usize)> {
        let n = self.inputs.len();
        // Ready-first, rotating among inputs.
        for k in 0..n {
            let i = (self.prefer + k) % n;
            for t in ctx.valid_mask(self.inputs[i]).iter_ones() {
                if ctx.ready(self.out, t) {
                    return Some((i, t));
                }
            }
        }
        // Stalled offer: first asserted thread of the preferred input.
        for k in 0..n {
            let i = (self.prefer + k) % n;
            if let Some(t) = ctx.valid_mask(self.inputs[i]).first_one() {
                return Some((i, t));
            }
        }
        None
    }
}

impl<T: Token> Component<T> for Merge<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Route
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new(self.inputs.clone(), [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // The selector reads every input's valid mask and the output's
        // ready mask; its choice determines both valid(out) and every
        // input's ready. The ready(out)→valid(out) path is *strict*: the
        // merge has no anti-swap damping, so it must not sit on an
        // unregistered cycle (loops through a merge need an EB/MEB cut).
        let mut paths = vec![CombPath::ReadyToValid {
            from: self.out,
            to: self.out,
            damped: false,
        }];
        for &ch in &self.inputs {
            paths.push(CombPath::ValidToValid {
                from: ch,
                to: self.out,
            });
            paths.push(CombPath::ReadyToReady {
                from: self.out,
                to: ch,
            });
            for &other in &self.inputs {
                // Which input wins depends on every input's valid bits,
                // including its own (i == j).
                paths.push(CombPath::ValidToReady {
                    from: other,
                    to: ch,
                });
            }
        }
        paths
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        let chosen = self.choose(ctx);
        match chosen {
            Some((i, t)) => {
                let data = ctx.data(self.inputs[i]).cloned();
                ctx.set_valid_only(self.out, t);
                ctx.set_data(self.out, data);
                let pass = ctx.ready(self.out, t);
                for (j, &ch) in self.inputs.iter().enumerate() {
                    if j == i && pass {
                        ctx.set_ready_only(ch, t);
                    } else {
                        ctx.drive_unready(ch);
                    }
                }
            }
            None => {
                ctx.drive_idle(self.out);
                for &ch in &self.inputs {
                    ctx.drive_unready(ch);
                }
            }
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        // Rotate on every offered cycle (fired or stalled) so that neither
        // input nor any thread can be starved while the output is blocked.
        let offered = ctx.valid_mask(self.out).any();
        if offered {
            self.prefer = (self.prefer + 1) % self.inputs.len();
        }
    }

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    fn reset(&mut self) -> bool {
        self.prefer = 0;
        true
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;
    use crate::meb::ReducedMeb;
    use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

    #[test]
    fn merge_interleaves_two_streams_without_loss() {
        let mut b = CircuitBuilder::<u64>::new();
        let p = b.channel("p", 1);
        let q = b.channel("q", 1);
        let y = b.channel("y", 1);
        let mut sp = Source::new("sp", p, 1);
        sp.extend(0, 0..10u64);
        let mut sq = Source::new("sq", q, 1);
        sq.extend(0, 100..110u64);
        b.add(sp);
        b.add(sq);
        b.add(Merge::new("mg", vec![p, q], y, 1));
        b.add(Sink::with_capture("snk", y, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(30).expect("clean");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        assert_eq!(snk.consumed_total(), 20);
        // Rotation gives both inputs a fair share over time.
        let vals: Vec<u64> = snk.captured(0).iter().map(|&(_, v)| v).collect();
        let from_p = vals.iter().filter(|v| **v < 100).count();
        assert_eq!(from_p, 10);
    }

    #[test]
    fn branch_merge_roundtrip_conserves_all_tokens() {
        let mut b = CircuitBuilder::<u64>::new();
        let x = b.channel("x", 1);
        let hi = b.channel("hi", 1);
        let lo = b.channel("lo", 1);
        let y = b.channel("y", 1);
        let mut src = Source::new("src", x, 1);
        src.extend(0, 0..40u64);
        b.add(src);
        b.add(crate::ops::Branch::new("br", x, hi, lo, 1, |v| v % 3 == 0));
        b.add(Merge::new("mg", vec![hi, lo], y, 1));
        b.add(Sink::with_capture(
            "snk",
            y,
            1,
            ReadyPolicy::Random { p: 0.6, seed: 9 },
        ));
        let mut circuit = b.build().expect("valid");
        circuit.set_deadlock_watchdog(Some(60));
        circuit.run(200).expect("clean");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        let mut vals: Vec<u64> = snk.captured(0).iter().map(|&(_, v)| v).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..40).collect::<Vec<_>>());
    }

    /// Two MEB-buffered paths carrying *different* threads converge: the
    /// merge must serialize them one thread per cycle (the DESIGN.md
    /// clarification) and never violate the channel invariant — the
    /// kernel would error the run if it did.
    #[test]
    fn mmerge_serializes_distinct_threads_from_two_paths() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let pa = b.channel("pa", 2);
        let pb = b.channel("pb", 2);
        let qa = b.channel("qa", 2);
        let qb = b.channel("qb", 2);
        let y = b.channel("y", 2);
        // Path P carries only thread 0; path Q only thread 1.
        let mut sp = Source::new("sp", pa, 2);
        sp.extend(0, (0..10).map(|i| Tagged::new(0, i, i)));
        let mut sq = Source::new("sq", qa, 2);
        sq.extend(1, (0..10).map(|i| Tagged::new(1, i, i)));
        b.add(sp);
        b.add(sq);
        b.add(ReducedMeb::new(
            "mp",
            pa,
            pb,
            2,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(ReducedMeb::new(
            "mq",
            qa,
            qb,
            2,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(Merge::new("mg", vec![pb, qb], y, 2));
        b.add(Sink::with_capture("snk", y, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(60).expect("invariant holds through the merge");
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        assert_eq!(snk.consumed(0), 10);
        assert_eq!(snk.consumed(1), 10);
        for t in 0..2 {
            let seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
            assert_eq!(seqs, (0..10).collect::<Vec<_>>(), "thread {t} order");
        }
    }

    #[test]
    fn merge_respects_downstream_backpressure() {
        let mut b = CircuitBuilder::<u64>::new();
        let p = b.channel("p", 1);
        let q = b.channel("q", 1);
        let y = b.channel("y", 1);
        let mut sp = Source::new("sp", p, 1);
        sp.extend(0, [1, 2]);
        let mut sq = Source::new("sq", q, 1);
        sq.extend(0, [3, 4]);
        b.add(sp);
        b.add(sq);
        b.add(Merge::new("mg", vec![p, q], y, 1));
        b.add(Sink::new("snk", y, 1, ReadyPolicy::Never));
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("clean");
        assert_eq!(circuit.stats().total_transfers(y), 0);
        assert_eq!(circuit.stats().total_transfers(p), 0);
        assert_eq!(circuit.stats().total_transfers(q), 0);
    }
}
