//! Property-based microarchitectural invariants of the MEBs, checked
//! against recorded cycle traces and slot snapshots:
//!
//! * forward latency ≥ 1 cycle (a token never appears at the output in
//!   its arrival cycle — both handshake directions are registered);
//! * per-thread FIFO order through the buffer;
//! * the reduced MEB never holds more than one thread with two items,
//!   and its shared slot is occupied exactly when some thread is FULL;
//! * storage never exceeds the architectural capacity (`2S` vs `S+1`).

use elastic_core::{ArbiterKind, FullMeb, MebKind, ReducedMeb};
use elastic_sim::{Circuit, CircuitBuilder, CycleTrace, ReadyPolicy, Sink, Source, Tagged};
use proptest::prelude::*;
use std::collections::HashMap;

struct TraceRun {
    circuit: Circuit<Tagged>,
    input: elastic_sim::ChannelId,
    output: elastic_sim::ChannelId,
}

fn run_meb(
    kind: MebKind,
    threads: usize,
    tokens: u64,
    p_ready: f64,
    seed: u64,
    cycles: u64,
) -> TraceRun {
    let mut b = CircuitBuilder::<Tagged>::new();
    let input = b.channel("in", threads);
    let output = b.channel("out", threads);
    let mut src = Source::new("src", input, threads);
    for t in 0..threads {
        src.extend(t, (0..tokens).map(|i| Tagged::new(t, i, i)));
    }
    b.add(src);
    b.add_boxed(kind.build_with::<Tagged>("meb", input, output, threads, ArbiterKind::RoundRobin));
    let mut sink = Sink::with_capture("snk", output, threads, ReadyPolicy::Always);
    for t in 0..threads {
        sink.set_policy(
            t,
            ReadyPolicy::Random {
                p: p_ready,
                seed: seed ^ (t as u64) << 7,
            },
        );
    }
    b.add(sink);
    let mut circuit = b.build().expect("valid");
    circuit.enable_trace();
    circuit.run(cycles).expect("protocol clean");
    TraceRun {
        circuit,
        input,
        output,
    }
}

/// Arrival cycle per label on `ch` (fired transfers).
fn fire_cycles(records: &[CycleTrace], ch: elastic_sim::ChannelId) -> HashMap<String, u64> {
    let mut map = HashMap::new();
    for r in records {
        let c = &r.channels[ch.index()];
        if c.fired {
            if let Some(l) = &c.label {
                map.entry(l.clone()).or_insert(r.cycle);
            }
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn forward_latency_at_least_one_cycle(
        threads in 1usize..5,
        tokens in 1u64..12,
        p_ready in 0.2f64..1.0,
        seed in any::<u64>(),
        full in any::<bool>(),
    ) {
        let kind = if full { MebKind::Full } else { MebKind::Reduced };
        let run = run_meb(kind, threads, tokens, p_ready, seed, 300);
        let records = run.circuit.trace().expect("traced").records();
        let ins = fire_cycles(records, run.input);
        let outs = fire_cycles(records, run.output);
        for (label, exit) in &outs {
            let enter = ins.get(label).expect("exited token must have entered");
            prop_assert!(
                exit > enter,
                "token {label} exited at {exit} but entered at {enter}"
            );
        }
    }

    #[test]
    fn per_thread_fifo_order(
        threads in 1usize..5,
        tokens in 1u64..12,
        p_ready in 0.2f64..1.0,
        seed in any::<u64>(),
        full in any::<bool>(),
    ) {
        let kind = if full { MebKind::Full } else { MebKind::Reduced };
        let run = run_meb(kind, threads, tokens, p_ready, seed, 400);
        let snk: &Sink<Tagged> = run.circuit.get("snk").expect("sink");
        for t in 0..threads {
            let seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
            prop_assert_eq!(&seqs, &(0..tokens).collect::<Vec<_>>(), "thread {}", t);
        }
    }

    /// Reduced MEB structural invariants, inspected from the per-cycle
    /// slot snapshots: shared occupied ⇒ its owner's main is occupied too
    /// (the FULL thread), and total occupancy ≤ S + 1.
    #[test]
    fn reduced_meb_slot_invariants(
        threads in 1usize..5,
        tokens in 1u64..12,
        p_ready in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let run = run_meb(MebKind::Reduced, threads, tokens, p_ready, seed, 300);
        let rec = run.circuit.trace().expect("traced");
        let meb_idx = rec
            .component_names()
            .iter()
            .position(|n| n == "meb")
            .expect("meb in name table");
        for record in rec.records() {
            let slots = record
                .slots
                .iter()
                .find(|(i, _)| *i == meb_idx)
                .map(|(_, s)| s)
                .expect("meb snapshots present");
            let shared_owner = slots
                .iter()
                .find(|s| s.name == "shared")
                .and_then(|s| s.occupant.as_ref())
                .map(|(t, _)| *t);
            let occupied: usize = slots.iter().filter(|s| s.occupant.is_some()).count();
            prop_assert!(occupied <= threads + 1, "occupancy {} at cycle {}", occupied, record.cycle);
            if let Some(owner) = shared_owner {
                let owner_main = slots
                    .iter()
                    .find(|s| s.name == format!("main[{owner}]"))
                    .and_then(|s| s.occupant.as_ref());
                prop_assert!(
                    owner_main.is_some(),
                    "shared owned by thread {} with empty main at cycle {}",
                    owner,
                    record.cycle
                );
            }
        }
    }

    /// Full MEB: per-thread occupancy ≤ 2 in every snapshot; aux occupied
    /// implies main occupied (the queue shifts forward).
    #[test]
    fn full_meb_slot_invariants(
        threads in 1usize..5,
        tokens in 1u64..12,
        p_ready in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let run = run_meb(MebKind::Full, threads, tokens, p_ready, seed, 300);
        let rec = run.circuit.trace().expect("traced");
        let meb_idx = rec
            .component_names()
            .iter()
            .position(|n| n == "meb")
            .expect("meb in name table");
        for record in rec.records() {
            let slots = record
                .slots
                .iter()
                .find(|(i, _)| *i == meb_idx)
                .map(|(_, s)| s)
                .expect("meb snapshots present");
            for t in 0..threads {
                let main = slots.iter().find(|s| s.name == format!("main[{t}]"));
                let aux = slots.iter().find(|s| s.name == format!("aux[{t}]"));
                let main_full = main.is_some_and(|s| s.occupant.is_some());
                let aux_full = aux.is_some_and(|s| s.occupant.is_some());
                prop_assert!(
                    !aux_full || main_full,
                    "thread {} aux occupied with empty main at cycle {}",
                    t,
                    record.cycle
                );
            }
        }
    }
}

/// Deterministic cross-check: a FullMeb and a ReducedMeb instance driven
/// by identical always-ready traffic deliver identical schedules (they
/// only differ under multi-thread stalls).
#[test]
fn identical_schedules_without_stalls() {
    let mut schedules = Vec::new();
    for kind in [MebKind::Full, MebKind::Reduced] {
        let run = run_meb(kind, 3, 8, 1.0, 0, 60);
        let records = run.circuit.trace().expect("traced").records();
        let outs: Vec<(u64, String)> = records
            .iter()
            .filter_map(|r| {
                let c = &r.channels[run.output.index()];
                if c.fired {
                    c.label.clone().map(|l| (r.cycle, l))
                } else {
                    None
                }
            })
            .collect();
        schedules.push(outs);
    }
    assert_eq!(schedules[0], schedules[1]);
}

/// Direct API cross-check of occupancy accounting.
#[test]
fn occupancy_accessors_match_reality() {
    let mut b = CircuitBuilder::<Tagged>::new();
    let input = b.channel("in", 2);
    let output = b.channel("out", 2);
    let mut src = Source::new("src", input, 2);
    src.extend(0, (0..4).map(|i| Tagged::new(0, i, i)));
    src.extend(1, (0..4).map(|i| Tagged::new(1, i, i)));
    b.add(src);
    b.add(FullMeb::new(
        "full",
        input,
        output,
        2,
        ArbiterKind::RoundRobin.build(),
    ));
    b.add(Sink::new("snk", output, 2, ReadyPolicy::Never));
    let mut c = b.build().expect("valid");
    c.run(12).expect("clean");
    let meb: &FullMeb<Tagged> = c.get("full").expect("meb");
    assert_eq!(meb.occupancy_total(), 4);
    assert_eq!(meb.occupancy(0), 2);
    assert_eq!(meb.occupancy(1), 2);

    let mut b = CircuitBuilder::<Tagged>::new();
    let input = b.channel("in", 2);
    let output = b.channel("out", 2);
    let mut src = Source::new("src", input, 2);
    src.extend(0, (0..4).map(|i| Tagged::new(0, i, i)));
    src.extend(1, (0..4).map(|i| Tagged::new(1, i, i)));
    b.add(src);
    b.add(ReducedMeb::new(
        "red",
        input,
        output,
        2,
        ArbiterKind::RoundRobin.build(),
    ));
    b.add(Sink::new("snk", output, 2, ReadyPolicy::Never));
    let mut c = b.build().expect("valid");
    c.run(12).expect("clean");
    let meb: &ReducedMeb<Tagged> = c.get("red").expect("meb");
    assert_eq!(meb.occupancy_total(), 3, "S + 1 = 3 slots");
}
