//! Fork: replication of one channel to several consumers (paper, Fig. 3
//! and Fig. 7(b)).
//!
//! Two classic control disciplines are provided:
//!
//! * **lazy** — all outputs must be ready simultaneously; the token is
//!   delivered to everybody in one cycle;
//! * **eager** — each output takes the token as soon as it is ready; a
//!   per-(output, thread) `done` bit remembers partial delivery and the
//!   input is consumed once every output has been served. Eager forks
//!   decouple slow consumers and avoid throughput loss.
//!
//! The multithreaded M-Fork is the per-thread replication of the baseline
//! fork; the `done` state is therefore indexed by thread as well.

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, NextEvent, Ports,
    ThreadMask, TickCtx, Token,
};

/// Per-token output-routing function (see [`Fork::with_route`]).
type RouteFn<T> = Box<dyn Fn(&T) -> Vec<bool> + Send>;

/// Fork control discipline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ForkMode {
    /// All-or-nothing delivery.
    Lazy,
    /// Per-output delivery with done bits (the default).
    #[default]
    Eager,
}

/// A 1-to-N fork.
///
/// # Examples
///
/// ```
/// use elastic_core::{Fork, ForkMode};
/// use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<u64>::new();
/// let x = b.channel("x", 1);
/// let y0 = b.channel("y0", 1);
/// let y1 = b.channel("y1", 1);
/// let mut src = Source::new("src", x, 1);
/// src.extend(0, [5, 6]);
/// b.add(src);
/// b.add(Fork::new("f", x, vec![y0, y1], 1, ForkMode::Eager));
/// b.add(Sink::with_capture("s0", y0, 1, ReadyPolicy::Always));
/// b.add(Sink::with_capture("s1", y1, 1, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(5)?;
/// let s0: &Sink<u64> = circuit.get("s0").expect("sink");
/// assert_eq!(s0.consumed_total(), 2);
/// # Ok(())
/// # }
/// ```
pub struct Fork<T: Token> {
    name: String,
    inp: ChannelId,
    outputs: Vec<ChannelId>,
    threads: usize,
    mode: ForkMode,
    /// `done[o]` bit `t`: output `o` has already received thread `t`'s
    /// current token (eager mode only).
    done: Vec<ThreadMask>,
    /// Optional per-token routing: outputs whose mask entry is `false` do
    /// not receive the token (they are treated as already done).
    route: Option<RouteFn<T>>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Token> Fork<T> {
    /// A fork from `inp` to `outputs`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two outputs are given.
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        outputs: Vec<ChannelId>,
        threads: usize,
        mode: ForkMode,
    ) -> Self {
        assert!(outputs.len() >= 2, "a fork needs at least two outputs");
        let n = outputs.len();
        Self {
            name: name.into(),
            inp,
            outputs,
            threads,
            mode,
            done: vec![ThreadMask::new(threads); n],
            route: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Makes the fork *routing*: `f` returns, per token, which outputs
    /// receive it (`true` entries). A token routed to a single output
    /// behaves like a demultiplexed branch; a token routed to several
    /// outputs is replicated to exactly those. Only meaningful in
    /// [`ForkMode::Eager`].
    ///
    /// # Panics
    ///
    /// The component panics during simulation if `f` returns a mask whose
    /// length differs from the output count, or an all-`false` mask (the
    /// token could never be consumed and the pipeline would wedge).
    #[must_use]
    pub fn with_route(mut self, f: impl Fn(&T) -> Vec<bool> + Send + 'static) -> Self {
        self.route = Some(Box::new(f));
        self
    }

    /// The fork's control discipline.
    pub fn mode(&self) -> ForkMode {
        self.mode
    }

    /// Routing mask for the current token; `None` means "all outputs"
    /// (the common non-routing case, which allocates nothing).
    fn route_mask(&self, token: Option<&T>) -> Option<Vec<bool>> {
        let mask = self.route.as_ref()?(token?);
        assert_eq!(mask.len(), self.outputs.len(), "route mask length mismatch");
        assert!(
            mask.iter().any(|&m| m),
            "route mask must select at least one output"
        );
        Some(mask)
    }
}

impl<T: Token> Component<T> for Fork<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Route
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], self.outputs.clone())
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        let mut paths = Vec::new();
        match self.mode {
            ForkMode::Lazy => {
                // valid(out_o) = valid(inp) ∧ ready(every other output);
                // ready(inp) = ready(every output).
                for (o, &out) in self.outputs.iter().enumerate() {
                    paths.push(CombPath::ValidToValid {
                        from: self.inp,
                        to: out,
                    });
                    for (p, &other) in self.outputs.iter().enumerate() {
                        if p != o {
                            paths.push(CombPath::ReadyToValid {
                                from: other,
                                to: out,
                                damped: false,
                            });
                        }
                    }
                    paths.push(CombPath::ReadyToReady {
                        from: out,
                        to: self.inp,
                    });
                }
            }
            ForkMode::Eager => {
                // valid(out_o) = valid(inp) ∧ ¬done; ready(inp) reads the
                // offered thread (valid(inp) itself, for routing) plus
                // every output's ready.
                for &out in &self.outputs {
                    paths.push(CombPath::ValidToValid {
                        from: self.inp,
                        to: out,
                    });
                    paths.push(CombPath::ReadyToReady {
                        from: out,
                        to: self.inp,
                    });
                }
                paths.push(CombPath::ValidToReady {
                    from: self.inp,
                    to: self.inp,
                });
            }
        }
        paths
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        let data = ctx.data(self.inp).cloned();
        match self.mode {
            ForkMode::Lazy => {
                for t in 0..self.threads {
                    let vin = ctx.valid(self.inp, t);
                    for (o, &out) in self.outputs.iter().enumerate() {
                        let others_ready = self
                            .outputs
                            .iter()
                            .enumerate()
                            .filter(|&(p, _)| p != o)
                            .all(|(_, &q)| ctx.ready(q, t));
                        ctx.set_valid(out, t, vin && others_ready);
                    }
                    let all_ready = self.outputs.iter().all(|&q| ctx.ready(q, t));
                    ctx.set_ready(self.inp, t, all_ready);
                }
            }
            ForkMode::Eager => {
                let mask = self.route_mask(data.as_ref());
                let routed = |o: usize| mask.as_ref().is_none_or(|m| m[o]);
                let offered = ctx.valid_mask(self.inp).first_one();
                for t in 0..self.threads {
                    let vin = ctx.valid(self.inp, t);
                    for (o, &out) in self.outputs.iter().enumerate() {
                        ctx.set_valid(out, t, vin && routed(o) && !self.done[o].get(t));
                    }
                    // Input consumed once every (routed) output is done or
                    // accepting. The mask belongs to the *offered* token;
                    // for any other thread the data bus does not hold its
                    // token, so answer conservatively as if it routed to
                    // every output — a conservative ready can only be
                    // upgraded once the thread is offered, which keeps the
                    // upstream selection from chasing a false ready.
                    let use_mask = offered == Some(t);
                    let all_served = (0..self.outputs.len()).all(|o| {
                        (use_mask && !routed(o))
                            || self.done[o].get(t)
                            || ctx.ready(self.outputs[o], t)
                    });
                    ctx.set_ready(self.inp, t, all_served);
                }
            }
        }
        for &out in &self.outputs {
            ctx.set_data(out, data.clone());
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        if self.mode == ForkMode::Lazy {
            return;
        }
        for t in 0..self.threads {
            if ctx.fired(self.inp, t) {
                // Token fully delivered: clear this thread's done bits.
                for d in &mut self.done {
                    d.set(t, false);
                }
            } else if ctx.valid(self.inp, t) {
                // Partial delivery: latch which outputs took it.
                for (o, &out) in self.outputs.iter().enumerate() {
                    if ctx.fired(out, t) {
                        self.done[o].set(t, true);
                    }
                }
            }
        }
    }

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    fn reset(&mut self) -> bool {
        for d in &mut self.done {
            d.clear();
        }
        true
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eb::ElasticBuffer;
    use elastic_sim::{Circuit, CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

    fn fork_fixture(mode: ForkMode, p0: ReadyPolicy, p1: ReadyPolicy) -> Circuit<u64> {
        let mut b = CircuitBuilder::<u64>::new();
        let x = b.channel("x", 1);
        let y0 = b.channel("y0", 1);
        let y1 = b.channel("y1", 1);
        let mut src = Source::new("src", x, 1);
        src.extend(0, 0..10u64);
        b.add(src);
        b.add(Fork::new("f", x, vec![y0, y1], 1, mode));
        b.add(Sink::with_capture("s0", y0, 1, p0));
        b.add(Sink::with_capture("s1", y1, 1, p1));
        b.build().expect("valid")
    }

    #[test]
    fn lazy_fork_delivers_to_all_simultaneously() {
        let mut c = fork_fixture(ForkMode::Lazy, ReadyPolicy::Always, ReadyPolicy::Always);
        c.run(15).expect("clean");
        let s0: &Sink<u64> = c.get("s0").expect("s0");
        let s1: &Sink<u64> = c.get("s1").expect("s1");
        assert_eq!(s0.consumed(0), 10);
        assert_eq!(s1.consumed(0), 10);
        // Same arrival cycles on both branches.
        let c0: Vec<u64> = s0.captured(0).iter().map(|&(c, _)| c).collect();
        let c1: Vec<u64> = s1.captured(0).iter().map(|&(c, _)| c).collect();
        assert_eq!(c0, c1);
    }

    #[test]
    fn lazy_fork_is_blocked_by_slowest_branch() {
        let mut c = fork_fixture(
            ForkMode::Lazy,
            ReadyPolicy::Always,
            ReadyPolicy::Period {
                on: 1,
                off: 3,
                phase: 0,
            },
        );
        c.run(60).expect("clean");
        let s0: &Sink<u64> = c.get("s0").expect("s0");
        let s1: &Sink<u64> = c.get("s1").expect("s1");
        // Both branches advance in lock-step at the slow branch's rate.
        assert_eq!(s0.consumed(0), s1.consumed(0));
        assert_eq!(s0.consumed(0), 10);
    }

    #[test]
    fn eager_fork_lets_fast_branch_run_ahead_by_one_token() {
        let mut c = fork_fixture(ForkMode::Eager, ReadyPolicy::Always, ReadyPolicy::Never);
        c.run(10).expect("clean");
        let s0: &Sink<u64> = c.get("s0").expect("s0");
        let s1: &Sink<u64> = c.get("s1").expect("s1");
        // The fast branch received the head token; the input then waits
        // for the blocked branch (done bit set, no duplication).
        assert_eq!(s0.consumed(0), 1);
        assert_eq!(s1.consumed(0), 0);
    }

    #[test]
    fn eager_fork_never_duplicates_or_reorders() {
        let mut c = fork_fixture(
            ForkMode::Eager,
            ReadyPolicy::Random { p: 0.5, seed: 1 },
            ReadyPolicy::Random { p: 0.3, seed: 2 },
        );
        c.run(200).expect("clean");
        for s in ["s0", "s1"] {
            let snk: &Sink<u64> = c.get(s).expect("sink");
            let vals: Vec<u64> = snk.captured(0).iter().map(|&(_, v)| v).collect();
            assert_eq!(vals, (0..10u64).collect::<Vec<_>>(), "{s} stream corrupted");
        }
    }

    /// M-Fork: per-thread done bits mean a stalled thread on one branch
    /// does not corrupt another thread's delivery.
    #[test]
    fn mfork_tracks_done_bits_per_thread() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let x0 = b.channel("x0", 2);
        let x1 = b.channel("x1", 2);
        let y0 = b.channel("y0", 2);
        let y1 = b.channel("y1", 2);
        let mut src = Source::new("src", x0, 2);
        for t in 0..2 {
            src.extend(t, (0..6).map(|i| Tagged::new(t, i, i)));
        }
        b.add(src);
        b.add(crate::meb::ReducedMeb::new(
            "meb",
            x0,
            x1,
            2,
            crate::arbiter::ArbiterKind::RoundRobin.build(),
        ));
        b.add(Fork::new("f", x1, vec![y0, y1], 2, ForkMode::Eager));
        // Branch y1 blocks thread 0 for a while; thread 1 must keep moving
        // on both branches.
        let mut s1 = Sink::with_capture("s1", y1, 2, ReadyPolicy::Always);
        s1.set_policy(0, ReadyPolicy::StallWindow { from: 0, to: 20 });
        b.add(Sink::with_capture("s0", y0, 2, ReadyPolicy::Always));
        b.add(s1);
        let mut circuit = b.build().expect("valid");
        circuit.set_deadlock_watchdog(Some(60));
        circuit.run(100).expect("clean");
        for s in ["s0", "s1"] {
            let snk: &Sink<Tagged> = circuit.get(s).expect("sink");
            for t in 0..2 {
                let seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
                assert_eq!(seqs, (0..6).collect::<Vec<_>>(), "{s} thread {t}");
            }
        }
    }

    /// A routing fork sends each token to exactly the outputs its mask
    /// selects — and to several when the mask says so.
    #[test]
    fn routing_fork_demultiplexes_and_replicates() {
        let mut b = CircuitBuilder::<u64>::new();
        let x = b.channel("x", 1);
        let y0 = b.channel("y0", 1);
        let y1 = b.channel("y1", 1);
        let mut src = Source::new("src", x, 1);
        src.extend(0, 0..9u64);
        b.add(src);
        // Multiples of 3 go to both outputs, even → y0, odd → y1.
        b.add(
            Fork::new("f", x, vec![y0, y1], 1, ForkMode::Eager).with_route(|v: &u64| {
                if v.is_multiple_of(3) {
                    vec![true, true]
                } else {
                    vec![v.is_multiple_of(2), !v.is_multiple_of(2)]
                }
            }),
        );
        b.add(Sink::with_capture("s0", y0, 1, ReadyPolicy::Always));
        b.add(Sink::with_capture("s1", y1, 1, ReadyPolicy::Always));
        let mut c = b.build().expect("valid");
        c.run(20).expect("clean");
        let s0: &Sink<u64> = c.get("s0").expect("s0");
        let s1: &Sink<u64> = c.get("s1").expect("s1");
        let v0: Vec<u64> = s0.captured(0).iter().map(|&(_, v)| v).collect();
        let v1: Vec<u64> = s1.captured(0).iter().map(|&(_, v)| v).collect();
        assert_eq!(v0, vec![0, 2, 3, 4, 6, 8]);
        assert_eq!(v1, vec![0, 1, 3, 5, 6, 7]);
    }

    /// A fork inside an EB-bounded stage sustains full throughput when
    /// both branches are free-flowing (eager mode).
    #[test]
    fn eager_fork_full_throughput_between_ebs() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let x = b.channel("x", 1);
        let y0 = b.channel("y0", 1);
        let y1 = b.channel("y1", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, 0..50u64);
        b.add(src);
        b.add(ElasticBuffer::new("eb", a, x));
        b.add(Fork::new("f", x, vec![y0, y1], 1, ForkMode::Eager));
        b.add(Sink::new("s0", y0, 1, ReadyPolicy::Always));
        b.add(Sink::new("s1", y1, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(56).expect("clean");
        assert_eq!(circuit.stats().total_transfers(y0), 50);
        assert_eq!(circuit.stats().total_transfers(y1), 50);
    }
}
