//! Static design checks over the structural IR of every example design —
//! the CI gate that runs *before* any simulation: protocol lint (thread
//! widths, arities, single driver/reader per channel), cycle-cover lint
//! (every loop cut by an EB/MEB/latency unit), and a golden-file check on
//! the GCD circuit's DOT rendering.
//!
//! ```text
//! cargo run --release -p elastic-bench --bin design_lint            # check
//! cargo run --release -p elastic-bench --bin design_lint -- --write # regenerate golden
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use elastic_md5::Md5Circuit;
use elastic_proc::Cpu;
use elastic_sim::Token;
use elastic_synth::{DataflowBuilder, ElasticIr, OpLatency, PassManager, PassReport, SynthConfig};

/// Repo-relative path of the committed golden DOT file.
const GOLDEN: &str = "golden/gcd_circuit.dot";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../{GOLDEN}"))
}

/// The GCD loop of `examples/gcd_synthesis.rs`, stopped at the IR stage.
fn gcd_ir(threads: usize) -> ElasticIr<(u64, u64)> {
    let mut g = DataflowBuilder::<(u64, u64)>::new(threads);
    let fresh = g.input("pairs");
    let looped = g.input("loop");
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Fixed(1), cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step).expect("loop closes");
    g.build_ir(SynthConfig::default())
        .expect("gcd graph builds")
        .ir
}

fn render(design: &str, reports: &[PassReport]) {
    for r in reports {
        println!(
            "  {design:<10} {:<14} checked {:>3} entities, rewrote {:>2} nodes",
            r.pass, r.checked, r.changed
        );
    }
}

fn lint<T: Token>(design: &str, ir: &mut ElasticIr<T>) -> bool {
    match PassManager::lint_suite().run(ir) {
        Ok(reports) => {
            render(design, &reports);
            true
        }
        Err(e) => {
            eprintln!("  {design:<10} FAILED: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let write = std::env::args().any(|a| a == "--write");
    let mut ok = true;

    println!("design lints (protocol + cycle cover):");
    let mut gcd = gcd_ir(4);
    ok &= lint("gcd", &mut gcd);
    let mut md5 = Md5Circuit::ir(8, 8, 1);
    ok &= lint("md5", &mut md5.ir);
    let mut md5_piped = Md5Circuit::ir(8, 8, 4);
    ok &= lint("md5x4", &mut md5_piped.ir);
    let mut cpu = Cpu::cost_ir(8);
    ok &= lint("processor", &mut cpu.ir);

    let dot = gcd.to_dot();
    let path = golden_path();
    if write {
        std::fs::write(&path, &dot).expect("golden file is writable");
        println!("wrote {GOLDEN} ({} bytes)", dot.len());
    } else {
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == dot => {
                println!("golden DOT check: {GOLDEN} matches ({} bytes)", dot.len());
            }
            Ok(_) => {
                eprintln!(
                    "golden DOT check FAILED: {GOLDEN} is stale — rerun with --write \
                     and commit the diff"
                );
                ok = false;
            }
            Err(e) => {
                eprintln!("golden DOT check FAILED: cannot read {GOLDEN}: {e}");
                ok = false;
            }
        }
    }

    if ok {
        println!("all design checks passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
