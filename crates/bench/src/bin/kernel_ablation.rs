//! Old-vs-new simulation kernel ablation: the exhaustive settle sweep
//! (the original kernel, kept as [`EvalMode::Exhaustive`]) against the
//! event-driven dirty-set kernel (`EvalMode::EventDriven`, the default),
//! on the paper's two reference workloads:
//!
//! 1. the Figure 5 pipeline (2 threads, 2 MEB stages, thread B stalled
//!    for a window), for both full and reduced MEBs;
//! 2. the Sec. V-A elastic MD5 circuit (8 threads, one message each).
//!
//! For every workload the two kernels must produce bit-identical sink
//! captures / digests and cycle counts — the ablation asserts this —
//! while the table shows how many `Component::eval` calls the dirty-set
//! worklist and the quiescence fast-path avoid.
//!
//! ```text
//! cargo run --release --bin kernel_ablation
//! ```

use elastic_bench::Fig5Setup;
use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
use elastic_md5::Md5Hasher;
use elastic_sim::{EvalMode, KernelStats, ReadyPolicy};

fn header() {
    println!(
        "{:<26} {:<12} {:>8} {:>8} {:>10} {:>8} {:>9}",
        "workload", "kernel", "evals", "rounds", "evals/cyc", "skipped", "quiesced"
    );
    println!("{}", "-".repeat(86));
}

fn row(workload: &str, mode: EvalMode, k: &KernelStats) {
    println!(
        "{:<26} {:<12} {:>8} {:>8} {:>10.2} {:>8} {:>9}",
        workload,
        format!("{mode:?}"),
        k.component_evals,
        k.settle_rounds,
        k.evals_per_cycle(),
        k.components_skipped,
        k.quiesced_cycles
    );
}

fn saving(old: &KernelStats, new: &KernelStats) {
    let pct = 100.0 * (1.0 - new.component_evals as f64 / old.component_evals as f64);
    println!("{:>39}  → {pct:.1}% fewer evals\n", "");
}

/// Runs the Figure 5 scenario under `mode` and returns the per-thread
/// captures plus kernel counters.
fn run_fig5(kind: MebKind, mode: EvalMode) -> (Vec<Vec<(u64, u64)>>, KernelStats) {
    let setup = Fig5Setup::paper(kind);
    let cfg = PipelineConfig::free_flowing(2, setup.stages, kind, setup.tokens_per_thread)
        .with_sink_policy(
            1,
            ReadyPolicy::StallWindow {
                from: setup.stall_from,
                to: setup.stall_to,
            },
        )
        .with_eval_mode(mode);
    let mut h = PipelineHarness::build(cfg);
    h.circuit
        .run(setup.cycles)
        .expect("fig5 pipeline runs clean");
    let captures = (0..2)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    (captures, *h.circuit.stats().kernel())
}

/// A longer random-stall pipeline where the dirty-set savings compound.
fn run_stalled(mode: EvalMode) -> (Vec<Vec<(u64, u64)>>, KernelStats) {
    const THREADS: usize = 4;
    let mut cfg =
        PipelineConfig::free_flowing(THREADS, 4, MebKind::Reduced, 64).with_eval_mode(mode);
    for t in 0..THREADS {
        cfg.sink_policies[t] = ReadyPolicy::Random {
            p: 0.4,
            seed: 0xA5A5 ^ t as u64,
        };
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(1_200).expect("stalled pipeline runs clean");
    let captures = (0..THREADS)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    (captures, *h.circuit.stats().kernel())
}

fn main() {
    header();

    for kind in [MebKind::Full, MebKind::Reduced] {
        let (oracle_cap, oracle) = run_fig5(kind, EvalMode::Exhaustive);
        let (fast_cap, fast) = run_fig5(kind, EvalMode::EventDriven);
        assert_eq!(
            oracle_cap, fast_cap,
            "fig5({kind}) captures diverged between kernels"
        );
        let name = format!("fig5 ({kind})");
        row(&name, EvalMode::Exhaustive, &oracle);
        row(&name, EvalMode::EventDriven, &fast);
        saving(&oracle, &fast);
    }

    {
        let (oracle_cap, oracle) = run_stalled(EvalMode::Exhaustive);
        let (fast_cap, fast) = run_stalled(EvalMode::EventDriven);
        assert_eq!(
            oracle_cap, fast_cap,
            "stalled-pipeline captures diverged between kernels"
        );
        row("4t/4s random stalls", EvalMode::Exhaustive, &oracle);
        row("4t/4s random stalls", EvalMode::EventDriven, &fast);
        saving(&oracle, &fast);
    }

    {
        let msgs: Vec<Vec<u8>> = (0..8)
            .map(|i| format!("kernel ablation message {i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let run = |mode| {
            Md5Hasher::new(8, MebKind::Reduced)
                .with_eval_mode(mode)
                .hash_messages_instrumented(&refs)
                .expect("md5 circuit hashes")
        };
        let (d_oracle, c_oracle, oracle) = run(EvalMode::Exhaustive);
        let (d_fast, c_fast, fast) = run(EvalMode::EventDriven);
        assert_eq!(d_oracle, d_fast, "md5 digests diverged between kernels");
        assert_eq!(
            c_oracle, c_fast,
            "md5 cycle counts diverged between kernels"
        );
        row("md5 (8t, reduced)", EvalMode::Exhaustive, &oracle);
        row("md5 (8t, reduced)", EvalMode::EventDriven, &fast);
        saving(&oracle, &fast);
    }

    println!(
        "identical captures/digests in every pair — the dirty-set kernel is\n\
         observationally equivalent to the exhaustive oracle (docs/kernel.md)."
    );
}
