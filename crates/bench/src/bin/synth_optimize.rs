//! Closed-loop transform autotuner: sim + cost feedback drives the
//! transforming pass pipeline.
//!
//! For each design (the GCD loop, the MD5 round pipeline, the
//! processor) the tuner runs a greedy accept/reject loop:
//!
//! 1. **Measure** the current netlist — a full simulation yields a
//!    per-thread capture digest (the exhaustive oracle), the cycle
//!    count, and a [`FeedbackProfile`] of per-channel occupancy
//!    histograms; `Inventory::from_ir` yields the LE count.
//! 2. **Propose** candidates from the transforming passes:
//!    [`MebDepthSizing`] (data-driven FIFO depths), [`SlackMatching`]
//!    (buffers on unbalanced reconvergent paths), [`Retiming`] (every
//!    legal buffer/transform commute). Each candidate is one replayable
//!    [`TransformSpec`].
//! 3. **Evaluate** all candidates of a round in parallel through the
//!    memoizing [`SweepService`] — each job rebuilds the IR from the
//!    factory, replays the accepted specs plus the candidate, lints,
//!    elaborates and simulates. Jobs are keyed by
//!    `campaign_key(structural_hash, design, seed)`, so re-proposed
//!    structures answer from the campaign cache.
//! 4. **Accept** the best candidate iff its capture digest is
//!    byte-identical to the baseline oracle AND its (cycles, LEs) point
//!    is non-dominated and strictly improves one axis. Every applied
//!    spec is delta-checked: the re-derived inventory must move by
//!    exactly [`expected_les_delta`] of the pass's reported
//!    [`PassDelta`]s.
//!
//! Output: `BENCH_autotune.json` with the per-design pareto front, plus
//! a delta-highlighted DOT of the accepted GCD transforms.
//!
//! ```text
//! cargo run --release -p elastic-bench --bin synth_optimize
//! cargo run --release -p elastic-bench --bin synth_optimize -- --smoke
//! ```
//!
//! `--smoke` tunes only the backpressured GCD loop on a tiny budget and
//! exits non-zero unless at least one transform was accepted with a
//! byte-identical digest — the CI leg.

use std::collections::HashSet;
use std::process::ExitCode;
use std::sync::Arc;

use elastic_core::MebKind;
use elastic_cost::{expected_les_delta, Inventory};
use elastic_md5::Md5Token;
use elastic_proc::{programs, Cpu, CpuConfig, Fetcher, RegUnit, NUM_REGS};
use elastic_sim::{
    campaign_key, Circuit, FeedbackProfile, ReadyPolicy, SimError, SimJob, Sink, Source,
    SweepService, Token,
};
use elastic_synth::{
    dot_with_deltas, ElasticIr, IrNodeKind, IrNodeTag, MebDepthSizing, Pass, PassDelta,
    PassManager, RetimeDirection, Retiming, SlackMatching, TransformSpec,
};

/// FNV-1a over a byte stream — the digest the exhaustive oracle is
/// compared with, bit for bit.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn word(&mut self, w: u64) {
        self.eat(&w.to_le_bytes());
    }
}

/// One measured design point.
#[derive(Clone)]
struct EvalOut {
    digest: u64,
    cycles: u64,
    les: u64,
    profile: FeedbackProfile,
}

/// A measured candidate with the spec that produced it (`None` for the
/// baseline).
#[derive(Clone)]
struct PointRecord {
    spec: Option<String>,
    accepted: bool,
    digest_ok: bool,
    cycles: u64,
    les: u64,
}

/// Everything the tuner needs to know about one design, type-erased
/// over its token.
struct TuneTarget<T: Token> {
    name: &'static str,
    /// Work units completed per run (constant across candidates, so
    /// throughput comparisons reduce to cycle comparisons).
    work: u64,
    factory: Arc<dyn Fn() -> ElasticIr<T> + Send + Sync>,
    drive: Arc<DriveFn<T>>,
}

/// Runs one built circuit to completion and returns its capture digest.
type DriveFn<T> = dyn Fn(&mut Circuit<T>) -> Result<u64, SimError> + Send + Sync;

/// The per-design tuning outcome, ready for JSON rendering.
struct DesignResult {
    name: &'static str,
    work: u64,
    baseline: (u64, u64, u64),         // digest, cycles, les
    accepted: Vec<(String, u64, u64)>, // spec, cycles, les
    points: Vec<PointRecord>,
    candidates_tried: usize,
    cache_hits: u64,
    /// Delta-highlighted DOT of the final netlist (accepted transforms).
    dot: Option<String>,
}

fn rebuild<T: Token>(
    factory: &Arc<dyn Fn() -> ElasticIr<T> + Send + Sync>,
    specs: &[TransformSpec],
) -> Result<(ElasticIr<T>, Vec<PassDelta>), String> {
    let mut ir = factory();
    let mut deltas = Vec::new();
    for spec in specs {
        let report = spec
            .apply(&mut ir)
            .map_err(|e| format!("replay `{}`: {e}", spec.describe()))?;
        deltas.extend(report.deltas);
    }
    Ok((ir, deltas))
}

/// Builds the keyed evaluation job for `specs` applied to a fresh
/// build. The structural hash, LE count and cost delta-check happen
/// here, on a scratch build; the job itself rebuilds (the IR's boxed
/// closures stay off the queue) and simulates.
fn make_job<T: Token>(
    target: &TuneTarget<T>,
    specs: Vec<TransformSpec>,
    label: String,
) -> Result<SimJob<EvalOut>, String> {
    let (mut scratch, _) = rebuild(&target.factory, &specs)?;
    PassManager::lint_suite()
        .run(&mut scratch)
        .map_err(|e| format!("lint: {e}"))?;
    let les = Inventory::from_ir(&scratch).total_les() as u64;
    let mut cfg = Fnv::new();
    cfg.eat(target.name.as_bytes());
    let key = campaign_key(scratch.structural_hash(), cfg.0, 0);

    let factory = Arc::clone(&target.factory);
    let drive = Arc::clone(&target.drive);
    let job = SimJob::instrumented(label, move || {
        let (ir, _) = rebuild(&factory, &specs).expect("specs replay on a fresh build");
        let e = ir.elaborate().expect("validated IR elaborates");
        let mut circuit = e.circuit;
        let digest = drive(&mut circuit)?;
        let kernel = *circuit.stats().kernel();
        Ok((
            EvalOut {
                digest,
                cycles: circuit.cycle(),
                les,
                profile: circuit.stats().feedback_profile(),
            },
            kernel,
        ))
    })
    .with_cache_key(key);
    Ok(job)
}

/// Asserts that re-deriving the inventory across `spec` moves the LE
/// count by exactly what the pass's deltas predict.
fn delta_check<T: Token>(
    target: &TuneTarget<T>,
    accepted: &[TransformSpec],
    spec: &TransformSpec,
) -> Result<(), String> {
    let (mut ir, _) = rebuild(&target.factory, accepted)?;
    let before = Inventory::from_ir(&ir).total_les() as i64;
    let report = spec.apply(&mut ir).map_err(|e| e.to_string())?;
    let after = Inventory::from_ir(&ir).total_les() as i64;
    let predicted = expected_les_delta(&report.deltas);
    if after - before != predicted {
        return Err(format!(
            "cost delta-check failed for `{}`: inventory moved {} LEs, deltas predict {}",
            spec.describe(),
            after - before,
            predicted
        ));
    }
    Ok(())
}

/// Proposes candidate specs for the current netlist: depth sizing from
/// the measured profile, slack matching, and every legal retime.
fn propose<T: Token>(
    target: &TuneTarget<T>,
    accepted: &[TransformSpec],
    profile: &FeedbackProfile,
) -> Vec<TransformSpec> {
    let mut cands = Vec::new();

    if let Ok((mut ir, _)) = rebuild(&target.factory, accepted) {
        if let Ok(report) = MebDepthSizing::new(profile.clone())
            .converting()
            .run(&mut ir)
        {
            cands.extend(report.deltas.iter().map(TransformSpec::from_delta));
        }
    }
    if let Ok((mut ir, _)) = rebuild(&target.factory, accepted) {
        if let Ok(report) = SlackMatching::new(MebKind::Reduced).run(&mut ir) {
            cands.extend(report.deltas.iter().map(TransformSpec::from_delta));
        }
    }
    if let Ok((ir, _)) = rebuild(&target.factory, accepted) {
        let buffers: Vec<String> = ir
            .nodes()
            .filter(|n| matches!(n.tag(), IrNodeTag::Eb | IrNodeTag::Meb(_)))
            .map(|n| n.name().to_string())
            .collect();
        for name in buffers {
            for dir in [RetimeDirection::Forward, RetimeDirection::Backward] {
                let Ok((mut scratch, _)) = rebuild(&target.factory, accepted) else {
                    continue;
                };
                if Retiming::new(name.clone(), dir).run(&mut scratch).is_ok()
                    && PassManager::lint_suite().run(&mut scratch).is_ok()
                {
                    cands.push(TransformSpec::Retime {
                        node: name.clone(),
                        direction: dir,
                    });
                }
            }
        }
    }
    cands
}

/// The greedy accept/reject loop for one design.
fn tune<T: Token>(
    target: &TuneTarget<T>,
    service: &SweepService<EvalOut>,
    rounds: usize,
) -> Result<DesignResult, String> {
    let base_job = make_job(target, Vec::new(), format!("{}:baseline", target.name))?;
    let base_report = service.run(vec![base_job]);
    let baseline = base_report.jobs[0]
        .outcome
        .as_ref()
        .map_err(|e| format!("{} baseline failed: {e:?}", target.name))?
        .clone();
    println!(
        "[{}] baseline: {} cycles, {} LEs, digest {:016x}",
        target.name, baseline.cycles, baseline.les, baseline.digest
    );

    let mut accepted: Vec<TransformSpec> = Vec::new();
    let mut current = baseline.clone();
    let mut points = vec![PointRecord {
        spec: None,
        accepted: true,
        digest_ok: true,
        cycles: baseline.cycles,
        les: baseline.les,
    }];
    let mut accepted_log: Vec<(String, u64, u64)> = Vec::new();
    let mut tried: HashSet<String> = HashSet::new();
    let mut candidates_tried = 0usize;
    let mut cache_hits = 0u64;

    for round in 0..rounds {
        let cands: Vec<TransformSpec> = propose(target, &accepted, &current.profile)
            .into_iter()
            .filter(|c| tried.insert(c.describe()))
            .collect();
        if cands.is_empty() {
            break;
        }
        // Validate structurally (replay + lint + cost delta-check) and
        // build one keyed job per surviving candidate.
        let mut jobs = Vec::new();
        let mut job_specs = Vec::new();
        for cand in cands {
            // A lying pass is a bug, not a bad point — hard error.
            delta_check(target, &accepted, &cand)?;
            let mut specs = accepted.clone();
            specs.push(cand.clone());
            match make_job(
                target,
                specs,
                format!("{}:{}", target.name, cand.describe()),
            ) {
                Ok(job) => {
                    jobs.push(job);
                    job_specs.push(cand);
                }
                // Candidates that fail to replay or lint are dropped.
                Err(_) => continue,
            }
        }
        if jobs.is_empty() {
            break;
        }
        candidates_tried += job_specs.len();
        let report = service.run(jobs);
        cache_hits += report.cache_hits;

        // Pick the accepted candidate greedily: digest-identical,
        // non-dominated vs the current point, strictly better on one
        // axis; ties broken toward fewer cycles then fewer LEs.
        let mut best: Option<(usize, EvalOut)> = None;
        for (i, job) in report.jobs.iter().enumerate() {
            let Ok(out) = &job.outcome else {
                points.push(PointRecord {
                    spec: Some(job_specs[i].describe()),
                    accepted: false,
                    digest_ok: false,
                    cycles: 0,
                    les: 0,
                });
                continue;
            };
            let digest_ok = out.digest == baseline.digest;
            let dominates = out.cycles <= current.cycles
                && out.les <= current.les
                && (out.cycles < current.cycles || out.les < current.les);
            points.push(PointRecord {
                spec: Some(job_specs[i].describe()),
                accepted: false,
                digest_ok,
                cycles: out.cycles,
                les: out.les,
            });
            if digest_ok && dominates {
                let better = match &best {
                    None => true,
                    Some((_, b)) => (out.cycles, out.les) < (b.cycles, b.les),
                };
                if better {
                    best = Some((i, out.clone()));
                }
            }
        }
        let Some((i, out)) = best else {
            println!(
                "[{}] round {round}: no candidate survived ({} tried)",
                target.name,
                report.jobs.len()
            );
            break;
        };
        let spec = job_specs[i].clone();
        println!(
            "[{}] round {round}: accept `{}` — {} -> {} cycles, {} -> {} LEs (digest identical)",
            target.name,
            spec.describe(),
            current.cycles,
            out.cycles,
            current.les,
            out.les
        );
        for p in points.iter_mut().rev() {
            if p.spec.as_deref() == Some(spec.describe().as_str()) {
                p.accepted = true;
                break;
            }
        }
        accepted_log.push((spec.describe(), out.cycles, out.les));
        accepted.push(spec);
        current = out;
        // The netlist changed: candidates rejected against the old
        // structure are worth re-proposing against the new one (the
        // campaign cache absorbs any true repeats).
        tried.clear();
    }

    // Delta-highlighted DOT of everything the tuner changed.
    let dot = rebuild(&target.factory, &accepted)
        .ok()
        .map(|(ir, deltas)| dot_with_deltas(&ir, &deltas));

    Ok(DesignResult {
        name: target.name,
        work: target.work,
        baseline: (baseline.digest, baseline.cycles, baseline.les),
        accepted: accepted_log,
        points,
        candidates_tried,
        cache_hits,
        dot,
    })
}

// ---------------------------------------------------------------- GCD

type GcdTok = (u64, u64);

/// Euclid's GCD loop with width-annotated channels and a periodically
/// stalling consumer: merge -> branch -> step -> MEB -> back, one
/// problem in flight per thread so completion order (and therefore the
/// oracle digest) is buffer-placement-invariant. The half-duty sink is
/// the backpressure source the depth-sizing pass feeds on.
fn gcd_full_ir(threads: usize) -> ElasticIr<GcdTok> {
    use elastic_core::ArbiterKind;
    let meb = || IrNodeKind::Meb {
        kind: MebKind::Reduced,
        arbiter: ArbiterKind::RoundRobin,
        initial: Vec::new(),
        auto: true,
    };
    let mut ir = ElasticIr::<GcdTok>::new();
    let fresh = ir.channel_with_width("pairs", threads, 128);
    let loopback = ir.channel_with_width("loopback", threads, 128);
    let into = ir.channel_with_width("into", threads, 128);
    let head = ir.channel_with_width("head", threads, 128);
    let done = ir.channel_with_width("gcd", threads, 64);
    let stepped = ir.channel_with_width("stepped", threads, 128);
    let buffered = ir.channel_with_width("buffered", threads, 128);
    ir.add("feeder", IrNodeKind::Source, vec![], vec![fresh]);
    ir.add(
        "entry",
        IrNodeKind::Merge,
        vec![fresh, loopback],
        vec![into],
    );
    ir.add("loop_buf", meb(), vec![into], vec![head]);
    ir.add(
        "done?",
        IrNodeKind::Branch {
            cond: Box::new(|&(a, b): &GcdTok| a == b),
        },
        vec![head],
        vec![done, stepped],
    );
    ir.add(
        "step",
        IrNodeKind::Transform {
            f: Box::new(|&(a, b): &GcdTok| if a > b { (a - b, b) } else { (a, b - a) }),
        },
        vec![stepped],
        vec![buffered],
    );
    ir.add("step_buf", meb(), vec![buffered], vec![loopback]);
    ir.add(
        "out",
        IrNodeKind::Sink {
            capture: true,
            policy: ReadyPolicy::Period {
                on: 1,
                off: 1,
                phase: 0,
            },
        },
        vec![done],
        vec![],
    );
    ir
}

/// Drives the GCD loop: `waves` problems per thread, one in flight per
/// thread at a time, against a periodically stalling sink. Digest =
/// per-thread output value streams.
fn drive_gcd(circuit: &mut Circuit<GcdTok>, threads: usize, waves: usize) -> Result<u64, SimError> {
    let problems: Vec<Vec<GcdTok>> = (0..threads)
        .map(|t| {
            (0..waves)
                .map(|w| {
                    let a = 6 * (t as u64 + 2) * (w as u64 + 3);
                    let b = 9 * (t as u64 + 1) + 3 * w as u64;
                    (a.max(1), b.max(1))
                })
                .collect()
        })
        .collect();
    {
        let feeder: &mut Source<GcdTok> = circuit.get_mut("feeder").expect("feeder exists");
        for (t, probs) in problems.iter().enumerate() {
            feeder.push(t, probs[0]);
        }
    }
    let mut next = vec![1usize; threads];
    let mut seen = vec![0usize; threads];
    let total = threads * waves;
    let mut completed = 0usize;
    while completed < total {
        assert!(circuit.cycle() <= 200_000, "gcd run exceeded cycle budget");
        circuit.step()?;
        let mut refill = Vec::new();
        {
            let sink: &Sink<GcdTok> = circuit.get("out").expect("sink exists");
            for t in 0..threads {
                let captured = sink.captured(t);
                for _ in &captured[seen[t]..] {
                    completed += 1;
                    if next[t] < waves {
                        refill.push((t, problems[t][next[t]]));
                        next[t] += 1;
                    }
                }
                seen[t] = captured.len();
            }
        }
        let feeder: &mut Source<GcdTok> = circuit.get_mut("feeder").expect("feeder exists");
        for (t, tok) in refill {
            feeder.push(t, tok);
        }
    }
    let sink: &Sink<GcdTok> = circuit.get("out").expect("sink exists");
    let mut h = Fnv::new();
    for t in 0..threads {
        h.word(t as u64);
        for (_, (a, b)) in sink.captured(t) {
            h.word(*a);
            h.word(*b);
        }
    }
    Ok(h.0)
}

// ---------------------------------------------------------------- MD5

/// Drives the MD5 round loop: one block per participating thread,
/// arbitrary block/chain contents (the oracle digests the captured
/// working-state tokens, not real MD5 values).
fn drive_md5(circuit: &mut Circuit<Md5Token>, participants: usize) -> Result<u64, SimError> {
    {
        let feeder: &mut Source<Md5Token> = circuit.get_mut("feeder").expect("feeder exists");
        for t in 0..participants {
            let mut block = [0u32; 16];
            for (i, w) in block.iter_mut().enumerate() {
                *w = (t as u32 + 1)
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add(i as u32);
            }
            let chain = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
            feeder.push(
                t,
                Md5Token {
                    thread: t,
                    wave: 0,
                    block,
                    chain,
                    work: chain,
                    steps_done: 0,
                    phantom: false,
                },
            );
        }
    }
    loop {
        assert!(circuit.cycle() <= 200_000, "md5 run exceeded cycle budget");
        circuit.step()?;
        let sink: &Sink<Md5Token> = circuit.get("out").expect("sink exists");
        let done: usize = (0..participants).map(|t| sink.captured(t).len()).sum();
        if done >= participants {
            break;
        }
    }
    let sink: &Sink<Md5Token> = circuit.get("out").expect("sink exists");
    let mut h = Fnv::new();
    for t in 0..participants {
        h.word(t as u64);
        for (_, tok) in sink.captured(t) {
            for w in tok.work {
                h.word(u64::from(w));
            }
            h.word(u64::from(tok.steps_done));
        }
    }
    Ok(h.0)
}

// ------------------------------------------------------------ processor

/// Runs the processor netlist to halt and digests the architectural
/// state (every thread's register file) — latency-insensitive by
/// construction, so any legal buffer transform preserves it.
fn drive_cpu(
    circuit: &mut Circuit<elastic_proc::ProcToken>,
    threads: usize,
) -> Result<u64, SimError> {
    let mut idle = 0u64;
    loop {
        assert!(
            circuit.cycle() <= 300_000,
            "processor run exceeded cycle budget"
        );
        let report = circuit.step()?;
        if report.transfers.is_empty() {
            idle += 1;
        } else {
            idle = 0;
        }
        let halted = circuit
            .get::<Fetcher>("fetch")
            .expect("fetcher exists")
            .all_halted();
        if halted && idle >= 64 {
            break;
        }
    }
    let regs: &RegUnit = circuit.get("regs").expect("reg unit exists");
    let mut h = Fnv::new();
    for t in 0..threads {
        h.word(t as u64);
        for r in 0..NUM_REGS {
            h.word(u64::from(regs.reg(t, r)));
        }
    }
    Ok(h.0)
}

// ---------------------------------------------------------------- JSON

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn design_json(r: &DesignResult) -> String {
    let accepted: Vec<String> = r
        .accepted
        .iter()
        .map(|(spec, cycles, les)| {
            format!(
                "{{\"spec\":\"{}\",\"cycles\":{cycles},\"les\":{les}}}",
                json_escape(spec)
            )
        })
        .collect();
    // The pareto front over every measured point (baseline included).
    let measured: Vec<&PointRecord> = r.points.iter().filter(|p| p.digest_ok).collect();
    let pareto: Vec<String> = measured
        .iter()
        .filter(|p| {
            !measured.iter().any(|q| {
                (q.cycles < p.cycles && q.les <= p.les) || (q.cycles <= p.cycles && q.les < p.les)
            })
        })
        .map(|p| {
            format!(
                "{{\"spec\":{},\"cycles\":{},\"les\":{},\"throughput\":{:.6},\"accepted\":{}}}",
                match &p.spec {
                    Some(s) => format!("\"{}\"", json_escape(s)),
                    None => "null".to_string(),
                },
                p.cycles,
                p.les,
                r.work as f64 / p.cycles as f64,
                p.accepted
            )
        })
        .collect();
    format!(
        "{{\"design\":\"{}\",\"baseline\":{{\"digest\":\"{:016x}\",\"cycles\":{},\"les\":{},\"throughput\":{:.6}}},\"digest_identical\":true,\"candidates_tried\":{},\"cache_hits\":{},\"accepted\":[{}],\"pareto\":[{}]}}",
        r.name,
        r.baseline.0,
        r.baseline.1,
        r.baseline.2,
        r.work as f64 / r.baseline.1 as f64,
        r.candidates_tried,
        r.cache_hits,
        accepted.join(","),
        pareto.join(",")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_autotune.json".to_string());
    let rounds = if smoke { 3 } else { 6 };

    let service: SweepService<EvalOut> = SweepService::new(elastic_sim::available_workers());
    let mut results: Vec<DesignResult> = Vec::new();

    // GCD: 2 threads, 4 problems each, periodically stalling consumer
    // (the backpressured pipeline of the CI smoke leg).
    let gcd = TuneTarget::<GcdTok> {
        name: "gcd",
        work: 8,
        factory: Arc::new(|| gcd_full_ir(2)),
        drive: Arc::new(|c| drive_gcd(c, 2, 4)),
    };
    match tune(&gcd, &service, rounds) {
        Ok(r) => results.push(r),
        Err(e) => {
            eprintln!("gcd tuning failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    if !smoke {
        // MD5: 4 threads, 2-stage pipelined round.
        let md5 = TuneTarget::<Md5Token> {
            name: "md5",
            work: 4,
            factory: Arc::new(|| elastic_md5::Md5Circuit::ir(4, 4, 2).ir),
            drive: Arc::new(|c| drive_md5(c, 4)),
        };
        match tune(&md5, &service, rounds) {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("md5 tuning failed: {e}");
                return ExitCode::FAILURE;
            }
        }

        // Processor: 4 threads running the summation loop.
        let threads = 4usize;
        let program = elastic_proc::assemble(programs::SUM_LOOP).expect("program assembles");
        let proc = TuneTarget::<elastic_proc::ProcToken> {
            name: "processor",
            work: program.len() as u64,
            factory: Arc::new(move || {
                Cpu::ir(&CpuConfig::new(threads), program.clone(), vec![0; threads]).ir
            }),
            drive: Arc::new(move |c| drive_cpu(c, threads)),
        };
        match tune(&proc, &service, rounds) {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("processor tuning failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Report + artifacts.
    let designs: Vec<String> = results.iter().map(design_json).collect();
    let json = format!("{{\"designs\":[{}]}}\n", designs.join(","));
    std::fs::write(&out_path, &json).expect("write BENCH_autotune.json");
    println!("wrote {out_path}");

    if let Some(dot) = results
        .iter()
        .find(|r| r.name == "gcd")
        .and_then(|r| r.dot.as_ref())
    {
        if !smoke {
            std::fs::write("golden/gcd_autotune_deltas.dot", dot).ok();
        }
    }

    let mut ok = true;
    for r in &results {
        let accepted = r.accepted.len();
        println!(
            "[{}] {} candidates tried, {} accepted, {} cache hits",
            r.name, r.candidates_tried, accepted, r.cache_hits
        );
        if accepted == 0 {
            eprintln!("[{}] no transform accepted", r.name);
            ok = false;
        }
    }
    if smoke && !ok {
        eprintln!("--smoke: expected at least one accepted transform per design");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
