//! Settle-loop hot-path campaign for the packed-handshake layout.
//!
//! Times the full simulation loop (settle + clock edge) on pipelines at
//! S = 8 / 16 / 64 plus the Sec. V-A MD5 circuit, and records a digest
//! of every sink capture so a data-layout change can prove itself
//! observationally equivalent: the packed `ThreadMask` path must produce
//! byte-identical captures to the `Vec<bool>` reference it replaced.
//!
//! Two-step protocol (see `docs/perf.md`):
//!
//! ```text
//! # on the pre-refactor commit
//! cargo run --release --bin packed_handshake -- --record before.json
//! # on the post-refactor commit
//! cargo run --release --bin packed_handshake -- --baseline before.json
//! ```
//!
//! The second invocation merges the recorded baseline, asserts digest
//! identity per workload, and writes `BENCH_packed_handshake.json` with
//! the before/after wall times and speedups.

use std::time::{Duration, Instant};

use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
use elastic_md5::{Md5Error, Md5Hasher};
use elastic_sim::{run_sweep_on, ReadyPolicy, SimError, SimJob};

/// One workload of the campaign.
#[derive(Clone, Copy)]
struct Case {
    name: &'static str,
    threads: usize,
    stages: usize,
    tokens: u64,
    cycles: u64,
    seed: u64,
}

const CASES: [Case; 3] = [
    Case {
        name: "pipeline S=8",
        threads: 8,
        stages: 4,
        tokens: 96,
        cycles: 2_000,
        seed: 0x0805,
    },
    Case {
        name: "pipeline S=16",
        threads: 16,
        stages: 4,
        tokens: 48,
        cycles: 2_000,
        seed: 0x1605,
    },
    Case {
        name: "pipeline S=64",
        threads: 64,
        stages: 3,
        tokens: 12,
        cycles: 2_000,
        seed: 0x6405,
    },
];

/// FNV-1a over the capture dump: a short stable digest for identity
/// checks across code versions.
fn fnv1a(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    format!("{h:016x}")
}

/// Runs one pipeline case once and digests its sink captures.
fn run_pipeline(case: Case) -> Result<String, SimError> {
    let mut cfg =
        PipelineConfig::free_flowing(case.threads, case.stages, MebKind::Reduced, case.tokens);
    for t in 0..case.threads {
        cfg.sink_policies[t] = ReadyPolicy::Random {
            p: 0.6,
            seed: case.seed ^ t as u64,
        };
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(case.cycles)?;
    let captures: Vec<Vec<(u64, u64)>> = (0..case.threads)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    Ok(fnv1a(format!("{captures:?}").as_bytes()))
}

/// The Sec. V-A MD5 circuit: 8 threads, one message each.
fn run_md5() -> Result<String, SimError> {
    let msgs: Vec<Vec<u8>> = (0..8)
        .map(|i| format!("packed handshake message {i}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let (digests, cycles, _) = Md5Hasher::new(8, MebKind::Reduced)
        .hash_messages_instrumented(&refs)
        .map_err(|e| match e {
            Md5Error::Sim(s) => s,
            other => panic!("md5 harness misconfigured: {other}"),
        })?;
    Ok(fnv1a(format!("{digests:?} in {cycles} cycles").as_bytes()))
}

/// Measurement of one workload: best-of-`reps` wall time plus digest.
type Measure = (String, Duration, String);

/// Times `f` `reps` times (after one warm-up), keeping the best run and
/// checking the digest is stable across repetitions.
fn time_best(
    name: &str,
    reps: u32,
    f: impl Fn() -> Result<String, SimError>,
) -> Result<Measure, SimError> {
    let digest = f()?;
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let d = f()?;
        let wall = start.elapsed();
        assert_eq!(d, digest, "{name}: digest unstable across repetitions");
        best = best.min(wall);
    }
    Ok((name.to_string(), best, digest))
}

/// The whole campaign, run as jobs on the serial sweep pool (submission
/// order = report order; one worker so the timings do not contend).
fn campaign(reps: u32) -> Vec<Measure> {
    let mut jobs: Vec<SimJob<Measure>> = Vec::new();
    for case in CASES {
        jobs.push(SimJob::new(case.name, move || {
            time_best(case.name, reps, move || run_pipeline(case))
        }));
    }
    jobs.push(SimJob::new("md5 8t", move || {
        time_best("md5 8t", reps, run_md5)
    }));
    run_sweep_on(jobs, 1).unwrap_all()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Renders a measurement list as the recordable JSON document.
fn record_json(results: &[Measure], reps: u32) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|(name, wall, digest)| {
            format!(
                "    {{\"workload\": \"{name}\", \"wall_ms\": {:.3}, \"digest\": \"{digest}\"}}",
                ms(*wall)
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"packed_handshake settle hot path\",\n  \
         \"reps\": {reps},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

/// Pulls `"key": value` scalars out of one JSON object line (the files
/// this binary writes are line-structured, one workload per line).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses a `--record` file back into (workload, wall_ms, digest) rows.
fn parse_baseline(text: &str) -> Vec<(String, f64, String)> {
    text.lines()
        .filter(|l| l.contains("\"workload\""))
        .map(|l| {
            let name = field(l, "workload").expect("workload field").to_string();
            let wall: f64 = field(l, "wall_ms")
                .expect("wall_ms field")
                .parse()
                .expect("wall_ms parses");
            let digest = field(l, "digest").expect("digest field").to_string();
            (name, wall, digest)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let reps: u32 = get("--reps").map_or(7, |r| r.parse().expect("--reps N"));

    println!("packed_handshake campaign ({reps} reps, best-of)\n");
    let results = campaign(reps);
    println!("{:<16} {:>10} {:>18}", "workload", "wall ms", "digest");
    println!("{}", "-".repeat(46));
    for (name, wall, digest) in &results {
        println!("{name:<16} {:>10.3} {digest:>18}", ms(*wall));
    }

    if let Some(path) = get("--record") {
        std::fs::write(&path, record_json(&results, reps)).expect("write record file");
        println!("\nrecorded baseline → {path}");
        return;
    }

    let out = get("--out").unwrap_or_else(|| "BENCH_packed_handshake.json".into());
    let Some(baseline_path) = get("--baseline") else {
        std::fs::write(&out, record_json(&results, reps)).expect("write output file");
        println!("\nno --baseline given; wrote standalone measurements → {out}");
        return;
    };
    let baseline_text = std::fs::read_to_string(&baseline_path).expect("read baseline file");
    let baseline = parse_baseline(&baseline_text);
    assert_eq!(
        baseline.len(),
        results.len(),
        "baseline workload list does not match this binary's campaign"
    );

    println!();
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>7}",
        "workload", "before ms", "after ms", "speedup", "digest"
    );
    println!("{}", "-".repeat(56));
    let mut rows = Vec::new();
    let mut s8_speedup = None;
    for ((name, wall, digest), (bname, bwall, bdigest)) in results.iter().zip(&baseline) {
        assert_eq!(name, bname, "workload order diverged from baseline");
        assert_eq!(
            digest, bdigest,
            "{name}: captures diverged from the reference path — the packed \
             layout is not observationally equivalent"
        );
        let after = ms(*wall);
        let speedup = bwall / after.max(1e-9);
        if *name == "pipeline S=8" {
            s8_speedup = Some(speedup);
        }
        println!(
            "{name:<16} {bwall:>10.3} {after:>10.3} {speedup:>8.2}x {:>7}",
            "ok"
        );
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"before_ms\": {bwall:.3}, \
             \"after_ms\": {after:.3}, \"speedup\": {speedup:.3}, \
             \"digest\": \"{digest}\", \"digests_identical\": true}}"
        ));
    }
    let s8 = s8_speedup.expect("campaign includes the S=8 pipeline");
    let json = format!(
        "{{\n  \"bench\": \"packed_handshake settle hot path\",\n  \
         \"reps\": {reps},\n  \"speedup_s8\": {s8:.3},\n  \
         \"digests_identical\": true,\n  \"workloads\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write output file");
    println!("\nwrote {out} (S=8 speedup {s8:.2}x)");
    if s8 < 1.5 {
        eprintln!("warning: S=8 speedup {s8:.2}x below the 1.5x target");
    }
}
