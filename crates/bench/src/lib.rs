//! # elastic-bench — experiment harnesses for the DATE 2014 reproduction
//!
//! Shared builders used by the figure/table generator binaries (`fig1_traces`,
//! `fig2_handshake`, `fig5_pipeline_trace`, `table1_fpga`,
//! `throughput_vs_threads`, `ablation_buffers`), the Criterion benches and
//! the repository-level integration tests. Each public function maps to an
//! experiment row in `DESIGN.md`'s per-experiment index.

#![warn(missing_docs)]

pub mod fig5;
pub mod throughput;

pub use fig5::{fig5_harness, fig5_rows, Fig5Setup};
pub use throughput::{measure_throughput, reduced_worstcase, ThroughputPoint, WorstcaseResult};
