//! Regenerates the paper's **Figure 5**: cycle-by-cycle traces of a
//! 2-stage, 2-thread MEB pipeline in which thread B's consumer stalls and
//! is later released — once with full MEBs (Fig. 5a) and once with
//! reduced MEBs (Fig. 5b).
//!
//! With `--long`, also runs the Sec. III-A worst case (B blocked forever,
//! deep pipeline) and prints the steady-state throughput of the lone
//! active thread: ~100 % with full MEBs, ~50 % with reduced ones.
//!
//! ```text
//! cargo run --release --bin fig5_pipeline_trace [--long]
//! ```

use elastic_bench::{fig5_harness, fig5_rows, reduced_worstcase, Fig5Setup};
use elastic_core::MebKind;
use elastic_sim::GridTrace;

fn main() {
    let long = std::env::args().any(|a| a == "--long");

    for (kind, figure) in [
        (MebKind::Full, "Fig. 5(a)"),
        (MebKind::Reduced, "Fig. 5(b)"),
    ] {
        let setup = Fig5Setup::paper(kind);
        let h = fig5_harness(&setup);
        println!(
            "{figure} — 2-stage pipeline of {kind} MEBs, 2 threads; thread B's consumer \
             stalls during cycles {}..{} (tokens marked `*` are valid but stalled)\n",
            setup.stall_from, setup.stall_to
        );
        let grid = GridTrace::new(fig5_rows(&h, kind));
        println!(
            "{}",
            grid.render(
                h.circuit.trace().expect("trace enabled"),
                0,
                setup.cycles - 1
            )
        );
        let out = h.pipeline.output;
        println!(
            "delivered: thread A {} tokens, thread B {} tokens in {} cycles\n",
            h.circuit.stats().transfers(out, 0),
            h.circuit.stats().transfers(out, 1),
            setup.cycles
        );
    }

    if long {
        println!(
            "Sec. III-A worst case: all threads but A blocked, stall propagated to the source"
        );
        println!("(this is the only behavioural difference between the two MEBs)\n");
        for kind in [MebKind::Full, MebKind::Reduced] {
            let r = reduced_worstcase(kind, 2, 4);
            println!(
                "  {:<8} MEB pipeline (4 stages): lone active thread throughput = {:.3}  (paper: {})",
                kind.to_string(),
                r.active_throughput,
                match kind {
                    MebKind::Full => "full channel utilization",
                    _ => "50% of throughput",
                }
            );
        }
    } else {
        println!("(run with --long for the Sec. III-A worst-case throughput measurement)");
    }
}
