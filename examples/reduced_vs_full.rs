//! The paper's central trade-off in one screen: the reduced MEB stores
//! `S + 1` tokens instead of `2·S`, behaves identically under uniform
//! load, and gives up throughput only in the all-but-one-blocked worst
//! case (paper, Sec. III-A) — while the cost model shows what the saved
//! registers buy in silicon (Table I).
//!
//! ```text
//! cargo run --release --example reduced_vs_full
//! ```

use mt_elastic::core::{MebKind, PipelineConfig, PipelineHarness};
use mt_elastic::cost::{
    average_savings, md5_design, processor_design, savings_fraction, BufferKind,
};
use mt_elastic::sim::ReadyPolicy;

fn measure(kind: MebKind, blocked: bool) -> (f64, u64) {
    const THREADS: usize = 4;
    let mut cfg = PipelineConfig::free_flowing(THREADS, 3, kind, 500);
    if blocked {
        for t in 1..THREADS {
            cfg = cfg.with_sink_policy(t, ReadyPolicy::Never);
        }
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(60).expect("warmup");
    h.circuit.reset_stats();
    h.circuit.run(300).expect("measurement");
    let thr = if blocked {
        h.circuit.stats().throughput(h.pipeline.output, 0)
    } else {
        h.circuit.stats().channel_throughput(h.pipeline.output)
    };
    (thr, kind.slots(THREADS) as u64 * 3)
}

fn main() {
    println!("reduced vs full MEB — behaviour (4 threads, 3-stage pipeline)\n");
    println!(
        "{:<12} {:>12} {:>20} {:>22}",
        "buffer", "slots (×3)", "uniform aggregate", "lone unblocked thread"
    );
    println!("{}", "-".repeat(70));
    for kind in [MebKind::Full, MebKind::Reduced] {
        let (uniform, slots) = measure(kind, false);
        let (worst, _) = measure(kind, true);
        println!(
            "{:<12} {:>12} {:>20.3} {:>22.3}",
            kind.to_string(),
            slots,
            uniform,
            worst
        );
    }

    println!("\nreduced vs full MEB — silicon (structural cost model, Table I)\n");
    for (spec, label) in [
        (md5_design(), "MD5 hash"),
        (processor_design(), "processor"),
    ] {
        println!(
            "  {label:<10} 8 threads: full {:>6} LEs, reduced {:>6} LEs  (saves {:.1}%)",
            spec.area_les(BufferKind::Full, 8),
            spec.area_les(BufferKind::Reduced, 8),
            100.0 * savings_fraction(&spec, 8)
        );
    }
    println!(
        "\naverage saving: {:.1}% at 8 threads, {:.1}% at 16 — the buffer-dominated\n\
         designs benefit most, at the price of the worst-case column above.",
        100.0 * average_savings(8),
        100.0 * average_savings(16)
    );
}
