//! Fused settle-kernel ablation: interpreted vs fused vs exhaustive
//! oracle on the packed-handshake workloads.
//!
//! For every workload the campaign runs the *same* circuit under three
//! kernels —
//!
//! * `interpreted` — event-driven dirty-set kernel, `Box<dyn Component>`
//!   vtable dispatch (the reference);
//! * `fused` — event-driven dirty-set kernel executing the lowered
//!   [`elastic_synth::fuse`] op table (linear `match` dispatch, word-level
//!   `Sink`/`ReducedMeb` specialisations);
//! * `oracle` — the exhaustive full-resweep kernel, interpreted dispatch
//!   (the semantic gold standard) —
//!
//! asserts the sink-capture digests are byte-identical across all three,
//! prints the fused run's per-op eval breakdown, and writes
//! `BENCH_fused_kernel.json`. The pipeline workloads (S = 8/16/64) carry
//! a **gate**: the fused *settle wall* — the accumulated phase-1 time
//! reported by [`KernelStats::settle_nanos`] under
//! `Circuit::set_settle_timing`, i.e. exactly the phase the backend
//! changes — must be at least 1.5x faster than interpreted or the binary
//! exits nonzero (disable with `--no-gate` for exploratory runs on noisy
//! machines). Whole-run wall times are reported alongside for context;
//! the tick/capture/stats phases they include are identical code across
//! backends by construction.
//!
//! ```text
//! cargo run --release --bin fused_kernel_ablation
//! cargo run --release --bin fused_kernel_ablation -- --reps 9 --out BENCH_fused_kernel.json
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
use elastic_md5::{Md5Error, Md5Hasher};
use elastic_proc::{programs, Cpu, CpuConfig};
use elastic_sim::{
    EvalMode, FusedOpKind, KernelBackend, KernelStats, ReadyPolicy, SimError, Tagged,
};

/// One pipeline workload of the campaign (mirrors `packed_handshake`).
#[derive(Clone, Copy)]
struct Case {
    name: &'static str,
    threads: usize,
    stages: usize,
    tokens: u64,
    cycles: u64,
    seed: u64,
}

const CASES: [Case; 3] = [
    Case {
        name: "pipeline S=8",
        threads: 8,
        stages: 12,
        tokens: 240,
        cycles: 2_400,
        seed: 0x0805,
    },
    Case {
        name: "pipeline S=16",
        threads: 16,
        stages: 8,
        tokens: 120,
        cycles: 2_400,
        seed: 0x1605,
    },
    Case {
        name: "pipeline S=64",
        threads: 64,
        stages: 4,
        tokens: 30,
        cycles: 2_400,
        seed: 0x6405,
    },
];

/// Which kernel a measurement ran under.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Interpreted,
    Fused,
    Oracle,
}

impl Kernel {
    const ALL: [Kernel; 3] = [Kernel::Interpreted, Kernel::Fused, Kernel::Oracle];

    fn label(self) -> &'static str {
        match self {
            Kernel::Interpreted => "interpreted",
            Kernel::Fused => "fused",
            Kernel::Oracle => "oracle",
        }
    }
}

/// FNV-1a over the capture dump: a short stable digest for identity
/// checks across kernels.
fn fnv1a(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    format!("{h:016x}")
}

/// One timed execution: digest, whole-run wall time (construction
/// excluded where the harness allows), kernel counters — including the
/// settle-phase nanoseconds when the workload armed settle timing.
struct Run {
    digest: String,
    wall: Duration,
    stats: KernelStats,
}

impl Run {
    /// The metric compared across kernels: the settle-loop wall when the
    /// workload armed settle timing, the whole-run wall otherwise (md5's
    /// circuit is internal to the hasher, so that row stays wall-based
    /// and ungated).
    fn metric_nanos(&self) -> u64 {
        if self.stats.settle_nanos > 0 {
            self.stats.settle_nanos
        } else {
            self.wall.as_nanos() as u64
        }
    }
}

/// Runs one pipeline case once under `kernel`.
fn run_pipeline(case: Case, kernel: Kernel) -> Result<Run, SimError> {
    let mut cfg =
        PipelineConfig::free_flowing(case.threads, case.stages, MebKind::Reduced, case.tokens);
    for t in 0..case.threads {
        cfg.sink_policies[t] = ReadyPolicy::Random {
            p: 0.6,
            seed: case.seed ^ t as u64,
        };
    }
    cfg = match kernel {
        Kernel::Interpreted => cfg,
        Kernel::Fused => {
            cfg.with_backend(KernelBackend::Fused, Some(elastic_synth::fuse::<Tagged>))
        }
        Kernel::Oracle => cfg.with_eval_mode(EvalMode::Exhaustive),
    };
    let mut h = PipelineHarness::build(cfg);
    h.circuit.set_settle_timing(true);
    let start = Instant::now();
    h.circuit.run(case.cycles)?;
    let wall = start.elapsed();
    let captures: Vec<Vec<(u64, u64)>> = (0..case.threads)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    Ok(Run {
        digest: fnv1a(format!("{captures:?}").as_bytes()),
        wall,
        stats: *h.circuit.stats().kernel(),
    })
}

/// The Sec. V-A MD5 circuit, 8 threads (wall includes elaboration — the
/// hasher rebuilds its circuit per call; the row is informational, not
/// gated).
fn run_md5(kernel: Kernel) -> Result<Run, SimError> {
    let msgs: Vec<Vec<u8>> = (0..8)
        .map(|i| format!("fused kernel message {i}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let mut hasher = Md5Hasher::new(8, MebKind::Reduced);
    hasher = match kernel {
        Kernel::Interpreted => hasher,
        Kernel::Fused => hasher.with_backend(KernelBackend::Fused),
        Kernel::Oracle => hasher.with_eval_mode(EvalMode::Exhaustive),
    };
    let start = Instant::now();
    let (digests, cycles, stats) =
        hasher
            .hash_messages_instrumented(&refs)
            .map_err(|e| match e {
                Md5Error::Sim(s) => s,
                other => panic!("md5 harness misconfigured: {other}"),
            })?;
    let wall = start.elapsed();
    Ok(Run {
        digest: fnv1a(format!("{digests:?} in {cycles} cycles").as_bytes()),
        wall,
        stats,
    })
}

/// The Sec. V-B processor running the sieve on 4 threads (seeded
/// variable latencies — deterministic across kernels).
fn run_proc(kernel: Kernel) -> Result<Run, SimError> {
    let mut config = CpuConfig::new(4);
    if kernel == Kernel::Fused {
        config = config.with_backend(KernelBackend::Fused);
    }
    let mut cpu = Cpu::from_asm(config, programs::SIEVE).expect("sieve assembles");
    if kernel == Kernel::Oracle {
        cpu.circuit.set_eval_mode(EvalMode::Exhaustive);
    }
    cpu.circuit.set_settle_timing(true);
    let start = Instant::now();
    let stats = cpu.run_to_halt(2_000_000).expect("sieve halts");
    let wall = start.elapsed();
    let regs: Vec<Vec<u32>> = (0..4)
        .map(|t| (0..8).map(|r| cpu.reg(t, r)).collect())
        .collect();
    Ok(Run {
        digest: fnv1a(format!("{regs:?} in {} cycles", stats.cycles).as_bytes()),
        wall,
        stats: *cpu.circuit.stats().kernel(),
    })
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let reps: u32 = get("--reps").map_or(7, |r| r.parse().expect("--reps N"));
    let details = args.iter().any(|a| a == "--details");
    let gate = !args.iter().any(|a| a == "--no-gate");
    let out = get("--out").unwrap_or_else(|| "BENCH_fused_kernel.json".into());

    // (name, gated, runner) — every workload runs under all three kernels.
    type Runner = Box<dyn Fn(Kernel) -> Result<Run, SimError>>;
    let mut workloads: Vec<(&'static str, bool, Runner)> = Vec::new();
    for case in CASES {
        workloads.push((case.name, true, Box::new(move |k| run_pipeline(case, k))));
    }
    workloads.push(("md5 8t", false, Box::new(run_md5)));
    workloads.push(("proc sieve 4t", false, Box::new(run_proc)));

    println!("fused_kernel_ablation ({reps} reps, best-of, settle-wall gated)\n");
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>8} {:>10} {:>18}",
        "workload", "interp ms", "fused ms", "oracle ms", "speedup", "wall x", "digest"
    );
    println!("{}", "-".repeat(92));

    let mut rows = Vec::new();
    let mut fused_totals = [0u64; FusedOpKind::COUNT];
    let mut min_gated_speedup = f64::INFINITY;
    for (name, gated, runner) in &workloads {
        // Interleave kernel repetitions (I, F, O, I, F, O, …) and keep
        // the best metric per kernel: slow machine drift — frequency
        // ramps, steal bursts on shared vCPUs — then lands on every
        // kernel equally instead of on whichever block ran last.
        let mut best: Vec<Option<Run>> = vec![None, None, None];
        for _rep in 0..=reps {
            for (ki, kernel) in Kernel::ALL.into_iter().enumerate() {
                let run =
                    runner(kernel).unwrap_or_else(|e| panic!("{name} [{}]: {e}", kernel.label()));
                match &mut best[ki] {
                    None => best[ki] = Some(run),
                    Some(b) => {
                        assert_eq!(
                            run.digest,
                            b.digest,
                            "{name} [{}]: digest unstable across repetitions",
                            kernel.label()
                        );
                        if run.metric_nanos() < b.metric_nanos() {
                            *b = run;
                        }
                    }
                }
            }
        }
        let runs: Vec<Run> = best
            .into_iter()
            .map(|b| b.expect("at least one repetition ran"))
            .collect();
        let [interp, fused, oracle] = <[Run; 3]>::try_from(runs).ok().expect("three kernels");
        assert_eq!(
            interp.digest, fused.digest,
            "{name}: fused kernel diverged from interpreted"
        );
        assert_eq!(
            interp.digest, oracle.digest,
            "{name}: event-driven kernels diverged from the exhaustive oracle"
        );
        // Gate metric: settle-loop wall where armed (pipelines, proc),
        // whole-run wall otherwise (md5). The whole-run ratio rides along
        // as context.
        let speedup = interp.metric_nanos() as f64 / (fused.metric_nanos() as f64).max(1e-12);
        let wall_speedup = interp.wall.as_secs_f64() / fused.wall.as_secs_f64().max(1e-12);
        if *gated {
            min_gated_speedup = min_gated_speedup.min(speedup);
        }
        // The fused run must have answered every eval from the op table.
        let fused_evals: u64 = fused.stats.fused_op_evals.iter().sum();
        assert_eq!(
            fused_evals, fused.stats.component_evals,
            "{name}: fused run has evals outside the op table"
        );
        for (acc, d) in fused_totals
            .iter_mut()
            .zip(fused.stats.fused_op_evals.iter())
        {
            *acc += *d;
        }
        if details {
            for (kernel, run) in Kernel::ALL.into_iter().zip([&interp, &fused, &oracle]) {
                let evals = run.stats.component_evals.max(1);
                println!(
                    "  {name} [{}]: {} evals, {} rounds, {:.1} ns/eval, hist {:?}",
                    kernel.label(),
                    run.stats.component_evals,
                    run.stats.settle_rounds,
                    run.metric_nanos() as f64 / evals as f64,
                    run.stats.settle_round_hist
                );
            }
        }
        let settle_ms = |r: &Run| r.metric_nanos() as f64 / 1e6;
        println!(
            "{name:<16} {:>12.3} {:>10.3} {:>10.3} {speedup:>7.2}x {wall_speedup:>9.2}x {:>18}",
            settle_ms(&interp),
            settle_ms(&fused),
            settle_ms(&oracle),
            interp.digest
        );
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"interpreted_settle_ms\": {:.3}, \
             \"fused_settle_ms\": {:.3}, \"oracle_settle_ms\": {:.3}, \
             \"interpreted_wall_ms\": {:.3}, \"fused_wall_ms\": {:.3}, \
             \"oracle_wall_ms\": {:.3}, \"speedup\": {speedup:.3}, \
             \"wall_speedup\": {wall_speedup:.3}, \
             \"gated\": {gated}, \"digest\": \"{}\", \"digests_identical\": true}}",
            settle_ms(&interp),
            settle_ms(&fused),
            settle_ms(&oracle),
            ms(interp.wall),
            ms(fused.wall),
            ms(oracle.wall),
            interp.digest
        ));
    }

    println!("\nper-op fused evals (all workloads, best reps):");
    let mut op_rows = Vec::new();
    for kind in FusedOpKind::ALL {
        let n = fused_totals[kind as usize];
        if n > 0 {
            println!("  {:<12} {n:>12}", kind.label());
            op_rows.push(format!(
                "    {{\"op\": \"{}\", \"evals\": {n}}}",
                kind.label()
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"fused_kernel_ablation\",\n  \"reps\": {reps},\n  \
         \"min_gated_speedup\": {min_gated_speedup:.3},\n  \
         \"gate\": 1.5,\n  \"digests_identical\": true,\n  \
         \"workloads\": [\n{}\n  ],\n  \"fused_op_evals\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        op_rows.join(",\n")
    );
    std::fs::write(&out, json).expect("write output file");
    println!("\nwrote {out} (min gated speedup {min_gated_speedup:.2}x)");

    if gate && min_gated_speedup < 1.5 {
        eprintln!(
            "GATE FAILED: fused/interpreted speedup {min_gated_speedup:.2}x \
             below the 1.5x floor on a pipeline workload"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
