//! The *reduced* multithreaded elastic buffer: one main register per
//! thread plus a single **dynamically shared** auxiliary register (paper,
//! Sec. III-A and Fig. 6).
//!
//! For `S` threads the reduced MEB stores at most `S + 1` items instead of
//! the full MEB's `2·S`:
//!
//! * each thread owns one main register — enough for full aggregate
//!   throughput under uniform utilization (each of `M` active threads is
//!   accessed once every `M` cycles);
//! * the single shared register absorbs a downstream stall for **one**
//!   thread at a time. The per-thread EB control FSM (EMPTY/HALF/FULL) is
//!   replicated `S` times, but the HALF → FULL transition is gated by the
//!   shared-buffer state so that only one thread may hold two items.
//!
//! The one behavioural difference from the full MEB (paper, Fig. 5): when
//! every thread but one is blocked *and* the blocked thread occupies the
//! shared slots of every stage up to the source, the remaining active
//! thread sees only one slot per stage and tops out at 50 % throughput.

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, NextEvent, Ports,
    ProtocolError, SlotView, ThreadMask, TickCtx, Token,
};

use crate::arbiter::Arbiter;
use crate::eb::EbState;
use crate::select::SelectState;

/// A reduced MEB: `S` main registers + one shared auxiliary register.
///
/// # Examples
///
/// ```
/// use elastic_core::{ArbiterKind, ReducedMeb};
/// use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<Tagged>::new();
/// let a = b.channel("in", 3);
/// let c = b.channel("out", 3);
/// let mut src = Source::new("src", a, 3);
/// src.push(0, Tagged::new(0, 0, 1));
/// src.push(2, Tagged::new(2, 0, 3));
/// b.add(src);
/// b.add(ReducedMeb::new("meb", a, c, 3, ArbiterKind::RoundRobin.build()));
/// b.add(Sink::new("snk", c, 3, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(6)?;
/// assert_eq!(circuit.stats().total_transfers(c), 2);
/// # Ok(())
/// # }
/// ```
pub struct ReducedMeb<T: Token> {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    threads: usize,
    /// Replicated single-EB control FSMs (paper: "copies S times the
    /// control logic of a single EB").
    state: Vec<EbState>,
    /// Per-thread main registers (the head item of each thread).
    main: Vec<Option<T>>,
    /// The dynamically shared auxiliary register and its current owner.
    shared: Option<(usize, T)>,
    arbiter: Box<dyn Arbiter>,
    select: SelectState,
    /// Packed "thread has data" mask (`state[t] != EMPTY`), maintained
    /// incrementally at the clock edge: the only transitions that change
    /// it are EMPTY → HALF (enqueue into an empty thread) and
    /// HALF → EMPTY (dequeue without shared refill).
    has: ThreadMask,
    /// Scratch ready word for [`ReducedMeb::eval_fused`], committed in one
    /// word-level [`EvalCtx::set_ready_mask`] call.
    fused_ready: ThreadMask,
    /// Per-cycle cache of [`Arbiter::rotation_hint`]: the hint depends
    /// only on arbiter state, which advances at the clock edge, so one
    /// vtable call per cycle serves every settle re-evaluation.
    fused_hint: Option<usize>,
    /// Cycle-cache stamp for `fused_ready`/`has`: `cycle + 1` when they
    /// were rebuilt this cycle, 0 = invalid. Both words are functions of
    /// registered state only, which changes exclusively at the clock
    /// edge, so one rebuild per cycle serves every settle re-evaluation.
    fused_stamp: u64,
}

impl<T: Token> ReducedMeb<T> {
    /// An empty reduced MEB for `threads` threads between `inp` and `out`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        arbiter: Box<dyn Arbiter>,
    ) -> Self {
        assert!(threads > 0, "a MEB needs at least one thread");
        Self {
            name: name.into(),
            inp,
            out,
            threads,
            state: vec![EbState::Empty; threads],
            main: vec![None; threads],
            shared: None,
            arbiter,
            select: SelectState::new(),
            has: ThreadMask::new(threads),
            fused_ready: ThreadMask::new(threads),
            fused_hint: None,
            fused_stamp: 0,
        }
    }

    /// Fused-kernel evaluation: identical observable behaviour to
    /// [`Component::eval`], but the upstream ready word is derived in
    /// O(words) from the incrementally maintained occupancy mask — once
    /// per cycle, since it depends on registered state only — and
    /// committed with a single word-level [`EvalCtx::set_ready_mask`]
    /// (one change test + one wake instead of `S`, and no per-thread FSM
    /// scan at all).
    pub fn eval_fused(&mut self, ctx: &mut EvalCtx<'_, T>) {
        let cycle = ctx.cycle();
        if self.fused_stamp != cycle + 1 {
            // Upstream ready, derived word-level from the incrementally
            // maintained `has` mask. With the shared register free no
            // thread is FULL (the structural invariant), so EMPTY and
            // HALF are both ready: all ones. With it occupied only EMPTY
            // threads are ready: ¬has.
            if self.shared.is_none() {
                self.fused_ready.fill();
            } else {
                self.fused_ready.assign_not(&self.has);
            }
            self.fused_hint = self.arbiter.rotation_hint();
            self.fused_stamp = cycle + 1;
            // Commit once per cycle: this component is the only driver
            // of `ready(inp)` and the word is a function of registered
            // state, so settle re-evaluations would re-commit an
            // identical word (a guaranteed no-op under the word-level
            // change test) — skip the call entirely.
            ctx.set_ready_mask(self.inp, &self.fused_ready);
        }
        // Output selection. On a DAG output channel the anti-swap damping
        // inside `SelectState::select` is disabled anyway, so when the
        // arbiter is a pure rotating scan the whole selection collapses to
        // one fused word scan over `has ∩ ready(out)` (ready-first) with
        // the stalled-offer rotation as fallback — no request-mask copy,
        // no vtable call, bit-identical picks. Feedback channels and
        // richer policies keep the generic path.
        let picked = match self.fused_hint {
            Some(hint) if !ctx.in_feedback(self.out) => self
                .has
                .next_one_wrapping_and(ctx.ready_mask(self.out), hint)
                .or_else(|| self.has.next_one_wrapping(self.select.stall_start())),
            _ => self
                .select
                .select(ctx, self.out, self.arbiter.as_ref(), &self.has),
        };
        match picked {
            Some(t) => {
                let head = self.main[t].clone().expect("non-empty thread has a head");
                ctx.drive_token(self.out, t, head);
            }
            None => ctx.drive_idle(self.out),
        }
    }

    /// Pre-loads tokens before the first cycle (the dataflow "initial
    /// token on the back edge"), at most one per thread (the shared slot
    /// starts free).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ExcessInitialTokens`] if a thread receives
    /// more than one initial token.
    ///
    /// # Panics
    ///
    /// Panics if a thread index is out of range.
    pub fn with_initial(
        mut self,
        tokens: impl IntoIterator<Item = (usize, T)>,
    ) -> Result<Self, ProtocolError> {
        for (t, tok) in tokens {
            if self.main[t].is_some() {
                // Reduced MEB mains hold one initial token per thread (the
                // shared register cannot be pre-assigned).
                return Err(ProtocolError::ExcessInitialTokens {
                    thread: t,
                    capacity: 1,
                });
            }
            self.main[t] = Some(tok);
            self.state[t] = EbState::Half;
            self.has.set(t, true);
        }
        Ok(self)
    }

    /// Control state of `thread`'s replicated EB FSM.
    pub fn thread_state(&self, thread: usize) -> EbState {
        self.state[thread]
    }

    /// The thread currently owning the shared register, if any.
    pub fn shared_owner(&self) -> Option<usize> {
        self.shared.as_ref().map(|(t, _)| *t)
    }

    /// Items stored across all threads (0–S+1).
    pub fn occupancy_total(&self) -> usize {
        self.main.iter().filter(|m| m.is_some()).count() + usize::from(self.shared.is_some())
    }

    /// Total storage capacity: `S + 1`.
    pub fn capacity(&self) -> usize {
        self.threads + 1
    }

    fn check_invariants(&self) {
        // The body only feeds debug assertions, but the `full_threads`
        // collect would still allocate every tick in release builds —
        // skip it entirely there.
        if !cfg!(debug_assertions) {
            return;
        }
        let full_threads: Vec<usize> = (0..self.threads)
            .filter(|&t| self.state[t] == EbState::Full)
            .collect();
        debug_assert!(
            full_threads.len() <= 1,
            "reduced MEB `{}`: more than one thread in FULL: {full_threads:?}",
            self.name
        );
        match (&self.shared, full_threads.first()) {
            (Some((owner, _)), Some(full)) => debug_assert_eq!(
                owner, full,
                "reduced MEB `{}`: shared register owner disagrees with FULL thread",
                self.name
            ),
            (None, None) => {}
            (s, f) => debug_assert!(
                false,
                "reduced MEB `{}`: shared occupancy {:?} inconsistent with FULL set {f:?}",
                self.name,
                s.as_ref().map(|(t, _)| t)
            ),
        }
        for t in 0..self.threads {
            debug_assert_eq!(
                self.state[t] != EbState::Empty,
                self.main[t].is_some(),
                "reduced MEB `{}`: thread {t} state/main mismatch",
                self.name
            );
            debug_assert_eq!(
                self.has.get(t),
                self.state[t] != EbState::Empty,
                "reduced MEB `{}`: thread {t} occupancy mask out of sync",
                self.name
            );
        }
    }
}

impl<T: Token> Component<T> for ReducedMeb<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Buffer
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Ready is a function of registered FSM/shared-register state; the
        // arbiter's ready-aware selection is the only combinational input,
        // damped by the anti-swap guard.
        vec![CombPath::ReadyToValid {
            from: self.out,
            to: self.out,
            damped: true,
        }]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        // Upstream ready, per thread (all functions of registered state):
        //  EMPTY — the private main register is free: always ready;
        //  HALF  — ready only while the shared register is free
        //          (paper: "threads in the HALF state are ready to accept
        //          new data, as long as no thread is in the FULL state");
        //  FULL  — never ready.
        let shared_free = self.shared.is_none();
        for t in 0..self.threads {
            let ready = match self.state[t] {
                EbState::Empty => true,
                EbState::Half => shared_free,
                EbState::Full => false,
            };
            ctx.set_ready(self.inp, t, ready);
            self.has.set(t, self.state[t] != EbState::Empty);
        }
        // Downstream valid: arbiter over non-empty threads; head is always
        // the main register.
        match self
            .select
            .select(ctx, self.out, self.arbiter.as_ref(), &self.has)
        {
            Some(t) => {
                let head = self.main[t].clone().expect("non-empty thread has a head");
                ctx.drive_token(self.out, t, head);
            }
            None => ctx.drive_idle(self.out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        let mut refilled_shared_this_cycle = false;

        // Dequeue first.
        if let Some((g, _)) = ctx.fired_any(self.out) {
            match self.state[g] {
                EbState::Half => {
                    self.main[g] = None;
                    self.state[g] = EbState::Empty;
                    self.has.set(g, false);
                }
                EbState::Full => {
                    // Refill the main register from the shared buffer; its
                    // availability appears upstream only next cycle (ready
                    // was computed from the pre-edge state).
                    let (owner, item) = self.shared.take().expect("FULL thread owns shared");
                    debug_assert_eq!(owner, g, "shared owner must be the dequeued FULL thread");
                    self.main[g] = Some(item);
                    self.state[g] = EbState::Half;
                    refilled_shared_this_cycle = true;
                }
                EbState::Empty => unreachable!("dequeue from EMPTY thread"),
            }
            self.arbiter.commit(g);
        }

        // Then enqueue (the input channel carries at most one thread).
        if let Some((t, data)) = ctx.fired_any(self.inp) {
            match self.state[t] {
                EbState::Empty => {
                    self.main[t] = Some(data.clone());
                    self.state[t] = EbState::Half;
                    self.has.set(t, true);
                }
                EbState::Half => {
                    // goFull: claim the shared register. The elastic thread
                    // control guaranteed it was free when ready was granted,
                    // and a same-cycle refill cannot coincide (the refilling
                    // thread was FULL, hence not ready).
                    debug_assert!(
                        !refilled_shared_this_cycle,
                        "shared register cannot be refilled and re-written in one cycle"
                    );
                    debug_assert!(
                        self.shared.is_none(),
                        "goFull with occupied shared register"
                    );
                    self.shared = Some((t, data.clone()));
                    self.state[t] = EbState::Full;
                }
                EbState::Full => unreachable!("enqueue into FULL thread (ready was low)"),
            }
        }

        self.select.on_tick(ctx, self.out);
        self.check_invariants();
    }

    fn slots(&self) -> Vec<SlotView> {
        let mut out = Vec::with_capacity(self.threads + 1);
        for t in 0..self.threads {
            out.push(match &self.main[t] {
                Some(d) => SlotView::full(format!("main[{t}]"), t, d.label()),
                None => SlotView::empty(format!("main[{t}]")),
            });
        }
        out.push(match &self.shared {
            Some((t, d)) => SlotView::full("shared", *t, d.label()),
            None => SlotView::empty("shared"),
        });
        out
    }

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    fn reset(&mut self) -> bool {
        self.state.iter_mut().for_each(|s| *s = EbState::Empty);
        self.main.iter_mut().for_each(|s| *s = None);
        self.shared = None;
        self.arbiter.reset();
        self.select.reset();
        self.has.clear();
        self.fused_stamp = 0;
        true
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;
    use elastic_sim::{Circuit, CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

    fn two_thread_meb(
        n0: u64,
        n1: u64,
        sink0: ReadyPolicy,
        sink1: ReadyPolicy,
    ) -> (
        Circuit<Tagged>,
        elastic_sim::ChannelId,
        elastic_sim::ChannelId,
    ) {
        let mut b = CircuitBuilder::<Tagged>::new();
        let a = b.channel("a", 2);
        let c = b.channel("c", 2);
        let mut src = Source::new("src", a, 2);
        src.extend(0, (0..n0).map(|i| Tagged::new(0, i, i)));
        src.extend(1, (0..n1).map(|i| Tagged::new(1, i, i)));
        b.add(src);
        b.add(ReducedMeb::new(
            "meb",
            a,
            c,
            2,
            ArbiterKind::RoundRobin.build(),
        ));
        let mut sink = Sink::with_capture("snk", c, 2, sink0);
        sink.set_policy(1, sink1);
        b.add(sink);
        (b.build().expect("valid"), a, c)
    }

    #[test]
    fn single_thread_reduced_meb_is_a_two_slot_eb() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, 0..10u64);
        b.add(src);
        b.add(ReducedMeb::new(
            "meb",
            a,
            c,
            1,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(Sink::new("snk", c, 1, ReadyPolicy::Never));
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("clean");
        // S=1 ⇒ capacity S+1 = 2, identical to the baseline EB.
        assert_eq!(circuit.stats().total_transfers(a), 2);
        let meb: &ReducedMeb<u64> = circuit.get("meb").expect("meb");
        assert_eq!(meb.occupancy_total(), 2);
        assert_eq!(meb.thread_state(0), EbState::Full);
        assert_eq!(meb.shared_owner(), Some(0));
    }

    #[test]
    fn lone_active_thread_gets_full_throughput() {
        // M = 1 with no other thread blocked: 100 % throughput (Sec. III-A).
        let (mut circuit, _a, c) = two_thread_meb(40, 0, ReadyPolicy::Always, ReadyPolicy::Always);
        circuit.run(45).expect("clean");
        let thr = circuit.stats().throughput(c, 0);
        assert!(thr > 0.85, "lone thread throughput {thr} too low");
    }

    #[test]
    fn two_active_threads_each_get_half() {
        let (mut circuit, _a, c) = two_thread_meb(50, 50, ReadyPolicy::Always, ReadyPolicy::Always);
        circuit.run(40).expect("clean");
        let thr0 = circuit.stats().throughput(c, 0);
        let thr1 = circuit.stats().throughput(c, 1);
        assert!((thr0 - 0.5).abs() < 0.08, "thr0 = {thr0}");
        assert!((thr1 - 0.5).abs() < 0.08, "thr1 = {thr1}");
    }

    #[test]
    fn only_one_thread_may_go_full() {
        // Both sinks blocked: the first stalled thread claims the shared
        // slot (FULL); the other saturates at HALF. Total storage S+1 = 3.
        let (mut circuit, a, _c) = two_thread_meb(10, 10, ReadyPolicy::Never, ReadyPolicy::Never);
        circuit.run(20).expect("clean");
        assert_eq!(circuit.stats().total_transfers(a), 3, "S+1 items accepted");
        let meb: &ReducedMeb<Tagged> = circuit.get("meb").expect("meb");
        let fulls = (0..2)
            .filter(|&t| meb.thread_state(t) == EbState::Full)
            .count();
        assert_eq!(fulls, 1, "exactly one FULL thread");
        assert_eq!(meb.occupancy_total(), 3);
        assert!(meb.shared_owner().is_some());
    }

    #[test]
    fn blocked_thread_releases_shared_slot_on_drain() {
        // Block thread 0 until cycle 12, then release; afterwards both
        // threads flow and the shared register empties.
        let (mut circuit, _a, c) = two_thread_meb(
            10,
            10,
            ReadyPolicy::StallWindow { from: 0, to: 12 },
            ReadyPolicy::Always,
        );
        circuit.run(60).expect("clean");
        let snk_total = circuit.stats().total_transfers(c);
        assert_eq!(snk_total, 20, "all tokens eventually delivered");
        let meb: &ReducedMeb<Tagged> = circuit.get("meb").expect("meb");
        assert_eq!(meb.occupancy_total(), 0);
        assert_eq!(meb.shared_owner(), None);
    }

    #[test]
    fn per_thread_order_preserved_under_contention() {
        let (mut circuit, _a, c) = two_thread_meb(
            30,
            30,
            ReadyPolicy::Random { p: 0.5, seed: 11 },
            ReadyPolicy::Random { p: 0.3, seed: 23 },
        );
        circuit.run(500).expect("clean");
        assert_eq!(circuit.stats().total_transfers(c), 60);
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        for t in 0..2 {
            let seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
            assert_eq!(seqs, (0..30).collect::<Vec<_>>(), "thread {t} out of order");
        }
    }

    #[test]
    fn slots_render_main_and_shared() {
        let (mut circuit, _a, _c) = two_thread_meb(5, 5, ReadyPolicy::Never, ReadyPolicy::Never);
        circuit.run(10).expect("clean");
        let meb: &ReducedMeb<Tagged> = circuit.get("meb").expect("meb");
        let slots = meb.slots();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0].name, "main[0]");
        assert_eq!(slots[2].name, "shared");
        assert!(
            slots[2].occupant.is_some(),
            "shared slot claimed under stall"
        );
    }

    #[test]
    fn capacity_is_threads_plus_one() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 8);
        let c = b.channel("c", 8);
        let meb = ReducedMeb::<u64>::new("m", a, c, 8, ArbiterKind::Fixed.build());
        assert_eq!(meb.capacity(), 9);
    }
}
