//! Value Change Dump (VCD) export — open recorded traces in GTKWave or
//! any other waveform viewer.
//!
//! For every channel the dump contains one `valid` bit per thread, a
//! `fired` bit, and the token label as a string variable. Values are
//! emitted only on change, as the format requires.

use std::io::{self, Write};

use crate::channel::ChannelId;
use crate::circuit::Circuit;
use crate::token::Token;
use crate::trace::TraceRecorder;

/// Errors from VCD export.
#[derive(Debug)]
pub enum VcdError {
    /// The circuit has no recorded trace (call
    /// [`Circuit::enable_trace`] before running).
    NoTrace,
    /// The underlying writer failed.
    Io(io::Error),
}

impl std::fmt::Display for VcdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcdError::NoTrace => write!(f, "no trace recorded: enable tracing before running"),
            VcdError::Io(e) => write!(f, "vcd write failed: {e}"),
        }
    }
}

impl std::error::Error for VcdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VcdError::NoTrace => None,
            VcdError::Io(e) => Some(e),
        }
    }
}

impl From<io::Error> for VcdError {
    fn from(e: io::Error) -> Self {
        VcdError::Io(e)
    }
}

/// A channel to include in the dump: id, display name, thread count.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VcdChannel {
    /// Channel to dump.
    pub id: ChannelId,
    /// Signal-group name in the VCD scope tree.
    pub name: String,
    /// Threads (one `valid` bit each).
    pub threads: usize,
}

/// Builds a VCD identifier code (printable ASCII 33–126, excluding
/// whitespace) from an index.
fn id_code(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

/// Sanitizes a channel name into a VCD identifier.
fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if s.is_empty() {
        "ch".to_string()
    } else {
        s
    }
}

/// Sanitizes every channel name into a **unique** VCD scope name.
///
/// `sanitize` is lossy (`a.b` and `a_b` both map to `a_b`), so distinct
/// channels used to collapse into one scope, leaving their variables
/// indistinguishable in the waveform viewer. Colliding names get a
/// `_2`, `_3`, … suffix in channel order.
fn unique_scope_names(channels: &[VcdChannel]) -> Vec<String> {
    let mut used = std::collections::HashSet::new();
    channels
        .iter()
        .map(|ch| {
            let base = sanitize(&ch.name);
            let mut candidate = base.clone();
            let mut n = 1usize;
            while !used.insert(candidate.clone()) {
                n += 1;
                candidate = format!("{base}_{n}");
            }
            candidate
        })
        .collect()
}

/// Encodes a token label for a `$var string` value-change line.
///
/// The VCD change record is `s<value> <id>`: any whitespace inside the
/// value ends it early and shifts the identifier, producing a dump that
/// GTKWave rejects (or silently mis-associates). Whitespace, control
/// characters and the escape character itself are therefore hex-escaped
/// (`\xNN` per UTF-8 byte); all other characters pass through.
fn encode_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        if c == '\\' {
            out.push_str("\\\\");
        } else if c.is_whitespace() || c.is_control() {
            let mut buf = [0u8; 4];
            for b in c.encode_utf8(&mut buf).bytes() {
                out.push_str(&format!("\\x{b:02x}"));
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Writes the recorded cycles of `recorder` for the given channels as a
/// VCD document.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_vcd<W: Write>(
    recorder: &TraceRecorder,
    channels: &[VcdChannel],
    mut w: W,
) -> io::Result<()> {
    writeln!(w, "$version elastic-sim VCD export $end")?;
    writeln!(w, "$timescale 1 ns $end")?;
    writeln!(w, "$scope module top $end")?;

    // Variable ids: per channel, [valid bits...], fired, label.
    let scopes = unique_scope_names(channels);
    let mut next_id = 0usize;
    let mut var_ids: Vec<(Vec<String>, String, String)> = Vec::new();
    for (ch, scope) in channels.iter().zip(&scopes) {
        writeln!(w, "$scope module {scope} $end")?;
        let mut valid_ids = Vec::with_capacity(ch.threads);
        for t in 0..ch.threads {
            let id = id_code(next_id);
            next_id += 1;
            writeln!(w, "$var wire 1 {id} valid_t{t} $end")?;
            valid_ids.push(id);
        }
        let fired_id = id_code(next_id);
        next_id += 1;
        writeln!(w, "$var wire 1 {fired_id} fired $end")?;
        let label_id = id_code(next_id);
        next_id += 1;
        writeln!(w, "$var string 1 {label_id} token $end")?;
        writeln!(w, "$upscope $end")?;
        var_ids.push((valid_ids, fired_id, label_id));
    }
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;

    // State for change detection.
    let mut last_valid: Vec<Vec<Option<bool>>> =
        channels.iter().map(|c| vec![None; c.threads]).collect();
    let mut last_fired: Vec<Option<bool>> = vec![None; channels.len()];
    let mut last_label: Vec<Option<String>> = vec![None; channels.len()];

    for record in recorder.records() {
        let mut changes: Vec<String> = Vec::new();
        for (ci, ch) in channels.iter().enumerate() {
            let tr = &record.channels[ch.id.index()];
            let (valid_ids, fired_id, label_id) = &var_ids[ci];
            for t in 0..ch.threads {
                let v = tr.valid_thread == Some(t);
                if last_valid[ci][t] != Some(v) {
                    changes.push(format!("{}{}", u8::from(v), valid_ids[t]));
                    last_valid[ci][t] = Some(v);
                }
            }
            if last_fired[ci] != Some(tr.fired) {
                changes.push(format!("{}{}", u8::from(tr.fired), fired_id));
                last_fired[ci] = Some(tr.fired);
            }
            let label = tr.label.clone().unwrap_or_default();
            if last_label[ci].as_deref() != Some(label.as_str()) {
                changes.push(format!("s{} {label_id}", encode_label(&label)));
                last_label[ci] = Some(label);
            }
        }
        if !changes.is_empty() {
            writeln!(w, "#{}", record.cycle)?;
            for c in changes {
                writeln!(w, "{c}")?;
            }
        }
    }
    Ok(())
}

impl<T: Token> Circuit<T> {
    /// Exports the recorded trace of **all** channels as a VCD document.
    ///
    /// # Errors
    ///
    /// [`VcdError::NoTrace`] when tracing was never enabled, or a wrapped
    /// I/O error.
    pub fn write_vcd<W: Write>(&self, w: W) -> Result<(), VcdError> {
        let recorder = self.trace().ok_or(VcdError::NoTrace)?;
        let channels: Vec<VcdChannel> = self
            .channel_ids()
            .into_iter()
            .map(|id| VcdChannel {
                id,
                name: self.channel_name(id).to_string(),
                threads: self.channel_threads(id),
            })
            .collect();
        write_vcd(recorder, &channels, w)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::schedule::{ReadyPolicy, Sink, Source};
    use crate::token::Tagged;

    fn traced_circuit() -> Circuit<Tagged> {
        let mut b = CircuitBuilder::<Tagged>::new();
        let ch = b.channel("main bus", 2);
        let mut src = Source::new("src", ch, 2);
        src.extend(0, (0..3).map(|i| Tagged::new(0, i, i)));
        src.extend(1, (0..2).map(|i| Tagged::new(1, i, i)));
        b.add(src);
        b.add(Sink::new(
            "snk",
            ch,
            2,
            ReadyPolicy::Period {
                on: 2,
                off: 1,
                phase: 0,
            },
        ));
        let mut c = b.build().expect("valid");
        c.enable_trace();
        c.run(10).expect("clean");
        c
    }

    #[test]
    fn dump_has_header_vars_and_changes() {
        let c = traced_circuit();
        let mut out = Vec::new();
        c.write_vcd(&mut out).expect("vcd written");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("$timescale 1 ns $end"));
        assert!(text.contains("$scope module main_bus $end"));
        assert!(text.contains("valid_t0"));
        assert!(text.contains("valid_t1"));
        assert!(text.contains("fired"));
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("#0"), "{text}");
        // At least one token label was dumped.
        assert!(text.contains("sA0 ") || text.contains("sB0 "), "{text}");
    }

    #[test]
    fn values_only_emitted_on_change() {
        let c = traced_circuit();
        let mut out = Vec::new();
        c.write_vcd(&mut out).expect("vcd written");
        let text = String::from_utf8(out).expect("utf8");
        // Count timestamp markers: with 10 cycles there must be at most 10,
        // and fewer than 10 if consecutive cycles were identical.
        let stamps = text.lines().filter(|l| l.starts_with('#')).count();
        assert!((1..=10).contains(&stamps), "{stamps}");
    }

    #[test]
    fn no_trace_is_an_error() {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 1);
        let mut src = Source::new("src", ch, 1);
        src.push(0, 1);
        b.add(src);
        b.add(Sink::new("snk", ch, 1, ReadyPolicy::Always));
        let c = b.build().expect("valid");
        let err = c.write_vcd(Vec::new()).unwrap_err();
        assert!(matches!(err, VcdError::NoTrace));
    }

    /// Line-level validity check for the change section: every `$var
    /// string` change must be exactly `s<value> <id>` with a known id and
    /// no stray whitespace inside the value.
    fn check_string_changes(text: &str) {
        let defined: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).expect("id field"))
            .collect();
        let mut saw_string_change = false;
        let body = text
            .split("$enddefinitions $end")
            .nth(1)
            .expect("change section");
        for line in body.lines().filter(|l| l.starts_with('s')) {
            saw_string_change = true;
            let fields: Vec<&str> = line.split(' ').collect();
            assert_eq!(fields.len(), 2, "malformed string change: {line:?}");
            let value = &fields[0][1..];
            assert!(
                value.chars().all(|c| !c.is_whitespace() && !c.is_control()),
                "unescaped whitespace in {line:?}"
            );
            assert!(
                defined.contains(&fields[1]),
                "change references undefined id: {line:?}"
            );
        }
        assert!(saw_string_change, "no string change found:\n{text}");
    }

    #[test]
    fn labels_with_spaces_are_escaped() {
        // String tokens whose labels contain spaces, tabs and newlines —
        // each used to leak raw whitespace into the `s<value> <id>`
        // change record and shift the identifier field.
        let mut b = CircuitBuilder::<String>::new();
        let ch = b.channel("bus", 1);
        let mut src = Source::new("src", ch, 1);
        src.extend(
            0,
            [
                "spaced label".to_string(),
                "tab\tsep".to_string(),
                "multi\nline".to_string(),
                "back\\slash".to_string(),
            ],
        );
        b.add(src);
        b.add(Sink::new("snk", ch, 1, ReadyPolicy::Always));
        let mut c = b.build().expect("valid");
        c.enable_trace();
        c.run(6).expect("clean");

        let mut out = Vec::new();
        c.write_vcd(&mut out).expect("vcd written");
        let text = String::from_utf8(out).expect("utf8");
        check_string_changes(&text);
        assert!(
            text.contains(r"sspaced\x20label"),
            "space not hex-escaped:\n{text}"
        );
        assert!(text.contains(r"stab\x09sep"), "tab not escaped:\n{text}");
        assert!(
            text.contains(r"smulti\x0aline"),
            "newline not escaped:\n{text}"
        );
        assert!(
            text.contains(r"sback\\slash"),
            "escape char not doubled:\n{text}"
        );
    }

    #[test]
    fn default_labels_still_pass_line_check() {
        let c = traced_circuit();
        let mut out = Vec::new();
        c.write_vcd(&mut out).expect("vcd written");
        check_string_changes(&String::from_utf8(out).expect("utf8"));
    }

    #[test]
    fn sanitize_collisions_get_distinct_scopes() {
        // `a.b` and `a_b` both sanitize to `a_b`; the dump must keep them
        // apart or their variables merge into one scope in the viewer.
        let mut b = CircuitBuilder::<u64>::new();
        let c1 = b.channel("a.b", 1);
        let c2 = b.channel("a_b", 1);
        let mut s1 = Source::new("src1", c1, 1);
        s1.push(0, 1);
        let mut s2 = Source::new("src2", c2, 1);
        s2.push(0, 2);
        b.add(s1);
        b.add(s2);
        b.add(Sink::new("k1", c1, 1, ReadyPolicy::Always));
        b.add(Sink::new("k2", c2, 1, ReadyPolicy::Always));
        let mut c = b.build().expect("valid");
        c.enable_trace();
        c.run(3).expect("clean");

        let mut out = Vec::new();
        c.write_vcd(&mut out).expect("vcd written");
        let text = String::from_utf8(out).expect("utf8");
        let scopes: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("$scope module") && !l.contains(" top "))
            .map(|l| l.split_whitespace().nth(2).expect("scope name"))
            .collect();
        assert_eq!(scopes.len(), 2);
        let unique: std::collections::HashSet<&&str> = scopes.iter().collect();
        assert_eq!(unique.len(), 2, "scope names collided: {scopes:?}");
        assert!(scopes.contains(&"a_b"));
        assert!(scopes.contains(&"a_b_2"));
    }

    #[test]
    fn empty_channel_name_gets_fallback_scope() {
        assert_eq!(sanitize("—"), "_");
        assert_eq!(sanitize(""), "ch");
        let chans = [
            VcdChannel {
                id: ChannelId(0),
                name: String::new(),
                threads: 1,
            },
            VcdChannel {
                id: ChannelId(1),
                name: String::new(),
                threads: 1,
            },
        ];
        assert_eq!(unique_scope_names(&chans), vec!["ch", "ch_2"]);
    }

    #[test]
    fn id_codes_are_printable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for n in 0..500 {
            let id = id_code(n);
            assert!(id.chars().all(|c| (33..=126).contains(&(c as u32))));
            assert!(seen.insert(id), "duplicate id for {n}");
        }
    }
}
