//! Old-vs-new simulation kernel ablation: the exhaustive settle sweep
//! (the original kernel, kept as [`EvalMode::Exhaustive`]) against the
//! event-driven dirty-set kernel (`EvalMode::EventDriven`, the default),
//! on the paper's two reference workloads:
//!
//! 1. the Figure 5 pipeline (2 threads, 2 MEB stages, thread B stalled
//!    for a window), for both full and reduced MEBs;
//! 2. the Sec. V-A elastic MD5 circuit (8 threads, one message each).
//!
//! For every workload the two kernels must produce bit-identical sink
//! captures / digests and cycle counts — the ablation asserts this —
//! while the table shows how many `Component::eval` calls the dirty-set
//! worklist and the quiescence fast-path avoid.
//!
//! The campaign itself runs on the [`run_sweep_on`] worker pool. With
//! `--parallel` the binary additionally proves the parallel path
//! byte-identical to the serial one and records the wall-clock scaling
//! curve of a replicated campaign in `BENCH_parallel_sweep.json`.
//!
//! A third axis selects the settle loop's static component ordering
//! (`--schedule {ranked,insertion,reversed}`, default `ranked`), and the
//! binary always finishes with the ranked-schedule ablation: an S = 8
//! backpressured MEB pipeline under every ordering plus the exhaustive
//! oracle, asserting byte-identical captures, a ≥ 1.2× eval saving for
//! the levelized rank order over insertion order, and a one-round settle
//! mean on the straight pipeline. Results land in
//! `BENCH_ranked_schedule.json`.
//!
//! ```text
//! cargo run --release --bin kernel_ablation \
//!     [-- --parallel] [--workers N] [--schedule ranked|insertion|reversed]
//! ```
//!
//! `--workers N` overrides the pool width (by default the host's
//! available parallelism). On single-core hosts the scaling curve is
//! still recorded, but the JSON is annotated `"scaling_valid": false` —
//! wall-clock speedups measured there say nothing about the pool.

use std::time::{Duration, Instant};

use elastic_bench::Fig5Setup;
use elastic_core::{ArbiterKind, MebKind, PipelineConfig, PipelineHarness};
use elastic_md5::{Md5Error, Md5Hasher};
use elastic_sim::{
    available_workers, campaign_key, run_sweep_on, Circuit, EvalMode, KernelBackend, KernelStats,
    ReadyPolicy, ScheduleMode, SharedCircuit, SimError, SimJob, Sink, Source, SweepService, Tagged,
};
use elastic_synth::{ElasticIr, IrNodeKind};

fn header() {
    println!(
        "{:<26} {:<12} {:>8} {:>8} {:>10} {:>8} {:>9}",
        "workload", "kernel", "evals", "rounds", "evals/cyc", "skipped", "quiesced"
    );
    println!("{}", "-".repeat(86));
}

fn row(workload: &str, mode: EvalMode, k: &KernelStats) {
    println!(
        "{:<26} {:<12} {:>8} {:>8} {:>10.2} {:>8} {:>9}  {}",
        workload,
        format!("{mode:?}"),
        k.component_evals,
        k.settle_rounds,
        k.evals_per_cycle(),
        k.components_skipped,
        k.quiesced_cycles,
        hist(k)
    );
}

/// Compact settle-round histogram: `1:912 2:88` means 912 stepped cycles
/// settled in one round and 88 needed two (the last bucket is `8+`).
fn hist(k: &KernelStats) -> String {
    let cells: Vec<String> = k
        .settle_round_hist
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, c)| {
            if i + 1 == k.settle_round_hist.len() {
                format!("{}+:{c}", i + 1)
            } else {
                format!("{}:{c}", i + 1)
            }
        })
        .collect();
    format!("rounds[{}]", cells.join(" "))
}

fn saving(old: &KernelStats, new: &KernelStats) {
    let pct = 100.0 * (1.0 - new.component_evals as f64 / old.component_evals as f64);
    println!("{:>39}  → {pct:.1}% fewer evals\n", "");
}

/// Runs the Figure 5 scenario under `mode` and returns a digest of the
/// per-thread captures plus kernel counters.
fn run_fig5(kind: MebKind, mode: EvalMode, schedule: ScheduleMode) -> Result<RunResult, SimError> {
    let setup = Fig5Setup::paper(kind);
    let cfg = PipelineConfig::free_flowing(2, setup.stages, kind, setup.tokens_per_thread)
        .with_sink_policy(
            1,
            ReadyPolicy::StallWindow {
                from: setup.stall_from,
                to: setup.stall_to,
            },
        )
        .with_eval_mode(mode)
        .with_schedule(schedule);
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(setup.cycles)?;
    let captures: Vec<Vec<(u64, u64)>> = (0..2)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    Ok((format!("{captures:?}"), *h.circuit.stats().kernel()))
}

/// A longer random-stall pipeline where the dirty-set savings compound.
/// `seed` varies the stall pattern so the scaling campaign can replicate
/// the workload into many distinct, equally-heavy jobs.
fn run_stalled(seed: u64, mode: EvalMode, schedule: ScheduleMode) -> Result<RunResult, SimError> {
    const THREADS: usize = 4;
    let mut cfg = PipelineConfig::free_flowing(THREADS, 4, MebKind::Reduced, 64)
        .with_eval_mode(mode)
        .with_schedule(schedule);
    for t in 0..THREADS {
        cfg.sink_policies[t] = ReadyPolicy::Random {
            p: 0.4,
            seed: seed ^ t as u64,
        };
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(1_200)?;
    let captures: Vec<Vec<(u64, u64)>> = (0..THREADS)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    Ok((format!("{captures:?}"), *h.circuit.stats().kernel()))
}

/// The Sec. V-A MD5 circuit: 8 threads, one message each.
fn run_md5(mode: EvalMode) -> Result<RunResult, SimError> {
    let msgs: Vec<Vec<u8>> = (0..8)
        .map(|i| format!("kernel ablation message {i}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let (digests, cycles, kernel) = Md5Hasher::new(8, MebKind::Reduced)
        .with_eval_mode(mode)
        .hash_messages_instrumented(&refs)
        .map_err(|e| match e {
            Md5Error::Sim(s) => s,
            other => panic!("md5 harness misconfigured: {other}"),
        })?;
    Ok((format!("{digests:?} in {cycles} cycles"), kernel))
}

/// One campaign result: digest string + kernel counters.
type RunResult = (String, KernelStats);

/// The ablation campaign: every workload under both kernels, as
/// independent sweep jobs (submission order = table order). `schedule`
/// selects the settle loop's component ordering for the pipeline
/// workloads (the MD5 harness builds its own circuit and always uses the
/// default rank order).
fn campaign(schedule: ScheduleMode) -> (Vec<(String, EvalMode)>, Vec<SimJob<RunResult>>) {
    let mut meta = Vec::new();
    let mut jobs: Vec<SimJob<RunResult>> = Vec::new();
    for kind in [MebKind::Full, MebKind::Reduced] {
        for mode in [EvalMode::Exhaustive, EvalMode::EventDriven] {
            meta.push((format!("fig5 ({kind})"), mode));
            jobs.push(SimJob::new(format!("fig5 {kind} {mode:?}"), move || {
                run_fig5(kind, mode, schedule)
            }));
        }
    }
    for mode in [EvalMode::Exhaustive, EvalMode::EventDriven] {
        meta.push(("4t/4s random stalls".to_string(), mode));
        jobs.push(SimJob::new(format!("stalled {mode:?}"), move || {
            run_stalled(0xA5A5, mode, schedule)
        }));
    }
    for mode in [EvalMode::Exhaustive, EvalMode::EventDriven] {
        meta.push(("md5 (8t, reduced)".to_string(), mode));
        jobs.push(SimJob::new(format!("md5 {mode:?}"), move || run_md5(mode)));
    }
    (meta, jobs)
}

/// Digests of a campaign's results, in submission order (the byte-level
/// identity the parallel path must preserve).
fn digests(results: &[RunResult]) -> Vec<&str> {
    results.iter().map(|(d, _)| d.as_str()).collect()
}

fn one_over(d: Duration, w: Duration) -> f64 {
    d.as_secs_f64() / w.as_secs_f64().max(1e-9)
}

/// Thread/stage shape of the scaling workload (shared with
/// [`run_stalled`]).
const SCALING_THREADS: usize = 4;
const SCALING_STAGES: usize = 4;
const SCALING_TOKENS: u64 = 64;
const SCALING_CYCLES: u64 = 1_200;
const SCALING_SEEDS: u64 = 24;

/// The empty scaling-pipeline prototype: elaborated once per pool worker
/// and rewound by [`Circuit::reset`] between sweep points. Built with
/// zero tokens so a reset instance and a fresh build are identical; each
/// point injects its own tokens and sink policies.
fn scaling_prototype() -> SharedCircuit<Tagged> {
    SharedCircuit::new(|| {
        PipelineHarness::build(PipelineConfig::free_flowing(
            SCALING_THREADS,
            SCALING_STAGES,
            MebKind::Reduced,
            0,
        ))
        .circuit
    })
}

/// Drives one scaling point on a (fresh or reset) prototype instance:
/// configures the kernel mode, injects the tokens, seeds the sink stalls
/// and runs — the reused-circuit equivalent of [`run_stalled`].
fn drive_stalled(
    c: &mut Circuit<Tagged>,
    seed: u64,
    mode: EvalMode,
) -> Result<(RunResult, KernelStats), SimError> {
    c.set_eval_mode(mode);
    {
        let src: &mut Source<Tagged> = c.get_mut("src").expect("harness source");
        for t in 0..SCALING_THREADS {
            src.extend(t, (0..SCALING_TOKENS).map(|i| Tagged::new(t, i, i)));
        }
    }
    {
        let snk: &mut Sink<Tagged> = c.get_mut("snk").expect("harness sink");
        for t in 0..SCALING_THREADS {
            snk.set_policy(
                t,
                ReadyPolicy::Random {
                    p: 0.4,
                    seed: seed ^ t as u64,
                },
            );
        }
    }
    c.run(SCALING_CYCLES)?;
    let snk: &Sink<Tagged> = c.get("snk").expect("harness sink");
    let captures: Vec<Vec<(u64, u64)>> = (0..SCALING_THREADS)
        .map(|t| {
            snk.captured(t)
                .iter()
                .map(|(cyc, tok)| (*cyc, tok.seq))
                .collect()
        })
        .collect();
    let k = *c.stats().kernel();
    Ok(((format!("{captures:?}"), k), k))
}

/// An IR mirror of the scaling pipeline, hashed into the campaign cache
/// key — the structural component of [`campaign_key`]. The closures
/// (sink policies, seeds) are config/seed axes of the key, not
/// structure.
fn scaling_ir_hash() -> u64 {
    let mut ir = ElasticIr::<Tagged>::new();
    let chs: Vec<_> = (0..=SCALING_STAGES)
        .map(|i| ir.channel(format!("p.ch{i}"), SCALING_THREADS))
        .collect();
    ir.add("src", IrNodeKind::Source, vec![], vec![chs[0]]);
    for i in 0..SCALING_STAGES {
        ir.add(
            format!("p.meb{i}"),
            IrNodeKind::Meb {
                kind: MebKind::Reduced,
                arbiter: ArbiterKind::RoundRobin,
                initial: Vec::new(),
                auto: false,
            },
            vec![chs[i]],
            vec![chs[i + 1]],
        );
    }
    ir.add(
        "snk",
        IrNodeKind::Sink {
            capture: true,
            policy: ReadyPolicy::Always,
        },
        vec![chs[SCALING_STAGES]],
        vec![],
    );
    ir.structural_hash()
}

/// Replicated stalled-pipeline campaign for the wall-clock scaling curve
/// (both kernels × many seeds). All points share one prototype, so each
/// pool worker elaborates the pipeline once and resets it per point;
/// `keyed` additionally tags every job for the [`SweepService`] campaign
/// cache.
fn scaling_jobs(keyed: bool) -> Vec<SimJob<RunResult>> {
    let proto = scaling_prototype();
    let ir_hash = if keyed { scaling_ir_hash() } else { 0 };
    let mut jobs = Vec::new();
    for seed in 0..SCALING_SEEDS {
        for mode in [EvalMode::Exhaustive, EvalMode::EventDriven] {
            let point_seed = 0x5eed ^ (seed << 8);
            let mut job =
                SimJob::on_circuit(format!("stalled seed {seed} {mode:?}"), &proto, move |c| {
                    drive_stalled(c, point_seed, mode)
                });
            if keyed {
                // (structure, config, seed): the config axis folds in the
                // kernel mode and the run length.
                let config_hash = campaign_key(mode as u64, SCALING_CYCLES, SCALING_TOKENS);
                job = job.with_cache_key(campaign_key(ir_hash, config_hash, point_seed));
            }
            jobs.push(job);
        }
    }
    jobs
}

/// Best-of-`reps` sweep timing at a fixed worker count, with the
/// digests and actual pool size of the last repetition.
fn best_of(reps: usize, w: usize) -> (Duration, usize, Vec<RunResult>) {
    let mut best = Duration::MAX;
    let mut used = 1;
    let mut results = Vec::new();
    for _ in 0..reps {
        let rep = run_sweep_on(scaling_jobs(false), w);
        best = best.min(rep.wall);
        used = rep.workers_used;
        results = rep.unwrap_all();
    }
    (best, used, results)
}

fn scaling_curve(width: usize) {
    let host = available_workers();
    // Scaling (speedup/efficiency) is only meaningful with ≥ 4 real
    // cores; below that the curve records pool *overhead* instead and
    // the efficiency gate is skipped.
    let scaling_valid = host >= 4;
    if !scaling_valid {
        eprintln!(
            "warning: available_parallelism() == {host} < 4 — recording pool \
             overhead, not parallel speedup \
             (annotating BENCH_parallel_sweep.json with scaling_valid: false)"
        );
    }
    // Always cross the 1→2→4 worker boundary (even on small hosts, so
    // the byte-identity assertion below exercises real threads), then
    // continue to the host's full width.
    let mut worker_counts = vec![1usize, 2, 4];
    for w in [8, 16] {
        if w < width {
            worker_counts.push(w);
        }
    }
    if width > 4 {
        worker_counts.push(width);
    }

    let n_jobs = scaling_jobs(false).len();
    println!(
        "parallel sweep scaling — replicated kernel-ablation campaign \
         ({n_jobs} jobs, {host} cores available, best of 5)\n"
    );
    println!(
        "{:>10} {:>6} {:>10} {:>9} {:>11} {:>10}",
        "requested", "used", "wall ms", "speedup", "efficiency", "overhead"
    );
    println!("{}", "-".repeat(62));

    // Reset-reuse sanity: the shared-prototype campaign must reproduce
    // the fresh-build-per-point campaign bit for bit.
    let fresh: Vec<RunResult> = run_sweep_on(
        (0..SCALING_SEEDS)
            .flat_map(|seed| {
                [EvalMode::Exhaustive, EvalMode::EventDriven].map(|mode| {
                    SimJob::new(format!("fresh seed {seed} {mode:?}"), move || {
                        run_stalled(0x5eed ^ (seed << 8), mode, ScheduleMode::Ranked)
                    })
                })
            })
            .collect(),
        1,
    )
    .unwrap_all();

    let (baseline_wall, _, base_results) = best_of(5, 1);
    assert_eq!(
        digests(&base_results),
        digests(&fresh),
        "reset-then-rerun diverged from fresh-build-per-point"
    );

    struct Point {
        requested: usize,
        used: usize,
        wall: Duration,
        speedup: f64,
        efficiency: f64,
        overhead: f64,
    }
    let mut points = Vec::new();
    for &w in &worker_counts {
        let (wall, used, results) = if w == 1 {
            (baseline_wall, 1, Vec::new())
        } else {
            best_of(5, w)
        };
        if w != 1 {
            assert_eq!(
                digests(&results),
                digests(&base_results),
                "parallel campaign diverged at {w} workers"
            );
        }
        let speedup = one_over(baseline_wall, wall);
        let efficiency = speedup / used as f64;
        let overhead = one_over(wall, baseline_wall) - 1.0;
        println!(
            "{:>10} {:>6} {:>10.1} {:>8.2}x {:>11.2} {:>9.1}%",
            w,
            used,
            wall.as_secs_f64() * 1e3,
            speedup,
            efficiency,
            overhead * 100.0
        );
        points.push(Point {
            requested: w,
            used,
            wall,
            speedup,
            efficiency,
            overhead,
        });
    }

    // Gates (ISSUE 6 acceptance): on a single-core host the pool must
    // cost ≤ 5% over serial at 2 workers; with ≥ 4 cores, 4 workers must
    // reach ≥ 0.7 efficiency. In between neither says anything crisp.
    let at = |w: usize| points.iter().find(|p| p.requested == w);
    if host == 1 {
        let p2 = at(2).expect("2-worker point always measured");
        assert!(
            p2.overhead <= 0.05,
            "2-worker pool overhead {:.1}% exceeds 5% on a 1-core host \
             (wall {:.1} ms vs serial {:.1} ms)",
            p2.overhead * 100.0,
            p2.wall.as_secs_f64() * 1e3,
            baseline_wall.as_secs_f64() * 1e3
        );
        println!(
            "\n1-core host: 2-worker overhead {:.1}% (gate: <= 5%); speedup \
             gates skipped (scaling_valid: false).",
            p2.overhead * 100.0
        );
    } else if scaling_valid {
        let p4 = at(4).expect("4-worker point always measured");
        assert!(
            p4.efficiency >= 0.7,
            "4-worker efficiency {:.2} below 0.7 on a {host}-core host",
            p4.efficiency
        );
        println!(
            "\n{host}-core host: 4-worker efficiency {:.2} (gate: >= 0.7).",
            p4.efficiency
        );
    } else {
        println!(
            "\n{host}-core host: too few cores for the efficiency gate, too \
             many for the overhead gate — curve recorded unasserted."
        );
    }

    // Campaign-cache leg: the same keyed campaign twice through one
    // SweepService — the second submission must answer ≥ 90% (in fact
    // 100%) of its points from memory.
    let service: SweepService<RunResult> = SweepService::new(width);
    let first = service.run(scaling_jobs(true));
    assert_eq!(first.memoized_jobs, 0, "cold cache must not memoize");
    let second = service.run(scaling_jobs(true));
    let cache_jobs = second.jobs.len();
    let memoized = second.memoized_jobs;
    let hit_rate = memoized as f64 / cache_jobs as f64;
    assert!(
        hit_rate >= 0.9,
        "second identical campaign memoized only {:.0}% of {cache_jobs} jobs",
        hit_rate * 100.0
    );
    let first_digests: Vec<RunResult> = first.unwrap_all();
    let second_digests: Vec<RunResult> = second.unwrap_all();
    assert_eq!(
        digests(&first_digests),
        digests(&second_digests),
        "memoized campaign diverged from its first run"
    );
    assert_eq!(
        digests(&second_digests),
        digests(&base_results),
        "keyed campaign diverged from the unkeyed baseline"
    );
    println!(
        "campaign cache: second identical submission memoized {}/{cache_jobs} \
         jobs ({:.0}% hit rate).",
        memoized,
        hit_rate * 100.0
    );

    let json_points: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"workers_requested\": {}, \"workers_used\": {}, \
                 \"wall_ms\": {:.3}, \"speedup\": {:.3}, \"efficiency\": {:.3}, \
                 \"overhead_vs_serial\": {:.3}}}",
                p.requested,
                p.used,
                p.wall.as_secs_f64() * 1e3,
                p.speedup,
                p.efficiency,
                p.overhead
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernel_ablation parallel sweep\",\n  \
         \"campaign\": \"stalled {SCALING_THREADS}t/{SCALING_STAGES}s pipeline, \
         {SCALING_SEEDS} seeds x 2 kernels, shared prototype per worker\",\n  \
         \"jobs\": {n_jobs},\n  \"available_parallelism\": {host},\n  \
         \"timing\": \"best of 5\",\n  \
         \"scaling_valid\": {scaling_valid},\n  \
         \"digests_identical\": true,\n  \
         \"cache\": {{\"second_run_memoized\": {}, \"jobs\": {cache_jobs}, \
         \"hit_rate\": {hit_rate:.3}}},\n  \"points\": [\n{}\n  ]\n}}\n",
        memoized,
        json_points.join(",\n")
    );
    std::fs::write("BENCH_parallel_sweep.json", json).expect("write BENCH_parallel_sweep.json");
    println!("\nwrote BENCH_parallel_sweep.json");
}

/// The S = 8 ranked-schedule workload: an 8-thread, 8-stage reduced-MEB
/// pipeline. `backpressured` adds irregular per-thread sink stalls so
/// downstream ready keeps changing — the case where evaluation order
/// decides how many settle rounds a ready change costs.
fn run_pipeline_s8(
    backpressured: bool,
    mode: EvalMode,
    schedule: ScheduleMode,
    backend: KernelBackend,
) -> Result<RunResult, SimError> {
    const THREADS: usize = 8;
    const STAGES: usize = 8;
    let fuser = match backend {
        KernelBackend::Fused => Some(elastic_synth::fuse as _),
        KernelBackend::Interpreted => None,
    };
    let mut cfg = PipelineConfig::free_flowing(THREADS, STAGES, MebKind::Reduced, 64)
        .with_eval_mode(mode)
        .with_schedule(schedule)
        .with_backend(backend, fuser);
    if backpressured {
        for t in 0..THREADS {
            cfg.sink_policies[t] = ReadyPolicy::Random {
                p: 0.35,
                seed: 0xC0FFEE ^ t as u64,
            };
        }
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(1_500)?;
    let captures: Vec<Vec<(u64, u64)>> = (0..THREADS)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    Ok((format!("{captures:?}"), *h.circuit.stats().kernel()))
}

/// The ranked-schedule ablation (ISSUE 4 acceptance): the backpressured
/// S = 8 pipeline under every static ordering, the fused backend on the
/// rank schedule, and the exhaustive oracle. Asserts byte-identical
/// captures across all five runs, a ≥ 1.2× settle-phase eval saving for
/// rank order over insertion order, identical eval/round counts between
/// the fused and interpreted backends, and a ≤ 1.05 settle-round mean on
/// the straight (always-ready) pipeline — then writes
/// `BENCH_ranked_schedule.json`.
fn ranked_schedule_ablation() {
    println!("ranked-schedule ablation — 8 threads x 8 reduced-MEB stages, random sink stalls\n");
    println!(
        "{:<12} {:<12} {:>8} {:>8} {:>10} {:>9} {:>9}",
        "schedule", "kernel", "evals", "rounds", "evals/cyc", "mean rnd", "wall ms"
    );
    println!("{}", "-".repeat(74));

    let configs = [
        (
            "ranked",
            EvalMode::EventDriven,
            ScheduleMode::Ranked,
            KernelBackend::Interpreted,
        ),
        (
            "insertion",
            EvalMode::EventDriven,
            ScheduleMode::Insertion,
            KernelBackend::Interpreted,
        ),
        (
            "reversed",
            EvalMode::EventDriven,
            ScheduleMode::Reversed,
            KernelBackend::Interpreted,
        ),
        (
            "fused",
            EvalMode::EventDriven,
            ScheduleMode::Ranked,
            KernelBackend::Fused,
        ),
        (
            "oracle",
            EvalMode::Exhaustive,
            ScheduleMode::Ranked,
            KernelBackend::Interpreted,
        ),
    ];
    let mut rows = Vec::new();
    for (label, mode, schedule, backend) in configs {
        let start = Instant::now();
        let (digest, k) = run_pipeline_s8(true, mode, schedule, backend)
            .expect("ranked ablation workload runs clean");
        let wall = start.elapsed();
        println!(
            "{:<12} {:<12} {:>8} {:>8} {:>10.2} {:>9.3} {:>9.2}  {}",
            label,
            format!("{mode:?}"),
            k.component_evals,
            k.settle_rounds,
            k.evals_per_cycle(),
            k.rounds_per_cycle(),
            wall.as_secs_f64() * 1e3,
            hist(&k)
        );
        rows.push((label, digest, k, wall));
    }

    for (label, digest, _, _) in &rows[1..] {
        assert_eq!(
            digest, &rows[0].1,
            "{label}: captures diverged from the ranked schedule"
        );
    }
    let ranked = &rows[0].2;
    let insertion = &rows[1].2;
    let evals_ratio = insertion.component_evals as f64 / ranked.component_evals as f64;
    assert!(
        evals_ratio >= 1.2,
        "rank schedule saved only {evals_ratio:.3}x evals over insertion order (need >= 1.2x)"
    );

    // The fused backend runs the same rank schedule through the compiled
    // op table — same captures (asserted above), same work performed.
    let fused = &rows[3].2;
    assert_eq!(
        fused.component_evals, ranked.component_evals,
        "fused backend changed the evaluation count vs the interpreted rank schedule"
    );
    assert_eq!(
        fused.settle_rounds, ranked.settle_rounds,
        "fused backend changed the settle-round count vs the interpreted rank schedule"
    );
    let breakdown = fused.fused_op_breakdown();
    if !breakdown.is_empty() {
        let cells: Vec<String> = breakdown
            .iter()
            .map(|(kind, n)| format!("{} {}", kind.label(), n))
            .collect();
        println!("\nfused per-op evals: {}", cells.join(", "));
    }

    // The straight pipeline: with nothing changing downstream, the rank
    // order must settle in (essentially) one round every stepped cycle.
    let (_, straight) = run_pipeline_s8(
        false,
        EvalMode::EventDriven,
        ScheduleMode::Ranked,
        KernelBackend::Interpreted,
    )
    .expect("straight pipeline runs clean");
    let straight_mean = straight.rounds_per_cycle();
    assert!(
        straight_mean <= 1.05,
        "straight pipeline settle-round mean {straight_mean:.3} exceeds 1.05"
    );

    println!(
        "\nidentical captures across ranked/insertion/reversed/fused/oracle; rank\n\
         order saves {evals_ratio:.2}x evals under backpressure, the fused backend\n\
         performs the identical eval/round counts, and the straight pipeline\n\
         settles in {straight_mean:.3} rounds/cycle (rank width {}).\n",
        ranked.rank_width
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|(label, _, k, wall)| {
            let hist_cells: Vec<String> = k.settle_round_hist.iter().map(u64::to_string).collect();
            format!(
                "    {{\"schedule\": \"{label}\", \"kernel\": \"{}\", \"evals\": {}, \
                 \"settle_rounds\": {}, \"stepped_cycles\": {}, \"evals_per_cycle\": {:.3}, \
                 \"settle_rounds_mean\": {:.4}, \"wall_ms\": {:.3}, \"round_hist\": [{}]}}",
                match *label {
                    "oracle" => "exhaustive",
                    "fused" => "fused",
                    _ => "event_driven",
                },
                k.component_evals,
                k.settle_rounds,
                k.stepped_cycles,
                k.evals_per_cycle(),
                k.rounds_per_cycle(),
                wall.as_secs_f64() * 1e3,
                hist_cells.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ranked schedule ablation\",\n  \
         \"workload\": \"8 threads x 8 reduced-MEB stages, random sink stalls (p=0.35)\",\n  \
         \"rank_width\": {},\n  \"digests_identical\": true,\n  \
         \"evals_ratio_insertion_over_ranked\": {evals_ratio:.3},\n  \
         \"straight_pipeline_settle_rounds_mean\": {straight_mean:.4},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        ranked.rank_width,
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_ranked_schedule.json", json).expect("write BENCH_ranked_schedule.json");
    println!("wrote BENCH_ranked_schedule.json");
}

fn parse_schedule(s: &str) -> ScheduleMode {
    match s {
        "ranked" => ScheduleMode::Ranked,
        "insertion" => ScheduleMode::Insertion,
        "reversed" => ScheduleMode::Reversed,
        other => panic!("--schedule takes ranked|insertion|reversed, got {other}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let parallel = args.iter().any(|a| a == "--parallel");
    let workers_override: Option<usize> = args.iter().position(|a| a == "--workers").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .expect("--workers takes a positive integer")
    });
    let schedule = args
        .iter()
        .position(|a| a == "--schedule")
        .map(|i| {
            parse_schedule(
                args.get(i + 1)
                    .expect("--schedule takes ranked|insertion|reversed"),
            )
        })
        .unwrap_or_default();
    let width = workers_override.unwrap_or_else(available_workers);
    let (meta, jobs) = campaign(schedule);

    // The table itself: run the campaign on the pool (all cores when
    // --parallel, serial baseline otherwise) — results always arrive in
    // submission order, so the table layout is identical either way.
    let workers = if parallel { width } else { 1 };
    let report = run_sweep_on(jobs, workers);
    if parallel {
        // The pool clamps to the job count; label the table run with the
        // width that actually executed, not just the request.
        println!(
            "ablation campaign pool: requested {} worker(s), used {}\n",
            report.workers_requested, report.workers_used
        );
    }
    let results = report.unwrap_all();

    header();
    for pair in meta.chunks(2).zip(results.chunks(2)) {
        let ((name, _), results) = (&pair.0[0], pair.1);
        let (oracle_digest, oracle) = &results[0];
        let (fast_digest, fast) = &results[1];
        assert_eq!(
            oracle_digest, fast_digest,
            "{name}: captures diverged between kernels"
        );
        row(name, EvalMode::Exhaustive, oracle);
        row(name, EvalMode::EventDriven, fast);
        saving(oracle, fast);
    }
    println!(
        "identical captures/digests in every pair — the dirty-set kernel is\n\
         observationally equivalent to the exhaustive oracle (docs/kernel.md).\n"
    );

    ranked_schedule_ablation();

    if parallel {
        // Prove the parallel path byte-identical to the serial one on
        // the real campaign, then record the scaling curve.
        let serial = run_sweep_on(campaign(schedule).1, 1).unwrap_all();
        assert_eq!(
            digests(&serial),
            digests(&results),
            "parallel ablation campaign diverged from the serial baseline"
        );
        println!("serial and parallel campaign digests are byte-identical.\n");
        scaling_curve(width);
    }
}
