//! Transforming optimization passes: data-driven MEB depth sizing,
//! slack matching on reconvergent fork/join paths, and buffer retiming
//! across combinational transforms.
//!
//! Where [`crate::passes`] holds the rewrite/lint infrastructure, this
//! module holds the passes that *optimize*: each one mutates the IR and
//! reports a machine-readable [`PassDelta`] per change, so a closed-loop
//! tuner (the `synth_optimize` bench bin) can delta-check the cost
//! model's re-derived inventory, replay accepted transforms via
//! [`TransformSpec`], and render the diff with [`dot_with_deltas`].
//!
//! All three passes exploit the paper's central property: buffer
//! placement and sizing are *latency-insensitive* degrees of freedom. A
//! legal transform changes timing (and therefore throughput and area)
//! but never per-thread token streams, which is what lets an autotuner
//! accept a candidate purely on a measured (throughput, LEs) point plus
//! a digest-equality check against the exhaustive oracle.
//!
//! | pass | what it does | legality |
//! |---|---|---|
//! | [`MebDepthSizing`] | resizes FIFO-MEB depths from a measured [`FeedbackProfile`] | always legal (capacity change) |
//! | [`SlackMatching`] | inserts buffers on the shallow side of reconvergent fork paths | always legal (buffer insertion) |
//! | [`Retiming`] | moves an EB/MEB across an adjacent 1→1 `Transform` | pure transform, no initial tokens, cycle cover re-checked |

use crate::ir::{ElasticIr, IrChannelId, IrNodeId, IrNodeKind, IrNodeTag};
use crate::passes::{Pass, PassDelta, PassError, PassReport, RetimeDirection};
use elastic_core::{ArbiterKind, MebKind};
use elastic_sim::{FeedbackProfile, Token};

/// Resizes FIFO-MEB depths from measured backpressure: for every MEB
/// whose *input* channel appears in the [`FeedbackProfile`], the pass
/// derives a target depth from the channel's occupancy histogram (the
/// mean backlog of its backpressure streaks, rounded up and clamped to
/// `1..=max_depth`) and rewrites `Fifo` MEBs whose depth disagrees.
///
/// An input-channel stall means *this* buffer was full while upstream
/// offered a token, and the streak length bounds the backlog a deeper
/// FIFO could have absorbed — so the histogram is exactly the sizing
/// signal. A channel that never stalls sizes to depth 1 (capacity the
/// design never used is area for free).
///
/// With [`converting`](Self::converting), `Full`/`Reduced` MEBs are also
/// rewritten to the sized FIFO ablation — the move that trades the
/// paper's Table I microarchitectures against measured demand.
pub struct MebDepthSizing {
    profile: FeedbackProfile,
    max_depth: usize,
    convert: bool,
}

impl MebDepthSizing {
    /// A sizing pass over `profile`, resizing existing FIFO MEBs only,
    /// with depths clamped to `1..=8`.
    pub fn new(profile: FeedbackProfile) -> Self {
        Self {
            profile,
            max_depth: 8,
            convert: false,
        }
    }

    /// Sets the depth clamp (chainable; clamped to ≥ 1).
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth.max(1);
        self
    }

    /// Also convert `Full`/`Reduced` MEBs to sized FIFOs (chainable).
    #[must_use]
    pub fn converting(mut self) -> Self {
        self.convert = true;
        self
    }

    /// The depth the profile suggests for a buffer fed by `channel`:
    /// `ceil(mean backlog)` of the channel's backpressure streaks,
    /// clamped to `1..=max_depth`; `None` when the channel was not
    /// measured.
    pub fn suggested_depth(&self, channel: &str) -> Option<usize> {
        let fb = self.profile.channel(channel)?;
        let depth = fb.mean_backlog().ceil() as usize;
        Some(depth.clamp(1, self.max_depth))
    }
}

impl<T: Token> Pass<T> for MebDepthSizing {
    fn name(&self) -> &'static str {
        "meb-depth-sizing"
    }

    fn run(&mut self, ir: &mut ElasticIr<T>) -> Result<PassReport, PassError> {
        let mut plan: Vec<(IrNodeId, MebKind, MebKind)> = Vec::new();
        let mut checked = 0;
        for index in 0..ir.node_count() {
            let id = crate::ir::node_id(index);
            let IrNodeTag::Meb(kind) = ir.node(id).tag() else {
                continue;
            };
            checked += 1;
            let input = ir.node(id).inputs()[0];
            let Some(depth) = self.suggested_depth(&ir.channel_info(input).name) else {
                continue;
            };
            let resize = match kind {
                MebKind::Fifo { depth: d } => d != depth,
                MebKind::Full | MebKind::Reduced => self.convert,
            };
            if resize {
                plan.push((id, kind, MebKind::Fifo { depth }));
            }
        }

        let mut deltas = Vec::new();
        for (id, from, to) in plan {
            let threads = ir.node_threads(id);
            let width = ir.node_width(id);
            let name = ir.node(id).name().to_string();
            if let IrNodeKind::Meb { kind, .. } = ir.node_mut(id).kind_mut() {
                *kind = to;
            }
            deltas.push(PassDelta::Resized {
                node: name,
                from,
                to,
                threads,
                width,
            });
        }
        Ok(
            PassReport::new(<Self as Pass<T>>::name(self), deltas.len(), checked)
                .with_deltas(deltas),
        )
    }
}

/// Inserts slack buffers on reconvergent fork paths with unbalanced
/// buffering: for every [`Fork`](IrNodeTag::Fork), the pass follows each
/// output down its linear chain (1-output nodes) until the chains
/// reconverge at a [`Join`](IrNodeTag::Join) or
/// [`Merge`](IrNodeTag::Merge), counts the handshake-registering cut
/// nodes on each chain, and inserts MEBs at the head of the shallower
/// chain until the counts match.
///
/// The imbalance matters because an eager fork holds its input until
/// *every* output accepts, and a join fires only when *every* input
/// offers: a short unbuffered path couples the fork directly to the
/// join's wait for the deep path, serializing iterations that the slack
/// buffers (the "relax instantly" reorder tolerance) would pipeline.
pub struct SlackMatching {
    kind: MebKind,
    arbiter: ArbiterKind,
    limit: usize,
}

impl SlackMatching {
    /// A slack-matching pass inserting buffers of the given
    /// microarchitecture (round-robin arbitration, no insertion limit).
    pub fn new(kind: MebKind) -> Self {
        Self {
            kind,
            arbiter: ArbiterKind::RoundRobin,
            limit: usize::MAX,
        }
    }

    /// Sets the inserted buffers' arbitration policy (chainable).
    #[must_use]
    pub fn with_arbiter(mut self, arbiter: ArbiterKind) -> Self {
        self.arbiter = arbiter;
        self
    }

    /// Caps the total number of inserted buffers (chainable).
    #[must_use]
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }
}

/// A fork output's walk to reconvergence: the channels of the linear
/// chain plus the number of cycle-cutting (buffering) nodes on it.
struct ChainEnd {
    /// Node where the chain ended (a join/merge), if it reconverged.
    sink: Option<IrNodeId>,
    /// First channel of the chain (the fork output) — where slack is
    /// inserted.
    head: IrChannelId,
    /// Cut nodes (EB/MEB/latency) seen along the chain.
    cuts: usize,
}

/// Follows a linear chain from `start` until a join/merge, a node with
/// fan-out (nested fork/branch — give up), an endpoint, or a length cap
/// (feedback protection).
fn walk_chain<T: Token>(ir: &ElasticIr<T>, start: IrChannelId) -> ChainEnd {
    let mut cuts = 0;
    let mut ch = start;
    for _ in 0..ir.node_count() + 1 {
        let Some(reader) = ir.reader_of(ch) else {
            break;
        };
        let tag = ir.node(reader).tag();
        if matches!(tag, IrNodeTag::Join | IrNodeTag::Merge) {
            return ChainEnd {
                sink: Some(reader),
                head: start,
                cuts,
            };
        }
        if tag.cuts_cycles() {
            cuts += 1;
        }
        let outs = ir.node(reader).outputs();
        if outs.len() != 1 {
            break;
        }
        ch = outs[0];
    }
    ChainEnd {
        sink: None,
        head: start,
        cuts,
    }
}

impl<T: Token> Pass<T> for SlackMatching {
    fn name(&self) -> &'static str {
        "slack-matching"
    }

    fn run(&mut self, ir: &mut ElasticIr<T>) -> Result<PassReport, PassError> {
        // Plan first (immutable walk), then mutate: insertion invalidates
        // nothing because new nodes/channels append at the end.
        let mut plan: Vec<(IrChannelId, usize)> = Vec::new();
        let mut checked = 0;
        let mut budget = self.limit;
        for index in 0..ir.node_count() {
            let id = crate::ir::node_id(index);
            if ir.node(id).tag() != IrNodeTag::Fork {
                continue;
            }
            checked += 1;
            let chains: Vec<ChainEnd> = ir
                .node(id)
                .outputs()
                .iter()
                .map(|&out| walk_chain(ir, out))
                .collect();
            // For every pair of chains meeting at the same join/merge,
            // top the shallower one up to the deeper one's cut count.
            let deepest: usize = chains
                .iter()
                .filter(|c| c.sink.is_some())
                .map(|c| c.cuts)
                .max()
                .unwrap_or(0);
            for chain in &chains {
                let Some(sink) = chain.sink else { continue };
                let reconverges = chains
                    .iter()
                    .any(|o| o.head != chain.head && o.sink == Some(sink));
                if !reconverges || chain.cuts >= deepest {
                    continue;
                }
                let missing = (deepest - chain.cuts).min(budget);
                if missing > 0 {
                    plan.push((chain.head, missing));
                    budget -= missing;
                }
            }
        }

        let mut deltas = Vec::new();
        for (head, count) in plan {
            let mut ch = head;
            for _ in 0..count {
                let channel_name = ir.channel_info(ch).name.clone();
                let node_name = unique_name(format!("slack:{channel_name}"), |n| {
                    ir.node_named(n).is_some()
                });
                let (buf, tail) = insert_buffer_on(ir, ch, &node_name, self.kind, self.arbiter)?;
                deltas.push(PassDelta::Inserted {
                    node: ir.node(buf).name().to_string(),
                    channel: channel_name,
                    kind: self.kind,
                    threads: ir.node_threads(buf),
                    width: ir.node_width(buf),
                });
                ch = tail;
            }
        }
        Ok(
            PassReport::new(<Self as Pass<T>>::name(self), deltas.len(), checked)
                .with_deltas(deltas),
        )
    }
}

/// `base` if the predicate clears it, else the first free `base:{i}` —
/// generated names must stay unique so delta replay and the cost
/// model's name-keyed lookups stay unambiguous.
fn unique_name(base: String, taken: impl Fn(&str) -> bool) -> String {
    if !taken(&base) {
        return base;
    }
    (1..)
        .map(|i| format!("{base}:{i}"))
        .find(|cand| !taken(cand))
        .expect("some suffix is free")
}

/// Splices a new MEB onto `ch`: the buffer takes over `ch` as its input,
/// a fresh tail channel (same threads/width, name `<ch>+slack`,
/// uniquified) carries its output, and `ch`'s original reader is rewired
/// to the tail. Returns the new node and the tail channel.
fn insert_buffer_on<T: Token>(
    ir: &mut ElasticIr<T>,
    ch: IrChannelId,
    name: &str,
    kind: MebKind,
    arbiter: ArbiterKind,
) -> Result<(IrNodeId, IrChannelId), PassError> {
    let reader = ir.reader_of(ch).ok_or_else(|| PassError::NoReader {
        channel: ir.channel_info(ch).name.clone(),
    })?;
    let info = ir.channel_info(ch).clone();
    let tail_name = unique_name(format!("{}+slack", info.name), |n| {
        ir.channel_named(n).is_some()
    });
    let tail = match info.width {
        Some(w) => ir.channel_with_width(tail_name, info.threads, w),
        None => ir.channel(tail_name, info.threads),
    };
    for port in ir.node_mut(reader).inputs_mut() {
        if *port == ch {
            *port = tail;
            break;
        }
    }
    let buf = ir.add(
        name,
        IrNodeKind::Meb {
            kind,
            arbiter,
            initial: Vec::new(),
            auto: true,
        },
        vec![ch],
        vec![tail],
    );
    Ok((buf, tail))
}

/// Moves one named EB/MEB across the adjacent pure
/// [`Transform`](IrNodeTag::Transform), in the given
/// [`RetimeDirection`] — the elastic version of register retiming.
///
/// Legality (checked, reported as
/// [`PassError::IllegalRetiming`]):
///
/// * the target is an EB or MEB with one input and one output;
/// * a MEB holds no initial tokens (they would have to be mapped
///   through the transform's function);
/// * the neighbour in the move direction is a 1→1 `Transform` — pure
///   combinational, so commuting it with a buffer permutes *where* the
///   stream is stored, never the stream itself;
/// * the move preserves the EB/MEB cycle cover: the pass re-runs
///   [`CycleCoverLint`](crate::passes::CycleCoverLint) on the mutated IR
///   and reverts the swap if a cycle became uncovered (it cannot on a
///   linted single-reader netlist — any cycle through the buffer also
///   traverses the adjacent transform — but the check keeps `build()`
///   acceptance a theorem rather than an argument).
pub struct Retiming {
    node: String,
    direction: RetimeDirection,
}

impl Retiming {
    /// A retiming pass moving the buffer named `node` in `direction`.
    pub fn new(node: impl Into<String>, direction: RetimeDirection) -> Self {
        Self {
            node: node.into(),
            direction,
        }
    }
}

impl Retiming {
    /// The (buffer, transform) swap: rewires the two nodes' single
    /// ports so the transform takes the buffer's outer channel and the
    /// buffer takes the transform's. Symmetric, so calling it again
    /// reverts the move.
    fn swap<T: Token>(ir: &mut ElasticIr<T>, buf: IrNodeId, xform: IrNodeId) {
        let (b_in, b_out) = (ir.node(buf).inputs()[0], ir.node(buf).outputs()[0]);
        let (t_in, t_out) = (ir.node(xform).inputs()[0], ir.node(xform).outputs()[0]);
        if b_out == t_in {
            // Forward: D→a→Buf→b→T→c becomes D→a→T→b→Buf→c.
            ir.node_mut(xform).inputs_mut()[0] = b_in;
            ir.node_mut(xform).outputs_mut()[0] = b_out;
            ir.node_mut(buf).inputs_mut()[0] = t_in;
            ir.node_mut(buf).outputs_mut()[0] = t_out;
        } else {
            // Backward: D→a→T→b→Buf→c becomes D→a→Buf→b→T→c.
            ir.node_mut(buf).inputs_mut()[0] = t_in;
            ir.node_mut(buf).outputs_mut()[0] = t_out;
            ir.node_mut(xform).inputs_mut()[0] = b_in;
            ir.node_mut(xform).outputs_mut()[0] = b_out;
        }
    }
}

impl<T: Token> Pass<T> for Retiming {
    fn name(&self) -> &'static str {
        "retiming"
    }

    fn run(&mut self, ir: &mut ElasticIr<T>) -> Result<PassReport, PassError> {
        let illegal = |reason: &str| PassError::IllegalRetiming {
            node: self.node.clone(),
            reason: reason.to_string(),
        };
        let buf = ir
            .node_named(&self.node)
            .ok_or_else(|| PassError::NoSuchNode {
                node: self.node.clone(),
            })?;
        let kind = match ir.node(buf).tag() {
            IrNodeTag::Eb => None,
            IrNodeTag::Meb(k) => Some(k),
            _ => return Err(illegal("not an EB/MEB")),
        };
        if ir.node(buf).inputs().len() != 1 || ir.node(buf).outputs().len() != 1 {
            return Err(illegal("buffer is not 1-input/1-output"));
        }
        if let IrNodeKind::Meb { initial, .. } = ir.node(buf).kind() {
            if !initial.is_empty() {
                return Err(illegal("buffer holds initial tokens"));
            }
        }
        let xform = match self.direction {
            RetimeDirection::Forward => ir.reader_of(ir.node(buf).outputs()[0]),
            RetimeDirection::Backward => ir.driver_of(ir.node(buf).inputs()[0]),
        }
        .ok_or_else(|| illegal("buffer has no neighbour in the move direction"))?;
        if ir.node(xform).tag() != IrNodeTag::Transform {
            return Err(illegal(
                "neighbour in the move direction is not a pure transform",
            ));
        }
        debug_assert!(
            ir.node(xform).inputs().len() == 1 && ir.node(xform).outputs().len() == 1,
            "transforms are 1→1 by construction"
        );

        let from_width = ir.node_width(buf);
        Self::swap(ir, buf, xform);
        if let Err(e) = crate::passes::CycleCoverLint.run(ir) {
            Self::swap(ir, buf, xform); // revert
            return Err(match e {
                PassError::UnbufferedCycle { nodes } => PassError::IllegalRetiming {
                    node: self.node.clone(),
                    reason: format!("move would uncover the cycle {}", nodes.join(" -> ")),
                },
                other => other,
            });
        }
        let to_width = ir.node_width(buf);

        let delta = PassDelta::Moved {
            node: self.node.clone(),
            across: ir.node(xform).name().to_string(),
            direction: self.direction,
            kind,
            threads: ir.node_threads(buf),
            from_width,
            to_width,
        };
        Ok(PassReport::new(<Self as Pass<T>>::name(self), 1, 1).with_deltas(vec![delta]))
    }
}

/// A concrete, replayable transform candidate — the unit of the
/// autotuner's accept/reject loop. [`ElasticIr`] is not `Clone` (it owns
/// boxed closures), so an optimizer holds an IR *factory* plus the list
/// of accepted `TransformSpec`s and re-applies them to every fresh
/// build; a spec is therefore fully named (node/channel strings, no
/// handles) and deterministic.
///
/// Proposal passes map onto specs naturally: a
/// [`PassDelta::Resized`] becomes a [`Substitute`](Self::Substitute), an
/// [`PassDelta::Inserted`] becomes an
/// [`InsertSlack`](Self::InsertSlack), a [`PassDelta::Moved`] becomes a
/// [`Retime`](Self::Retime) (see [`TransformSpec::from_delta`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TransformSpec {
    /// Retarget the named MEB's microarchitecture.
    Substitute {
        /// Target MEB node.
        node: String,
        /// New microarchitecture.
        kind: MebKind,
    },
    /// Insert a slack MEB on the named channel.
    InsertSlack {
        /// Channel to buffer.
        channel: String,
        /// Inserted buffer's microarchitecture.
        kind: MebKind,
    },
    /// Move the named buffer across its adjacent transform.
    Retime {
        /// Target EB/MEB node.
        node: String,
        /// Move direction.
        direction: RetimeDirection,
    },
}

impl TransformSpec {
    /// The spec that replays `delta` on a fresh IR.
    pub fn from_delta(delta: &PassDelta) -> TransformSpec {
        match delta {
            PassDelta::Resized { node, to, .. } => TransformSpec::Substitute {
                node: node.clone(),
                kind: *to,
            },
            PassDelta::Inserted { channel, kind, .. } => TransformSpec::InsertSlack {
                channel: channel.clone(),
                kind: *kind,
            },
            PassDelta::Moved {
                node, direction, ..
            } => TransformSpec::Retime {
                node: node.clone(),
                direction: *direction,
            },
        }
    }

    /// Applies the spec to `ir`, returning the pass report (with its
    /// [`PassDelta`]s).
    ///
    /// # Errors
    ///
    /// Whatever the underlying pass reports — plus
    /// [`PassError::NoSuchNode`] for a vanished channel name on
    /// [`InsertSlack`](Self::InsertSlack).
    pub fn apply<T: Token>(&self, ir: &mut ElasticIr<T>) -> Result<PassReport, PassError> {
        match self {
            TransformSpec::Substitute { node, kind } => {
                crate::passes::MebSubstitution::named(node.clone(), *kind).run(ir)
            }
            TransformSpec::InsertSlack { channel, kind } => {
                let ch = ir
                    .channel_named(channel)
                    .ok_or_else(|| PassError::NoSuchNode {
                        node: channel.clone(),
                    })?;
                let name = unique_name(format!("slack:{channel}"), |n| ir.node_named(n).is_some());
                let (buf, _) = insert_buffer_on(ir, ch, &name, *kind, ArbiterKind::RoundRobin)?;
                let delta = PassDelta::Inserted {
                    node: name.clone(),
                    channel: channel.clone(),
                    kind: *kind,
                    threads: ir.node_threads(buf),
                    width: ir.node_width(buf),
                };
                Ok(PassReport::new("insert-slack", 1, 1).with_deltas(vec![delta]))
            }
            TransformSpec::Retime { node, direction } => {
                Retiming::new(node.clone(), *direction).run(ir)
            }
        }
    }

    /// A one-line human-readable rendering (for logs and JSON reports).
    pub fn describe(&self) -> String {
        match self {
            TransformSpec::Substitute { node, kind } => {
                format!("substitute {node} -> {kind:?}")
            }
            TransformSpec::InsertSlack { channel, kind } => {
                format!("insert {kind:?} slack on {channel}")
            }
            TransformSpec::Retime { node, direction } => {
                format!("retime {node} {direction}")
            }
        }
    }
}

/// Per-node DOT attribute styles for a set of deltas: inserted buffers
/// render green, resized orange, moved blue (all with `penwidth=2`), so
/// an accepted transform is visually auditable on the rendered netlist.
pub fn delta_styles(deltas: &[PassDelta]) -> Vec<(String, String)> {
    deltas
        .iter()
        .map(|d| match d {
            PassDelta::Inserted { node, .. } => {
                (node.clone(), "color=green, penwidth=2".to_string())
            }
            PassDelta::Resized { node, .. } => {
                (node.clone(), "color=orange, penwidth=2".to_string())
            }
            PassDelta::Moved { node, .. } => (node.clone(), "color=blue, penwidth=2".to_string()),
        })
        .collect()
}

/// Renders `ir` in DOT with the buffers touched by `deltas`
/// highlighted (see [`delta_styles`]).
pub fn dot_with_deltas<T: Token>(ir: &ElasticIr<T>, deltas: &[PassDelta]) -> String {
    ir.to_netlist().to_dot_styled(&delta_styles(deltas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassManager;
    use elastic_core::ForkMode;
    use elastic_sim::{ChannelFeedback, ReadyPolicy, OCCUPANCY_BUCKETS};

    fn fifo(depth: usize) -> IrNodeKind<u64> {
        IrNodeKind::Meb {
            kind: MebKind::Fifo { depth },
            arbiter: ArbiterKind::RoundRobin,
            initial: Vec::new(),
            auto: true,
        }
    }

    fn sink() -> IrNodeKind<u64> {
        IrNodeKind::Sink {
            capture: false,
            policy: ReadyPolicy::Always,
        }
    }

    /// src -> a -> buf -> b -> snk, with `buf` of the given kind.
    fn chain_ir(kind: IrNodeKind<u64>) -> ElasticIr<u64> {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel_with_width("a", 2, 8);
        let b = ir.channel_with_width("b", 2, 8);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add("buf", kind, vec![a], vec![b]);
        ir.add("snk", sink(), vec![b], vec![]);
        ir
    }

    /// A profile whose only channel saw `streaks` backpressure streaks,
    /// every one `len` cycles long.
    fn profile_with(channel: &str, len: usize, streaks: u64) -> FeedbackProfile {
        let mut hist = [0u64; OCCUPANCY_BUCKETS];
        if len > 0 {
            hist[(len - 1).min(OCCUPANCY_BUCKETS - 1)] = streaks;
        }
        FeedbackProfile {
            cycles: 1000,
            channels: vec![ChannelFeedback {
                name: channel.to_string(),
                threads: 2,
                transfers: 100,
                stall_cycles: len as u64 * streaks,
                utilization: 0.5,
                stall_rate: 0.1,
                occupancy_hist: hist,
            }],
        }
    }

    #[test]
    fn depth_sizing_resizes_fifo_from_measured_backlog() {
        let mut ir = chain_ir(fifo(1));
        let mut pass = MebDepthSizing::new(profile_with("a", 3, 5));
        let report = Pass::<u64>::run(&mut pass, &mut ir).expect("sizing");
        assert_eq!(report.changed, 1);
        assert_eq!(
            report.deltas,
            vec![PassDelta::Resized {
                node: "buf".to_string(),
                from: MebKind::Fifo { depth: 1 },
                to: MebKind::Fifo { depth: 3 },
                threads: 2,
                width: 8,
            }]
        );
        let buf = ir.node_named("buf").unwrap();
        assert_eq!(
            ir.node(buf).tag(),
            IrNodeTag::Meb(MebKind::Fifo { depth: 3 })
        );
        // Fixpoint: a second run under the same profile changes nothing.
        let again = Pass::<u64>::run(&mut pass, &mut ir).expect("sizing");
        assert_eq!(again.changed, 0);
        assert!(again.deltas.is_empty());
    }

    #[test]
    fn depth_sizing_shrinks_idle_buffer_to_depth_one() {
        let mut ir = chain_ir(fifo(4));
        // Measured but never stalled: capacity the design never used.
        let mut pass = MebDepthSizing::new(profile_with("a", 0, 0));
        let report = Pass::<u64>::run(&mut pass, &mut ir).expect("sizing");
        assert_eq!(report.changed, 1);
        let buf = ir.node_named("buf").unwrap();
        assert_eq!(
            ir.node(buf).tag(),
            IrNodeTag::Meb(MebKind::Fifo { depth: 1 })
        );
    }

    #[test]
    fn depth_sizing_clamps_to_max_depth_and_skips_unmeasured() {
        let mut ir = chain_ir(fifo(2));
        // Streaks deeper than the clamp...
        let mut pass = MebDepthSizing::new(profile_with("a", 8, 10)).with_max_depth(4);
        Pass::<u64>::run(&mut pass, &mut ir).expect("sizing");
        let buf = ir.node_named("buf").unwrap();
        assert_eq!(
            ir.node(buf).tag(),
            IrNodeTag::Meb(MebKind::Fifo { depth: 4 })
        );
        // ...and a profile that never measured this channel leaves it be.
        let mut blind = MebDepthSizing::new(profile_with("elsewhere", 8, 10));
        let report = Pass::<u64>::run(&mut blind, &mut ir).expect("sizing");
        assert_eq!(report.changed, 0);
    }

    #[test]
    fn depth_sizing_converts_full_mebs_only_when_asked() {
        let mut ir = chain_ir(IrNodeKind::Meb {
            kind: MebKind::Full,
            arbiter: ArbiterKind::RoundRobin,
            initial: Vec::new(),
            auto: true,
        });
        let profile = profile_with("a", 2, 5);
        let mut keep = MebDepthSizing::new(profile.clone());
        assert_eq!(Pass::<u64>::run(&mut keep, &mut ir).unwrap().changed, 0);
        let mut convert = MebDepthSizing::new(profile).converting();
        let report = Pass::<u64>::run(&mut convert, &mut ir).unwrap();
        assert_eq!(report.changed, 1);
        let buf = ir.node_named("buf").unwrap();
        assert_eq!(
            ir.node(buf).tag(),
            IrNodeTag::Meb(MebKind::Fifo { depth: 2 })
        );
    }

    /// src -> fork -> {deep: transform -> meb -> join, shallow: join}
    /// -> snk: the classic unbalanced reconvergence.
    fn unbalanced_fork_ir() -> ElasticIr<u64> {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel_with_width("a", 2, 8);
        let deep = ir.channel_with_width("deep", 2, 8);
        let shallow = ir.channel_with_width("shallow", 2, 8);
        let stepped = ir.channel_with_width("stepped", 2, 8);
        let buffered = ir.channel_with_width("buffered", 2, 8);
        let joined = ir.channel_with_width("joined", 2, 8);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add(
            "fork",
            IrNodeKind::Fork {
                mode: ForkMode::Eager,
                route: None,
            },
            vec![a],
            vec![deep, shallow],
        );
        ir.add(
            "double",
            IrNodeKind::Transform {
                f: Box::new(|&v| v * 2),
            },
            vec![deep],
            vec![stepped],
        );
        ir.add("deep_buf", fifo(2), vec![stepped], vec![buffered]);
        ir.add(
            "join",
            IrNodeKind::Join {
                combine: Box::new(|toks: &[&u64]| toks[0] + toks[1]),
            },
            vec![buffered, shallow],
            vec![joined],
        );
        ir.add("snk", sink(), vec![joined], vec![]);
        ir
    }

    #[test]
    fn slack_matching_buffers_the_shallow_path() {
        let mut ir = unbalanced_fork_ir();
        let mut pass = SlackMatching::new(MebKind::Reduced);
        let report = Pass::<u64>::run(&mut pass, &mut ir).expect("slack");
        assert_eq!(
            report.deltas,
            vec![PassDelta::Inserted {
                node: "slack:shallow".to_string(),
                channel: "shallow".to_string(),
                kind: MebKind::Reduced,
                threads: 2,
                width: 8,
            }]
        );
        // The buffer is spliced in: shallow now feeds it, and its tail
        // feeds the join.
        let buf = ir.node_named("slack:shallow").expect("inserted");
        let tail = ir.node(buf).outputs()[0];
        assert_eq!(ir.channel_info(tail).name, "shallow+slack");
        let join = ir.node_named("join").unwrap();
        assert!(ir.node(join).inputs().contains(&tail));
        PassManager::lint_suite()
            .run(&mut ir)
            .expect("still well-formed");
        // Fixpoint: the paths are now balanced.
        let again =
            Pass::<u64>::run(&mut SlackMatching::new(MebKind::Reduced), &mut ir).expect("slack");
        assert_eq!(again.changed, 0);
    }

    #[test]
    fn slack_matching_respects_the_insertion_limit() {
        let mut ir = unbalanced_fork_ir();
        // Deepen the deep path so two buffers are missing, but only
        // allow one.
        let buf = ir.node_named("deep_buf").unwrap();
        let out = ir.node(buf).outputs()[0];
        insert_buffer_on(
            &mut ir,
            out,
            "deep_buf2",
            MebKind::Reduced,
            ArbiterKind::RoundRobin,
        )
        .expect("splice");
        let mut pass = SlackMatching::new(MebKind::Reduced).with_limit(1);
        let report = Pass::<u64>::run(&mut pass, &mut ir).expect("slack");
        assert_eq!(report.changed, 1);
        // Unlimited picks up the remaining imbalance.
        let rest =
            Pass::<u64>::run(&mut SlackMatching::new(MebKind::Reduced), &mut ir).expect("slack");
        assert_eq!(rest.changed, 1);
        // Names stay unique even when slack lands on the same head
        // channel twice.
        assert!(ir.node_named("slack:shallow").is_some());
        assert!(ir.node_named("slack:shallow:1").is_some());
    }

    /// src -> a -> buf -> b -> double -> c -> snk.
    fn retimable_ir() -> ElasticIr<u64> {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel_with_width("a", 2, 8);
        let b = ir.channel_with_width("b", 2, 8);
        let c = ir.channel_with_width("c", 2, 16);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add("buf", fifo(2), vec![a], vec![b]);
        ir.add(
            "double",
            IrNodeKind::Transform {
                f: Box::new(|&v| v * 2),
            },
            vec![b],
            vec![c],
        );
        ir.add("snk", sink(), vec![c], vec![]);
        ir
    }

    #[test]
    fn retiming_moves_a_buffer_forward_across_a_transform() {
        let mut ir = retimable_ir();
        let before = ir.structural_hash();
        let mut pass = Retiming::new("buf", RetimeDirection::Forward);
        let report = Pass::<u64>::run(&mut pass, &mut ir).expect("legal move");
        assert_eq!(
            report.deltas,
            vec![PassDelta::Moved {
                node: "buf".to_string(),
                across: "double".to_string(),
                direction: RetimeDirection::Forward,
                kind: Some(MebKind::Fifo { depth: 2 }),
                threads: 2,
                from_width: 8,
                to_width: 16,
            }]
        );
        // The transform now reads the source directly; the buffer sits
        // on its output.
        let a = ir.channel_named("a").unwrap();
        let c = ir.channel_named("c").unwrap();
        let double = ir.node_named("double").unwrap();
        let buf = ir.node_named("buf").unwrap();
        assert_eq!(ir.reader_of(a), Some(double));
        assert_eq!(ir.driver_of(c), Some(buf));
        assert_ne!(ir.structural_hash(), before, "move is hash-visible");
        PassManager::lint_suite()
            .run(&mut ir)
            .expect("still well-formed");
        // Moving it back restores the original structure exactly.
        Pass::<u64>::run(
            &mut Retiming::new("buf", RetimeDirection::Backward),
            &mut ir,
        )
        .expect("legal move");
        assert_eq!(ir.structural_hash(), before);
    }

    #[test]
    fn retiming_rejects_illegal_targets() {
        // Not a buffer.
        let err = Pass::<u64>::run(
            &mut Retiming::new("double", RetimeDirection::Forward),
            &mut retimable_ir(),
        )
        .expect_err("not a buffer");
        assert!(err.to_string().contains("not an EB/MEB"), "{err}");

        // Neighbour in the move direction is not a transform.
        let err = Pass::<u64>::run(
            &mut Retiming::new("buf", RetimeDirection::Backward),
            &mut retimable_ir(),
        )
        .expect_err("source is not a transform");
        assert!(err.to_string().contains("not a pure transform"), "{err}");

        // Initial tokens cannot be mapped through the transform.
        let mut ir = retimable_ir();
        let buf = ir.node_named("buf").unwrap();
        if let IrNodeKind::Meb { initial, .. } = ir.node_mut(buf).kind_mut() {
            initial.push((0, 7));
        }
        let err = Pass::<u64>::run(&mut Retiming::new("buf", RetimeDirection::Forward), &mut ir)
            .expect_err("initial tokens");
        assert!(err.to_string().contains("initial tokens"), "{err}");

        // Unknown node.
        let err = Pass::<u64>::run(
            &mut Retiming::new("ghost", RetimeDirection::Forward),
            &mut retimable_ir(),
        )
        .expect_err("missing");
        assert!(matches!(err, PassError::NoSuchNode { .. }));
    }

    #[test]
    fn transform_specs_replay_deltas_onto_a_fresh_ir() {
        // Run the proposal pass on one IR...
        let mut proposed = unbalanced_fork_ir();
        let report =
            Pass::<u64>::run(&mut SlackMatching::new(MebKind::Reduced), &mut proposed).unwrap();
        let specs: Vec<TransformSpec> = report
            .deltas
            .iter()
            .map(TransformSpec::from_delta)
            .collect();
        assert_eq!(
            specs,
            vec![TransformSpec::InsertSlack {
                channel: "shallow".to_string(),
                kind: MebKind::Reduced,
            }]
        );
        // ...and replay the specs on a fresh build: same structure.
        let mut replayed = unbalanced_fork_ir();
        for spec in &specs {
            spec.apply(&mut replayed).expect("replay");
        }
        assert_eq!(replayed.structural_hash(), proposed.structural_hash());

        // Substitution and retiming specs replay the same way.
        let mut a = chain_ir(fifo(1));
        let mut b = chain_ir(fifo(1));
        let sized =
            Pass::<u64>::run(&mut MebDepthSizing::new(profile_with("a", 3, 5)), &mut a).unwrap();
        for spec in sized.deltas.iter().map(TransformSpec::from_delta) {
            spec.apply(&mut b).expect("replay");
        }
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn delta_dot_highlights_touched_buffers() {
        let mut ir = unbalanced_fork_ir();
        let report = Pass::<u64>::run(&mut SlackMatching::new(MebKind::Reduced), &mut ir).unwrap();
        let dot = dot_with_deltas(&ir, &report.deltas);
        assert!(
            dot.contains("color=green, penwidth=2"),
            "inserted buffer highlighted: {dot}"
        );
        let styles = delta_styles(&[
            PassDelta::Resized {
                node: "x".into(),
                from: MebKind::Full,
                to: MebKind::Fifo { depth: 2 },
                threads: 2,
                width: 8,
            },
            PassDelta::Moved {
                node: "y".into(),
                across: "t".into(),
                direction: RetimeDirection::Forward,
                kind: None,
                threads: 2,
                from_width: 8,
                to_width: 8,
            },
        ]);
        assert_eq!(styles[0].1, "color=orange, penwidth=2");
        assert_eq!(styles[1].1, "color=blue, penwidth=2");
    }
}
