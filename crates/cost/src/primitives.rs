//! Logic-element (LE) cost formulas for the structural area model.
//!
//! The paper reports post-synthesis area in Cyclone-style logic elements
//! (one 4-input LUT + one flip-flop). Without a synthesis flow we count
//! LEs structurally: every register bit is one LE, a 2:1 mux bit is one
//! LE (wider muxes form trees), a ripple/carry adder bit is one LE, and
//! small FSMs cost a few LEs each. The constants below are documented
//! calibration points — see `DESIGN.md` for the substitution rationale.

/// LEs of a `width`-bit register.
pub fn register(width: usize) -> usize {
    width
}

/// LEs of a `width`-bit, `inputs`-way multiplexer (2:1 tree).
pub fn mux(width: usize, inputs: usize) -> usize {
    width * inputs.saturating_sub(1)
}

/// LEs of a `width`-bit adder (one LE per bit, carry chains are free on
/// the target family).
pub fn adder(width: usize) -> usize {
    width
}

/// LEs of one LUT level over `width` bits (boolean functions, comparators
/// per level).
pub fn lut_layer(width: usize) -> usize {
    width
}

/// LEs of an `n`-requester round-robin arbiter (priority chain + pointer).
pub fn arbiter(threads: usize) -> usize {
    3 * threads
}

/// LEs of one baseline EB control FSM (3 states + handshake gating).
pub fn eb_control() -> usize {
    4
}

/// LEs of the reduced MEB's shared-buffer FSM and HALF→FULL gating.
pub fn shared_gate(threads: usize) -> usize {
    2 + threads
}

/// LEs of an S-thread barrier (per-thread FSM + arrival counter + go flag).
pub fn barrier(threads: usize) -> usize {
    4 * threads + usize::BITS as usize - threads.leading_zeros() as usize + 4
}

/// A named, counted cost item of an inventory.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CostItem {
    /// What the LEs implement.
    pub name: String,
    /// Instances.
    pub count: usize,
    /// LEs per instance.
    pub les_each: usize,
}

impl CostItem {
    /// A new item.
    pub fn new(name: impl Into<String>, count: usize, les_each: usize) -> Self {
        Self {
            name: name.into(),
            count,
            les_each,
        }
    }

    /// Total LEs of this item.
    pub fn total(&self) -> usize {
        self.count * self.les_each
    }
}

/// An itemized area inventory.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Inventory {
    /// Items, in insertion order.
    pub items: Vec<CostItem>,
}

impl Inventory {
    /// An empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an item (builder style).
    pub fn push(&mut self, name: impl Into<String>, count: usize, les_each: usize) -> &mut Self {
        self.items.push(CostItem::new(name, count, les_each));
        self
    }

    /// Total LEs.
    pub fn total_les(&self) -> usize {
        self.items.iter().map(CostItem::total).sum()
    }

    /// Renders the inventory as an aligned table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = self
            .items
            .iter()
            .map(|i| i.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for item in &self.items {
            out.push_str(&format!(
                "{:w$}  {:>4} × {:>6} = {:>7}\n",
                item.name,
                item.count,
                item.les_each,
                item.total()
            ));
        }
        out.push_str(&format!(
            "{:w$}  {:>4}   {:>6}   {:>7}\n",
            "total",
            "",
            "",
            self.total_les()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_scale_as_expected() {
        assert_eq!(register(32), 32);
        assert_eq!(mux(32, 2), 32);
        assert_eq!(mux(32, 8), 7 * 32);
        assert_eq!(mux(8, 1), 0);
        assert_eq!(adder(16), 16);
        assert_eq!(arbiter(8), 24);
        assert!(barrier(8) > barrier(2));
    }

    #[test]
    fn inventory_totals_and_renders() {
        let mut inv = Inventory::new();
        inv.push("regs", 2, 100).push("mux", 1, 50);
        assert_eq!(inv.total_les(), 250);
        let table = inv.render();
        assert!(table.contains("regs"));
        assert!(table.contains("250"));
    }
}
