//! The paper's second design example: the multithreaded elastic processor
//! running every bundled workload across thread counts, reporting IPC —
//! multithreading hides branch stalls and variable memory latency
//! (paper, Sec. V-B and the Fig. 1 motivation).
//!
//! ```text
//! cargo run --release --example processor_demo
//! ```

use mt_elastic::core::MebKind;
use mt_elastic::proc::{programs, Cpu, CpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("DTU-RISC multithreaded elastic processor — IPC vs hardware threads\n");
    let header = [
        "workload",
        "1 thr",
        "2 thr",
        "4 thr",
        "8 thr",
        "description",
    ];
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}   {}",
        header[0], header[1], header[2], header[3], header[4], header[5]
    );
    println!("{}", "-".repeat(86));
    for (name, source, description) in programs::all() {
        let mut row = format!("{name:<12}");
        for threads in [1usize, 2, 4, 8] {
            let mut cpu = Cpu::from_asm(CpuConfig::new(threads), source)?;
            if name == "memcpy" || name == "dot_product" {
                for t in 0..threads {
                    for i in 0..16usize {
                        cpu.set_mem(t * 64 + i, (t * 100 + i + 1) as u32);
                        cpu.set_mem(t * 64 + 16 + i, (2 * i + 1) as u32);
                    }
                }
            }
            let stats = cpu.run_to_halt(2_000_000)?;
            row.push_str(&format!(" {:>8.3}", stats.ipc));
        }
        println!("{row}   {description}");
    }

    println!("\nfull vs reduced MEBs on `sum_loop` (8 threads) — identical results and IPC:");
    for kind in [MebKind::Full, MebKind::Reduced] {
        let mut cpu = Cpu::from_asm(CpuConfig::new(8).with_meb(kind), programs::SUM_LOOP)?;
        let stats = cpu.run_to_halt(2_000_000)?;
        println!(
            "  {:<8} IPC {:.3}, cycles {}, r2 of thread 0 = {}",
            kind.to_string(),
            stats.ipc,
            stats.cycles,
            cpu.reg(0, 2)
        );
    }
    Ok(())
}
