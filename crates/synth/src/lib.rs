//! # elastic-synth — dataflow graphs to multithreaded elastic circuits
//!
//! The paper's conclusion promises that its primitives "enable the
//! automated synthesis of complex algorithms to their multithreaded
//! elastic equivalent circuits." This crate implements that flow: a small
//! dataflow-graph IR ([`Node`], assembled with [`DataflowBuilder`]) is
//! elaborated into an [`elastic_sim`] circuit built from [`elastic_core`]
//! primitives — ops become joins + (variable-)latency units, conditionals
//! become M-Branch/M-Merge loops, fan-out becomes eager M-Forks, and every
//! operation output gets a MEB under the default [`BufferPolicy`], so the
//! synthesized circuit is automatically multithreaded: `S` independent
//! threads time-multiplex the one datapath.
//!
//! **Loop ordering caveat**: an iterative loop (built with
//! [`DataflowBuilder::loopback`]) may hold several problems of the same
//! thread in flight simultaneously; problems that converge in fewer
//! iterations exit first, so completion order *within* a thread is not
//! FIFO. Tag tokens with a sequence number, or feed one problem per
//! thread at a time, when order matters.
//!
//! # Example — an iterative circuit (Euclid's GCD) shared by 2 threads
//!
//! ```
//! use elastic_synth::{DataflowBuilder, OpLatency, SynthConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = DataflowBuilder::<(u64, u64)>::new(2);
//! let fresh = g.input("pairs");
//! let looped = g.input("loop_seed"); // placeholder producer for the loopback
//! // merge(fresh, loop) -> branch(a == b) -> done | step -> back
//! let head = g.merge("entry", &[fresh, looped]);
//! let (done, cont) = g.branch("done?", head, |&(a, b): &(u64, u64)| a == b);
//! g.output("gcd", done);
//! let step = g.op1("step", OpLatency::Fixed(1), cont, |&(a, b)| {
//!     if a > b { (a - b, b) } else { (a, b - a) }
//! });
//! // Close the loop: the `step` output is what `loop_seed` stood for
//! // (`loopback` rebinds the placeholder input to the internal wire).
//! g.loopback("loop_seed", step)?;
//! let mut s = g.elaborate(SynthConfig::default())?;
//! s.push("pairs", 0, (48, 36))?;
//! s.push("pairs", 1, (81, 54))?;
//! s.run_until_outputs("gcd", 2, 2_000)?;
//! assert_eq!(s.collected("gcd", 0), vec![(12, 12)]);
//! assert_eq!(s.collected("gcd", 1), vec![(27, 27)]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod circuit;
pub mod compile;
mod graph;
pub mod ir;
pub mod lower;
pub mod opt;
pub mod passes;

pub use builder::{DataflowBuilder, SynthConfig, SynthIr};
pub use circuit::{RunError, SynthCircuit, UnknownPortError};
pub use compile::fuse;
pub use graph::{BufferPolicy, Node, OpLatency, SynthError, Wire};
pub use ir::{
    BuildFn, CostHint, Elaborated, ElasticIr, IrChannel, IrChannelId, IrError, IrNode, IrNodeId,
    IrNodeKind, IrNodeTag,
};
pub use lower::{FusedOp, OpTable};
pub use opt::{
    delta_styles, dot_with_deltas, MebDepthSizing, Retiming, SlackMatching, TransformSpec,
};
pub use passes::{
    CycleCoverLint, MebSubstitution, MebTarget, Pass, PassDelta, PassError, PassManager,
    PassReport, ProtocolLint, RetimeDirection,
};
