//! Join: synchronized convergence of two or more channels (paper, Fig. 3
//! and Fig. 7(a)).
//!
//! A join fires only when **all** inputs offer valid data *for the same
//! thread* and the output is ready; all inputs are consumed in the same
//! cycle. The multithreaded M-Join is, per the paper, the baseline join
//! replicated per thread — here expressed directly by evaluating the join
//! condition thread-wise over multithreaded channels.

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, NextEvent, Ports,
    TickCtx, Token,
};

/// An N-input join with a combine function.
///
/// For thread `t`: `valid_out(t) = ∧ᵢ valid_i(t)` and
/// `ready_i(t) = ready_out(t) ∧ ∧_{j≠i} valid_j(t)` — the classic lazy
/// (SELF) join control.
///
/// # Examples
///
/// A 2-input adder join:
///
/// ```
/// use elastic_core::Join;
/// use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<u64>::new();
/// let x = b.channel("x", 1);
/// let y = b.channel("y", 1);
/// let z = b.channel("z", 1);
/// let mut sx = Source::new("sx", x, 1);
/// sx.extend(0, [1, 2, 3]);
/// let mut sy = Source::new("sy", y, 1);
/// sy.extend(0, [10, 20, 30]);
/// b.add(sx);
/// b.add(sy);
/// b.add(Join::new("add", vec![x, y], z, 1, |ins| ins[0] + ins[1]));
/// b.add(Sink::with_capture("snk", z, 1, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(6)?;
/// let snk: &Sink<u64> = circuit.get("snk").expect("sink");
/// let sums: Vec<u64> = snk.captured(0).iter().map(|(_, v)| *v).collect();
/// assert_eq!(sums, vec![11, 22, 33]);
/// # Ok(())
/// # }
/// ```
pub struct Join<T: Token> {
    name: String,
    inputs: Vec<ChannelId>,
    out: ChannelId,
    threads: usize,
    combine: CombineFn<T>,
}

/// N-ary combine function of a [`Join`].
type CombineFn<T> = Box<dyn Fn(&[&T]) -> T + Send>;

impl<T: Token> Join<T> {
    /// A join of `inputs` into `out`, combining the input tokens with `f`
    /// (`f` receives one token per input, in input order).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two inputs are given.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<ChannelId>,
        out: ChannelId,
        threads: usize,
        f: impl Fn(&[&T]) -> T + Send + 'static,
    ) -> Self {
        assert!(inputs.len() >= 2, "a join needs at least two inputs");
        Self {
            name: name.into(),
            inputs,
            out,
            threads,
            combine: Box::new(f),
        }
    }
}

impl<T: Token> Component<T> for Join<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Route
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new(self.inputs.clone(), [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // valid(out) = ∧ valid(in_i); ready(in_i) = ready(out) ∧ every
        // *other* input's valid (never its own — that self-loop is what
        // the SELF join control avoids).
        let mut paths = Vec::new();
        for (i, &ch) in self.inputs.iter().enumerate() {
            paths.push(CombPath::ValidToValid {
                from: ch,
                to: self.out,
            });
            paths.push(CombPath::ReadyToReady {
                from: self.out,
                to: ch,
            });
            for (j, &other) in self.inputs.iter().enumerate() {
                if j != i {
                    paths.push(CombPath::ValidToReady {
                        from: other,
                        to: ch,
                    });
                }
            }
        }
        paths
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        for t in 0..self.threads {
            let all_valid = self.inputs.iter().all(|&ch| ctx.valid(ch, t));
            ctx.set_valid(self.out, t, all_valid);
            for (i, &ch) in self.inputs.iter().enumerate() {
                let others_valid = self
                    .inputs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .all(|(_, &o)| ctx.valid(o, t));
                ctx.set_ready(ch, t, ctx.ready(self.out, t) && others_valid);
            }
        }
        // Data: combine when every input carries a token for one common
        // thread; otherwise leave the bus idle.
        let joined = (0..self.threads).find(|&t| self.inputs.iter().all(|&ch| ctx.valid(ch, t)));
        let data = joined.and_then(|_| {
            let items: Option<Vec<&T>> = self.inputs.iter().map(|&ch| ctx.data(ch)).collect();
            items.map(|refs| (self.combine)(&refs))
        });
        ctx.set_data(self.out, data);
    }

    fn tick(&mut self, _ctx: &TickCtx<'_, T>) {}

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    fn reset(&mut self) -> bool {
        true // stateless
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;
    use crate::meb::{MebKind, ReducedMeb};
    use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

    /// Join with one side starved: nothing fires until the late side
    /// delivers; no token is lost or duplicated.
    #[test]
    fn join_waits_for_the_late_input() {
        let mut b = CircuitBuilder::<u64>::new();
        let x = b.channel("x", 1);
        let y = b.channel("y", 1);
        let z = b.channel("z", 1);
        let mut sx = Source::new("sx", x, 1);
        sx.extend(0, [1, 2]);
        let mut sy = Source::new("sy", y, 1);
        sy.push_at(0, 5, 100);
        sy.push_at(0, 9, 200);
        b.add(sx);
        b.add(sy);
        b.add(Join::new("j", vec![x, y], z, 1, |ins| ins[0] + ins[1]));
        b.add(Sink::with_capture("snk", z, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(15).expect("clean");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        let got: Vec<(u64, u64)> = snk.captured(0).iter().map(|&(c, v)| (c, v)).collect();
        assert_eq!(got, vec![(5, 101), (9, 202)]);
    }

    /// M-Join across two MEB-buffered channels: the upstream arbiters must
    /// steer both sides to a common thread (via the join's thread-wise
    /// ready back-propagation) without oscillating.
    #[test]
    fn mjoin_pairs_matching_threads_through_mebs() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let (xa, xb) = (b.channel("xa", 2), b.channel("xb", 2));
        let (ya, yb) = (b.channel("ya", 2), b.channel("yb", 2));
        let z = b.channel("z", 2);
        let mut sx = Source::new("sx", xa, 2);
        let mut sy = Source::new("sy", ya, 2);
        for t in 0..2 {
            sx.extend(t, (0..10).map(|i| Tagged::new(t, i, i)));
            sy.extend(t, (0..10).map(|i| Tagged::new(t, i, 100 + i)));
        }
        b.add(sx);
        b.add(sy);
        b.add(ReducedMeb::new(
            "mx",
            xa,
            xb,
            2,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(ReducedMeb::new(
            "my",
            ya,
            yb,
            2,
            ArbiterKind::LeastRecent.build(),
        ));
        b.add(Join::new("j", vec![xb, yb], z, 2, |ins: &[&Tagged]| {
            assert_eq!(
                ins[0].thread, ins[1].thread,
                "join must pair same-thread tokens"
            );
            Tagged::new(ins[0].thread, ins[0].seq, ins[0].payload + ins[1].payload)
        }));
        b.add(Sink::with_capture("snk", z, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.set_deadlock_watchdog(Some(50));
        circuit.run(200).expect("no oscillation, no deadlock");
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        assert_eq!(snk.consumed(0), 10);
        assert_eq!(snk.consumed(1), 10);
        for t in 0..2 {
            let seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
            assert_eq!(seqs, (0..10).collect::<Vec<_>>(), "thread {t} order");
        }
    }

    /// A three-input join combines all inputs at once.
    #[test]
    fn three_way_join() {
        let mut b = CircuitBuilder::<u64>::new();
        let chs: Vec<_> = (0..3).map(|i| b.channel(format!("in{i}"), 1)).collect();
        let z = b.channel("z", 1);
        for (i, &ch) in chs.iter().enumerate() {
            let mut s = Source::new(format!("s{i}"), ch, 1);
            s.extend(0, [(i as u64 + 1) * 10]);
            b.add(s);
        }
        b.add(Join::new("j", chs.clone(), z, 1, |ins| {
            ins.iter().copied().sum()
        }));
        b.add(Sink::with_capture("snk", z, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(5).expect("clean");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        assert_eq!(snk.captured(0)[0].1, 60);
    }

    /// Buffered joins keep working when the downstream stalls randomly.
    #[test]
    fn mjoin_under_backpressure_conserves_tokens() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let (xa, xb) = (b.channel("xa", 2), b.channel("xb", 2));
        let (ya, yb) = (b.channel("ya", 2), b.channel("yb", 2));
        let z = b.channel("z", 2);
        let mut sx = Source::new("sx", xa, 2);
        let mut sy = Source::new("sy", ya, 2);
        for t in 0..2 {
            sx.extend(t, (0..15).map(|i| Tagged::new(t, i, i)));
            sy.extend(t, (0..15).map(|i| Tagged::new(t, i, i)));
        }
        b.add(sx);
        b.add(sy);
        b.add_boxed(MebKind::Full.build_with::<Tagged>("mx", xa, xb, 2, ArbiterKind::RoundRobin));
        b.add_boxed(MebKind::Reduced.build_with::<Tagged>(
            "my",
            ya,
            yb,
            2,
            ArbiterKind::RoundRobin,
        ));
        b.add(Join::new("j", vec![xb, yb], z, 2, |ins: &[&Tagged]| {
            ins[0].clone()
        }));
        b.add(Sink::new(
            "snk",
            z,
            2,
            ReadyPolicy::Random { p: 0.4, seed: 77 },
        ));
        let mut circuit = b.build().expect("valid");
        circuit.set_deadlock_watchdog(Some(100));
        circuit.run(500).expect("clean");
        assert_eq!(circuit.stats().total_transfers(z), 30);
    }
}
