//! EDA tooling demo: run the Figure 5 scenario, export the trace as a
//! **VCD** waveform (open it in GTKWave) and the elaborated netlist as a
//! **Graphviz DOT** graph, and print per-token latency statistics.
//!
//! ```text
//! cargo run --example waveforms
//! gtkwave target/fig5_reduced.vcd     # if you have GTKWave
//! dot -Tsvg target/fig5_netlist.dot -o fig5.svg
//! cat target/elastic_primitives.v     # generated SystemVerilog
//! ```

use std::fs::File;
use std::io::BufWriter;

use mt_elastic::core::MebKind;
use mt_elastic::sim::token_latencies;

use elastic_bench::{fig5_harness, Fig5Setup};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setup = Fig5Setup::paper(MebKind::Reduced);
    let h = fig5_harness(&setup);

    // 1. VCD waveform of every channel.
    std::fs::create_dir_all("target")?;
    let vcd_path = "target/fig5_reduced.vcd";
    h.circuit
        .write_vcd(BufWriter::new(File::create(vcd_path)?))?;
    println!("wrote {vcd_path} — open with `gtkwave {vcd_path}`");

    // 2. Structural netlist as DOT.
    let netlist = h.circuit.netlist();
    let dot_path = "target/fig5_netlist.dot";
    std::fs::write(dot_path, netlist.to_dot())?;
    println!(
        "wrote {dot_path} — {} components, {} channels{}",
        netlist.component_count(),
        netlist.channel_count(),
        if netlist.has_cycle() {
            " (with feedback)"
        } else {
            ""
        }
    );

    // 3. Per-token latency through the 2-stage pipeline.
    let lat = token_latencies(
        h.circuit.trace().expect("tracing was enabled"),
        h.pipeline.input,
        h.pipeline.output,
    );
    println!("\nper-token latency (input → output):");
    if let Some(all) = lat.summary() {
        println!("  all threads: {all}");
    }
    for t in 0..2 {
        if let Some(s) = lat.summary_for(t) {
            println!("  thread {t}:    {s}");
        }
    }
    println!(
        "\nthread B's tail latency reflects its scripted stall (cycles {}..{}).",
        setup.stall_from, setup.stall_to
    );

    // 4. The primitives as parameterized SystemVerilog.
    let rtl_path = "target/elastic_primitives.v";
    std::fs::write(rtl_path, mt_elastic::core::rtl::rtl_package())?;
    println!("\nwrote {rtl_path} — EB, arbiter, full/reduced MEB and barrier modules");
    Ok(())
}
