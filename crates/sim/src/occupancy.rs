//! Buffer-occupancy analysis from recorded traces.
//!
//! Components report their storage through
//! [`Component::slots`](crate::Component::slots); the trace recorder
//! snapshots them every cycle. This module aggregates those snapshots
//! into occupancy statistics — the evidence behind buffer-sizing
//! decisions such as the paper's reduced MEB ("each thread will use only
//! one buffer out of the two available per thread" under uniform
//! utilization, Sec. III-A).

use std::collections::BTreeMap;

use crate::trace::TraceRecorder;

/// Occupancy statistics of one component's storage over a trace.
#[derive(Clone, PartialEq, Debug)]
pub struct OccupancyStats {
    /// Number of storage slots the component reports.
    pub slots: usize,
    /// Cycles observed.
    pub cycles: usize,
    /// Mean number of occupied slots per cycle.
    pub mean: f64,
    /// Maximum occupied slots in any cycle.
    pub max: usize,
    /// Fraction of cycles in which each slot was occupied, indexed like
    /// the component's slot list.
    pub per_slot: Vec<(String, f64)>,
}

impl OccupancyStats {
    /// Mean occupancy as a fraction of capacity (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.mean / self.slots as f64
        }
    }
}

impl std::fmt::Display for OccupancyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.2}/{} slots ({:.0}% capacity), peak {}",
            self.mean,
            self.slots,
            100.0 * self.utilization(),
            self.max
        )
    }
}

/// Computes occupancy statistics for every component that reported slots
/// during the trace, keyed by component name (resolved through the
/// recorder's name table; components absent from the table are keyed
/// `#<index>`).
pub fn occupancy_stats(recorder: &TraceRecorder) -> BTreeMap<String, OccupancyStats> {
    // (cycles, per-slot (name, occupied-count), total-occupied, max)
    type Acc = (usize, Vec<(String, usize)>, usize, usize);
    let names = recorder.component_names();
    let mut acc: BTreeMap<usize, Acc> = BTreeMap::new();
    for record in recorder.records() {
        for (comp, slots) in &record.slots {
            let entry = acc
                .entry(*comp)
                .or_insert_with(|| (0, slots.iter().map(|s| (s.name.clone(), 0)).collect(), 0, 0));
            entry.0 += 1;
            let mut occupied = 0;
            for (i, slot) in slots.iter().enumerate() {
                if slot.occupant.is_some() {
                    occupied += 1;
                    if let Some(per) = entry.1.get_mut(i) {
                        per.1 += 1;
                    }
                }
            }
            entry.2 += occupied;
            entry.3 = entry.3.max(occupied);
        }
    }
    acc.into_iter()
        .map(|(idx, (cycles, per, total, max))| {
            let name = names.get(idx).cloned().unwrap_or_else(|| format!("#{idx}"));
            let slots = per.len();
            let stats = OccupancyStats {
                slots,
                cycles,
                mean: if cycles == 0 {
                    0.0
                } else {
                    total as f64 / cycles as f64
                },
                max,
                per_slot: per
                    .into_iter()
                    .map(|(n, c)| {
                        (
                            n,
                            if cycles == 0 {
                                0.0
                            } else {
                                c as f64 / cycles as f64
                            },
                        )
                    })
                    .collect(),
            };
            (name, stats)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::SlotView;
    use crate::trace::{ChannelTrace, CycleTrace};

    fn record(cycle: u64, occupied: &[bool]) -> CycleTrace {
        CycleTrace {
            cycle,
            channels: vec![ChannelTrace {
                valid_thread: None,
                label: None,
                fired: false,
            }],
            slots: vec![(
                1,
                occupied
                    .iter()
                    .enumerate()
                    .map(|(i, &o)| {
                        if o {
                            SlotView::full(format!("s{i}"), 0, "x")
                        } else {
                            SlotView::empty(format!("s{i}"))
                        }
                    })
                    .collect(),
            )],
        }
    }

    #[test]
    fn aggregates_mean_max_and_per_slot() {
        let mut rec = TraceRecorder::new();
        rec.set_names(vec!["src".into(), "buf".into(), "snk".into()]);
        rec.push(record(0, &[true, false]));
        rec.push(record(1, &[true, true]));
        rec.push(record(2, &[false, false]));
        rec.push(record(3, &[true, false]));
        let stats = occupancy_stats(&rec);
        let buf = stats.get("buf").expect("component present");
        assert_eq!(buf.slots, 2);
        assert_eq!(buf.cycles, 4);
        assert_eq!(buf.max, 2);
        assert!((buf.mean - 1.0).abs() < 1e-9);
        assert!((buf.utilization() - 0.5).abs() < 1e-9);
        assert_eq!(buf.per_slot[0], ("s0".to_string(), 0.75));
        assert_eq!(buf.per_slot[1], ("s1".to_string(), 0.25));
        assert!(buf.to_string().contains("peak 2"));
    }

    #[test]
    fn empty_trace_yields_empty_map() {
        let rec = TraceRecorder::new();
        assert!(occupancy_stats(&rec).is_empty());
    }
}
