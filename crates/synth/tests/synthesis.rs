//! End-to-end tests of the dataflow-to-elastic synthesis flow.

use elastic_core::MebKind;
use elastic_synth::{BufferPolicy, DataflowBuilder, OpLatency, RunError, SynthConfig, SynthError};
use proptest::prelude::*;

fn software_gcd(mut a: u64, mut b: u64) -> u64 {
    while a != b {
        if a > b {
            a -= b;
        } else {
            b -= a;
        }
    }
    a
}

/// Builds the iterative GCD circuit over `threads` threads.
fn gcd_circuit(threads: usize, config: SynthConfig) -> elastic_synth::SynthCircuit<(u64, u64)> {
    let mut g = DataflowBuilder::<(u64, u64)>::new(threads);
    let fresh = g.input("pairs");
    let looped = g.input("loop");
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b): &(u64, u64)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Fixed(1), cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step).expect("loop closes");
    g.elaborate(config).expect("gcd elaborates")
}

#[test]
fn gcd_multithreaded_matches_software() {
    let mut s = gcd_circuit(4, SynthConfig::default());
    let pairs = [(48u64, 36u64), (81, 54), (17, 5), (1000, 35)];
    for (t, &(a, b)) in pairs.iter().enumerate() {
        s.push("pairs", t, (a, b)).expect("port exists");
    }
    s.run_until_outputs("gcd", 4, 20_000)
        .expect("all gcds complete");
    for (t, &(a, b)) in pairs.iter().enumerate() {
        let expect = software_gcd(a, b);
        assert_eq!(s.collected("gcd", t), vec![(expect, expect)], "thread {t}");
    }
}

#[test]
fn gcd_streams_multiple_problems_per_thread() {
    // NOTE: an iterative loop may hold several problems of one thread in
    // flight; problems that converge in fewer iterations exit first, so
    // completion order within a thread is not FIFO (see the crate docs).
    // Completion is compared as a multiset.
    let mut s = gcd_circuit(2, SynthConfig::default());
    let per_thread: [Vec<(u64, u64)>; 2] =
        [vec![(12, 8), (100, 75), (7, 7)], vec![(9, 27), (14, 21)]];
    for (t, list) in per_thread.iter().enumerate() {
        for &(a, b) in list {
            s.push("pairs", t, (a, b)).expect("push");
        }
    }
    s.run_until_outputs("gcd", 5, 40_000).expect("completes");
    for (t, list) in per_thread.iter().enumerate() {
        let mut got = s.collected("gcd", t);
        got.sort_unstable();
        let mut expect: Vec<(u64, u64)> = list
            .iter()
            .map(|&(a, b)| (software_gcd(a, b), software_gcd(a, b)))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "thread {t}");
    }
}

#[test]
fn full_and_reduced_synthesis_agree() {
    let pairs = [(250u64, 35u64), (13, 39)];
    let mut results = Vec::new();
    for meb in [MebKind::Full, MebKind::Reduced] {
        let mut s = gcd_circuit(
            2,
            SynthConfig {
                meb,
                ..SynthConfig::default()
            },
        );
        for (t, &(a, b)) in pairs.iter().enumerate() {
            s.push("pairs", t, (a, b)).expect("push");
        }
        s.run_until_outputs("gcd", 2, 40_000).expect("completes");
        results.push((s.collected("gcd", 0), s.collected("gcd", 1)));
    }
    assert_eq!(results[0], results[1]);
}

/// A diamond: fork → two ops → join — exercises fan-out plus
/// reconvergence through the synthesized netlist.
#[test]
fn diamond_fork_join() {
    let mut g = DataflowBuilder::<u64>::new(2);
    let x = g.input("x");
    let copies = g.fork("split", x, 2);
    let doubled = g.op1("double", OpLatency::Combinational, copies[0], |v| v * 2);
    let squared = g.op1(
        "square",
        OpLatency::Variable {
            min: 1,
            max: 3,
            seed: 5,
        },
        copies[1],
        |v| v * v,
    );
    let sum = g.op2("sum", OpLatency::Combinational, doubled, squared, |a, b| {
        a + b
    });
    g.output("y", sum);
    let mut s = g.elaborate(SynthConfig::default()).expect("elaborates");
    for t in 0..2 {
        for v in 1..=10u64 {
            s.push("x", t, v).expect("push");
        }
    }
    s.run_until_outputs("y", 20, 5_000).expect("completes");
    for t in 0..2 {
        let got = s.collected("y", t);
        let expect: Vec<u64> = (1..=10).map(|v| 2 * v + v * v).collect();
        assert_eq!(got, expect, "thread {t}");
    }
}

/// A barrier node synchronizes synthesized threads: nobody reaches the
/// output until all arrive.
#[test]
fn barrier_node_synchronizes_threads() {
    let mut g = DataflowBuilder::<u64>::new(3);
    let x = g.input("x");
    let synced = g.barrier("sync", x);
    g.output("y", synced);
    let mut s = g.elaborate(SynthConfig::default()).expect("elaborates");
    s.push_at("x", 0, 0, 1).expect("push");
    s.push_at("x", 1, 5, 2).expect("push");
    s.push_at("x", 2, 15, 3).expect("push");
    s.run_until_outputs("y", 3, 1_000).expect("released");
    // Everyone released only after the cycle-15 arrival.
    for t in 0..3 {
        assert_eq!(s.collected("y", t).len(), 1, "thread {t}");
    }
    assert!(s.circuit.cycle() > 15);
}

/// A streaming per-thread accumulator: running sums flow out while the
/// accumulated value circulates through a buffer seeded with an initial
/// zero token per thread — the classic dataflow "token on the back edge".
#[test]
fn accumulator_loop_with_initial_tokens() {
    const THREADS: usize = 3;
    let mut g = DataflowBuilder::<u64>::new(THREADS);
    let x = g.input("x");
    let acc = g.input("acc"); // placeholder, closed below
    let sum = g.op2("add", OpLatency::Combinational, x, acc, |a, b| a + b);
    let copies = g.fork("dup", sum, 2);
    g.output("sums", copies[0]);
    let seeded = g.buffer_with_initial(
        "acc_reg",
        copies[1],
        MebKind::Reduced,
        (0..THREADS).map(|t| (t, 0u64)).collect(),
    );
    g.loopback("acc", seeded).expect("loop closes");

    let mut s = g.elaborate(SynthConfig::default()).expect("elaborates");
    let streams: [Vec<u64>; 3] = [vec![1, 2, 3, 4], vec![10, 20], vec![5, 5, 5]];
    for (t, stream) in streams.iter().enumerate() {
        for &v in stream {
            s.push("x", t, v).expect("push");
        }
    }
    let total: u64 = streams.iter().map(|v| v.len() as u64).sum();
    s.run_until_outputs("sums", total, 10_000)
        .expect("completes");
    assert_eq!(s.collected("sums", 0), vec![1, 3, 6, 10]);
    assert_eq!(s.collected("sums", 1), vec![10, 30]);
    assert_eq!(s.collected("sums", 2), vec![5, 10, 15]);
}

#[test]
fn unconsumed_wire_is_rejected() {
    let mut g = DataflowBuilder::<u64>::new(1);
    let x = g.input("x");
    let _dangling = g.op1("inc", OpLatency::Combinational, x, |v| v + 1);
    let err = g.elaborate(SynthConfig::default()).unwrap_err();
    assert!(matches!(err, SynthError::UnconsumedWire { .. }), "{err}");
}

#[test]
fn dataflow_dot_export_shows_the_loop() {
    let mut g = DataflowBuilder::<(u64, u64)>::new(2);
    let fresh = g.input("pairs");
    let looped = g.input("loop");
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b): &(u64, u64)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Combinational, cont, |&p| p);
    g.loopback("loop", step).expect("closes");
    let dot = g.to_dot();
    assert!(dot.starts_with("digraph dataflow {"));
    assert!(dot.contains("shape=diamond"), "{dot}");
    assert!(dot.contains("entry"));
    // The dead placeholder input is gone; the loop edge is present.
    assert!(!dot.contains("\"loop\""), "{dot}");
    assert!(dot.trim_end().ends_with('}'));
}

#[test]
fn empty_graph_is_rejected() {
    let g = DataflowBuilder::<u64>::new(1);
    assert!(matches!(
        g.elaborate(SynthConfig::default()),
        Err(SynthError::EmptyGraph)
    ));
}

#[test]
fn bad_loopback_targets_are_rejected() {
    let mut g = DataflowBuilder::<u64>::new(1);
    let x = g.input("x");
    g.output("y", x);
    // No such port.
    let err = g.loopback("nope", x).unwrap_err();
    assert!(err.to_string().contains("no input port"), "{err}");
}

#[test]
fn unknown_ports_are_reported_with_alternatives() {
    let mut g = DataflowBuilder::<u64>::new(1);
    let x = g.input("x");
    let y = g.op1("inc", OpLatency::Combinational, x, |v| v + 1);
    g.output("y", y);
    let mut s = g.elaborate(SynthConfig::default()).expect("elaborates");
    let err = s.push("z", 0, 1).unwrap_err();
    match err {
        RunError::UnknownPort(e) => {
            assert_eq!(e.port, "z");
            assert_eq!(e.available, vec!["x".to_string()]);
        }
        other => panic!("unexpected: {other}"),
    }
}

/// Manual buffer policy on a loop with no explicit buffers: the build-time
/// rank schedule rejects the illegal circuit (naming the components on the
/// strict cycle) instead of simulating garbage — the error now surfaces at
/// elaboration, before a single cycle runs.
#[test]
fn unbuffered_loop_is_detected_at_elaboration() {
    let mut g = DataflowBuilder::<(u64, u64)>::new(1);
    let fresh = g.input("pairs");
    let looped = g.input("loop");
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b): &(u64, u64)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Combinational, cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step).expect("loop closes");
    let err = g
        .elaborate(SynthConfig {
            buffers: BufferPolicy::Manual,
            ..SynthConfig::default()
        })
        .expect_err("unbuffered loop must be rejected at elaboration");
    let text = err.to_string();
    assert!(text.contains("combinational loop"), "{text}");
    // The offending components are named in the report.
    assert!(text.contains("entry"), "{text}");
    assert!(text.contains("step"), "{text}");
}

/// The same loop with one *explicit* buffer under manual policy is legal.
#[test]
fn manually_buffered_loop_works() {
    let mut g = DataflowBuilder::<(u64, u64)>::new(1);
    let fresh = g.input("pairs");
    let looped = g.input("loop");
    let head = g.merge("entry", &[fresh, looped]);
    let buffered = g.buffer("loop_buf", head, MebKind::Reduced);
    let (done, cont) = g.branch("done?", buffered, |&(a, b): &(u64, u64)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Combinational, cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step).expect("loop closes");
    let mut s = g
        .elaborate(SynthConfig {
            buffers: BufferPolicy::Manual,
            ..SynthConfig::default()
        })
        .expect("elaborates");
    s.push("pairs", 0, (48, 18)).expect("push");
    s.run_until_outputs("gcd", 1, 5_000).expect("completes");
    assert_eq!(s.collected("gcd", 0), vec![(6, 6)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random GCD problems across random thread counts match software.
    #[test]
    fn gcd_circuit_matches_software_on_random_inputs(
        pairs in prop::collection::vec((1u64..500, 1u64..500), 1..6),
    ) {
        let threads = pairs.len();
        let mut s = gcd_circuit(threads, SynthConfig::default());
        for (t, &(a, b)) in pairs.iter().enumerate() {
            s.push("pairs", t, (a, b)).expect("push");
        }
        s.run_until_outputs("gcd", threads as u64, 2_000_000).expect("completes");
        for (t, &(a, b)) in pairs.iter().enumerate() {
            let expect = software_gcd(a, b);
            prop_assert_eq!(s.collected("gcd", t), vec![(expect, expect)]);
        }
    }
}
