//! E-X1 — the Sec. III-A throughput analysis as executable laws.

use elastic_bench::measure_throughput;
use mt_elastic::core::MebKind;

/// "If M = 1 (only one thread is active), a 100% throughput can be
/// achieved for the active thread."
#[test]
fn lone_thread_gets_full_throughput() {
    for kind in [MebKind::Full, MebKind::Reduced] {
        let p = measure_throughput(kind, 8, 1, 3);
        assert!(p.per_thread > 0.95, "{kind}: {:.3}", p.per_thread);
    }
}

/// "When M threads are active, with 2 ≤ M ≤ S, each thread will receive
/// a throughput of 1/M."
#[test]
fn one_over_m_for_all_m() {
    for kind in [MebKind::Full, MebKind::Reduced] {
        for active in 2..=8usize {
            let p = measure_throughput(kind, 8, active, 3);
            let expect = 1.0 / active as f64;
            assert!(
                (p.per_thread - expect).abs() < 0.05,
                "{kind} M={active}: {:.3} vs {:.3}",
                p.per_thread,
                expect
            );
        }
    }
}

/// The aggregate channel stays fully utilized for every M ≥ 1 — threads
/// share, they don't waste.
#[test]
fn aggregate_utilization_is_independent_of_m() {
    for kind in [MebKind::Full, MebKind::Reduced] {
        for active in 1..=8usize {
            let p = measure_throughput(kind, 8, active, 3);
            assert!(
                p.aggregate > 0.93,
                "{kind} M={active}: aggregate {:.3}",
                p.aggregate
            );
        }
    }
}

/// The ablation FIFO with depth 1 (no auxiliary storage at all) caps a
/// lone thread at 50 % — why the baseline EB needs two slots (Sec. II).
#[test]
fn depth_one_fifo_halves_lone_thread() {
    let p = measure_throughput(MebKind::Fifo { depth: 1 }, 4, 1, 3);
    assert!((p.per_thread - 0.5).abs() < 0.05, "{:.3}", p.per_thread);
    // But under uniform M = S load even depth-1 sustains the aggregate:
    // every thread is served once per S cycles anyway.
    let p = measure_throughput(MebKind::Fifo { depth: 1 }, 4, 4, 3);
    assert!(p.aggregate > 0.9, "{:.3}", p.aggregate);
}

/// Reduced and full MEBs are throughput-equivalent under uniform load —
/// the whole point of sharing the auxiliary slot (Sec. III-A).
#[test]
fn reduced_equals_full_under_uniform_load() {
    for active in [2usize, 4, 8] {
        let full = measure_throughput(MebKind::Full, 8, active, 3);
        let reduced = measure_throughput(MebKind::Reduced, 8, active, 3);
        assert!(
            (full.aggregate - reduced.aggregate).abs() < 0.03,
            "M={active}: full {:.3} vs reduced {:.3}",
            full.aggregate,
            reduced.aggregate
        );
    }
}
