//! Criterion bench: the elastic MD5 circuit (8 threads, full vs reduced
//! MEBs) against the software reference — how much the cycle-accurate
//! model costs, and that both MEB variants simulate at comparable speed
//! (E-X3 harness). A second group pits the event-driven dirty-set kernel
//! against the exhaustive sweep oracle on the same circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elastic_core::MebKind;
use elastic_md5::{algo, Md5Hasher};
use elastic_sim::EvalMode;

fn messages() -> Vec<Vec<u8>> {
    (0..8)
        .map(|i| format!("benchmark message number {i} padded to some length").into_bytes())
        .collect()
}

fn bench_circuit(c: &mut Criterion) {
    let msgs = messages();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let mut group = c.benchmark_group("md5");
    group.throughput(Throughput::Elements(refs.len() as u64));
    for kind in [MebKind::Full, MebKind::Reduced] {
        group.bench_with_input(
            BenchmarkId::new("circuit_8t", kind.to_string()),
            &kind,
            |b, &kind| {
                let hasher = Md5Hasher::new(8, kind);
                b.iter(|| {
                    hasher
                        .hash_messages(std::hint::black_box(&refs))
                        .expect("hashes")
                })
            },
        );
    }
    group.bench_function("software_reference", |b| {
        b.iter(|| {
            refs.iter()
                .map(|m| algo::md5(std::hint::black_box(m)))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

fn bench_eval_modes(c: &mut Criterion) {
    let msgs = messages();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let mut group = c.benchmark_group("md5_eval_mode");
    group.throughput(Throughput::Elements(refs.len() as u64));
    for mode in [EvalMode::EventDriven, EvalMode::Exhaustive] {
        group.bench_with_input(
            BenchmarkId::new("circuit_8t_reduced", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                let hasher = Md5Hasher::new(8, MebKind::Reduced).with_eval_mode(mode);
                b.iter(|| {
                    hasher
                        .hash_messages(std::hint::black_box(&refs))
                        .expect("hashes")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_circuit, bench_eval_modes);
criterion_main!(benches);
