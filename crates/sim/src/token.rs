//! The payload carried by elastic channels.
//!
//! Every channel in a [`Circuit`](crate::Circuit) carries values of a single
//! token type `T: Token`. Circuits that move several kinds of data (e.g. a
//! processor pipeline whose tokens evolve from fetched words to decoded
//! instructions) typically use an `enum` implementing [`Token`].

use std::fmt;

/// A value that can travel on an elastic channel.
///
/// Tokens must be cheaply cloneable (the kernel clones a token when a
/// transfer fires) and comparable (the combinational fixed-point detects
/// convergence by comparing driven values).
///
/// The [`label`](Token::label) method produces the short name used by the
/// trace renderers — e.g. `"A0"`, `"B3"` in the Figure 5 reproduction.
///
/// # Examples
///
/// ```
/// use elastic_sim::Token;
///
/// #[derive(Clone, PartialEq, Debug)]
/// struct Packet { seq: u32 }
///
/// impl Token for Packet {
///     fn label(&self) -> String { format!("P{}", self.seq) }
/// }
///
/// assert_eq!(Packet { seq: 7 }.label(), "P7");
/// ```
pub trait Token: Clone + PartialEq + fmt::Debug + Send + 'static {
    /// Short human-readable name used in traces and waveforms.
    ///
    /// Defaults to the [`Debug`](fmt::Debug) representation.
    fn label(&self) -> String {
        format!("{self:?}")
    }
}

macro_rules! impl_token_prim {
    ($($t:ty),* $(,)?) => {
        $(impl Token for $t {
            fn label(&self) -> String { format!("{self}") }
        })*
    };
}

impl_token_prim!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, char);

impl Token for String {
    fn label(&self) -> String {
        self.clone()
    }
}

impl Token for () {
    fn label(&self) -> String {
        "·".to_string()
    }
}

impl<A: Token, B: Token> Token for (A, B) {
    fn label(&self) -> String {
        format!("({},{})", self.0.label(), self.1.label())
    }
}

impl<A: Token, B: Token, C: Token> Token for (A, B, C) {
    fn label(&self) -> String {
        format!("({},{},{})", self.0.label(), self.1.label(), self.2.label())
    }
}

/// A token tagged with the identity of the thread that produced it.
///
/// Convenient for testbenches: the label renders as `A0`, `B3`, … matching
/// the notation of the paper's Figure 5 (thread letter + sequence number).
///
/// # Examples
///
/// ```
/// use elastic_sim::{Tagged, Token};
///
/// let t = Tagged::new(1, 3, 42u64);
/// assert_eq!(t.label(), "B3");
/// assert_eq!(t.payload, 42);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tagged<P = u64> {
    /// Index of the producing thread.
    pub thread: usize,
    /// Per-thread sequence number (0-based).
    pub seq: u64,
    /// The actual datum.
    pub payload: P,
}

impl<P> Tagged<P> {
    /// Creates a tagged token for `thread` with sequence number `seq`.
    pub fn new(thread: usize, seq: u64, payload: P) -> Self {
        Self {
            thread,
            seq,
            payload,
        }
    }
}

/// Renders a thread index as a letter: 0 → `A`, 1 → `B`, …, 25 → `Z`,
/// then `T26`, `T27`, … for larger indices.
pub fn thread_letter(thread: usize) -> String {
    if thread < 26 {
        char::from(b'A' + thread as u8).to_string()
    } else {
        format!("T{thread}")
    }
}

impl<P: Clone + PartialEq + fmt::Debug + Send + 'static> Token for Tagged<P> {
    fn label(&self) -> String {
        format!("{}{}", thread_letter(self.thread), self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_labels_are_display() {
        assert_eq!(42u64.label(), "42");
        assert_eq!(true.label(), "true");
        assert_eq!(().label(), "·");
    }

    #[test]
    fn tagged_labels_match_paper_notation() {
        assert_eq!(Tagged::new(0, 0, ()).label(), "A0");
        assert_eq!(Tagged::new(1, 4, ()).label(), "B4");
        assert_eq!(Tagged::new(2, 11, ()).label(), "C11");
    }

    #[test]
    fn thread_letter_fallback_past_z() {
        assert_eq!(thread_letter(25), "Z");
        assert_eq!(thread_letter(26), "T26");
    }

    #[test]
    fn tagged_equality_distinguishes_threads() {
        assert_ne!(Tagged::new(0, 0, 1u32), Tagged::new(1, 0, 1u32));
        assert_eq!(Tagged::new(0, 0, 1u32), Tagged::new(0, 0, 1u32));
    }
}
