//! The token that flows through the processor pipeline, evolving from a
//! fetched word into a decoded, executed and finally retired instruction.

use elastic_sim::{thread_letter, Token};

use crate::isa::Instr;

/// A pipeline token. The variant encodes which stages the instruction has
/// passed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProcToken {
    /// Leaving fetch: a raw instruction word.
    Fetched {
        /// Hardware thread.
        thread: usize,
        /// Word-addressed program counter.
        pc: u32,
        /// Raw instruction word.
        word: u32,
        /// Speculation epoch at fetch time (always 0 without speculation).
        epoch: u32,
        /// Per-thread fetch sequence number (program order).
        seq: u64,
    },
    /// Leaving decode: operands read from the register file.
    Decoded {
        /// Hardware thread.
        thread: usize,
        /// Program counter of this instruction.
        pc: u32,
        /// Decoded instruction.
        instr: Instr,
        /// Value of `rs`.
        a: u32,
        /// Value of `rt`.
        b: u32,
        /// Speculation epoch at fetch time.
        epoch: u32,
        /// Per-thread fetch sequence number (program order).
        seq: u64,
    },
    /// Leaving execute: result computed, branch resolved, address formed.
    Executed {
        /// Hardware thread.
        thread: usize,
        /// Program counter of this instruction.
        pc: u32,
        /// Decoded instruction.
        instr: Instr,
        /// ALU result / store value / link value / loaded value (after
        /// the memory stage rewrites it).
        result: u32,
        /// Effective memory word address (loads/stores).
        addr: u32,
        /// Control flow: branch/jump taken.
        taken: bool,
        /// Control flow: target PC when taken.
        target: u32,
        /// Speculation epoch at fetch time.
        epoch: u32,
        /// Per-thread fetch sequence number (program order).
        seq: u64,
    },
}

impl ProcToken {
    /// The token's speculation epoch.
    pub fn epoch(&self) -> u32 {
        match *self {
            ProcToken::Fetched { epoch, .. }
            | ProcToken::Decoded { epoch, .. }
            | ProcToken::Executed { epoch, .. } => epoch,
        }
    }

    /// The token's per-thread fetch sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            ProcToken::Fetched { seq, .. }
            | ProcToken::Decoded { seq, .. }
            | ProcToken::Executed { seq, .. } => seq,
        }
    }

    /// The owning hardware thread.
    pub fn thread(&self) -> usize {
        match *self {
            ProcToken::Fetched { thread, .. }
            | ProcToken::Decoded { thread, .. }
            | ProcToken::Executed { thread, .. } => thread,
        }
    }

    /// The instruction's PC.
    pub fn pc(&self) -> u32 {
        match *self {
            ProcToken::Fetched { pc, .. }
            | ProcToken::Decoded { pc, .. }
            | ProcToken::Executed { pc, .. } => pc,
        }
    }
}

impl Token for ProcToken {
    fn label(&self) -> String {
        let stage = match self {
            ProcToken::Fetched { .. } => "F",
            ProcToken::Decoded { .. } => "D",
            ProcToken::Executed { .. } => "X",
        };
        format!("{}{}{}", thread_letter(self.thread()), stage, self.pc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_show_thread_stage_and_pc() {
        let t = ProcToken::Fetched {
            thread: 1,
            pc: 7,
            word: 0,
            epoch: 0,
            seq: 0,
        };
        assert_eq!(t.label(), "BF7");
        let t = ProcToken::Executed {
            thread: 0,
            pc: 3,
            instr: Instr::Nop,
            result: 0,
            addr: 0,
            taken: false,
            target: 0,
            epoch: 0,
            seq: 0,
        };
        assert_eq!(t.label(), "AX3");
        assert_eq!(t.thread(), 0);
        assert_eq!(t.pc(), 3);
    }
}
