//! Elastic control operators (paper, Fig. 3) and their multithreaded
//! variants (Fig. 7).
//!
//! Each operator is generic over the channel's thread count: instantiated
//! on single-thread channels it is the baseline operator of Sec. II;
//! on `S`-thread channels it is the M- variant of Sec. IV-B (which the
//! paper constructs as `S` copies of the baseline operator with the
//! handshake wires gathered per thread).

mod branch;
mod fork;
mod join;
mod merge;

pub use branch::Branch;
pub use fork::{Fork, ForkMode};
pub use join::Join;
pub use merge::Merge;
