//! Per-channel, per-thread transfer statistics.
//!
//! Statistics are collected on every simulated cycle and answer the
//! questions the paper's analysis poses in Sec. III-A: what throughput
//! does each thread obtain on a channel, how often is a channel stalled
//! by backpressure, and how busy is the datapath overall.

use crate::channel::ChannelId;
use crate::fused::FusedOpKind;

/// Bucket count of [`ChannelStats::occupancy_hist`]: bucket `k` counts
/// cycles spent at backlog depth `k + 1`; the last bucket collects
/// everything at `OCCUPANCY_BUCKETS` or deeper.
pub const OCCUPANCY_BUCKETS: usize = 8;

/// Counters for a single channel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChannelStats {
    /// Channel name (copied from the spec for self-contained reporting).
    pub name: String,
    /// Number of fired transfers per thread.
    pub transfers: Vec<u64>,
    /// Cycles in which some `valid(i)` was asserted.
    pub busy_cycles: u64,
    /// Per-thread stall cycles: `stall_cycles[i]` counts the cycles in
    /// which `valid(i)` was asserted but `ready(i)` was low (thread `i`
    /// stalled by backpressure). Earlier versions kept a single counter
    /// that conflated all threads, which made the per-thread
    /// backpressure analysis of Sec. III-A impossible to read off.
    pub stall_cycles: Vec<u64>,
    /// Occupancy histogram: bucket `k` counts the cycles the channel
    /// spent in a backpressure streak of length `k + 1` (consecutive
    /// valid-without-ready cycles; the last bucket collects streaks of
    /// [`OCCUPANCY_BUCKETS`] or longer). A streak of length `d` means the
    /// producer side has been holding tokens for `d` cycles — a lower
    /// bound on the backlog a deeper FIFO-MEB upstream could absorb,
    /// which is exactly the signal the data-driven depth-sizing pass
    /// consumes via [`Stats::feedback_profile`].
    pub occupancy_hist: [u64; OCCUPANCY_BUCKETS],
    /// Length of the backpressure streak currently in progress (internal
    /// recording state for `occupancy_hist`).
    pub(crate) stall_streak: u64,
}

impl ChannelStats {
    pub(crate) fn new(name: String, threads: usize) -> Self {
        Self {
            name,
            transfers: vec![0; threads],
            busy_cycles: 0,
            stall_cycles: vec![0; threads],
            occupancy_hist: [0; OCCUPANCY_BUCKETS],
            stall_streak: 0,
        }
    }

    /// Total transfers across all threads.
    pub fn total_transfers(&self) -> u64 {
        self.transfers.iter().sum()
    }

    /// Total stall cycles across all threads — the single number the
    /// pre-split `stall_cycles` field used to hold.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// Records one stalled cycle (valid without ready): extends the
    /// current backpressure streak and banks it in the histogram.
    pub(crate) fn record_stall_occupancy(&mut self) {
        self.stall_streak += 1;
        let bucket = (self.stall_streak as usize).min(OCCUPANCY_BUCKETS) - 1;
        self.occupancy_hist[bucket] += 1;
    }

    /// Mean backlog depth over the channel's stalled cycles (0.0 when the
    /// channel never stalled): the expected streak position of a stalled
    /// cycle, weighting each histogram bucket by its depth.
    pub fn mean_backlog(&self) -> f64 {
        let total: u64 = self.occupancy_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .occupancy_hist
            .iter()
            .enumerate()
            .map(|(k, &n)| (k as u64 + 1) * n)
            .sum();
        weighted as f64 / total as f64
    }

    /// Deepest backlog ever observed, in buckets: `0` when the channel
    /// never stalled, otherwise the 1-based index of the highest
    /// non-empty histogram bucket (capped at [`OCCUPANCY_BUCKETS`]).
    pub fn peak_backlog(&self) -> usize {
        self.occupancy_hist
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |k| k + 1)
    }
}

/// Counters for the evaluation kernel itself: how much combinational
/// work the settle phase performed, and how much the event-driven
/// dirty-set scheduler avoided (see `docs/kernel.md`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KernelStats {
    /// Total `Component::eval` invocations across the run.
    pub component_evals: u64,
    /// Total settle rounds (the initial full sweep of each cycle plus
    /// every dirty-set round after it).
    pub settle_rounds: u64,
    /// Evaluations avoided relative to an exhaustive kernel performing
    /// the same number of rounds (`rounds × components − evals`).
    pub components_skipped: u64,
    /// Cycles whose settle phase converged after the single full sweep,
    /// going straight to the clock edge.
    pub single_sweep_cycles: u64,
    /// Cycles skipped wholesale by the quiescence fast-path (no token
    /// anywhere; the clock jumped to the next scheduled event).
    pub quiesced_cycles: u64,
    /// Cycles actually stepped through the settle loop.
    pub stepped_cycles: u64,
    /// Widest rank of the build-time levelized schedule: the largest
    /// number of components sharing one dependency level (1 for a pure
    /// chain; merged across jobs by `max`).
    pub rank_width: u64,
    /// Histogram of settle rounds per stepped cycle: bucket `i` counts
    /// cycles that settled in `i + 1` rounds; the last bucket collects
    /// everything at `8` rounds or more.
    pub settle_round_hist: [u64; 8],
    /// Evaluations per fused-op class, indexed by
    /// [`FusedOpKind::ALL`](crate::FusedOpKind::ALL) order. All zero when
    /// the interpreted backend ran — the breakdown exists only where the
    /// fused table dispatches by op kind anyway, so the interpreted hot
    /// loop pays nothing for it.
    pub fused_op_evals: [u64; FusedOpKind::COUNT],
    /// Wall-clock nanoseconds spent inside the settle loop (phase 1 of
    /// every stepped cycle), accumulated only while settle timing is
    /// armed via [`Circuit::set_settle_timing`] — zero otherwise, so the
    /// hot path never pays for the clock reads by default. This is the
    /// number the backend-ablation gate compares: it isolates the work
    /// the dispatch backend can influence from the tick/capture/stats
    /// phases that are identical by construction across backends.
    ///
    /// [`Circuit::set_settle_timing`]: crate::Circuit::set_settle_timing
    pub settle_nanos: u64,
}

impl KernelStats {
    /// Mean `Component::eval` calls per stepped cycle — the headline
    /// metric of the dirty-set kernel.
    pub fn evals_per_cycle(&self) -> f64 {
        if self.stepped_cycles == 0 {
            0.0
        } else {
            self.component_evals as f64 / self.stepped_cycles as f64
        }
    }

    /// Mean settle rounds per stepped cycle.
    pub fn rounds_per_cycle(&self) -> f64 {
        if self.stepped_cycles == 0 {
            0.0
        } else {
            self.settle_rounds as f64 / self.stepped_cycles as f64
        }
    }

    /// Adds `other`'s counters into `self`. Used by the parallel sweep
    /// harness ([`run_sweep`](crate::run_sweep)) to aggregate kernel work
    /// across the independent jobs of a campaign; merging is commutative,
    /// so the aggregate is independent of job completion order.
    pub fn merge(&mut self, other: &KernelStats) {
        self.component_evals += other.component_evals;
        self.settle_rounds += other.settle_rounds;
        self.components_skipped += other.components_skipped;
        self.single_sweep_cycles += other.single_sweep_cycles;
        self.quiesced_cycles += other.quiesced_cycles;
        self.stepped_cycles += other.stepped_cycles;
        // Rank width is a property of each circuit, not a tally: the
        // aggregate reports the widest schedule seen across the jobs.
        self.rank_width = self.rank_width.max(other.rank_width);
        for (h, o) in self
            .settle_round_hist
            .iter_mut()
            .zip(other.settle_round_hist)
        {
            *h += o;
        }
        for (h, o) in self.fused_op_evals.iter_mut().zip(other.fused_op_evals) {
            *h += o;
        }
        self.settle_nanos += other.settle_nanos;
    }

    /// Per-op eval breakdown of the fused backend, paired with its op
    /// class: `(kind, evals)` for every class with a non-zero count.
    /// Empty when the interpreted backend ran.
    pub fn fused_op_breakdown(&self) -> Vec<(FusedOpKind, u64)> {
        FusedOpKind::ALL
            .iter()
            .zip(self.fused_op_evals)
            .filter(|&(_, n)| n > 0)
            .map(|(&k, n)| (k, n))
            .collect()
    }
}

/// Aggregated statistics for a whole circuit run.
///
/// Obtained from [`Circuit::stats`](crate::Circuit::stats).
///
/// # Examples
///
/// Throughput of thread 0 on a channel over the run:
///
/// ```no_run
/// # use elastic_sim::{Stats, ChannelId};
/// # fn demo(stats: &Stats, ch: ChannelId) {
/// let thr = stats.throughput(ch, 0);
/// assert!(thr <= 1.0);
/// # }
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Stats {
    channels: Vec<ChannelStats>,
    cycles: u64,
    kernel: KernelStats,
}

impl Stats {
    pub(crate) fn new(specs: impl IntoIterator<Item = (String, usize)>) -> Self {
        Self {
            channels: specs
                .into_iter()
                .map(|(n, t)| ChannelStats::new(n, t))
                .collect(),
            cycles: 0,
            kernel: KernelStats::default(),
        }
    }

    pub(crate) fn record_cycle(&mut self) {
        self.cycles += 1;
    }

    pub(crate) fn record_quiesced(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.kernel.quiesced_cycles += cycles;
    }

    pub(crate) fn kernel_mut(&mut self) -> &mut KernelStats {
        &mut self.kernel
    }

    /// Evaluation-kernel counters (evals per cycle, settle rounds,
    /// skipped work, quiesced cycles).
    pub fn kernel(&self) -> &KernelStats {
        &self.kernel
    }

    pub(crate) fn channel_mut(&mut self, ch: ChannelId) -> &mut ChannelStats {
        &mut self.channels[ch.index()]
    }

    /// Number of simulated cycles covered by these statistics.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Counters for one channel.
    ///
    /// # Panics
    ///
    /// Panics if `ch` does not belong to the circuit that produced these
    /// statistics.
    pub fn channel(&self, ch: ChannelId) -> &ChannelStats {
        &self.channels[ch.index()]
    }

    /// Transfers completed by `thread` on `ch`.
    pub fn transfers(&self, ch: ChannelId, thread: usize) -> u64 {
        self.channels[ch.index()].transfers[thread]
    }

    /// Transfers completed by all threads on `ch`.
    pub fn total_transfers(&self, ch: ChannelId) -> u64 {
        self.channels[ch.index()].total_transfers()
    }

    /// Per-thread throughput on `ch`: transfers / simulated cycles.
    ///
    /// Returns 0.0 before the first cycle.
    pub fn throughput(&self, ch: ChannelId, thread: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.transfers(ch, thread) as f64 / self.cycles as f64
        }
    }

    /// Aggregate channel throughput: total transfers / simulated cycles.
    pub fn channel_throughput(&self, ch: ChannelId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_transfers(ch) as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles in which the channel carried a valid token.
    pub fn utilization(&self, ch: ChannelId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.channels[ch.index()].busy_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles in which the channel was stalled (valid without
    /// ready for the asserted thread), summed over threads.
    pub fn stall_rate(&self, ch: ChannelId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.channels[ch.index()].total_stall_cycles() as f64 / self.cycles as f64
        }
    }

    /// Cycles in which `thread` was stalled on `ch` (its valid asserted
    /// with ready low).
    pub fn stall_cycles(&self, ch: ChannelId, thread: usize) -> u64 {
        self.channels[ch.index()].stall_cycles[thread]
    }

    /// Fraction of cycles in which `thread` was stalled on `ch` — the
    /// per-thread backpressure figure of the paper's Sec. III-A analysis.
    pub fn thread_stall_rate(&self, ch: ChannelId, thread: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stall_cycles(ch, thread) as f64 / self.cycles as f64
        }
    }

    /// Iterates over all channel counters in channel-id order.
    pub fn iter(&self) -> impl Iterator<Item = &ChannelStats> {
        self.channels.iter()
    }

    /// Resets all counters to zero (e.g. to measure a steady-state window
    /// after a warm-up period).
    pub fn reset(&mut self) {
        self.cycles = 0;
        self.kernel = KernelStats::default();
        for c in &mut self.channels {
            c.transfers.iter_mut().for_each(|t| *t = 0);
            c.busy_cycles = 0;
            c.stall_cycles.iter_mut().for_each(|s| *s = 0);
            c.occupancy_hist = [0; OCCUPANCY_BUCKETS];
            c.stall_streak = 0;
        }
    }

    /// Extracts the measured per-channel feedback a data-driven sizing
    /// pass consumes: utilization, stall rate and the occupancy
    /// histogram of every channel, keyed by channel name (simulated
    /// channel names are copied verbatim from the IR, so the records
    /// match back to IR channels by name).
    pub fn feedback_profile(&self) -> FeedbackProfile {
        FeedbackProfile {
            cycles: self.cycles,
            channels: self
                .channels
                .iter()
                .enumerate()
                .map(|(i, c)| ChannelFeedback {
                    name: c.name.clone(),
                    threads: c.transfers.len(),
                    transfers: c.total_transfers(),
                    stall_cycles: c.total_stall_cycles(),
                    utilization: self.utilization(ChannelId(i)),
                    stall_rate: self.stall_rate(ChannelId(i)),
                    occupancy_hist: c.occupancy_hist,
                })
                .collect(),
        }
    }
}

/// One channel's measured feedback record (see
/// [`Stats::feedback_profile`]).
#[derive(Clone, PartialEq, Debug)]
pub struct ChannelFeedback {
    /// Channel name, verbatim from the circuit (and hence the IR).
    pub name: String,
    /// Thread count `S` of the channel.
    pub threads: usize,
    /// Total fired transfers across all threads.
    pub transfers: u64,
    /// Total stalled cycles across all threads.
    pub stall_cycles: u64,
    /// Fraction of cycles with a valid token on the channel.
    pub utilization: f64,
    /// Fraction of cycles stalled by backpressure.
    pub stall_rate: f64,
    /// Backpressure-streak histogram (see
    /// [`ChannelStats::occupancy_hist`]).
    pub occupancy_hist: [u64; OCCUPANCY_BUCKETS],
}

impl ChannelFeedback {
    /// Mean backlog depth over stalled cycles (see
    /// [`ChannelStats::mean_backlog`]).
    pub fn mean_backlog(&self) -> f64 {
        let total: u64 = self.occupancy_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .occupancy_hist
            .iter()
            .enumerate()
            .map(|(k, &n)| (k as u64 + 1) * n)
            .sum();
        weighted as f64 / total as f64
    }

    /// Deepest backlog observed, in buckets (see
    /// [`ChannelStats::peak_backlog`]).
    pub fn peak_backlog(&self) -> usize {
        self.occupancy_hist
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |k| k + 1)
    }
}

/// Measured per-channel feedback extracted from a run's [`Stats`] — the
/// input contract of the `MebDepthSizing` pass in `elastic-synth`: the
/// simulator exports plain measurements, the pass decides depths.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FeedbackProfile {
    /// Simulated cycles behind the measurements.
    pub cycles: u64,
    /// One record per channel, in channel-id order.
    pub channels: Vec<ChannelFeedback>,
}

impl FeedbackProfile {
    /// Looks up a channel's record by name (first match).
    pub fn channel(&self, name: &str) -> Option<&ChannelFeedback> {
        self.channels.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Stats {
        Stats::new([("a".to_string(), 2), ("b".to_string(), 1)])
    }

    #[test]
    fn throughput_is_transfers_over_cycles() {
        let mut s = stats();
        for _ in 0..10 {
            s.record_cycle();
        }
        s.channel_mut(ChannelId(0)).transfers[1] = 5;
        assert_eq!(s.throughput(ChannelId(0), 1), 0.5);
        assert_eq!(s.throughput(ChannelId(0), 0), 0.0);
        assert_eq!(s.channel_throughput(ChannelId(0)), 0.5);
    }

    #[test]
    fn zero_cycles_yields_zero_rates() {
        let s = stats();
        assert_eq!(s.throughput(ChannelId(0), 0), 0.0);
        assert_eq!(s.utilization(ChannelId(1)), 0.0);
        assert_eq!(s.stall_rate(ChannelId(1)), 0.0);
    }

    #[test]
    fn reset_clears_counters() {
        let mut s = stats();
        s.record_cycle();
        s.channel_mut(ChannelId(1)).transfers[0] = 3;
        s.channel_mut(ChannelId(1)).busy_cycles = 4;
        s.channel_mut(ChannelId(0)).stall_cycles[1] = 2;
        s.channel_mut(ChannelId(0)).record_stall_occupancy();
        s.kernel_mut().component_evals = 9;
        s.reset();
        assert_eq!(s.cycles(), 0);
        assert_eq!(s.total_transfers(ChannelId(1)), 0);
        assert_eq!(s.channel(ChannelId(1)).busy_cycles, 0);
        assert_eq!(s.channel(ChannelId(0)).total_stall_cycles(), 0);
        assert_eq!(
            s.channel(ChannelId(0)).occupancy_hist,
            [0; OCCUPANCY_BUCKETS]
        );
        assert_eq!(s.channel(ChannelId(0)).stall_streak, 0);
        assert_eq!(s.kernel().component_evals, 0);
    }

    #[test]
    fn occupancy_histogram_banks_streak_depths() {
        let mut s = stats();
        let ch = s.channel_mut(ChannelId(0));
        // A 3-cycle backpressure streak visits depths 1, 2, 3…
        for _ in 0..3 {
            ch.record_stall_occupancy();
        }
        assert_eq!(&ch.occupancy_hist[..3], &[1, 1, 1]);
        assert_eq!(ch.peak_backlog(), 3);
        // (1 + 2 + 3) / 3
        assert!((ch.mean_backlog() - 2.0).abs() < 1e-12);
        // …a transfer/idle cycle ends it, and the next streak restarts at 1.
        ch.stall_streak = 0;
        ch.record_stall_occupancy();
        assert_eq!(ch.occupancy_hist[0], 2);
        // Depths beyond the bucket range collapse into the last bucket.
        ch.stall_streak = 100;
        ch.record_stall_occupancy();
        assert_eq!(ch.occupancy_hist[OCCUPANCY_BUCKETS - 1], 1);
        assert_eq!(ch.peak_backlog(), OCCUPANCY_BUCKETS);
    }

    #[test]
    fn feedback_profile_exports_per_channel_records() {
        let mut s = stats();
        for _ in 0..10 {
            s.record_cycle();
        }
        let a = s.channel_mut(ChannelId(0));
        a.transfers[0] = 4;
        a.busy_cycles = 6;
        a.stall_cycles[1] = 2;
        a.record_stall_occupancy();
        a.record_stall_occupancy();

        let profile = s.feedback_profile();
        assert_eq!(profile.cycles, 10);
        assert_eq!(profile.channels.len(), 2);
        let fa = profile.channel("a").expect("channel a");
        assert_eq!(fa.threads, 2);
        assert_eq!(fa.transfers, 4);
        assert_eq!(fa.stall_cycles, 2);
        assert!((fa.utilization - 0.6).abs() < 1e-12);
        assert!((fa.stall_rate - 0.2).abs() < 1e-12);
        assert_eq!(fa.occupancy_hist[0], 1);
        assert_eq!(fa.occupancy_hist[1], 1);
        assert!((fa.mean_backlog() - 1.5).abs() < 1e-12);
        assert_eq!(fa.peak_backlog(), 2);
        let fb = profile.channel("b").expect("channel b");
        assert_eq!(fb.mean_backlog(), 0.0);
        assert_eq!(fb.peak_backlog(), 0);
        assert!(profile.channel("nope").is_none());
    }

    #[test]
    fn stall_cycles_are_per_thread() {
        let mut s = stats();
        for _ in 0..10 {
            s.record_cycle();
        }
        // Thread 0 stalled 4 cycles, thread 1 stalled 1 — the split the
        // old single counter could not express.
        s.channel_mut(ChannelId(0)).stall_cycles[0] = 4;
        s.channel_mut(ChannelId(0)).stall_cycles[1] = 1;
        assert_eq!(s.stall_cycles(ChannelId(0), 0), 4);
        assert_eq!(s.stall_cycles(ChannelId(0), 1), 1);
        assert_eq!(s.channel(ChannelId(0)).total_stall_cycles(), 5);
        assert_eq!(s.thread_stall_rate(ChannelId(0), 0), 0.4);
        assert_eq!(s.thread_stall_rate(ChannelId(0), 1), 0.1);
        assert_eq!(s.stall_rate(ChannelId(0)), 0.5);
    }

    #[test]
    fn kernel_stats_merge_adds_all_counters() {
        let mut fused_a = [0u64; FusedOpKind::COUNT];
        fused_a[0] = 4;
        fused_a[1] = 2;
        let mut fused_b = [0u64; FusedOpKind::COUNT];
        fused_b[1] = 3;
        let mut a = KernelStats {
            component_evals: 10,
            settle_rounds: 4,
            components_skipped: 6,
            single_sweep_cycles: 2,
            quiesced_cycles: 1,
            stepped_cycles: 3,
            rank_width: 2,
            settle_round_hist: [2, 1, 0, 0, 0, 0, 0, 0],
            fused_op_evals: fused_a,
            settle_nanos: 40,
        };
        let b = KernelStats {
            component_evals: 5,
            settle_rounds: 2,
            components_skipped: 3,
            single_sweep_cycles: 1,
            quiesced_cycles: 9,
            stepped_cycles: 2,
            rank_width: 5,
            settle_round_hist: [1, 0, 1, 0, 0, 0, 0, 0],
            fused_op_evals: fused_b,
            settle_nanos: 2,
        };
        a.merge(&b);
        assert_eq!(a.component_evals, 15);
        assert_eq!(a.settle_rounds, 6);
        assert_eq!(a.components_skipped, 9);
        assert_eq!(a.single_sweep_cycles, 3);
        assert_eq!(a.quiesced_cycles, 10);
        assert_eq!(a.stepped_cycles, 5);
        assert_eq!(a.settle_nanos, 42);
        // Histogram buckets add; rank width takes the max, not the sum.
        assert_eq!(a.settle_round_hist, [3, 1, 1, 0, 0, 0, 0, 0]);
        assert_eq!(a.rank_width, 5);
        // Per-op fused counters add elementwise.
        assert_eq!(a.fused_op_evals[0], 4);
        assert_eq!(a.fused_op_evals[1], 5);
        assert_eq!(
            a.fused_op_breakdown(),
            vec![(FusedOpKind::Source, 4), (FusedOpKind::Sink, 5)]
        );
        // Merging a default is the identity.
        let before = a;
        a.merge(&KernelStats::default());
        assert_eq!(a, before);
    }

    #[test]
    fn kernel_rates_average_over_stepped_cycles() {
        let mut k = KernelStats::default();
        assert_eq!(k.evals_per_cycle(), 0.0);
        k.component_evals = 30;
        k.settle_rounds = 15;
        k.stepped_cycles = 10;
        assert_eq!(k.evals_per_cycle(), 3.0);
        assert_eq!(k.rounds_per_cycle(), 1.5);
    }

    #[test]
    fn quiesced_cycles_count_toward_total_cycles() {
        let mut s = stats();
        s.record_cycle();
        s.record_quiesced(9);
        assert_eq!(s.cycles(), 10);
        assert_eq!(s.kernel().quiesced_cycles, 9);
    }
}
