//! The paper's first design example end to end: hash eight messages on
//! the 8-thread multithreaded elastic MD5 circuit and verify against the
//! software reference (paper, Sec. V-A).
//!
//! ```text
//! cargo run --example md5_pipeline
//! ```

use mt_elastic::core::MebKind;
use mt_elastic::md5::{algo, Md5Hasher};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let messages: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"a".to_vec(),
        b"abc".to_vec(),
        b"message digest".to_vec(),
        b"abcdefghijklmnopqrstuvwxyz".to_vec(),
        (0..100u8).collect(), // multi-block
        b"elastic systems tolerate variable latency".to_vec(),
        b"threads share buffers in the reduced MEB".to_vec(),
    ];
    let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();

    for kind in [MebKind::Full, MebKind::Reduced] {
        let hasher = Md5Hasher::new(8, kind);
        let (digests, cycles) = hasher.hash_messages(&refs)?;
        println!("{kind} MEBs — 8 threads, {cycles} cycles:");
        for (msg, digest) in refs.iter().zip(&digests) {
            let reference = algo::md5(msg);
            let status = if *digest == reference {
                "ok"
            } else {
                "MISMATCH"
            };
            println!(
                "  {:<44} {} [{status}]",
                format!("{:?}", String::from_utf8_lossy(&msg[..msg.len().min(40)])),
                algo::to_hex(digest)
            );
            assert_eq!(*digest, reference, "circuit must match RFC 1321");
        }
        println!();
    }
    println!(
        "each block makes 4 trips through the unrolled round unit; the barrier\n\
         holds all threads between rounds so one global configuration counter\n\
         can drive the datapath — exactly the structure of the paper's Sec. V-A."
    );
    Ok(())
}
