//! Integration coverage for the parallel sweep harness (`sim::par`):
//! running a realistic simulation campaign — MEB pipelines plus the MD5
//! design example — through the worker pool must be byte-identical to
//! running it serially, failures must stay isolated to their job, and on
//! hosts with real parallelism the wall-clock must actually scale.

use mt_elastic::core::{MebKind, PipelineConfig, PipelineHarness};
use mt_elastic::md5::Md5Hasher;
use mt_elastic::sim::{
    available_workers, run_sweep, run_sweep_on, EvalMode, JobError, KernelStats, ReadyPolicy,
    SimError, SimJob,
};

/// A deterministic stalled-pipeline run: digest of every capture.
fn pipeline_digest(seed: u64, mode: EvalMode) -> Result<(String, KernelStats), SimError> {
    const THREADS: usize = 3;
    let mut cfg =
        PipelineConfig::free_flowing(THREADS, 3, MebKind::Reduced, 24).with_eval_mode(mode);
    for t in 0..THREADS {
        cfg.sink_policies[t] = ReadyPolicy::Random {
            p: 0.5,
            seed: seed ^ t as u64,
        };
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(600)?;
    let captures: Vec<Vec<(u64, u64)>> = (0..THREADS)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    Ok((format!("{captures:?}"), *h.circuit.stats().kernel()))
}

/// MD5 digests of a deterministic message set through the elastic
/// circuit — the campaign's "real design example" leg.
fn md5_digest(threads: usize) -> Result<(String, KernelStats), SimError> {
    let msgs: Vec<Vec<u8>> = (0..threads)
        .map(|i| format!("parallel sweep message {i}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let (digests, cycles, kernel) = Md5Hasher::new(threads, MebKind::Reduced)
        .hash_messages_instrumented(&refs)
        .expect("md5 campaign runs clean");
    Ok((format!("{digests:02x?} in {cycles}"), kernel))
}

/// The mixed campaign used by the identity tests below.
fn campaign() -> Vec<SimJob<(String, KernelStats)>> {
    let mut jobs = Vec::new();
    for seed in 0..6u64 {
        for mode in [EvalMode::Exhaustive, EvalMode::EventDriven] {
            jobs.push(SimJob::new(format!("pipe {seed} {mode:?}"), move || {
                pipeline_digest(0xC0FFEE ^ seed, mode)
            }));
        }
    }
    for threads in [2usize, 4, 8] {
        jobs.push(SimJob::new(format!("md5 {threads}t"), move || {
            md5_digest(threads)
        }));
    }
    jobs
}

fn digests(results: &[(String, KernelStats)]) -> Vec<&str> {
    results.iter().map(|(d, _)| d.as_str()).collect()
}

/// The whole point of the harness: parallel execution is byte-identical
/// to serial execution — same digests, in submission order, and the
/// aggregated kernel counters match because aggregation is commutative.
#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    let serial = run_sweep_on(campaign(), 1);
    let serial_kernel = serial.kernel;
    let serial_results = serial.unwrap_all();
    for workers in [2, 4, available_workers().max(2)] {
        let par = run_sweep_on(campaign(), workers);
        assert_eq!(
            par.kernel, serial_kernel,
            "{workers} workers: kernel aggregate diverged"
        );
        let par_results = par.unwrap_all();
        assert_eq!(
            digests(&par_results),
            digests(&serial_results),
            "{workers} workers: digests diverged"
        );
    }
}

/// `run_sweep` (auto worker count) gives the same answer as the explicit
/// serial baseline.
#[test]
fn auto_worker_count_matches_serial() {
    let serial = run_sweep_on(campaign(), 1).unwrap_all();
    let auto = run_sweep(campaign()).unwrap_all();
    assert_eq!(digests(&auto), digests(&serial));
}

/// A failing job — simulation error or outright panic — must not take
/// down the sweep or disturb its neighbours' results.
#[test]
fn failures_stay_isolated_to_their_job() {
    let mut jobs: Vec<SimJob<(String, KernelStats)>> = vec![SimJob::new("ok-a", || {
        pipeline_digest(1, EvalMode::EventDriven)
    })];
    jobs.push(SimJob::new("deadlocked", || {
        // A pipeline whose sink never becomes ready trips the watchdog.
        let cfg = PipelineConfig::free_flowing(2, 2, MebKind::Reduced, 8)
            .with_sink_policy(0, ReadyPolicy::Never)
            .with_sink_policy(1, ReadyPolicy::Never);
        let mut h = PipelineHarness::build(cfg);
        h.circuit.set_deadlock_watchdog(Some(64));
        h.circuit.run(2_000)?;
        Ok(("unreachable".to_string(), KernelStats::default()))
    }));
    jobs.push(SimJob::new("panicking", || panic!("job blew up")));
    jobs.push(SimJob::new("ok-b", || {
        pipeline_digest(2, EvalMode::EventDriven)
    }));

    let report = run_sweep_on(jobs, 2);
    assert_eq!(report.ok_count(), 2);
    let failures = report.failures();
    assert_eq!(failures.len(), 2);
    assert!(matches!(
        failures[0],
        ("deadlocked", JobError::Sim(SimError::Deadlock { .. }))
    ));
    assert!(matches!(failures[1], ("panicking", JobError::Panic(msg)) if msg.contains("blew up")));
    // The deadlock error carries the blocked-channel diagnosis end to end.
    let rendered = failures[0].1.to_string();
    assert!(rendered.contains("blocked:"), "diagnosis lost: {rendered}");
    // Healthy neighbours are untouched.
    assert!(report.jobs[0].outcome.is_ok());
    assert!(report.jobs[3].outcome.is_ok());
}

/// On hosts with ≥ 4 cores the replicated campaign must scale: 4 workers
/// at least 2× faster than 1. Skipped (trivially green) on smaller
/// hosts, where there is nothing to measure — `BENCH_parallel_sweep.json`
/// records the curve for whichever host ran `kernel_ablation --parallel`.
#[test]
fn four_workers_give_at_least_2x_on_a_4_core_host() {
    if available_workers() < 4 {
        eprintln!(
            "skipping speedup assertion: only {} core(s) available",
            available_workers()
        );
        return;
    }
    let heavy = || -> Vec<SimJob<(String, KernelStats)>> {
        (0..16u64)
            .map(|seed| {
                SimJob::new(format!("heavy {seed}"), move || {
                    pipeline_digest(0xBEEF ^ (seed << 4), EvalMode::Exhaustive)
                })
            })
            .collect()
    };
    // Warm up, then take the best of 3 to shake scheduler noise.
    run_sweep_on(heavy(), 4);
    let best = |workers: usize| {
        (0..3)
            .map(|_| run_sweep_on(heavy(), workers).wall)
            .min()
            .expect("three timed runs")
    };
    let serial = best(1);
    let parallel = best(4);
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "expected ≥2x speedup on {} cores, measured {speedup:.2}x",
        available_workers()
    );
}
