//! Regenerates the paper's **Figure 1**: the same computation under
//! (a) inelastic, (b) single-thread elastic and (c) multithreaded elastic
//! operation.
//!
//! One variable-latency computation unit processes a bursty stream from
//! thread A. Inelastic operation must clock every stage at the worst-case
//! latency; elastic operation processes data when it is valid, leaving
//! idle slots during bursts' gaps; multithreaded elastic operation fills
//! those slots with an independent thread B.
//!
//! ```text
//! cargo run --release --bin fig1_traces
//! ```

use elastic_core::{ArbiterKind, MebKind};
use elastic_sim::{
    CircuitBuilder, GridTrace, LatencyModel, ReadyPolicy, RowSpec, Sink, Source, Tagged, VarLatency,
};

/// Thread A's bursty arrival pattern: tokens released in clumps.
fn thread_a_schedule() -> Vec<(u64, u64)> {
    // (release cycle, sequence) — bursts of 2–3 with gaps.
    vec![
        (0, 0),
        (1, 1),
        (5, 2),
        (6, 3),
        (7, 4),
        (12, 5),
        (13, 6),
        (18, 7),
    ]
}

fn run_variant(threads: usize, b_tokens: u64) -> (f64, String) {
    let mut b = CircuitBuilder::<Tagged>::new();
    let inject = b.channel("inject", threads);
    let buffered = b.channel("buffered", threads);
    let computed = b.channel("computed", threads);
    let mut src = Source::new("src", inject, threads);
    for (cycle, seq) in thread_a_schedule() {
        src.push_at(0, cycle, Tagged::new(0, seq, seq));
    }
    if threads > 1 {
        for seq in 0..b_tokens {
            src.push(1, Tagged::new(1, seq, seq));
        }
    }
    b.add(src);
    b.add_boxed(MebKind::Reduced.build_with::<Tagged>(
        "meb",
        inject,
        buffered,
        threads,
        ArbiterKind::RoundRobin,
    ));
    b.add(VarLatency::new(
        "unit",
        buffered,
        computed,
        threads,
        2,
        LatencyModel::Uniform {
            min: 1,
            max: 2,
            seed: 7,
        },
    ));
    b.add(Sink::new("snk", computed, threads, ReadyPolicy::Always));
    let mut circuit = b.build().expect("fig1 circuit is well-formed");
    circuit.enable_trace();
    circuit.run(26).expect("fig1 runs clean");
    let utilization = circuit.stats().utilization(computed);
    let grid = GridTrace::new(vec![RowSpec::channel(computed, "unit output")]);
    let rendered = grid.render(circuit.trace().expect("traced"), 0, 25);
    (utilization, rendered)
}

fn main() {
    println!("Fig. 1 — single and multithreaded elasticity versus inelastic operation\n");

    // (a) Inelastic: every operation takes the worst-case latency and the
    // schedule is fixed at design time — the clock period absorbs the
    // worst case, so effective throughput is 1/worst-case even for fast
    // operations.
    let ops = thread_a_schedule().len() as f64;
    let worst_case = 2.0;
    println!(
        "(a) inelastic: fixed global schedule, every stage clocked at the worst-case\n    \
         latency of {worst_case} cycles -> {ops} operations need {} slow cycles \
         (effective utilization {:.0}% of the fast-clock datapath)\n",
        ops * worst_case,
        100.0 / worst_case
    );

    let (util_elastic, trace_elastic) = run_variant(1, 0);
    println!(
        "(b) elastic (1 thread): operations run when data is valid; bursty input\n    \
         leaves idle slots — utilization {:.0}%\n",
        100.0 * util_elastic
    );
    println!("{trace_elastic}");

    let (util_mt, trace_mt) = run_variant(2, 14);
    println!(
        "(c) multithreaded elastic (2 threads): thread B's independent work fills\n    \
         the idle slots — utilization {:.0}%\n",
        100.0 * util_mt
    );
    println!("{trace_mt}");

    println!(
        "utilization: elastic {:.0}% -> multithreaded elastic {:.0}%",
        100.0 * util_elastic,
        100.0 * util_mt
    );
}
