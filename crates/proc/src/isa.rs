//! The DTU-RISC instruction set.
//!
//! A compact 32-bit in-order RISC, standing in for the iDEA soft-processor
//! ISA the paper's second design example implements (the paper uses the
//! ISA only as a workload generator for the MEB pipeline; see DESIGN.md).
//! MIPS-like encoding: `opcode[31:26] rs[25:21] rt[20:16] rd[15:11]
//! shamt[10:6] funct[5:0]` for R-type, 16-bit immediates for I-type and a
//! 26-bit absolute target for J-type. PCs and memory are word-addressed.
//!
//! One extension supports multithreaded programs directly: `tid rd` reads
//! the hardware thread id, letting all threads share one binary while
//! operating on per-thread data regions.

/// Number of architectural registers per thread (`r0` is hard-wired to 0).
pub const NUM_REGS: usize = 32;

/// A decoded DTU-RISC instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `rd = rs + rt` (wrapping).
    Add {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = rs - rt` (wrapping).
    Sub {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = rs & rt`.
    And {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = rs | rt`.
    Or {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = rs ^ rt`.
    Xor {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = !(rs | rt)`.
    Nor {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = (rs as i32) < (rt as i32)`.
    Slt {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = rs < rt` (unsigned).
    Sltu {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = rs * rt` (wrapping; executed on the long-latency multiplier).
    Mul {
        /// Destination register.
        rd: u8,
        /// First source.
        rs: u8,
        /// Second source.
        rt: u8,
    },
    /// `rd = rt << shamt`.
    Sll {
        /// Destination register.
        rd: u8,
        /// Source.
        rt: u8,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// `rd = rt >> shamt` (logical).
    Srl {
        /// Destination register.
        rd: u8,
        /// Source.
        rt: u8,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// `rd = (rt as i32) >> shamt` (arithmetic).
    Sra {
        /// Destination register.
        rd: u8,
        /// Source.
        rt: u8,
        /// Shift amount (0–31).
        shamt: u8,
    },
    /// Jump to the address in `rs`.
    Jr {
        /// Register holding the target PC.
        rs: u8,
    },
    /// `rd = hardware thread id` (DTU-RISC extension).
    Tid {
        /// Destination register.
        rd: u8,
    },
    /// `rt = rs + sext(imm)`.
    Addi {
        /// Destination register.
        rt: u8,
        /// Source.
        rs: u8,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `rt = rs & zext(imm)`.
    Andi {
        /// Destination register.
        rt: u8,
        /// Source.
        rs: u8,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `rt = rs | zext(imm)`.
    Ori {
        /// Destination register.
        rt: u8,
        /// Source.
        rs: u8,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `rt = rs ^ zext(imm)`.
    Xori {
        /// Destination register.
        rt: u8,
        /// Source.
        rs: u8,
        /// Zero-extended immediate.
        imm: u16,
    },
    /// `rt = (rs as i32 < imm as i32)`.
    Slti {
        /// Destination register.
        rt: u8,
        /// Source.
        rs: u8,
        /// Sign-extended immediate.
        imm: i16,
    },
    /// `rt = imm << 16`.
    Lui {
        /// Destination register.
        rt: u8,
        /// Upper immediate.
        imm: u16,
    },
    /// `rt = dmem[rs + sext(imm)]` (word-addressed).
    Lw {
        /// Destination register.
        rt: u8,
        /// Base register.
        rs: u8,
        /// Word offset.
        imm: i16,
    },
    /// `dmem[rs + sext(imm)] = rt` (word-addressed).
    Sw {
        /// Source register to store.
        rt: u8,
        /// Base register.
        rs: u8,
        /// Word offset.
        imm: i16,
    },
    /// Branch to `pc + 1 + imm` when `rs == rt`.
    Beq {
        /// First comparand.
        rs: u8,
        /// Second comparand.
        rt: u8,
        /// Relative word offset.
        imm: i16,
    },
    /// Branch to `pc + 1 + imm` when `rs != rt`.
    Bne {
        /// First comparand.
        rs: u8,
        /// Second comparand.
        rt: u8,
        /// Relative word offset.
        imm: i16,
    },
    /// Unconditional jump to the 26-bit absolute word address.
    J {
        /// Absolute target.
        target: u32,
    },
    /// Jump and link: `r31 = pc + 1`, then jump.
    Jal {
        /// Absolute target.
        target: u32,
    },
    /// Do nothing.
    Nop,
    /// Stop fetching for this thread.
    Halt,
}

/// Opcodes.
mod op {
    pub const RTYPE: u32 = 0x00;
    pub const J: u32 = 0x02;
    pub const JAL: u32 = 0x03;
    pub const BEQ: u32 = 0x04;
    pub const BNE: u32 = 0x05;
    pub const ADDI: u32 = 0x08;
    pub const SLTI: u32 = 0x0a;
    pub const ANDI: u32 = 0x0c;
    pub const ORI: u32 = 0x0d;
    pub const XORI: u32 = 0x0e;
    pub const LUI: u32 = 0x0f;
    pub const LW: u32 = 0x23;
    pub const SW: u32 = 0x2b;
    pub const HALT: u32 = 0x3f;
}

/// R-type function codes.
mod funct {
    pub const SLL: u32 = 0x00;
    pub const SRL: u32 = 0x02;
    pub const SRA: u32 = 0x03;
    pub const JR: u32 = 0x08;
    pub const TID: u32 = 0x0b;
    pub const MUL: u32 = 0x18;
    pub const ADD: u32 = 0x20;
    pub const SUB: u32 = 0x22;
    pub const AND: u32 = 0x24;
    pub const OR: u32 = 0x25;
    pub const XOR: u32 = 0x26;
    pub const NOR: u32 = 0x27;
    pub const SLT: u32 = 0x2a;
    pub const SLTU: u32 = 0x2b;
}

/// Error returned when a word does not decode to a DTU-RISC instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeInstrError {
    /// The undecodable word.
    pub word: u32,
}

impl std::fmt::Display for DecodeInstrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "word {:#010x} is not a valid DTU-RISC instruction",
            self.word
        )
    }
}

impl std::error::Error for DecodeInstrError {}

impl Instr {
    /// Encodes the instruction into its 32-bit word.
    pub fn encode(self) -> u32 {
        let r = |rs: u8, rt: u8, rd: u8, shamt: u8, f: u32| {
            (u32::from(rs) << 21)
                | (u32::from(rt) << 16)
                | (u32::from(rd) << 11)
                | (u32::from(shamt) << 6)
                | f
        };
        let i = |opc: u32, rs: u8, rt: u8, imm: u16| {
            (opc << 26) | (u32::from(rs) << 21) | (u32::from(rt) << 16) | u32::from(imm)
        };
        match self {
            Instr::Add { rd, rs, rt } => r(rs, rt, rd, 0, funct::ADD),
            Instr::Sub { rd, rs, rt } => r(rs, rt, rd, 0, funct::SUB),
            Instr::And { rd, rs, rt } => r(rs, rt, rd, 0, funct::AND),
            Instr::Or { rd, rs, rt } => r(rs, rt, rd, 0, funct::OR),
            Instr::Xor { rd, rs, rt } => r(rs, rt, rd, 0, funct::XOR),
            Instr::Nor { rd, rs, rt } => r(rs, rt, rd, 0, funct::NOR),
            Instr::Slt { rd, rs, rt } => r(rs, rt, rd, 0, funct::SLT),
            Instr::Sltu { rd, rs, rt } => r(rs, rt, rd, 0, funct::SLTU),
            Instr::Mul { rd, rs, rt } => r(rs, rt, rd, 0, funct::MUL),
            Instr::Sll { rd, rt, shamt } => r(0, rt, rd, shamt, funct::SLL),
            Instr::Srl { rd, rt, shamt } => r(0, rt, rd, shamt, funct::SRL),
            Instr::Sra { rd, rt, shamt } => r(0, rt, rd, shamt, funct::SRA),
            Instr::Jr { rs } => r(rs, 0, 0, 0, funct::JR),
            Instr::Tid { rd } => r(0, 0, rd, 0, funct::TID),
            Instr::Addi { rt, rs, imm } => i(op::ADDI, rs, rt, imm as u16),
            Instr::Andi { rt, rs, imm } => i(op::ANDI, rs, rt, imm),
            Instr::Ori { rt, rs, imm } => i(op::ORI, rs, rt, imm),
            Instr::Xori { rt, rs, imm } => i(op::XORI, rs, rt, imm),
            Instr::Slti { rt, rs, imm } => i(op::SLTI, rs, rt, imm as u16),
            Instr::Lui { rt, imm } => i(op::LUI, 0, rt, imm),
            Instr::Lw { rt, rs, imm } => i(op::LW, rs, rt, imm as u16),
            Instr::Sw { rt, rs, imm } => i(op::SW, rs, rt, imm as u16),
            Instr::Beq { rs, rt, imm } => i(op::BEQ, rs, rt, imm as u16),
            Instr::Bne { rs, rt, imm } => i(op::BNE, rs, rt, imm as u16),
            Instr::J { target } => (op::J << 26) | (target & 0x03ff_ffff),
            Instr::Jal { target } => (op::JAL << 26) | (target & 0x03ff_ffff),
            Instr::Nop => 0,
            Instr::Halt => op::HALT << 26,
        }
    }

    /// Decodes a 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstrError`] for unknown opcodes or function codes.
    pub fn decode(word: u32) -> Result<Instr, DecodeInstrError> {
        let opc = word >> 26;
        let rs = ((word >> 21) & 0x1f) as u8;
        let rt = ((word >> 16) & 0x1f) as u8;
        let rd = ((word >> 11) & 0x1f) as u8;
        let shamt = ((word >> 6) & 0x1f) as u8;
        let imm_u = (word & 0xffff) as u16;
        let imm_s = imm_u as i16;
        let err = DecodeInstrError { word };
        Ok(match opc {
            op::RTYPE => match word & 0x3f {
                funct::SLL if word == 0 => Instr::Nop,
                funct::SLL => Instr::Sll { rd, rt, shamt },
                funct::SRL => Instr::Srl { rd, rt, shamt },
                funct::SRA => Instr::Sra { rd, rt, shamt },
                funct::JR => Instr::Jr { rs },
                funct::TID => Instr::Tid { rd },
                funct::MUL => Instr::Mul { rd, rs, rt },
                funct::ADD => Instr::Add { rd, rs, rt },
                funct::SUB => Instr::Sub { rd, rs, rt },
                funct::AND => Instr::And { rd, rs, rt },
                funct::OR => Instr::Or { rd, rs, rt },
                funct::XOR => Instr::Xor { rd, rs, rt },
                funct::NOR => Instr::Nor { rd, rs, rt },
                funct::SLT => Instr::Slt { rd, rs, rt },
                funct::SLTU => Instr::Sltu { rd, rs, rt },
                _ => return Err(err),
            },
            op::J => Instr::J {
                target: word & 0x03ff_ffff,
            },
            op::JAL => Instr::Jal {
                target: word & 0x03ff_ffff,
            },
            op::BEQ => Instr::Beq { rs, rt, imm: imm_s },
            op::BNE => Instr::Bne { rs, rt, imm: imm_s },
            op::ADDI => Instr::Addi { rt, rs, imm: imm_s },
            op::SLTI => Instr::Slti { rt, rs, imm: imm_s },
            op::ANDI => Instr::Andi { rt, rs, imm: imm_u },
            op::ORI => Instr::Ori { rt, rs, imm: imm_u },
            op::XORI => Instr::Xori { rt, rs, imm: imm_u },
            op::LUI => Instr::Lui { rt, imm: imm_u },
            op::LW => Instr::Lw { rt, rs, imm: imm_s },
            op::SW => Instr::Sw { rt, rs, imm: imm_s },
            op::HALT => Instr::Halt,
            _ => return Err(err),
        })
    }

    /// Source registers this instruction reads.
    pub fn sources(&self) -> Vec<u8> {
        match *self {
            Instr::Add { rs, rt, .. }
            | Instr::Sub { rs, rt, .. }
            | Instr::And { rs, rt, .. }
            | Instr::Or { rs, rt, .. }
            | Instr::Xor { rs, rt, .. }
            | Instr::Nor { rs, rt, .. }
            | Instr::Slt { rs, rt, .. }
            | Instr::Sltu { rs, rt, .. }
            | Instr::Mul { rs, rt, .. }
            | Instr::Beq { rs, rt, .. }
            | Instr::Bne { rs, rt, .. } => vec![rs, rt],
            Instr::Sll { rt, .. } | Instr::Srl { rt, .. } | Instr::Sra { rt, .. } => vec![rt],
            Instr::Jr { rs }
            | Instr::Addi { rs, .. }
            | Instr::Andi { rs, .. }
            | Instr::Ori { rs, .. }
            | Instr::Xori { rs, .. }
            | Instr::Slti { rs, .. }
            | Instr::Lw { rs, .. } => vec![rs],
            Instr::Sw { rs, rt, .. } => vec![rs, rt],
            Instr::Lui { .. }
            | Instr::Tid { .. }
            | Instr::J { .. }
            | Instr::Jal { .. }
            | Instr::Nop
            | Instr::Halt => vec![],
        }
    }

    /// The register this instruction writes, if any (`r0` writes are
    /// discarded but still reported here; the register file ignores them).
    pub fn dest(&self) -> Option<u8> {
        match *self {
            Instr::Add { rd, .. }
            | Instr::Sub { rd, .. }
            | Instr::And { rd, .. }
            | Instr::Or { rd, .. }
            | Instr::Xor { rd, .. }
            | Instr::Nor { rd, .. }
            | Instr::Slt { rd, .. }
            | Instr::Sltu { rd, .. }
            | Instr::Mul { rd, .. }
            | Instr::Sll { rd, .. }
            | Instr::Srl { rd, .. }
            | Instr::Sra { rd, .. }
            | Instr::Tid { rd } => Some(rd),
            Instr::Addi { rt, .. }
            | Instr::Andi { rt, .. }
            | Instr::Ori { rt, .. }
            | Instr::Xori { rt, .. }
            | Instr::Slti { rt, .. }
            | Instr::Lui { rt, .. }
            | Instr::Lw { rt, .. } => Some(rt),
            Instr::Jal { .. } => Some(31),
            _ => None,
        }
    }

    /// Whether fetch must stall this thread until the instruction resolves
    /// in execute (branches and indirect/direct jumps) or permanently
    /// (halt).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::J { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
                | Instr::Halt
        )
    }

    /// Whether this instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Lw { .. } | Instr::Sw { .. })
    }

    /// Whether this instruction uses the long-latency multiplier.
    pub fn is_mul(&self) -> bool {
        matches!(self, Instr::Mul { .. })
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Instr::Add { rd, rs, rt } => write!(f, "add r{rd}, r{rs}, r{rt}"),
            Instr::Sub { rd, rs, rt } => write!(f, "sub r{rd}, r{rs}, r{rt}"),
            Instr::And { rd, rs, rt } => write!(f, "and r{rd}, r{rs}, r{rt}"),
            Instr::Or { rd, rs, rt } => write!(f, "or r{rd}, r{rs}, r{rt}"),
            Instr::Xor { rd, rs, rt } => write!(f, "xor r{rd}, r{rs}, r{rt}"),
            Instr::Nor { rd, rs, rt } => write!(f, "nor r{rd}, r{rs}, r{rt}"),
            Instr::Slt { rd, rs, rt } => write!(f, "slt r{rd}, r{rs}, r{rt}"),
            Instr::Sltu { rd, rs, rt } => write!(f, "sltu r{rd}, r{rs}, r{rt}"),
            Instr::Mul { rd, rs, rt } => write!(f, "mul r{rd}, r{rs}, r{rt}"),
            Instr::Sll { rd, rt, shamt } => write!(f, "sll r{rd}, r{rt}, {shamt}"),
            Instr::Srl { rd, rt, shamt } => write!(f, "srl r{rd}, r{rt}, {shamt}"),
            Instr::Sra { rd, rt, shamt } => write!(f, "sra r{rd}, r{rt}, {shamt}"),
            Instr::Jr { rs } => write!(f, "jr r{rs}"),
            Instr::Tid { rd } => write!(f, "tid r{rd}"),
            Instr::Addi { rt, rs, imm } => write!(f, "addi r{rt}, r{rs}, {imm}"),
            Instr::Andi { rt, rs, imm } => write!(f, "andi r{rt}, r{rs}, {imm}"),
            Instr::Ori { rt, rs, imm } => write!(f, "ori r{rt}, r{rs}, {imm}"),
            Instr::Xori { rt, rs, imm } => write!(f, "xori r{rt}, r{rs}, {imm}"),
            Instr::Slti { rt, rs, imm } => write!(f, "slti r{rt}, r{rs}, {imm}"),
            Instr::Lui { rt, imm } => write!(f, "lui r{rt}, {imm}"),
            Instr::Lw { rt, rs, imm } => write!(f, "lw r{rt}, {imm}(r{rs})"),
            Instr::Sw { rt, rs, imm } => write!(f, "sw r{rt}, {imm}(r{rs})"),
            Instr::Beq { rs, rt, imm } => write!(f, "beq r{rs}, r{rt}, {imm}"),
            Instr::Bne { rs, rt, imm } => write!(f, "bne r{rs}, r{rt}, {imm}"),
            Instr::J { target } => write!(f, "j {target}"),
            Instr::Jal { target } => write!(f, "jal {target}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Add {
                rd: 1,
                rs: 2,
                rt: 3,
            },
            Instr::Sub {
                rd: 31,
                rs: 0,
                rt: 15,
            },
            Instr::And {
                rd: 4,
                rs: 5,
                rt: 6,
            },
            Instr::Or {
                rd: 7,
                rs: 8,
                rt: 9,
            },
            Instr::Xor {
                rd: 10,
                rs: 11,
                rt: 12,
            },
            Instr::Nor {
                rd: 13,
                rs: 14,
                rt: 15,
            },
            Instr::Slt {
                rd: 16,
                rs: 17,
                rt: 18,
            },
            Instr::Sltu {
                rd: 19,
                rs: 20,
                rt: 21,
            },
            Instr::Mul {
                rd: 22,
                rs: 23,
                rt: 24,
            },
            Instr::Sll {
                rd: 25,
                rt: 26,
                shamt: 31,
            },
            Instr::Srl {
                rd: 27,
                rt: 28,
                shamt: 1,
            },
            Instr::Sra {
                rd: 29,
                rt: 30,
                shamt: 16,
            },
            Instr::Jr { rs: 31 },
            Instr::Tid { rd: 9 },
            Instr::Addi {
                rt: 1,
                rs: 2,
                imm: -32768,
            },
            Instr::Andi {
                rt: 3,
                rs: 4,
                imm: 0xffff,
            },
            Instr::Ori {
                rt: 5,
                rs: 6,
                imm: 0x1234,
            },
            Instr::Xori {
                rt: 7,
                rs: 8,
                imm: 1,
            },
            Instr::Slti {
                rt: 9,
                rs: 10,
                imm: -1,
            },
            Instr::Lui {
                rt: 11,
                imm: 0xdead,
            },
            Instr::Lw {
                rt: 12,
                rs: 13,
                imm: 100,
            },
            Instr::Sw {
                rt: 14,
                rs: 15,
                imm: -100,
            },
            Instr::Beq {
                rs: 16,
                rt: 17,
                imm: -4,
            },
            Instr::Bne {
                rs: 18,
                rt: 19,
                imm: 7,
            },
            Instr::J {
                target: 0x03ff_ffff,
            },
            Instr::Jal { target: 42 },
            Instr::Nop,
            Instr::Halt,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for instr in all_sample_instrs() {
            let word = instr.encode();
            assert_eq!(Instr::decode(word), Ok(instr), "roundtrip of {instr}");
        }
    }

    #[test]
    fn nop_encodes_to_zero() {
        assert_eq!(Instr::Nop.encode(), 0);
        assert_eq!(Instr::decode(0), Ok(Instr::Nop));
    }

    #[test]
    fn invalid_words_are_rejected() {
        // Unknown funct.
        assert!(Instr::decode(0x0000_003e).is_err());
        // Unknown opcode.
        assert!(Instr::decode(0x7000_0000).is_err());
    }

    #[test]
    fn hazard_metadata_is_consistent() {
        assert_eq!(
            Instr::Add {
                rd: 1,
                rs: 2,
                rt: 3
            }
            .sources(),
            vec![2, 3]
        );
        assert_eq!(
            Instr::Add {
                rd: 1,
                rs: 2,
                rt: 3
            }
            .dest(),
            Some(1)
        );
        assert_eq!(
            Instr::Sw {
                rt: 4,
                rs: 5,
                imm: 0
            }
            .dest(),
            None
        );
        assert_eq!(Instr::Jal { target: 0 }.dest(), Some(31));
        assert!(Instr::Beq {
            rs: 0,
            rt: 0,
            imm: 0
        }
        .is_control_flow());
        assert!(!Instr::Lw {
            rt: 1,
            rs: 2,
            imm: 0
        }
        .is_control_flow());
        assert!(Instr::Lw {
            rt: 1,
            rs: 2,
            imm: 0
        }
        .is_mem());
        assert!(Instr::Mul {
            rd: 1,
            rs: 2,
            rt: 3
        }
        .is_mul());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            Instr::Lw {
                rt: 3,
                rs: 4,
                imm: -8
            }
            .to_string(),
            "lw r3, -8(r4)"
        );
        assert_eq!(Instr::Tid { rd: 5 }.to_string(), "tid r5");
    }
}
