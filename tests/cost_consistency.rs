//! Cost consistency — `Inventory::from_ir` over the *structural IR* must
//! agree with the hand-written Table I inventories in `elastic-cost` for
//! every configuration the paper reports: both designs, S ∈ {2, 4, 8, 16},
//! full and reduced MEBs.
//!
//! This is the "one circuit description feeds the cost model" guarantee:
//! the MEB/EB/barrier rows are derived structurally from the IR nodes and
//! channel widths, the combinational payload from the IR's cost hints, and
//! the totals must equal `DesignSpec::area_les` exactly.

use mt_elastic::core::MebKind;
use mt_elastic::cost::{fifo_meb_inventory, processor_design};
use mt_elastic::cost::{md5_design, meb_inventory, BufferKind, DesignSpec, Inventory};
use mt_elastic::md5::Md5Circuit;
use mt_elastic::proc::Cpu;
use mt_elastic::sim::Token;
use mt_elastic::synth::{ElasticIr, MebSubstitution, Pass};

const THREAD_SWEEP: [usize; 4] = [2, 4, 8, 16];

fn retarget<T: Token>(ir: &mut ElasticIr<T>, kind: MebKind) {
    MebSubstitution::all(kind)
        .run(ir)
        .expect("substitution applies");
}

fn check(design: &DesignSpec, ir_inventory: &Inventory, kind: BufferKind, threads: usize) {
    let expect = design.area_les(kind, threads);
    let got = ir_inventory.total_les();
    assert_eq!(
        got, expect,
        "{} S={threads} {kind}: IR-derived {got} LEs vs hand-written {expect} LEs\n\
         IR inventory:\n{ir_inventory:?}",
        design.name
    );
}

#[test]
fn md5_ir_inventory_matches_table1_spec() {
    let design = md5_design();
    for threads in THREAD_SWEEP {
        for (meb, buf) in [
            (MebKind::Full, BufferKind::Full),
            (MebKind::Reduced, BufferKind::Reduced),
        ] {
            let mut md5 = Md5Circuit::ir(threads, threads, 1);
            retarget(&mut md5.ir, meb);
            check(&design, &Inventory::from_ir(&md5.ir), buf, threads);
        }
    }
}

#[test]
fn md5_ir_inventory_is_stage_count_invariant() {
    // Pipelining the round unit splits the unrolled-step rows across
    // stages and adds MEB pipeline registers, but the combinational
    // payload total must not change.
    let comb_total = |stages: usize| -> usize {
        let md5 = Md5Circuit::ir(8, 8, stages);
        Inventory::from_ir(&md5.ir)
            .items
            .iter()
            .filter(|item| item.name.contains("unrolled step"))
            .map(|item| item.count * item.les_each)
            .sum()
    };
    let one = comb_total(1);
    assert!(one > 0);
    for stages in [2, 4, 8, 16] {
        assert_eq!(comb_total(stages), one, "at {stages} stages");
    }
}

#[test]
fn processor_ir_inventory_matches_table1_spec() {
    let design = processor_design();
    for threads in THREAD_SWEEP {
        for (meb, buf) in [
            (MebKind::Full, BufferKind::Full),
            (MebKind::Reduced, BufferKind::Reduced),
        ] {
            let mut cpu = Cpu::cost_ir(threads);
            retarget(&mut cpu.ir, meb);
            check(&design, &Inventory::from_ir(&cpu.ir), buf, threads);
        }
    }
}

#[test]
fn fifo_ablation_inventory_scales_with_depth() {
    // The FIFO ablation buffer (S independent FIFOs) has no Table I row;
    // sanity-check the structural model directly: registers scale with
    // depth, and depth 1 costs at least as much as a full MEB of the same
    // shape (a 1-deep FIFO per thread is a degenerate EB per thread).
    for threads in THREAD_SWEEP {
        let d1 = fifo_meb_inventory(1, threads, 32).total_les();
        let d4 = fifo_meb_inventory(4, threads, 32).total_les();
        assert!(d4 > d1, "S={threads}: depth 4 must cost more than depth 1");
        let full = meb_inventory(BufferKind::Full, threads, 32).total_les();
        assert!(
            2 * d4 > full,
            "S={threads}: a 4-deep FIFO bank is not absurdly cheap vs a full MEB"
        );
    }
}
