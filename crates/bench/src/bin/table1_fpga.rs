//! Regenerates the paper's **Table I** ("FPGA implementation results of
//! the 8-thread design examples") from the structural cost model, with
//! the paper's reported numbers side by side, plus the 16-thread
//! extension behind the paper's ">22 % savings" remark.
//!
//! With `--inventory`, also prints the itemized LE breakdown of every
//! design/buffer combination.
//!
//! ```text
//! cargo run --release --bin table1_fpga [--inventory]
//! ```

use elastic_cost::{frequency_mhz, gcd_design, md5_design, processor_design, render, BufferKind};

fn main() {
    let inventory = std::env::args().any(|a| a == "--inventory");

    print!("{}", render(&[8, 16]));

    // Extension: the same model applied to the circuit synthesized by the
    // elastic-synth flow (examples/gcd_synthesis.rs).
    println!("extension — synthesized GCD loop (not in the paper):");
    let gcd = gcd_design();
    for kind in [BufferKind::Full, BufferKind::Reduced] {
        let area = gcd.area_les(kind, 8);
        println!(
            "  {:<12} 8 threads: {:>6} LEs @ {:>5.1} MHz",
            kind.to_string(),
            area,
            frequency_mhz(gcd.logic_levels, area)
        );
    }
    println!();

    if inventory {
        for spec in [md5_design(), processor_design()] {
            for kind in [BufferKind::Full, BufferKind::Reduced] {
                println!("\n=== {} — {} (8 threads) ===", spec.name, kind);
                print!("{}", spec.inventory(kind, 8).render());
            }
        }
    } else {
        println!("(run with --inventory for the itemized LE breakdown)");
    }
}
