//! Regenerates the paper's Table I — FPGA implementation results of the
//! 8-thread design examples — from the structural cost model, alongside
//! the paper's reported numbers.

use crate::design::{frequency_mhz, md5_design, processor_design, BufferKind, DesignSpec};

/// The paper's reported Table I numbers: `(design, kind) → (LEs, MHz)`.
pub fn paper_reference(design: &str, kind: BufferKind) -> Option<(usize, f64)> {
    Some(match (design, kind) {
        ("MD5 hash", BufferKind::Full) => (12780, 11.0),
        ("MD5 hash", BufferKind::Reduced) => (11200, 12.0),
        ("Processor", BufferKind::Full) => (6850, 60.0),
        ("Processor", BufferKind::Reduced) => (5590, 68.0),
        _ => return None,
    })
}

/// One row of the regenerated table.
#[derive(Clone, PartialEq, Debug)]
pub struct Table1Row {
    /// Design name.
    pub design: &'static str,
    /// Thread count.
    pub threads: usize,
    /// MEB microarchitecture.
    pub kind: BufferKind,
    /// Modelled area in LEs.
    pub area_les: usize,
    /// Modelled Fmax in MHz.
    pub freq_mhz: f64,
    /// The paper's reported numbers, when this row appears in Table I.
    pub paper: Option<(usize, f64)>,
}

/// Computes all rows for a thread count (8 reproduces Table I; 16
/// addresses the paper's ">22 % savings" extension claim).
pub fn table1_rows(threads: usize) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for spec in [md5_design(), processor_design()] {
        for kind in [BufferKind::Full, BufferKind::Reduced] {
            let area = spec.area_les(kind, threads);
            rows.push(Table1Row {
                design: spec.name,
                threads,
                kind,
                area_les: area,
                freq_mhz: frequency_mhz(spec.logic_levels, area),
                paper: if threads == 8 {
                    paper_reference(spec.name, kind)
                } else {
                    None
                },
            });
        }
    }
    rows
}

/// Relative area saving of the reduced MEB for one design at `threads`.
pub fn savings_fraction(spec: &DesignSpec, threads: usize) -> f64 {
    let full = spec.area_les(BufferKind::Full, threads) as f64;
    let reduced = spec.area_les(BufferKind::Reduced, threads) as f64;
    (full - reduced) / full
}

/// Average reduced-MEB saving over both designs.
pub fn average_savings(threads: usize) -> f64 {
    (savings_fraction(&md5_design(), threads) + savings_fraction(&processor_design(), threads))
        / 2.0
}

/// Renders the table header (title + column rule) shared by every
/// thread-count section.
pub fn render_header() -> String {
    let mut out = String::new();
    out.push_str("TABLE I — FPGA implementation results (structural cost model vs paper)\n\n");
    out.push_str(&format!(
        "{:<10} {:>3}  {:<12} {:>10} {:>10}   {:>10} {:>10}\n",
        "Design", "S", "Buffer", "LEs", "MHz", "paper LEs", "paper MHz"
    ));
    out.push_str(&"-".repeat(76));
    out.push('\n');
    out
}

/// Renders the rows + savings summary for one thread count. Sections
/// are independent, so a sweep over thread counts can compute them as
/// separate jobs and concatenate in submission order (see the
/// `table1_fpga` binary).
pub fn render_section(threads: usize) -> String {
    let mut out = String::new();
    for row in table1_rows(threads) {
        let (p_les, p_mhz) = match row.paper {
            Some((a, f)) => (a.to_string(), format!("{f:.0}")),
            None => ("—".to_string(), "—".to_string()),
        };
        out.push_str(&format!(
            "{:<10} {:>3}  {:<12} {:>10} {:>10.1}   {:>10} {:>10}\n",
            row.design,
            row.threads,
            row.kind.to_string(),
            row.area_les,
            row.freq_mhz,
            p_les,
            p_mhz
        ));
    }
    out.push_str(&format!(
        "{:<10} {:>3}  average reduced-MEB area saving: {:.1}%  (paper: {})\n\n",
        "",
        threads,
        100.0 * average_savings(threads),
        match threads {
            8 => "≈15%",
            16 => ">22%",
            _ => "n/a",
        }
    ));
    out
}

/// Renders the regenerated Table I (plus the requested thread counts) as
/// an aligned ASCII table with the paper's numbers for comparison.
pub fn render(thread_counts: &[usize]) -> String {
    let mut out = render_header();
    for &s in thread_counts {
        out.push_str(&render_section(s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline shape of Table I: reduced is smaller AND at least as
    /// fast, for both designs.
    #[test]
    fn reduced_wins_on_area_without_losing_frequency() {
        for row_pair in table1_rows(8).chunks(2) {
            let (full, reduced) = (&row_pair[0], &row_pair[1]);
            assert_eq!(full.kind, BufferKind::Full);
            assert_eq!(reduced.kind, BufferKind::Reduced);
            assert!(reduced.area_les < full.area_les, "{}", full.design);
            assert!(reduced.freq_mhz >= full.freq_mhz, "{}", full.design);
        }
    }

    /// Modelled absolute numbers land near the paper's (within 20 %) —
    /// the model is structural, not a synthesis flow.
    #[test]
    fn model_tracks_paper_absolutes_within_20_percent() {
        for row in table1_rows(8) {
            let (p_les, p_mhz) = row.paper.expect("8-thread rows are in Table I");
            let area_err = (row.area_les as f64 - p_les as f64).abs() / p_les as f64;
            let freq_err = (row.freq_mhz - p_mhz).abs() / p_mhz;
            assert!(
                area_err < 0.20,
                "{} {} area {} vs {}",
                row.design,
                row.kind,
                row.area_les,
                p_les
            );
            assert!(
                freq_err < 0.20,
                "{} {} freq {:.1} vs {}",
                row.design,
                row.kind,
                row.freq_mhz,
                p_mhz
            );
        }
    }

    /// The paper's ~15 % average saving at 8 threads.
    #[test]
    fn average_savings_at_8_threads_is_about_15_percent() {
        let avg = average_savings(8);
        assert!((0.11..=0.19).contains(&avg), "avg savings {avg}");
    }

    /// Savings grow with the thread count (the paper reports >22 % at 16;
    /// the structural model reproduces the trend and most of the
    /// magnitude — see EXPERIMENTS.md).
    #[test]
    fn savings_grow_with_threads() {
        let s8 = average_savings(8);
        let s16 = average_savings(16);
        assert!(s16 > s8 + 0.03, "s8 = {s8}, s16 = {s16}");
        assert!(s16 > 0.18, "s16 = {s16}");
    }

    /// The processor saves a larger fraction than MD5 ("larger ratio of
    /// MEB area vs combinational logic area").
    #[test]
    fn processor_saves_more_than_md5() {
        let md5 = savings_fraction(&md5_design(), 8);
        let proc = savings_fraction(&processor_design(), 8);
        assert!(proc > md5, "md5 {md5}, proc {proc}");
    }

    #[test]
    fn render_contains_both_designs_and_paper_numbers() {
        let table = render(&[8, 16]);
        assert!(table.contains("MD5 hash"));
        assert!(table.contains("Processor"));
        assert!(table.contains("12780"));
        assert!(table.contains("5590"));
    }

    /// `render` is exactly header + per-thread-count sections, so the
    /// sweep harness can compute sections independently and concatenate.
    #[test]
    fn render_is_header_plus_independent_sections() {
        let assembled = format!(
            "{}{}{}",
            render_header(),
            render_section(8),
            render_section(16)
        );
        assert_eq!(render(&[8, 16]), assembled);
    }
}
