//! The lowered op table executed by the fused settle kernel.
//!
//! [`FusedOp`] is the *bytecode* of the fused backend: one enum variant
//! per paper primitive, holding the component **unboxed** so the settle
//! loop dispatches through a dense, branch-predictable `match` instead of
//! a `Box<dyn Component>` vtable call. [`OpTable`] strings the ops
//! together in the builder's rank order (fusion happens *after* the
//! levelizing permutation, so op index `i` *is* evaluation index `i`) and
//! implements [`FusedTable`], the mechanism contract defined in
//! `elastic-sim`. The lowering that produces the table lives in
//! [`crate::compile`].
//!
//! Three ops override their interpreted `eval` with a word-level
//! specialisation (observable behaviour is identical, see
//! `docs/kernel.md`):
//!
//! * [`Sink::eval_fused`] caches the per-thread ready-policy word once
//!   per cycle and commits it with a single masked write;
//! * [`ReducedMeb::eval_fused`] rebuilds its upstream ready word once
//!   per cycle (it is a function of registered state only) and commits
//!   it in one word-level call;
//! * [`Source::eval_fused`] caches the released-head word per cycle and
//!   picks the offered thread with a word-level wrapping scan.
//!
//! Everything else dispatches statically to the very same
//! `Component::eval` the interpreted kernel runs — the fused backend
//! removes dispatch overhead, never semantics. Components the lowering
//! does not recognise (custom user primitives, [`IrNodeKind::Custom`]
//! nodes) stay boxed in [`FusedOp::Boxed`] and keep their vtable path.
//!
//! [`IrNodeKind::Custom`]: crate::IrNodeKind::Custom

use elastic_core::{
    Barrier, Branch, ElasticBuffer, FifoMeb, Fork, FullMeb, Join, Merge, ReducedMeb,
};
use elastic_sim::{
    Component, EvalCtx, FusedOpKind, FusedTable, ProtocolError, Sink, Source, SweepCtx, TickCtx,
    Token, Transform, VarLatency,
};

/// One fused settle-kernel op: a paper primitive stored unboxed, or the
/// boxed fallback for unrecognised components.
///
/// The variant order mirrors [`FusedOpKind::ALL`] so `kind()` is a plain
/// discriminant read.
pub enum FusedOp<T: Token> {
    /// Token source ([`elastic_sim::Source`]).
    Source(Source<T>),
    /// Token sink ([`elastic_sim::Sink`]), evaluated via its word-level
    /// ready-policy cache.
    Sink(Sink<T>),
    /// Single-thread elastic buffer.
    Eb(ElasticBuffer<T>),
    /// Full MEB (`2·S` slots).
    MebFull(FullMeb<T>),
    /// Reduced MEB (`S + 1` slots), evaluated via its word-level ready
    /// scratch mask.
    MebReduced(ReducedMeb<T>),
    /// FIFO MEB.
    MebFifo(FifoMeb<T>),
    /// M-Fork.
    Fork(Fork<T>),
    /// M-Join.
    Join(Join<T>),
    /// M-Branch.
    Branch(Branch<T>),
    /// M-Merge.
    Merge(Merge<T>),
    /// Thread barrier.
    Barrier(Barrier<T>),
    /// Variable-latency unit.
    VarLatency(VarLatency<T>),
    /// Stateless transform.
    Transform(Transform<T>),
    /// Unrecognised component: still evaluated through its vtable so
    /// custom primitives work unchanged under the fused backend.
    Boxed(Box<dyn Component<T>>),
}

/// Statically dispatches `$body` over every variant's payload. `Boxed`
/// payloads auto-deref, so trait-method bodies work uniformly.
macro_rules! for_each_op {
    ($self:expr, $op:ident => $body:expr) => {
        match $self {
            FusedOp::Source($op) => $body,
            FusedOp::Sink($op) => $body,
            FusedOp::Eb($op) => $body,
            FusedOp::MebFull($op) => $body,
            FusedOp::MebReduced($op) => $body,
            FusedOp::MebFifo($op) => $body,
            FusedOp::Fork($op) => $body,
            FusedOp::Join($op) => $body,
            FusedOp::Branch($op) => $body,
            FusedOp::Merge($op) => $body,
            FusedOp::Barrier($op) => $body,
            FusedOp::VarLatency($op) => $body,
            FusedOp::Transform($op) => $body,
            FusedOp::Boxed($op) => $body,
        }
    };
}

impl<T: Token> FusedOp<T> {
    /// This op's class label (indexes the per-op eval counters in
    /// [`KernelStats`](elastic_sim::KernelStats)).
    pub fn kind(&self) -> FusedOpKind {
        match self {
            FusedOp::Source(_) => FusedOpKind::Source,
            FusedOp::Sink(_) => FusedOpKind::Sink,
            FusedOp::Eb(_) => FusedOpKind::Eb,
            FusedOp::MebFull(_) => FusedOpKind::MebFull,
            FusedOp::MebReduced(_) => FusedOpKind::MebReduced,
            FusedOp::MebFifo(_) => FusedOpKind::MebFifo,
            FusedOp::Fork(_) => FusedOpKind::Fork,
            FusedOp::Join(_) => FusedOpKind::Join,
            FusedOp::Branch(_) => FusedOpKind::Branch,
            FusedOp::Merge(_) => FusedOpKind::Merge,
            FusedOp::Barrier(_) => FusedOpKind::Barrier,
            FusedOp::VarLatency(_) => FusedOpKind::VarLatency,
            FusedOp::Transform(_) => FusedOpKind::Transform,
            FusedOp::Boxed(_) => FusedOpKind::Custom,
        }
    }

    /// Combinational evaluation with static dispatch; `Sink` and
    /// `ReducedMeb` take their word-level fused paths, everything else
    /// runs its ordinary `Component::eval`.
    #[inline]
    fn eval_op(&mut self, ctx: &mut EvalCtx<'_, T>) {
        match self {
            FusedOp::Source(op) => op.eval_fused(ctx),
            FusedOp::Sink(op) => op.eval_fused(ctx),
            FusedOp::Eb(op) => op.eval(ctx),
            FusedOp::MebFull(op) => op.eval(ctx),
            FusedOp::MebReduced(op) => op.eval_fused(ctx),
            FusedOp::MebFifo(op) => op.eval(ctx),
            FusedOp::Fork(op) => op.eval(ctx),
            FusedOp::Join(op) => op.eval(ctx),
            FusedOp::Branch(op) => op.eval(ctx),
            FusedOp::Merge(op) => op.eval(ctx),
            FusedOp::Barrier(op) => op.eval(ctx),
            FusedOp::VarLatency(op) => op.eval(ctx),
            FusedOp::Transform(op) => op.eval(ctx),
            FusedOp::Boxed(op) => op.eval(ctx),
        }
    }

    /// Borrows the payload through the plain component trait (cold
    /// paths: names, slots, typed downcasts, next-event scans).
    pub fn as_component(&self) -> &dyn Component<T> {
        match self {
            FusedOp::Source(op) => op,
            FusedOp::Sink(op) => op,
            FusedOp::Eb(op) => op,
            FusedOp::MebFull(op) => op,
            FusedOp::MebReduced(op) => op,
            FusedOp::MebFifo(op) => op,
            FusedOp::Fork(op) => op,
            FusedOp::Join(op) => op,
            FusedOp::Branch(op) => op,
            FusedOp::Merge(op) => op,
            FusedOp::Barrier(op) => op,
            FusedOp::VarLatency(op) => op,
            FusedOp::Transform(op) => op,
            FusedOp::Boxed(op) => &**op,
        }
    }

    /// Mutably borrows the payload through the plain component trait
    /// (reset, `Circuit::get_mut` reconfiguration).
    pub fn as_component_mut(&mut self) -> &mut dyn Component<T> {
        match self {
            FusedOp::Source(op) => op,
            FusedOp::Sink(op) => op,
            FusedOp::Eb(op) => op,
            FusedOp::MebFull(op) => op,
            FusedOp::MebReduced(op) => op,
            FusedOp::MebFifo(op) => op,
            FusedOp::Fork(op) => op,
            FusedOp::Join(op) => op,
            FusedOp::Branch(op) => op,
            FusedOp::Merge(op) => op,
            FusedOp::Barrier(op) => op,
            FusedOp::VarLatency(op) => op,
            FusedOp::Transform(op) => op,
            FusedOp::Boxed(op) => &mut **op,
        }
    }
}

/// The fused op table: the builder's rank-permuted component sequence
/// lowered to a contiguous [`FusedOp`] array. Executing the array in
/// storage order *is* the levelized settle sweep.
pub struct OpTable<T: Token> {
    ops: Vec<FusedOp<T>>,
}

impl<T: Token> OpTable<T> {
    /// Wraps an already-lowered op sequence (see [`crate::compile::fuse`]).
    pub fn new(ops: Vec<FusedOp<T>>) -> Self {
        Self { ops }
    }

    /// How many ops fell back to [`FusedOp::Boxed`] dispatch.
    pub fn boxed_fallbacks(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, FusedOp::Boxed(_)))
            .count()
    }
}

impl<T: Token> FusedTable<T> for OpTable<T> {
    fn len(&self) -> usize {
        self.ops.len()
    }

    fn sweep(
        &mut self,
        ctx: &mut SweepCtx<'_, T>,
        full: bool,
        op_evals: &mut [u64; FusedOpKind::COUNT],
    ) -> usize {
        // `SweepCtx::drain` owns the skip/claim bookkeeping and hands
        // every scheduled op one reused context, so the per-eval cost
        // here is the dispatch `match` and the class counter alone.
        let ops = &mut self.ops;
        ctx.drain(full, |i, ectx| {
            let op = &mut ops[i];
            op.eval_op(ectx);
            op_evals[op.kind() as usize] += 1;
        })
    }

    fn tick_all(&mut self, ctx: &TickCtx<'_, T>) {
        for op in &mut self.ops {
            for_each_op!(op, c => c.tick(ctx));
        }
    }

    fn take_faults(&mut self) -> Option<(usize, ProtocolError)> {
        for (i, op) in self.ops.iter_mut().enumerate() {
            let fault = for_each_op!(op, c => c.take_fault());
            if let Some(error) = fault {
                return Some((i, error));
            }
        }
        None
    }

    fn component(&self, i: usize) -> &dyn Component<T> {
        self.ops[i].as_component()
    }

    fn component_mut(&mut self, i: usize) -> &mut dyn Component<T> {
        self.ops[i].as_component_mut()
    }
}
