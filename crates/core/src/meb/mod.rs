//! Multithreaded elastic buffers (paper, Sec. III and IV-A).
//!
//! Three microarchitectures share the MEB interface (a multithreaded input
//! channel, a multithreaded output channel, an internal arbiter):
//!
//! | type            | storage        | behaviour                                   |
//! |-----------------|----------------|---------------------------------------------|
//! | [`FullMeb`]     | `2·S` slots    | paper Fig. 4 — an EB per thread             |
//! | [`ReducedMeb`]  | `S + 1` slots  | paper Fig. 6 — shared auxiliary register    |
//! | [`FifoMeb`]     | `depth·S` slots| ablation — private FIFOs, no shared storage |

mod fifo;
mod full;
mod reduced;

pub use fifo::FifoMeb;
pub use full::FullMeb;
pub use reduced::ReducedMeb;

use elastic_sim::{ChannelId, Component, ProtocolError, Token};

use crate::arbiter::{Arbiter, ArbiterKind};

/// Selects a MEB microarchitecture by name, for sweeps and builders.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MebKind {
    /// [`FullMeb`]: one 2-slot EB per thread (paper Fig. 4).
    Full,
    /// [`ReducedMeb`]: S main registers + shared auxiliary (paper Fig. 6).
    Reduced,
    /// [`FifoMeb`] with the given per-thread depth.
    Fifo {
        /// Private FIFO depth per thread.
        depth: usize,
    },
}

impl MebKind {
    /// Instantiates the chosen MEB as a boxed component.
    pub fn build<T: Token>(
        self,
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        arbiter: Box<dyn Arbiter>,
    ) -> Box<dyn Component<T>> {
        match self {
            MebKind::Full => Box::new(FullMeb::new(name, inp, out, threads, arbiter)),
            MebKind::Reduced => Box::new(ReducedMeb::new(name, inp, out, threads, arbiter)),
            MebKind::Fifo { depth } => {
                Box::new(FifoMeb::new(name, inp, out, threads, depth, arbiter))
            }
        }
    }

    /// Instantiates the chosen MEB pre-loaded with initial tokens (the
    /// dataflow "token on the back edge"; see the per-kind `with_initial`
    /// for capacity limits).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ExcessInitialTokens`] if the initial
    /// tokens exceed the kind's per-thread capacity.
    pub fn build_initial<T: Token>(
        self,
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        arbiter: Box<dyn Arbiter>,
        initial: Vec<(usize, T)>,
    ) -> Result<Box<dyn Component<T>>, ProtocolError> {
        Ok(match self {
            MebKind::Full => {
                Box::new(FullMeb::new(name, inp, out, threads, arbiter).with_initial(initial)?)
            }
            MebKind::Reduced => {
                Box::new(ReducedMeb::new(name, inp, out, threads, arbiter).with_initial(initial)?)
            }
            MebKind::Fifo { depth } => Box::new(
                FifoMeb::new(name, inp, out, threads, depth, arbiter).with_initial(initial)?,
            ),
        })
    }

    /// Same, with a freshly built arbiter of the given kind.
    pub fn build_with<T: Token>(
        self,
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        arbiter: ArbiterKind,
    ) -> Box<dyn Component<T>> {
        self.build(name, inp, out, threads, arbiter.build())
    }

    /// Storage slots this MEB kind uses for `threads` threads.
    pub fn slots(self, threads: usize) -> usize {
        match self {
            MebKind::Full => 2 * threads,
            MebKind::Reduced => threads + 1,
            MebKind::Fifo { depth } => depth * threads,
        }
    }
}

impl std::fmt::Display for MebKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MebKind::Full => write!(f, "full"),
            MebKind::Reduced => write!(f, "reduced"),
            MebKind::Fifo { depth } => write!(f, "fifo({depth})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts_match_the_paper() {
        // Sec. III-A: full = 2S, reduced = S+1.
        assert_eq!(MebKind::Full.slots(8), 16);
        assert_eq!(MebKind::Reduced.slots(8), 9);
        assert_eq!(MebKind::Fifo { depth: 3 }.slots(4), 12);
    }

    #[test]
    fn initial_tokens_are_delivered_first() {
        use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};
        for kind in [MebKind::Full, MebKind::Reduced, MebKind::Fifo { depth: 2 }] {
            let mut b = CircuitBuilder::<Tagged>::new();
            let a = b.channel("a", 2);
            let c = b.channel("c", 2);
            let mut src = Source::new("src", a, 2);
            src.push(0, Tagged::new(0, 10, 10));
            src.push(1, Tagged::new(1, 10, 10));
            b.add(src);
            b.add_boxed(
                kind.build_initial::<Tagged>(
                    "meb",
                    a,
                    c,
                    2,
                    ArbiterKind::RoundRobin.build(),
                    vec![(0, Tagged::new(0, 0, 0)), (1, Tagged::new(1, 0, 0))],
                )
                .expect("initial tokens fit"),
            );
            b.add(Sink::with_capture("snk", c, 2, ReadyPolicy::Always));
            let mut circuit = b.build().expect("valid");
            circuit.run(12).expect("clean");
            let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
            for t in 0..2 {
                let seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
                assert_eq!(seqs, vec![0, 10], "{kind} thread {t}: initial token first");
            }
        }
    }

    #[test]
    fn reduced_rejects_two_initial_tokens_per_thread() {
        use elastic_sim::CircuitBuilder;
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let err = crate::meb::ReducedMeb::<u64>::new("m", a, c, 1, ArbiterKind::Fixed.build())
            .with_initial(vec![(0, 1), (0, 2)])
            .err()
            .expect("second token must be rejected");
        assert_eq!(
            err,
            ProtocolError::ExcessInitialTokens {
                thread: 0,
                capacity: 1
            }
        );
    }

    #[test]
    fn build_initial_rejects_excess_tokens_per_kind() {
        use elastic_sim::CircuitBuilder;
        for (kind, capacity) in [
            (MebKind::Full, 2),
            (MebKind::Reduced, 1),
            (MebKind::Fifo { depth: 3 }, 3),
        ] {
            let mut b = CircuitBuilder::<u64>::new();
            let a = b.channel("a", 1);
            let c = b.channel("c", 1);
            let too_many: Vec<(usize, u64)> = (0..=capacity as u64).map(|i| (0, i)).collect();
            let err = kind
                .build_initial::<u64>("m", a, c, 1, ArbiterKind::Fixed.build(), too_many)
                .err()
                .expect("overflow must be rejected");
            assert_eq!(
                err,
                ProtocolError::ExcessInitialTokens {
                    thread: 0,
                    capacity
                },
                "{kind}"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MebKind::Full.to_string(), "full");
        assert_eq!(MebKind::Reduced.to_string(), "reduced");
        assert_eq!(MebKind::Fifo { depth: 2 }.to_string(), "fifo(2)");
    }
}
