//! Thread arbiters.
//!
//! Every multithreaded elastic module that drives a shared channel — a MEB
//! output stage, an M-Merge, a variable-latency unit — contains an arbiter
//! that selects, each cycle, which thread uses the channel (paper,
//! Sec. III: "An arbiter is responsible for selecting the active thread
//! after taking into account which threads are ready downstream").
//!
//! [`Arbiter::choose`] must be *pure* (it is called repeatedly during the
//! combinational settle phase); the policy's state advances only in
//! [`Arbiter::commit`], which components call at the clock edge when the
//! granted transfer actually fired.

use std::fmt;

use elastic_sim::ThreadMask;

/// A thread-selection policy.
pub trait Arbiter: Send + fmt::Debug {
    /// Picks one of the requesting threads (`requests.get(t) == true`),
    /// or `None` when nothing is requested. Must be deterministic and
    /// must not mutate policy state. The request set arrives as a packed
    /// [`ThreadMask`], so policies scan words, not heap slices.
    fn choose(&self, requests: &ThreadMask) -> Option<usize>;

    /// Records that `granted`'s transfer fired, advancing the policy
    /// (e.g. rotating a round-robin pointer).
    fn commit(&mut self, granted: usize);

    /// Rewinds the policy to its freshly constructed state (pointer at
    /// thread 0, grant history cleared) — part of the
    /// [`Component::reset`](elastic_sim::Component::reset) contract of the
    /// modules embedding an arbiter. Stateless policies need not override.
    fn reset(&mut self) {}

    /// Clones the policy behind the trait object.
    fn box_clone(&self) -> Box<dyn Arbiter>;

    /// When the policy's [`choose`](Arbiter::choose) is exactly "first
    /// requesting thread at or after a rotation point, wrapping",
    /// returns that point. The contract:
    /// `choose(req) == req.next_one_wrapping(hint)` for every request
    /// set, as long as the policy state is unchanged. Fused settle-kernel
    /// fast paths query this once per evaluation and run the packed word
    /// scan inline instead of calling `choose` through the vtable;
    /// policies with richer selection rules return `None` (the default)
    /// and keep the generic path.
    fn rotation_hint(&self) -> Option<usize> {
        None
    }
}

impl Clone for Box<dyn Arbiter> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Always grants the lowest-indexed requesting thread.
///
/// Cheap but unfair: a persistent thread 0 starves the rest.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FixedPriority;

impl FixedPriority {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl Arbiter for FixedPriority {
    fn choose(&self, requests: &ThreadMask) -> Option<usize> {
        requests.first_one()
    }

    fn commit(&mut self, _granted: usize) {}

    fn box_clone(&self) -> Box<dyn Arbiter> {
        Box::new(*self)
    }

    fn rotation_hint(&self) -> Option<usize> {
        // Lowest-index-first is a rotation scan anchored at thread 0.
        Some(0)
    }
}

/// Grants the first requesting thread at or after a rotating pointer; the
/// pointer moves one past the last committed grant.
///
/// This is the fair policy assumed throughout the paper's examples (each
/// of `M` active threads receives `1/M` of the channel, Sec. III-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates the policy with the pointer at thread 0.
    pub fn new() -> Self {
        Self { next: 0 }
    }
}

impl Arbiter for RoundRobin {
    fn choose(&self, requests: &ThreadMask) -> Option<usize> {
        requests.next_one_wrapping(self.next)
    }

    fn commit(&mut self, granted: usize) {
        self.next = granted + 1;
    }

    fn reset(&mut self) {
        self.next = 0;
    }

    fn box_clone(&self) -> Box<dyn Arbiter> {
        Box::new(*self)
    }

    fn rotation_hint(&self) -> Option<usize> {
        Some(self.next)
    }
}

/// Grants the requesting thread that was granted least recently
/// (a matrix-arbiter-like longest-idle-first policy).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LeastRecent {
    last_grant: Vec<u64>,
    clock: u64,
}

impl LeastRecent {
    /// Creates the policy (all threads tied at "never granted").
    pub fn new() -> Self {
        Self::default()
    }
}

impl Arbiter for LeastRecent {
    fn choose(&self, requests: &ThreadMask) -> Option<usize> {
        requests
            .iter_ones()
            .min_by_key(|&t| self.last_grant.get(t).copied().unwrap_or(0))
    }

    fn commit(&mut self, granted: usize) {
        if self.last_grant.len() <= granted {
            self.last_grant.resize(granted + 1, 0);
        }
        self.clock += 1;
        self.last_grant[granted] = self.clock;
    }

    fn reset(&mut self) {
        self.last_grant.clear();
        self.clock = 0;
    }

    fn box_clone(&self) -> Box<dyn Arbiter> {
        Box::new(self.clone())
    }
}

/// Keeps granting the same thread for up to `quantum` consecutive grants
/// before rotating — **coarse-grained** multithreading, as opposed to the
/// cycle-by-cycle fine-grained sharing of [`RoundRobin`] (the paper's
/// Sec. I, citing Ungerer et al.: threads may share the datapath "in a
/// coarse-grained manner that allows each thread to complete a larger set
/// of computations before moving to the next one").
///
/// A thread also loses the datapath early when it stops requesting
/// (e.g. it stalls on a dependency), so coarse-grained sharing never
/// wastes cycles on an idle owner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoarseGrained {
    quantum: u32,
    current: usize,
    used: u32,
}

impl CoarseGrained {
    /// A policy granting up to `quantum` consecutive transfers per thread.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0` (that would never grant anybody).
    pub fn new(quantum: u32) -> Self {
        assert!(quantum > 0, "quantum must be at least 1");
        Self {
            quantum,
            current: 0,
            used: 0,
        }
    }

    /// The configured quantum.
    pub fn quantum(&self) -> u32 {
        self.quantum
    }
}

impl Arbiter for CoarseGrained {
    fn choose(&self, requests: &ThreadMask) -> Option<usize> {
        let n = requests.threads();
        if n == 0 {
            return None;
        }
        // Keep the owner while it requests and has quantum left.
        if self.current < n && requests.get(self.current) && self.used < self.quantum {
            return Some(self.current);
        }
        // Rotate starting one past the owner (the owner itself is the
        // last candidate, matching the old `(1..=n)` offset scan).
        requests.next_one_wrapping(self.current + 1)
    }

    fn commit(&mut self, granted: usize) {
        if granted == self.current {
            self.used += 1;
        } else {
            self.current = granted;
            self.used = 1;
        }
    }

    fn reset(&mut self) {
        self.current = 0;
        self.used = 0;
    }

    fn box_clone(&self) -> Box<dyn Arbiter> {
        Box::new(*self)
    }
}

/// Name-only arbiter selector, convenient for sweeps and CLI flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ArbiterKind {
    /// [`FixedPriority`].
    Fixed,
    /// [`RoundRobin`] (the default) — fine-grained sharing.
    #[default]
    RoundRobin,
    /// [`LeastRecent`].
    LeastRecent,
    /// [`CoarseGrained`] with the given quantum.
    Coarse {
        /// Consecutive grants a thread keeps before rotation.
        quantum: u32,
    },
}

impl ArbiterKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn Arbiter> {
        match self {
            ArbiterKind::Fixed => Box::new(FixedPriority::new()),
            ArbiterKind::RoundRobin => Box::new(RoundRobin::new()),
            ArbiterKind::LeastRecent => Box::new(LeastRecent::new()),
            ArbiterKind::Coarse { quantum } => Box::new(CoarseGrained::new(quantum)),
        }
    }

    /// All kinds, for parameter sweeps (coarse-grained with a quantum of
    /// 4 as the representative).
    pub fn all() -> [ArbiterKind; 4] {
        [
            ArbiterKind::Fixed,
            ArbiterKind::RoundRobin,
            ArbiterKind::LeastRecent,
            ArbiterKind::Coarse { quantum: 4 },
        ]
    }
}

impl fmt::Display for ArbiterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterKind::Fixed => write!(f, "fixed"),
            ArbiterKind::RoundRobin => write!(f, "round-robin"),
            ArbiterKind::LeastRecent => write!(f, "least-recent"),
            ArbiterKind::Coarse { quantum } => write!(f, "coarse({quantum})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(bits: &[bool]) -> ThreadMask {
        ThreadMask::from_bools(bits)
    }

    #[test]
    fn fixed_priority_prefers_lowest() {
        let a = FixedPriority::new();
        assert_eq!(a.choose(&req(&[false, true, true])), Some(1));
        assert_eq!(a.choose(&req(&[false, false, false])), None);
    }

    #[test]
    fn round_robin_rotates_on_commit() {
        let mut a = RoundRobin::new();
        let req = req(&[true, true, true]);
        assert_eq!(a.choose(&req), Some(0));
        a.commit(0);
        assert_eq!(a.choose(&req), Some(1));
        a.commit(1);
        assert_eq!(a.choose(&req), Some(2));
        a.commit(2);
        assert_eq!(a.choose(&req), Some(0));
    }

    #[test]
    fn round_robin_skips_idle_threads() {
        let mut a = RoundRobin::new();
        a.commit(0); // pointer at 1
        assert_eq!(a.choose(&req(&[true, false, false])), Some(0));
        assert_eq!(a.choose(&req(&[false, false, true])), Some(2));
    }

    #[test]
    fn round_robin_choose_is_pure() {
        let a = RoundRobin::new();
        let req = req(&[true, true]);
        assert_eq!(a.choose(&req), a.choose(&req));
    }

    #[test]
    fn least_recent_grants_longest_idle() {
        let mut a = LeastRecent::new();
        a.commit(0);
        a.commit(1);
        // Thread 2 never granted: wins over 0 and 1.
        assert_eq!(a.choose(&req(&[true, true, true])), Some(2));
        a.commit(2);
        // Now thread 0 is the least recent.
        assert_eq!(a.choose(&req(&[true, true, true])), Some(0));
    }

    #[test]
    fn kind_builds_matching_policy() {
        for kind in ArbiterKind::all() {
            let a = kind.build();
            assert_eq!(a.choose(&req(&[true])), Some(0));
        }
        assert_eq!(ArbiterKind::RoundRobin.to_string(), "round-robin");
        assert_eq!(ArbiterKind::Coarse { quantum: 4 }.to_string(), "coarse(4)");
    }

    #[test]
    fn coarse_grained_holds_for_its_quantum() {
        let mut a = CoarseGrained::new(3);
        let req = req(&[true, true]);
        for _ in 0..3 {
            assert_eq!(a.choose(&req), Some(0));
            a.commit(0);
        }
        // Quantum exhausted: rotate.
        assert_eq!(a.choose(&req), Some(1));
        a.commit(1);
        assert_eq!(a.choose(&req), Some(1));
    }

    #[test]
    fn coarse_grained_yields_early_when_owner_goes_idle() {
        let mut a = CoarseGrained::new(8);
        a.commit(0);
        assert_eq!(a.choose(&req(&[false, true, true])), Some(1));
        a.commit(1);
        // Ownership moved to thread 1 with a fresh quantum.
        assert_eq!(a.choose(&req(&[true, true, true])), Some(1));
    }

    #[test]
    #[should_panic(expected = "quantum must be at least 1")]
    fn coarse_grained_rejects_zero_quantum() {
        CoarseGrained::new(0);
    }

    #[test]
    fn rotation_hint_honours_its_choose_contract() {
        // Exhaustive over 4-thread request sets: whenever a policy
        // advertises a hint, the inline wrapping scan must reproduce
        // `choose` exactly — including after commits move the pointer.
        let mut rr = RoundRobin::new();
        for granted in [None, Some(1), Some(3)] {
            if let Some(g) = granted {
                rr.commit(g);
            }
            let policies: [&dyn Arbiter; 2] = [&FixedPriority, &rr];
            for policy in policies {
                let hint = policy.rotation_hint().expect("rotating policy");
                for bits in 0u32..16 {
                    let requests =
                        req(&[bits & 1 != 0, bits & 2 != 0, bits & 4 != 0, bits & 8 != 0]);
                    assert_eq!(
                        policy.choose(&requests),
                        requests.next_one_wrapping(hint),
                        "{policy:?} diverges on {requests:?}"
                    );
                }
            }
        }
        // Richer policies must decline the fast path.
        assert_eq!(LeastRecent::new().rotation_hint(), None);
        assert_eq!(CoarseGrained::new(4).rotation_hint(), None);
    }

    #[test]
    fn boxed_arbiter_clones() {
        let mut a: Box<dyn Arbiter> = Box::new(RoundRobin::new());
        a.commit(0);
        let b = a.clone();
        assert_eq!(b.choose(&req(&[true, true])), Some(1));
    }
}
