//! Output-thread selection shared by MEBs, merges and other modules that
//! drive a multithreaded channel.
//!
//! # The selection rule
//!
//! Given the set of threads that *have data* to offer, the driver must
//! assert exactly one `valid(i)`. The paper's arbiter "takes into account
//! which threads are ready downstream"; in a network with M-Joins the
//! downstream `ready(i)` is itself a combinational function of *other*
//! channels' `valid` bits, so a naive choice can oscillate during the
//! settle phase (two buffers feeding a join endlessly swapping offers).
//!
//! [`select_output_thread`] therefore applies two rules, in order:
//!
//! 1. **Ready-first** — ask the arbiter to pick among threads with data
//!    *and* downstream ready. Because the settle loop re-evaluates
//!    components in sequence (Gauss–Seidel style) and the arbiter's choice
//!    is deterministic within a cycle, a mutually-ready pairing locks in
//!    as soon as it appears.
//! 2. **Stalled offer** — otherwise offer the first thread with data at or
//!    after a *stall pointer* that the caller rotates every cycle in which
//!    the offer did not fire (`valid` without `ready` is legal — the offer
//!    simply stalls, and rotation guarantees every waiting thread is
//!    eventually presented, which modules like the [`Barrier`] rely on to
//!    observe arrivals).
//!
//! [`Barrier`]: crate::Barrier

use elastic_sim::{ChannelId, EvalCtx, ThreadMask, TickCtx, Token};

use crate::arbiter::Arbiter;

/// Chooses which thread should drive `out` this settle iteration.
///
/// `has_data.get(t)` must be true iff thread `t` has a token available at
/// the module's head, and `ready_requests` must be `has_data ∩ ready(out)`
/// — callers keep it in a persistent scratch mask (see
/// [`SelectState::select`]) so no per-evaluation allocation happens.
/// `stall_start` is the rotating start index for stalled offers (see
/// [`advance_stall_pointer`]). Returns `None` when no thread has data.
///
/// The caller is responsible for calling [`Arbiter::commit`] at the clock
/// edge if (and only if) the selected transfer fired.
pub fn select_output_thread<T: Token>(
    ctx: &EvalCtx<'_, T>,
    out: ChannelId,
    arbiter: &dyn Arbiter,
    has_data: &ThreadMask,
    ready_requests: &ThreadMask,
    stall_start: usize,
    fresh: bool,
) -> Option<usize> {
    let threads = has_data.threads();
    debug_assert_eq!(threads, ctx.threads(out));
    debug_assert_eq!(ready_requests.threads(), threads);

    if ready_requests.any() {
        let pick = arbiter
            .choose(ready_requests)
            .expect("non-empty request set");
        // Anti-swap guard — settle-phase damping only (`fresh == false`),
        // and only on feedback channels: when this module is already
        // offering a thread that still has data but is not ready, it may
        // abandon that offer for a ready thread only in the direction of
        // the global rotating priority. Two modules feeding an M-Join
        // otherwise chase each other's offers forever (each one's
        // downstream ready(i) is the other's valid(i)); the shared
        // priority makes exactly one of them yield, so the pairing
        // converges within a bounded number of switches. On the first
        // evaluation of a cycle the decision is fresh — the previous
        // cycle's (possibly stalled) offer holds no claim. Off feedback
        // cycles the rank schedule evaluates the consumer first, so the
        // first evaluation already sees final ready bits and the pure
        // ready-first pick is kept: selection stays a function of the
        // inputs alone, independent of evaluation order.
        if !fresh && ctx.in_feedback(out) {
            let current = ctx.valid_mask(out).first_one();
            if let Some(c) = current {
                if has_data.get(c) && !ctx.ready(out, c) {
                    let rank =
                        |t: usize| (t + threads - (ctx.cycle() as usize % threads)) % threads;
                    let best = ready_requests
                        .iter_ones()
                        .min_by_key(|&t| rank(t))
                        .expect("non-empty request set");
                    return if rank(best) < rank(c) {
                        Some(best)
                    } else {
                        Some(c)
                    };
                }
            }
        }
        return Some(pick);
    }

    // No thread is ready: rotating stalled offer.
    has_data.next_one_wrapping(stall_start)
}

/// Stateful wrapper around [`select_output_thread`] /
/// [`advance_stall_pointer`]: tracks the stalled-offer rotation pointer
/// and whether the current evaluation is the first of its cycle (the
/// settle loop calls `eval` several times per cycle).
///
/// Embed one per driven multithreaded output channel; call
/// [`select`](SelectState::select) from `eval` and
/// [`on_tick`](SelectState::on_tick) from `tick`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SelectState {
    stall: usize,
    last_cycle: Option<u64>,
    /// Scratch for `has_data ∩ ready`, sized lazily on first use and
    /// reused every evaluation thereafter (zero steady-state allocation).
    requests: ThreadMask,
}

impl SelectState {
    /// Fresh state (stall pointer at thread 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Chooses the thread to drive `out` this settle iteration.
    pub fn select<T: Token>(
        &mut self,
        ctx: &EvalCtx<'_, T>,
        out: ChannelId,
        arbiter: &dyn Arbiter,
        has_data: &ThreadMask,
    ) -> Option<usize> {
        let fresh = self.last_cycle != Some(ctx.cycle());
        self.last_cycle = Some(ctx.cycle());
        if self.requests.threads() != has_data.threads() {
            self.requests = ThreadMask::new(has_data.threads());
        }
        self.requests.copy_from(has_data);
        self.requests.and_with(ctx.ready_mask(out));
        select_output_thread(
            ctx,
            out,
            arbiter,
            has_data,
            &self.requests,
            self.stall,
            fresh,
        )
    }

    /// The current stalled-offer rotation start (rule 2 of
    /// [`select_output_thread`]). Fused fast paths that bypass
    /// [`select`](SelectState::select) — possible on DAG channels, where
    /// the anti-swap damping is disabled anyway — read the pointer here
    /// and keep [`on_tick`](SelectState::on_tick) advancing it.
    #[must_use]
    pub fn stall_start(&self) -> usize {
        self.stall
    }

    /// Clock-edge bookkeeping: rotates the stalled-offer pointer.
    pub fn on_tick<T: Token>(&mut self, ctx: &TickCtx<'_, T>, out: ChannelId) {
        advance_stall_pointer(ctx, out, &mut self.stall);
    }

    /// Rewinds to the freshly constructed state (stall pointer at thread
    /// 0, no cycle seen). The scratch request mask is kept — it is sized
    /// storage, not state.
    pub fn reset(&mut self) {
        self.stall = 0;
        self.last_cycle = None;
    }
}

/// Advances a module's stalled-offer pointer at the clock edge: if the
/// module offered a thread on `out` this cycle and the transfer did not
/// fire, the next stalled offer starts one past the offered thread.
///
/// Without this rotation a persistently stalled module would present the
/// same thread forever (its arbiter state only advances on fired
/// transfers), starving observers — e.g. a closed [`Barrier`] would never
/// see the other threads arrive.
///
/// [`Barrier`]: crate::Barrier
pub fn advance_stall_pointer<T: Token>(ctx: &TickCtx<'_, T>, out: ChannelId, stall: &mut usize) {
    let threads = ctx.threads(out);
    if let Some(t) = ctx.valid_mask(out).first_one() {
        if !ctx.fired(out, t) {
            *stall = (t + 1) % threads;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::RoundRobin;
    use elastic_sim::{impl_as_any, CircuitBuilder, Component, Ports, ReadyPolicy, Sink, TickCtx};

    /// A probe component that exposes what `select_output_thread` decides
    /// for a fixed `has_data` mask, against a scripted sink.
    struct Probe {
        out: ChannelId,
        has: ThreadMask,
        arb: RoundRobin,
        select: SelectState,
    }

    impl Probe {
        fn new(out: ChannelId, has: &[bool]) -> Self {
            Self {
                out,
                has: ThreadMask::from_bools(has),
                arb: RoundRobin::new(),
                select: SelectState::new(),
            }
        }
    }

    impl Component<u64> for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn ports(&self) -> Ports {
            Ports::new([], [self.out])
        }
        fn comb_paths(&self) -> Vec<elastic_sim::CombPath> {
            // Selection reads ready(out) to pick the offered thread; the
            // anti-swap guard damps it.
            vec![elastic_sim::CombPath::ReadyToValid {
                from: self.out,
                to: self.out,
                damped: true,
            }]
        }
        fn eval(&mut self, ctx: &mut EvalCtx<'_, u64>) {
            match self.select.select(ctx, self.out, &self.arb, &self.has) {
                Some(t) => ctx.drive_token(self.out, t, t as u64),
                None => ctx.drive_idle(self.out),
            }
        }
        fn tick(&mut self, ctx: &TickCtx<'_, u64>) {
            for t in 0..self.has.threads() {
                if ctx.fired(self.out, t) {
                    self.arb.commit(t);
                }
            }
            self.select.on_tick(ctx, self.out);
        }
        impl_as_any!();
    }

    #[test]
    fn prefers_downstream_ready_thread() {
        // Thread 0 and 1 both have data; the sink is only ever ready for
        // thread 1 — selection must route around the blocked thread.
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 2);
        b.add(Probe::new(ch, &[true, true]));
        let mut sink = Sink::with_capture("snk", ch, 2, ReadyPolicy::Never);
        sink.set_policy(1, ReadyPolicy::Always);
        b.add(sink);
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("clean");
        assert_eq!(circuit.stats().transfers(ch, 0), 0);
        // The anti-swap guard may cost one cycle at cold start before the
        // selection pivots to the ready thread.
        assert!(circuit.stats().transfers(ch, 1) >= 9);
    }

    #[test]
    fn no_data_drives_idle() {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 2);
        b.add(Probe::new(ch, &[false, false]));
        b.add(Sink::new("snk", ch, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(5).expect("clean");
        assert_eq!(circuit.stats().total_transfers(ch), 0);
        assert_eq!(circuit.stats().utilization(ch), 0.0);
    }

    #[test]
    fn alternates_threads_when_both_ready() {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 2);
        b.add(Probe::new(ch, &[true, true]));
        b.add(Sink::new("snk", ch, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("clean");
        assert_eq!(circuit.stats().transfers(ch, 0), 5);
        assert_eq!(circuit.stats().transfers(ch, 1), 5);
    }
}
