//! Error types for circuit construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors detected while wiring a circuit with
/// [`CircuitBuilder`](crate::CircuitBuilder).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// A channel is read by a component but never driven.
    NoDriver {
        /// Name of the undriven channel.
        channel: String,
    },
    /// Two components both list the channel among their outputs.
    MultipleDrivers {
        /// Name of the multiply-driven channel.
        channel: String,
        /// Names of the conflicting driver components.
        drivers: Vec<String>,
    },
    /// A channel is driven but no component reads it.
    NoReader {
        /// Name of the unread channel.
        channel: String,
    },
    /// Two components both list the channel among their inputs.
    MultipleReaders {
        /// Name of the multiply-read channel.
        channel: String,
        /// Names of the conflicting reader components.
        readers: Vec<String>,
    },
    /// A component references a channel id that the builder never created.
    UnknownChannel {
        /// Name of the offending component.
        component: String,
    },
    /// A component declared a combinational path
    /// ([`Component::comb_paths`](crate::Component::comb_paths)) over a
    /// channel that is not in the matching port list (a `ValidToValid`
    /// `from` must be one of its inputs, a `ReadyToReady` `to` likewise,
    /// and so on).
    InvalidCombPath {
        /// Name of the offending component.
        component: String,
        /// Name of the mis-declared channel.
        channel: String,
    },
    /// The handshake network contains a combinational cycle in which no
    /// edge is registered or hysteretically damped: the settle loop could
    /// never converge, so the netlist is rejected before it runs. This is
    /// exactly the class of circuit elastic design forbids — cut the cycle
    /// with an elastic buffer (the EB registers both handshake
    /// directions).
    CombinationalLoop {
        /// Names of the components whose declared paths form the cycle,
        /// in insertion order.
        components: Vec<String>,
    },
    /// The circuit contains no components.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoDriver { channel } => {
                write!(f, "channel `{channel}` has no driver")
            }
            BuildError::MultipleDrivers { channel, drivers } => {
                write!(f, "channel `{channel}` has multiple drivers: {drivers:?}")
            }
            BuildError::NoReader { channel } => {
                write!(f, "channel `{channel}` has no reader")
            }
            BuildError::MultipleReaders { channel, readers } => {
                write!(f, "channel `{channel}` has multiple readers: {readers:?}")
            }
            BuildError::UnknownChannel { component } => {
                write!(
                    f,
                    "component `{component}` references an unknown channel id"
                )
            }
            BuildError::InvalidCombPath { component, channel } => {
                write!(
                    f,
                    "component `{component}` declared a combinational path over \
                     channel `{channel}` outside the matching port list"
                )
            }
            BuildError::CombinationalLoop { components } => {
                write!(
                    f,
                    "combinational loop through components [{}]: every handshake \
                     path in the cycle is zero-latency (insert an elastic buffer \
                     to cut the cycle)",
                    components
                        .iter()
                        .map(|c| format!("`{c}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            BuildError::Empty => write!(f, "circuit contains no components"),
        }
    }
}

impl Error for BuildError {}

/// A local handshake-protocol fault detected inside a component — the
/// typed replacement for the `panic!`s that used to live in the
/// elastic-buffer FSMs of `elastic-core`.
///
/// Construction-time checks (e.g. seeding a buffer with more initial
/// tokens than it can hold) return this directly; run-time faults are
/// latched by the component, collected by the kernel through
/// [`Component::take_fault`](crate::Component::take_fault) and surfaced
/// as [`SimError::Component`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// A dequeue fired while the buffer was empty.
    BufferUnderflow,
    /// An enqueue fired while the buffer was full.
    BufferOverflow,
    /// More initial tokens were supplied for a thread than its storage
    /// can hold.
    ExcessInitialTokens {
        /// Thread whose initial tokens overflowed.
        thread: usize,
        /// Per-thread capacity of the storage.
        capacity: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BufferUnderflow => {
                write!(f, "protocol violation: dequeue from an empty buffer")
            }
            ProtocolError::BufferOverflow => {
                write!(f, "protocol violation: enqueue into a full buffer")
            }
            ProtocolError::ExcessInitialTokens { thread, capacity } => write!(
                f,
                "thread {thread} given more initial tokens than its capacity ({capacity})"
            ),
        }
    }
}

impl Error for ProtocolError {}

/// Errors raised while stepping a [`Circuit`](crate::Circuit).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The combinational fixed-point did not converge within the iteration
    /// cap. All-strict combinational cycles are rejected at build time
    /// ([`BuildError::CombinationalLoop`]); this runtime variant remains
    /// only as a safety net for cycles through *damped* hysteretic paths
    /// (whose convergence relies on the declaring components honouring
    /// their damping guarantee) — it is unreachable for acyclic nets.
    CombinationalLoop {
        /// Cycle at which the divergence was detected.
        cycle: u64,
        /// Number of settle iterations attempted.
        iterations: usize,
    },
    /// More than one `valid(i)` was asserted on a multithreaded channel in
    /// the same cycle, violating the MT-elastic channel invariant (Sec. III
    /// of the paper: "only one valid(i) signal is asserted per cycle").
    ChannelInvariant {
        /// Cycle of the violation.
        cycle: u64,
        /// Name of the offending channel.
        channel: String,
        /// The thread indices whose valid bits were simultaneously high.
        threads: Vec<usize>,
    },
    /// A channel asserted `valid` without driving any data.
    MissingData {
        /// Cycle of the violation.
        cycle: u64,
        /// Name of the offending channel.
        channel: String,
        /// Thread whose valid bit was high.
        thread: usize,
    },
    /// A component latched a local protocol fault during its clock edge
    /// (e.g. an elastic-buffer FSM asked to dequeue while empty). The
    /// kernel collects faults after every tick phase.
    Component {
        /// Cycle whose clock edge faulted.
        cycle: u64,
        /// Name of the faulting component.
        component: String,
        /// The latched fault.
        error: ProtocolError,
    },
    /// The circuit made no transfer for a configured number of consecutive
    /// cycles while at least one token was being offered (watchdog; see
    /// [`Circuit::set_deadlock_watchdog`](crate::Circuit::set_deadlock_watchdog)).
    ///
    /// The report names the blocked handshakes so a deadlock in a deep
    /// netlist (MD5 loop, processor pipeline) can be localized from the
    /// error alone instead of re-running with tracing on.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Number of consecutive transfer-free cycles observed.
        idle_cycles: u64,
        /// Cycle of the last fired transfer anywhere in the circuit, or
        /// `None` when nothing ever moved.
        last_progress: Option<u64>,
        /// The blocked handshakes at the moment the watchdog fired: every
        /// `(channel name, thread)` whose `valid` was asserted with
        /// `ready` low.
        stalled: Vec<(String, usize)>,
    },
    /// [`Circuit::reset`](crate::Circuit::reset) was asked to rewind a
    /// circuit containing a component whose
    /// [`Component::reset`](crate::Component::reset) reports no support
    /// (the conservative default). Reuse such a circuit by rebuilding it
    /// instead, or implement `reset` for the named component.
    ResetUnsupported {
        /// Evaluation-order index of the component that cannot rewind
        /// (useful when several instances share a name prefix, and to
        /// locate the node in schedule/netlist dumps).
        index: usize,
        /// Name of the component that cannot rewind.
        component: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CombinationalLoop { cycle, iterations } => write!(
                f,
                "combinational loop: handshake network failed to settle at cycle {cycle} \
                 after {iterations} iterations (insert an elastic buffer to cut the cycle)"
            ),
            SimError::ChannelInvariant {
                cycle,
                channel,
                threads,
            } => write!(
                f,
                "MT channel invariant violated on `{channel}` at cycle {cycle}: \
                 valid asserted for threads {threads:?} simultaneously"
            ),
            SimError::MissingData {
                cycle,
                channel,
                thread,
            } => write!(
                f,
                "channel `{channel}` asserted valid({thread}) without data at cycle {cycle}"
            ),
            SimError::Component {
                cycle,
                component,
                error,
            } => write!(
                f,
                "component `{component}` faulted at cycle {cycle}: {error}"
            ),
            SimError::Deadlock {
                cycle,
                idle_cycles,
                last_progress,
                stalled,
            } => {
                write!(
                    f,
                    "deadlock watchdog fired at cycle {cycle}: no transfer for {idle_cycles} cycles"
                )?;
                match last_progress {
                    Some(p) => write!(f, " (last progress at cycle {p})")?,
                    None => write!(f, " (no transfer ever fired)")?,
                }
                if !stalled.is_empty() {
                    let names: Vec<String> = stalled
                        .iter()
                        .map(|(ch, t)| format!("`{ch}`[{t}]"))
                        .collect();
                    write!(f, "; blocked: {}", names.join(", "))?;
                }
                Ok(())
            }
            SimError::ResetUnsupported { index, component } => write!(
                f,
                "component `{component}` (evaluation index {index}) does not support \
                 reset (rebuild the circuit instead of reusing it)"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BuildError::NoDriver {
            channel: "ch0".into(),
        };
        assert_eq!(e.to_string(), "channel `ch0` has no driver");

        let e = SimError::ChannelInvariant {
            cycle: 3,
            channel: "bus".into(),
            threads: vec![0, 2],
        };
        let msg = e.to_string();
        assert!(msg.contains("bus"));
        assert!(msg.contains("[0, 2]"));
    }

    #[test]
    fn combinational_loop_build_error_names_components() {
        let e = BuildError::CombinationalLoop {
            components: vec!["not".into(), "wire".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("`not`"), "{msg}");
        assert!(msg.contains("`wire`"), "{msg}");
        assert!(msg.contains("elastic buffer"), "{msg}");

        let e = BuildError::InvalidCombPath {
            component: "fork0".into(),
            channel: "bus".into(),
        };
        assert!(e.to_string().contains("`fork0`"));
        assert!(e.to_string().contains("`bus`"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BuildError>();
        assert_err::<SimError>();
        assert_err::<ProtocolError>();
    }

    #[test]
    fn deadlock_names_blocked_channels() {
        let e = SimError::Deadlock {
            cycle: 42,
            idle_cycles: 10,
            last_progress: Some(32),
            stalled: vec![("into_buf".into(), 1), ("obuf".into(), 0)],
        };
        let msg = e.to_string();
        assert!(msg.contains("cycle 42"), "{msg}");
        assert!(msg.contains("last progress at cycle 32"), "{msg}");
        assert!(msg.contains("`into_buf`[1]"), "{msg}");
        assert!(msg.contains("`obuf`[0]"), "{msg}");

        let never = SimError::Deadlock {
            cycle: 9,
            idle_cycles: 9,
            last_progress: None,
            stalled: Vec::new(),
        };
        assert!(never.to_string().contains("no transfer ever fired"));
    }

    #[test]
    fn reset_unsupported_names_component_and_index() {
        let e = SimError::ResetUnsupported {
            index: 3,
            component: "romgen".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("`romgen`"), "{msg}");
        assert!(msg.contains("index 3"), "{msg}");
    }

    #[test]
    fn protocol_errors_display() {
        assert!(ProtocolError::BufferUnderflow.to_string().contains("empty"));
        assert!(ProtocolError::BufferOverflow.to_string().contains("full"));
        let e = ProtocolError::ExcessInitialTokens {
            thread: 3,
            capacity: 2,
        };
        assert!(e.to_string().contains("thread 3"));
        let s = SimError::Component {
            cycle: 7,
            component: "eb0".into(),
            error: ProtocolError::BufferUnderflow,
        };
        assert!(s.to_string().contains("eb0"));
        assert!(s.to_string().contains("cycle 7"));
    }
}
