//! Deriving an area inventory from a structural [`ElasticIr`] netlist.
//!
//! [`Inventory::from_ir`] walks the same circuit description that feeds
//! the simulator and the DOT renderer, so the cost model no longer needs
//! a hand-maintained parallel description: every MEB (and EB, and
//! barrier) is costed from its node and the width annotation of its
//! channels, and the combinational payload the structure cannot see
//! (ALUs, unrolled hash steps, decoders) comes from the
//! [`CostHint`](elastic_synth::CostHint)s attached to the nodes.
//!
//! The hand-written [`DesignSpec`](crate::DesignSpec) inventories remain
//! as the calibration reference; `tests/cost_consistency.rs` (repo root)
//! asserts the two agree LE-for-LE on every Table I configuration.

use crate::design::{meb_inventory, BufferKind};
use crate::primitives::{barrier, eb_control, register, Inventory};
use elastic_core::MebKind;
use elastic_sim::Token;
use elastic_synth::{ElasticIr, IrNodeTag, PassDelta};

/// Itemized area of a `width`-bit, `threads`-thread FIFO-MEB ablation
/// (`depth` slots per thread). Not a Table I configuration — costed as
/// `S·depth` registers plus the shared output mux, per-thread control and
/// arbiter, i.e. the full-MEB structure with resized storage.
pub fn fifo_meb_inventory(depth: usize, threads: usize, width: usize) -> Inventory {
    let s = threads;
    let mut inv = Inventory::new();
    inv.push("fifo registers", s * depth, register(width));
    inv.push("output mux", 1, crate::primitives::mux(width, s));
    inv.push("EB control FSMs", s, eb_control());
    inv.push("arbiter", 1, crate::primitives::arbiter(s));
    inv
}

/// Total LEs of one buffer: a MEB of the given microarchitecture, or —
/// for [`None`] — the baseline two-slot EB (matching the structural rows
/// of [`Inventory::from_ir`] exactly).
fn buffer_les(kind: Option<MebKind>, threads: usize, width: usize) -> i64 {
    let les = match kind {
        Some(MebKind::Full) => meb_inventory(BufferKind::Full, threads, width).total_les(),
        Some(MebKind::Reduced) => meb_inventory(BufferKind::Reduced, threads, width).total_les(),
        Some(MebKind::Fifo { depth }) => fifo_meb_inventory(depth, threads, width).total_les(),
        None => 2 * register(width) + eb_control(),
    };
    les as i64
}

/// The LE change a list of [`PassDelta`]s predicts, for delta-checking
/// [`Inventory::from_ir`] across a transforming pass:
///
/// ```text
/// from_ir(after).total_les() - from_ir(before).total_les()
///     == expected_les_delta(&report.deltas)
/// ```
///
/// * [`Resized`](PassDelta::Resized): cost of the new microarchitecture
///   minus the old;
/// * [`Inserted`](PassDelta::Inserted): cost of the new buffer;
/// * [`Moved`](PassDelta::Moved): cost at the new width minus cost at
///   the old (a retimed buffer changes area only through the channel
///   width it lands on).
///
/// The autotuner asserts this equality after every applied transform, so
/// a pass whose reported delta disagrees with the re-derived inventory
/// fails loudly instead of skewing the pareto front.
pub fn expected_les_delta(deltas: &[PassDelta]) -> i64 {
    deltas
        .iter()
        .map(|delta| match delta {
            PassDelta::Resized {
                from,
                to,
                threads,
                width,
                ..
            } => {
                buffer_les(Some(*to), *threads, *width) - buffer_les(Some(*from), *threads, *width)
            }
            PassDelta::Inserted {
                kind,
                threads,
                width,
                ..
            } => buffer_les(Some(*kind), *threads, *width),
            PassDelta::Moved {
                kind,
                threads,
                from_width,
                to_width,
                ..
            } => buffer_les(*kind, *threads, *to_width) - buffer_les(*kind, *threads, *from_width),
        })
        .sum()
}

impl Inventory {
    /// Derives the itemized area inventory of an IR netlist.
    ///
    /// Structural rows:
    ///
    /// * every [`Meb`](IrNodeTag::Meb) node costs
    ///   [`meb_inventory`] (or [`fifo_meb_inventory`] for the FIFO
    ///   ablation) at the node's thread count and channel width;
    /// * every [`Eb`](IrNodeTag::Eb) node costs two registers plus one
    ///   EB control FSM (the baseline two-slot buffer of paper Sec. II);
    /// * every [`Barrier`](IrNodeTag::Barrier) node costs
    ///   [`barrier`]`(S)`.
    ///
    /// All other node kinds contribute only their attached cost hints
    /// (forks/joins/branches/merges are handshake gating folded into the
    /// designs' control constants, sources/sinks are testbench artifacts,
    /// and transform/latency payloads are design logic the hints
    /// describe).
    ///
    /// A node's width comes from its first width-annotated channel
    /// (outputs first, then inputs); an unannotated buffer costs its
    /// control but zero datapath bits, so annotate widths on every
    /// MEB-adjacent channel you want accounted.
    pub fn from_ir<T: Token>(ir: &ElasticIr<T>) -> Inventory {
        let mut inv = Inventory::new();
        for (i, node) in ir.nodes().enumerate() {
            let id = ir.node_named(node.name()).filter(|n| n.index() == i);
            // Unique names are the norm; fall back to positional lookup
            // via the iteration index when a name repeats.
            let (width, threads) = match id {
                Some(id) => (ir.node_width(id), ir.node_threads(id)),
                None => {
                    let first = node.outputs().iter().chain(node.inputs()).copied().next();
                    let width = node
                        .outputs()
                        .iter()
                        .chain(node.inputs())
                        .find_map(|&ch| ir.channel_info(ch).width)
                        .unwrap_or(0);
                    let threads = first.map(|ch| ir.channel_info(ch).threads).unwrap_or(1);
                    (width, threads)
                }
            };
            match node.tag() {
                IrNodeTag::Meb(kind) => {
                    let (sub, label) = match kind {
                        MebKind::Full => (
                            meb_inventory(BufferKind::Full, threads, width),
                            format!("MEB `{}` ({width}b, {})", node.name(), BufferKind::Full),
                        ),
                        MebKind::Reduced => (
                            meb_inventory(BufferKind::Reduced, threads, width),
                            format!("MEB `{}` ({width}b, {})", node.name(), BufferKind::Reduced),
                        ),
                        MebKind::Fifo { depth } => (
                            fifo_meb_inventory(depth, threads, width),
                            format!("MEB `{}` ({width}b, FIFO x{depth})", node.name()),
                        ),
                    };
                    inv.push(label, 1, sub.total_les());
                }
                IrNodeTag::Eb => {
                    inv.push(
                        format!("EB `{}` ({width}b)", node.name()),
                        1,
                        2 * register(width) + eb_control(),
                    );
                }
                IrNodeTag::Barrier => {
                    inv.push(format!("barrier `{}`", node.name()), 1, barrier(threads));
                }
                _ => {}
            }
            for hint in node.cost_hints() {
                inv.push(hint.name.clone(), hint.count, hint.les_each);
            }
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_core::ArbiterKind;
    use elastic_sim::ReadyPolicy;
    use elastic_synth::IrNodeKind;

    fn pipeline_ir(kind: MebKind) -> ElasticIr<u64> {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel("a", 4);
        let b = ir.channel_with_width("b", 4, 32);
        let c = ir.channel_with_width("c", 4, 32);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add(
            "buf",
            IrNodeKind::Meb {
                kind,
                arbiter: ArbiterKind::RoundRobin,
                initial: Vec::new(),
                auto: false,
            },
            vec![a],
            vec![b],
        );
        let bar = ir.add(
            "sync",
            IrNodeKind::Barrier {
                participants: None,
                on_release: None,
            },
            vec![b],
            vec![c],
        );
        ir.add_cost_hint(bar, "control glue", 1, 10);
        ir.add(
            "snk",
            IrNodeKind::Sink {
                capture: false,
                policy: ReadyPolicy::Always,
            },
            vec![c],
            vec![],
        );
        ir
    }

    #[test]
    fn meb_rows_match_the_hand_formula() {
        for (kind, bk) in [
            (MebKind::Full, BufferKind::Full),
            (MebKind::Reduced, BufferKind::Reduced),
        ] {
            let inv = Inventory::from_ir(&pipeline_ir(kind));
            let meb_row = inv
                .items
                .iter()
                .find(|i| i.name.contains("MEB `buf`"))
                .expect("meb row");
            assert_eq!(meb_row.total(), meb_inventory(bk, 4, 32).total_les());
        }
    }

    #[test]
    fn barrier_and_hints_are_counted() {
        let inv = Inventory::from_ir(&pipeline_ir(MebKind::Reduced));
        assert!(inv.items.iter().any(|i| i.name == "barrier `sync`"));
        let hint = inv.items.iter().find(|i| i.name == "control glue").unwrap();
        assert_eq!(hint.total(), 10);
        let expected = meb_inventory(BufferKind::Reduced, 4, 32).total_les() + barrier(4) + 10;
        assert_eq!(inv.total_les(), expected);
    }

    #[test]
    fn expected_delta_matches_rederived_inventory_across_passes() {
        use elastic_synth::{MebSubstitution, Pass, RetimeDirection, Retiming, TransformSpec};

        // Resized: retarget the pipeline MEB to a FIFO ablation.
        let mut ir = pipeline_ir(MebKind::Full);
        let before = Inventory::from_ir(&ir).total_les() as i64;
        let report = MebSubstitution::named("buf", MebKind::Fifo { depth: 1 })
            .run(&mut ir)
            .expect("substitute");
        let after = Inventory::from_ir(&ir).total_les() as i64;
        assert_eq!(after - before, expected_les_delta(&report.deltas));
        assert_ne!(after, before, "delta is non-trivial");

        // Inserted: slack buffer spliced onto a named channel.
        let before = after;
        let report = TransformSpec::InsertSlack {
            channel: "b".to_string(),
            kind: MebKind::Reduced,
        }
        .apply(&mut ir)
        .expect("insert");
        let after = Inventory::from_ir(&ir).total_les() as i64;
        assert_eq!(after - before, expected_les_delta(&report.deltas));

        // Moved: a buffer retimed across a width-changing transform.
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel_with_width("a", 4, 32);
        let b = ir.channel_with_width("b", 4, 32);
        let c = ir.channel_with_width("c", 4, 16);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add(
            "buf",
            IrNodeKind::Meb {
                kind: MebKind::Fifo { depth: 2 },
                arbiter: ArbiterKind::RoundRobin,
                initial: Vec::new(),
                auto: true,
            },
            vec![a],
            vec![b],
        );
        ir.add(
            "narrow",
            IrNodeKind::Transform {
                f: Box::new(|&v| v >> 16),
            },
            vec![b],
            vec![c],
        );
        ir.add(
            "snk",
            IrNodeKind::Sink {
                capture: false,
                policy: ReadyPolicy::Always,
            },
            vec![c],
            vec![],
        );
        let before = Inventory::from_ir(&ir).total_les() as i64;
        let report = Retiming::new("buf", RetimeDirection::Forward)
            .run(&mut ir)
            .expect("retime");
        let after = Inventory::from_ir(&ir).total_les() as i64;
        assert_eq!(after - before, expected_les_delta(&report.deltas));
        assert!(after < before, "landing on the narrower channel saves area");
    }

    #[test]
    fn fifo_ablation_scales_with_depth() {
        let d2 = fifo_meb_inventory(2, 4, 32).total_les();
        let d8 = fifo_meb_inventory(8, 4, 32).total_les();
        assert!(d8 > d2);
        assert_eq!(d8 - d2, (8 - 2) * 4 * register(32));
    }
}
