//! Helpers for building linear MEB pipelines — the structure of the
//! paper's Figure 5 experiment and of every pipelined datapath in the
//! design examples (pipeline registers replaced by MEBs, Sec. V-B).

use elastic_sim::{
    ChannelId, Circuit, CircuitBuilder, EvalMode, FuseFn, KernelBackend, ReadyPolicy, ScheduleMode,
    Sink, Source, Tagged, Token,
};

use crate::arbiter::ArbiterKind;
use crate::meb::MebKind;

/// Channel/component handles of a linear MEB pipeline.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MebPipeline {
    /// Channel feeding stage 0 (attach a producer here).
    pub input: ChannelId,
    /// Channel leaving the last stage (attach a consumer here).
    pub output: ChannelId,
    /// All `stages + 1` channels in order, `channels[0] == input`.
    pub channels: Vec<ChannelId>,
    /// MEB instance names, `meb_names[i]` between `channels[i]` and
    /// `channels[i + 1]`.
    pub meb_names: Vec<String>,
}

/// Adds a linear pipeline of `stages` MEBs to `builder`.
///
/// Channels are named `{prefix}ch{i}` and MEBs `{prefix}meb{i}`.
///
/// # Panics
///
/// Panics if `stages == 0` or `threads == 0`.
pub fn build_meb_pipeline<T: Token>(
    builder: &mut CircuitBuilder<T>,
    prefix: &str,
    threads: usize,
    stages: usize,
    kind: MebKind,
    arbiter: ArbiterKind,
) -> MebPipeline {
    assert!(stages > 0, "a pipeline needs at least one stage");
    let channels = builder.channels(&format!("{prefix}ch"), threads, stages + 1);
    let mut meb_names = Vec::with_capacity(stages);
    for i in 0..stages {
        let name = format!("{prefix}meb{i}");
        builder.add_boxed(kind.build::<T>(
            name.clone(),
            channels[i],
            channels[i + 1],
            threads,
            arbiter.build(),
        ));
        meb_names.push(name);
    }
    MebPipeline {
        input: channels[0],
        output: channels[stages],
        channels,
        meb_names,
    }
}

/// A complete source → MEB pipeline → sink testbench over [`Tagged`]
/// tokens, the workhorse of the Figure 5 and throughput experiments.
#[derive(Debug)]
pub struct PipelineHarness {
    /// The built circuit.
    pub circuit: Circuit<Tagged>,
    /// Pipeline channel handles.
    pub pipeline: MebPipeline,
}

/// Configuration for [`PipelineHarness::build`].
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Thread count `S`.
    pub threads: usize,
    /// Number of MEB stages.
    pub stages: usize,
    /// MEB microarchitecture.
    pub kind: MebKind,
    /// Arbitration policy in every stage.
    pub arbiter: ArbiterKind,
    /// Tokens to inject per thread (`Tagged { thread, seq }`).
    pub tokens_per_thread: Vec<u64>,
    /// Per-thread sink policy.
    pub sink_policies: Vec<ReadyPolicy>,
    /// Settle-phase scheduling mode of the built circuit (the dirty-set
    /// kernel by default; [`EvalMode::Exhaustive`] for oracle runs).
    pub eval_mode: EvalMode,
    /// Static component ordering used by the settle loop (levelized rank
    /// order by default; [`ScheduleMode::Insertion`] /
    /// [`ScheduleMode::Reversed`] for ablations).
    pub schedule: ScheduleMode,
    /// Settle-kernel dispatch backend (interpreted vtable dispatch by
    /// default; [`KernelBackend::Fused`] requires a [`fuser`](Self::fuser)
    /// lowering, conventionally `elastic_synth::fuse`).
    pub backend: KernelBackend,
    /// Lowering installed when `backend` is [`KernelBackend::Fused`]
    /// (without one the builder silently falls back to interpreted
    /// dispatch).
    pub fuser: Option<FuseFn<Tagged>>,
}

impl PipelineConfig {
    /// A free-flowing configuration: `threads` threads, `stages` stages,
    /// `n` tokens per thread, always-ready sink.
    pub fn free_flowing(threads: usize, stages: usize, kind: MebKind, n: u64) -> Self {
        Self {
            threads,
            stages,
            kind,
            arbiter: ArbiterKind::RoundRobin,
            tokens_per_thread: vec![n; threads],
            sink_policies: vec![ReadyPolicy::Always; threads],
            eval_mode: EvalMode::default(),
            schedule: ScheduleMode::default(),
            backend: KernelBackend::default(),
            fuser: None,
        }
    }

    /// Overrides one thread's sink policy (e.g. "thread B stalls").
    #[must_use]
    pub fn with_sink_policy(mut self, thread: usize, policy: ReadyPolicy) -> Self {
        self.sink_policies[thread] = policy;
        self
    }

    /// Selects the simulation kernel's settle-phase mode.
    #[must_use]
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.eval_mode = mode;
        self
    }

    /// Selects the settle loop's static component ordering.
    #[must_use]
    pub fn with_schedule(mut self, schedule: ScheduleMode) -> Self {
        self.schedule = schedule;
        self
    }

    /// Selects the settle-kernel dispatch backend together with the
    /// lowering that realizes it (pass `elastic_synth::fuse` for the
    /// fused op-table kernel).
    #[must_use]
    pub fn with_backend(mut self, backend: KernelBackend, fuser: Option<FuseFn<Tagged>>) -> Self {
        self.backend = backend;
        self.fuser = fuser;
        self
    }
}

impl PipelineHarness {
    /// Builds the testbench circuit.
    ///
    /// # Panics
    ///
    /// Panics if the configuration vectors do not match `threads`, or if
    /// the netlist is internally inconsistent (a bug in this helper).
    pub fn build(config: PipelineConfig) -> Self {
        assert_eq!(config.tokens_per_thread.len(), config.threads);
        assert_eq!(config.sink_policies.len(), config.threads);
        let mut b = CircuitBuilder::<Tagged>::new();
        let pipeline = build_meb_pipeline(
            &mut b,
            "p.",
            config.threads,
            config.stages,
            config.kind,
            config.arbiter,
        );
        let mut src = Source::new("src", pipeline.input, config.threads);
        for (t, &n) in config.tokens_per_thread.iter().enumerate() {
            src.extend(t, (0..n).map(|i| Tagged::new(t, i, i)));
        }
        b.add(src);
        let mut sink =
            Sink::with_capture("snk", pipeline.output, config.threads, ReadyPolicy::Always);
        for (t, p) in config.sink_policies.iter().enumerate() {
            sink.set_policy(t, p.clone());
        }
        b.add(sink);
        b.set_schedule(config.schedule);
        b.set_backend(config.backend);
        if let Some(fuse) = config.fuser {
            b.set_fuser(fuse);
        }
        let mut circuit = b.build().expect("pipeline harness netlist is well-formed");
        circuit.set_eval_mode(config.eval_mode);
        Self { circuit, pipeline }
    }

    /// Convenience: the captured sink.
    pub fn sink(&self) -> &Sink<Tagged> {
        self.circuit.get("snk").expect("harness sink exists")
    }

    /// Convenience: the source.
    pub fn source(&self) -> &Source<Tagged> {
        self.circuit.get("src").expect("harness source exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every paper primitive — and the fully-assembled harness — must be
    /// `Send` so whole pipelines can be handed to the parallel sweep
    /// workers in `elastic-sim` (`run_sweep`). This is a compile-time
    /// guard against interior `Rc`/`RefCell` state creeping into a
    /// buffer or arbiter implementation.
    #[test]
    fn primitives_and_harness_are_send() {
        fn assert_send<X: Send>() {}
        assert_send::<PipelineHarness>();
        assert_send::<crate::ElasticBuffer<Tagged>>();
        assert_send::<crate::FullMeb<Tagged>>();
        assert_send::<crate::ReducedMeb<Tagged>>();
        assert_send::<crate::FifoMeb<Tagged>>();
        assert_send::<crate::Barrier<Tagged>>();
        assert_send::<crate::Join<Tagged>>();
        assert_send::<crate::Fork<Tagged>>();
        assert_send::<crate::Branch<Tagged>>();
        assert_send::<crate::Merge<Tagged>>();
    }

    #[test]
    fn harness_runs_free_flowing_pipeline_to_completion() {
        let cfg = PipelineConfig::free_flowing(2, 3, MebKind::Reduced, 10);
        let mut h = PipelineHarness::build(cfg);
        h.circuit.run(80).expect("clean");
        assert_eq!(h.sink().consumed_total(), 20);
        assert!(h.source().is_drained());
    }

    #[test]
    fn pipeline_names_are_predictable() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let p = build_meb_pipeline(&mut b, "x.", 2, 2, MebKind::Full, ArbiterKind::RoundRobin);
        assert_eq!(p.meb_names, vec!["x.meb0", "x.meb1"]);
        assert_eq!(p.channels.len(), 3);
        assert_eq!(p.input, p.channels[0]);
        assert_eq!(p.output, p.channels[2]);
    }

    #[test]
    fn eval_modes_agree_on_a_stalled_pipeline() {
        // The Figure 5 shape (thread B stalls mid-run) under both kernel
        // modes: captures must match exactly.
        let run = |mode: EvalMode| {
            let cfg = PipelineConfig::free_flowing(2, 3, MebKind::Reduced, 15)
                .with_sink_policy(1, ReadyPolicy::StallWindow { from: 4, to: 12 })
                .with_eval_mode(mode);
            let mut h = PipelineHarness::build(cfg);
            assert_eq!(h.circuit.eval_mode(), mode);
            h.circuit.run(120).expect("clean");
            (0..2)
                .map(|t| h.sink().captured(t).to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(EvalMode::EventDriven), run(EvalMode::Exhaustive));
    }

    /// 65 threads straddle the packed mask's `u64` word boundary: thread
    /// 64 lives in the spillover word. Both kernel modes must agree
    /// bit-exactly even with stalls landing on threads in either word.
    #[test]
    fn eval_modes_agree_across_the_mask_word_boundary() {
        let threads = 65;
        let run = |mode: EvalMode| {
            let cfg = PipelineConfig::free_flowing(threads, 2, MebKind::Reduced, 3)
                .with_sink_policy(0, ReadyPolicy::StallWindow { from: 2, to: 30 })
                .with_sink_policy(63, ReadyPolicy::Random { p: 0.5, seed: 7 })
                .with_sink_policy(64, ReadyPolicy::StallWindow { from: 5, to: 40 })
                .with_eval_mode(mode);
            let mut h = PipelineHarness::build(cfg);
            h.circuit.run(2_000).expect("clean");
            (0..threads)
                .map(|t| h.sink().captured(t).to_vec())
                .collect::<Vec<_>>()
        };
        let event = run(EvalMode::EventDriven);
        let oracle = run(EvalMode::Exhaustive);
        assert_eq!(event, oracle);
        // Every thread — both words of the mask — completed its tokens.
        for (t, caps) in oracle.iter().enumerate() {
            assert_eq!(caps.len(), 3, "thread {t} lost tokens");
        }
    }

    #[test]
    fn full_and_reduced_agree_when_nothing_stalls() {
        // Without stalls the two microarchitectures are observationally
        // equivalent (same transfer counts and completion time).
        let mut results = Vec::new();
        for kind in [MebKind::Full, MebKind::Reduced] {
            let cfg = PipelineConfig::free_flowing(4, 3, kind, 25);
            let mut h = PipelineHarness::build(cfg);
            h.circuit.run(150).expect("clean");
            results.push((
                h.sink().consumed_total(),
                h.circuit.stats().total_transfers(h.pipeline.output),
            ));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0].0, 100);
    }
}
