//! Datapath units: zero-latency combinational transforms and
//! variable-latency servers.
//!
//! The paper treats "instruction and data memory as well as the execution
//! units" as *variable latency units* (Sec. V-B); elasticity exists
//! precisely to tolerate them. [`VarLatency`] models such a unit: it
//! accepts one token per cycle, holds it for a (possibly data-dependent or
//! random) number of cycles, and emits completed tokens in per-thread FIFO
//! order through an internal round-robin selector.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channel::ChannelId;
use crate::circuit::{EvalCtx, TickCtx};
use crate::component::{CombPath, Component, NextEvent, Ports, SlotView};
use crate::mask::ThreadMask;
use crate::netlist::NetlistNodeKind;
use crate::token::Token;

/// Per-token latency function (see [`LatencyModel::PerToken`]).
pub type TokenLatencyFn<T> = Box<dyn Fn(&T) -> u32 + Send>;

/// Emission transform function (see [`VarLatency::with_transform`]).
type TransformFn<T> = Box<dyn Fn(&T) -> T + Send>;

/// How a [`VarLatency`] unit chooses each token's service latency.
pub enum LatencyModel<T> {
    /// Every token takes exactly `n` cycles (`n >= 1`).
    Fixed(u32),
    /// Uniform in `min..=max` cycles, drawn from a seeded RNG at insert
    /// time (deterministic for a given seed and arrival order).
    Uniform {
        /// Minimum latency (>= 1).
        min: u32,
        /// Maximum latency.
        max: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Latency computed from the token itself.
    PerToken(TokenLatencyFn<T>),
}

impl<T> LatencyModel<T> {
    fn sample(&self, token: &T, rng: &mut StdRng) -> u32 {
        let l = match self {
            LatencyModel::Fixed(n) => *n,
            LatencyModel::Uniform { min, max, .. } => rng.gen_range(*min..=*max),
            LatencyModel::PerToken(f) => f(token),
        };
        l.max(1)
    }

    fn seed(&self) -> u64 {
        match self {
            LatencyModel::Uniform { seed, .. } => *seed,
            _ => 0,
        }
    }
}

impl<T> std::fmt::Debug for LatencyModel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyModel::Fixed(n) => write!(f, "Fixed({n})"),
            LatencyModel::Uniform { min, max, seed } => {
                write!(f, "Uniform({min}..={max}, seed={seed})")
            }
            LatencyModel::PerToken(_) => write!(f, "PerToken(..)"),
        }
    }
}

#[derive(Clone, Debug)]
struct Entry<T> {
    thread: usize,
    token: T,
    done_at: u64,
}

/// A variable-latency elastic server with `capacity` internal slots.
///
/// * `ready(i)` upstream is asserted while a slot is free (shared across
///   threads, like a small reservation station);
/// * a completed token becomes eligible when it is the *oldest in-flight
///   token of its thread* (per-thread order is preserved);
/// * among eligible tokens whose downstream `ready(i)` is high, a
///   round-robin pointer picks one per cycle.
///
/// With `LatencyModel::Fixed(1)` and capacity 1 this degenerates to a
/// registered function unit.
pub struct VarLatency<T: Token> {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    threads: usize,
    capacity: usize,
    latency: LatencyModel<T>,
    transform: Option<TransformFn<T>>,
    entries: VecDeque<Entry<T>>,
    rng: StdRng,
    rr: usize,
    /// First-eval-of-cycle detection for the anti-swap guard (see
    /// `choose`).
    last_eval_cycle: Option<u64>,
}

impl<T: Token> VarLatency<T> {
    /// A unit reading `inp` and driving `out` for `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        capacity: usize,
        latency: LatencyModel<T>,
    ) -> Self {
        assert!(
            capacity > 0,
            "a variable-latency unit needs at least one slot"
        );
        let seed = latency.seed();
        Self {
            name: name.into(),
            inp,
            out,
            threads,
            capacity,
            latency,
            transform: None,
            entries: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xE1A5),
            rr: 0,
            last_eval_cycle: None,
        }
    }

    /// Applies `f` to every token when it is emitted (a latent function
    /// unit rather than a pure delay).
    #[must_use]
    pub fn with_transform(mut self, f: impl Fn(&T) -> T + Send + 'static) -> Self {
        self.transform = Some(Box::new(f));
        self
    }

    /// Number of tokens currently in flight.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// The oldest entry of each thread that is complete at `cycle`.
    fn completed_heads(&self, cycle: u64) -> Vec<(usize, usize)> {
        // (thread, entry index); entries is globally FIFO so the first
        // entry found per thread is that thread's oldest.
        let mut seen = ThreadMask::new(self.threads);
        let mut out = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if !seen.get(e.thread) {
                seen.set(e.thread, true);
                if e.done_at <= cycle {
                    out.push((e.thread, i));
                }
            }
        }
        out
    }

    /// Chooses the `(thread, entry index)` to offer. Mirrors the MEB
    /// selection discipline (ready-first, anti-swap guard between settle
    /// passes, rotating stalled offer) so that two variable-latency units
    /// feeding a join cannot chase each other's offers — the same
    /// convergence argument as `elastic-core`'s `select_output_thread`
    /// (see `docs/kernel.md` §3).
    fn choose(&self, ctx: &EvalCtx<'_, T>, fresh: bool) -> Option<(usize, usize)> {
        let heads = self.completed_heads(ctx.cycle());
        if heads.is_empty() {
            return None;
        }
        let pick = |pred: &dyn Fn(usize) -> bool| {
            (0..self.threads)
                .map(|off| (self.rr + off) % self.threads)
                .find_map(|t| heads.iter().find(|(ht, _)| *ht == t && pred(t)).copied())
        };
        if let Some(ready_pick) = pick(&|t| ctx.ready(self.out, t)) {
            // The anti-swap guard only matters when downstream ready can
            // change *between* settle passes, i.e. when `out` sits on a
            // feedback cycle. On a DAG the rank schedule evaluates the
            // consumer first, so the first pass already sees final ready
            // and the pure ready-first pick keeps eval order-independent.
            if !fresh && ctx.in_feedback(self.out) {
                let current = ctx.valid_mask(self.out).first_one();
                if let Some(c) = current {
                    let c_head = heads.iter().find(|(ht, _)| *ht == c).copied();
                    if let Some(ch) = c_head {
                        if !ctx.ready(self.out, c) {
                            let rank = |t: usize| {
                                (t + self.threads - (ctx.cycle() as usize % self.threads))
                                    % self.threads
                            };
                            let best = heads
                                .iter()
                                .filter(|&&(t, _)| ctx.ready(self.out, t))
                                .min_by_key(|&&(t, _)| rank(t))
                                .copied()
                                .expect("ready pick exists");
                            return Some(if rank(best.0) < rank(c) { best } else { ch });
                        }
                    }
                }
            }
            return Some(ready_pick);
        }
        pick(&|_| true)
    }
}

impl<T: Token> Component<T> for VarLatency<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Unit
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Upstream ready depends only on registered occupancy; output
        // valid depends only on registered entries plus downstream ready
        // (the arbiter's ready-first pick), which is damped by the
        // anti-swap guard. There is no input→output combinational path.
        vec![CombPath::ReadyToValid {
            from: self.out,
            to: self.out,
            damped: true,
        }]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        // Upstream ready: any free slot, shared by all threads.
        let free = self.entries.len() < self.capacity;
        for t in 0..self.threads {
            ctx.set_ready(self.inp, t, free);
        }
        // Downstream valid: the chosen completed head.
        let fresh = self.last_eval_cycle != Some(ctx.cycle());
        self.last_eval_cycle = Some(ctx.cycle());
        match self.choose(ctx, fresh) {
            Some((t, idx)) => {
                let token = &self.entries[idx].token;
                let data = match &self.transform {
                    Some(f) => f(token),
                    None => token.clone(),
                };
                ctx.drive_token(self.out, t, data);
            }
            None => ctx.drive_idle(self.out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        // Emit first (frees the slot next cycle, not this one — the input
        // ready this cycle already accounted for the pre-emission count).
        if let Some((t, _)) = ctx.fired_any(self.out) {
            if let Some(pos) = self
                .entries
                .iter()
                .position(|e| e.thread == t && e.done_at <= ctx.cycle())
            {
                self.entries.remove(pos);
            }
            self.rr = (t + 1) % self.threads;
        } else if let Some(t) = ctx.valid_mask(self.out).first_one() {
            // Stalled offer: rotate to avoid starving other done threads.
            self.rr = (t + 1) % self.threads;
        }
        if let Some((t, data)) = ctx.fired_any(self.inp) {
            let lat = self.latency.sample(data, &mut self.rng);
            self.entries.push_back(Entry {
                thread: t,
                token: data.clone(),
                done_at: ctx.cycle() + u64::from(lat),
            });
        }
    }

    fn reset(&mut self) -> bool {
        self.entries.clear();
        // Re-seed so a reset-then-rerun draws the same latency stream as a
        // fresh build (byte-identical campaigns across reuse).
        self.rng = StdRng::seed_from_u64(self.latency.seed() ^ 0xE1A5);
        self.rr = 0;
        self.last_eval_cycle = None;
        true
    }

    fn slots(&self) -> Vec<SlotView> {
        (0..self.capacity)
            .map(|i| match self.entries.get(i) {
                Some(e) => SlotView::full(format!("slot[{i}]"), e.thread, e.token.label()),
                None => SlotView::empty(format!("slot[{i}]")),
            })
            .collect()
    }

    fn next_event(&self, now: u64) -> NextEvent {
        // The unit acts spontaneously when an in-flight token completes:
        // the earliest per-thread head deadline is the next event. A head
        // already complete means valid is (or should be) asserted.
        let mut seen = ThreadMask::new(self.threads);
        let mut earliest: Option<u64> = None;
        for e in &self.entries {
            if !seen.get(e.thread) {
                seen.set(e.thread, true);
                if e.done_at <= now {
                    return NextEvent::EveryCycle;
                }
                earliest = Some(earliest.map_or(e.done_at, |x| x.min(e.done_at)));
            }
        }
        match earliest {
            Some(at) => NextEvent::At(at),
            None => NextEvent::Idle,
        }
    }

    crate::impl_as_any!();
}

/// A zero-latency combinational function unit: passes the handshake
/// through unchanged and maps the data word with `f`.
///
/// Placing a [`Transform`] between two elastic buffers models a pipeline
/// stage's combinational logic (e.g. one unrolled MD5 round).
pub struct Transform<T: Token> {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    threads: usize,
    f: Box<dyn Fn(&T) -> T + Send>,
}

impl<T: Token> Transform<T> {
    /// A combinational unit computing `f` between `inp` and `out`.
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        f: impl Fn(&T) -> T + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            inp,
            out,
            threads,
            f: Box::new(f),
        }
    }
}

impl<T: Token> Component<T> for Transform<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Unit
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Pure pass-through: valid and data flow forward, ready flows
        // backward, both zero-latency.
        vec![
            CombPath::ValidToValid {
                from: self.inp,
                to: self.out,
            },
            CombPath::ReadyToReady {
                from: self.out,
                to: self.inp,
            },
        ]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        for t in 0..self.threads {
            let v = ctx.valid(self.inp, t);
            ctx.set_valid(self.out, t, v);
            let r = ctx.ready(self.out, t);
            ctx.set_ready(self.inp, t, r);
        }
        let data = ctx.data(self.inp).map(|d| (self.f)(d));
        ctx.set_data(self.out, data);
    }

    fn tick(&mut self, _ctx: &TickCtx<'_, T>) {}

    fn reset(&mut self) -> bool {
        true // stateless
    }

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    crate::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_samples_at_least_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::<u64>::Fixed(0);
        assert_eq!(m.sample(&0, &mut rng), 1);
        let m = LatencyModel::<u64>::Uniform {
            min: 2,
            max: 5,
            seed: 7,
        };
        for _ in 0..32 {
            let l = m.sample(&0, &mut rng);
            assert!((2..=5).contains(&l));
        }
        let m = LatencyModel::PerToken(Box::new(|t: &u64| *t as u32));
        assert_eq!(m.sample(&9, &mut rng), 9);
    }

    #[test]
    fn completed_heads_respects_per_thread_order() {
        let mut v = VarLatency::<u64>::new(
            "v",
            ChannelId(0),
            ChannelId(1),
            2,
            4,
            LatencyModel::Fixed(1),
        );
        v.entries.push_back(Entry {
            thread: 0,
            token: 1,
            done_at: 10,
        });
        v.entries.push_back(Entry {
            thread: 0,
            token: 2,
            done_at: 0,
        });
        v.entries.push_back(Entry {
            thread: 1,
            token: 3,
            done_at: 0,
        });
        // Thread 0's head is not done; its second (done) entry must wait.
        let heads = v.completed_heads(5);
        assert_eq!(heads, vec![(1, 2)]);
    }

    #[test]
    fn next_event_tracks_per_thread_head_deadlines() {
        let mut v = VarLatency::<u64>::new(
            "v",
            ChannelId(0),
            ChannelId(1),
            2,
            4,
            LatencyModel::Fixed(1),
        );
        assert_eq!(v.next_event(0), NextEvent::Idle);
        v.entries.push_back(Entry {
            thread: 0,
            token: 1,
            done_at: 12,
        });
        v.entries.push_back(Entry {
            thread: 1,
            token: 2,
            done_at: 8,
        });
        // Thread 0's second entry completes earlier but is not the head.
        v.entries.push_back(Entry {
            thread: 0,
            token: 3,
            done_at: 5,
        });
        assert_eq!(v.next_event(3), NextEvent::At(8));
        assert_eq!(v.next_event(8), NextEvent::EveryCycle);
    }

    #[test]
    fn slots_report_occupancy() {
        let mut v = VarLatency::<u64>::new(
            "v",
            ChannelId(0),
            ChannelId(1),
            1,
            2,
            LatencyModel::Fixed(1),
        );
        v.entries.push_back(Entry {
            thread: 0,
            token: 42,
            done_at: 3,
        });
        let slots = v.slots();
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].occupant, Some((0, "42".to_string())));
        assert_eq!(slots[1].occupant, None);
    }
}
