//! Property tests over *composed* operator networks: fork/join diamonds
//! and branch/merge reconvergence with randomized MEB kinds, latencies
//! and stall patterns. Token conservation and per-thread pairing must
//! hold through any composition of the paper's primitives.

use mt_elastic::core::{ArbiterKind, Branch, Fork, ForkMode, Join, MebKind, Merge};
use mt_elastic::sim::{
    CircuitBuilder, LatencyModel, ReadyPolicy, Sink, Source, Tagged, VarLatency,
};
use proptest::prelude::*;

fn meb_kind_strategy() -> impl Strategy<Value = MebKind> {
    prop_oneof![
        Just(MebKind::Full),
        Just(MebKind::Reduced),
        (2usize..4).prop_map(|depth| MebKind::Fifo { depth }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Diamond: source → MEB → fork → (varlat | varlat) → join → sink.
    /// The join must pair each token with its own twin, per thread, for
    /// any latency skew between the arms.
    #[test]
    fn fork_join_diamond_pairs_twins(
        threads in 1usize..4,
        tokens in 1u64..15,
        kind in meb_kind_strategy(),
        lat_a in 1u32..4,
        lat_b in 1u32..4,
        seed in any::<u64>(),
    ) {
        let mut b = CircuitBuilder::<Tagged>::new();
        let src_ch = b.channel("src", threads);
        let buffered = b.channel("buf", threads);
        let arm_a = b.channel("arm_a", threads);
        let arm_b = b.channel("arm_b", threads);
        let done_a = b.channel("done_a", threads);
        let done_b = b.channel("done_b", threads);
        let joined = b.channel("joined", threads);

        let mut src = Source::new("src", src_ch, threads);
        for t in 0..threads {
            src.extend(t, (0..tokens).map(|i| Tagged::new(t, i, i)));
        }
        b.add(src);
        b.add_boxed(kind.build_with::<Tagged>("meb", src_ch, buffered, threads, ArbiterKind::RoundRobin));
        b.add(Fork::new("split", buffered, vec![arm_a, arm_b], threads, ForkMode::Eager));
        b.add(VarLatency::new("ua", arm_a, done_a, threads, 2,
            LatencyModel::Uniform { min: 1, max: lat_a.max(1), seed }));
        b.add(VarLatency::new("ub", arm_b, done_b, threads, 2,
            LatencyModel::Uniform { min: 1, max: lat_b.max(1), seed: seed ^ 1 }));
        b.add(Join::new("pair", vec![done_a, done_b], joined, threads, |ins: &[&Tagged]| {
            assert_eq!(ins[0].thread, ins[1].thread, "join paired different threads");
            assert_eq!(ins[0].seq, ins[1].seq, "join paired different generations");
            ins[0].clone()
        }));
        b.add(Sink::with_capture("snk", joined, threads, ReadyPolicy::Always));

        let mut circuit = b.build().expect("valid netlist");
        circuit.set_deadlock_watchdog(Some(200));
        let expected = tokens * threads as u64;
        let budget = 200 + expected * 12;
        let done = circuit
            .run_until(budget, move |c| c.stats().total_transfers(joined) >= expected);
        prop_assert!(matches!(done, Ok(true)), "{done:?}");

        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        for t in 0..threads {
            let seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
            prop_assert_eq!(&seqs, &(0..tokens).collect::<Vec<_>>(), "thread {}", t);
        }
    }

    /// Branch/merge reconvergence through buffered, latency-skewed paths:
    /// conservation per thread regardless of the routing predicate.
    #[test]
    fn branch_merge_reconvergence_conserves(
        threads in 1usize..4,
        tokens in 1u64..15,
        kind in meb_kind_strategy(),
        modulus in 2u64..5,
        p_ready in 0.3f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut b = CircuitBuilder::<Tagged>::new();
        let src_ch = b.channel("src", threads);
        let buffered = b.channel("buf", threads);
        let hi = b.channel("hi", threads);
        let lo = b.channel("lo", threads);
        let hi_d = b.channel("hi_d", threads);
        let lo_d = b.channel("lo_d", threads);
        let merged = b.channel("merged", threads);

        let mut src = Source::new("src", src_ch, threads);
        for t in 0..threads {
            src.extend(t, (0..tokens).map(|i| Tagged::new(t, i, i)));
        }
        b.add(src);
        b.add_boxed(kind.build_with::<Tagged>("meb", src_ch, buffered, threads, ArbiterKind::RoundRobin));
        let m = modulus;
        b.add(Branch::new("route", buffered, hi, lo, threads, move |tok: &Tagged| {
            tok.payload % m == 0
        }));
        b.add(VarLatency::new("uh", hi, hi_d, threads, 2,
            LatencyModel::Uniform { min: 1, max: 3, seed }));
        b.add(VarLatency::new("ul", lo, lo_d, threads, 2,
            LatencyModel::Uniform { min: 1, max: 2, seed: seed ^ 7 }));
        b.add(Merge::new("rejoin", vec![hi_d, lo_d], merged, threads));
        b.add(Sink::with_capture("snk", merged, threads,
            ReadyPolicy::Random { p: p_ready, seed: seed ^ 13 }));

        let mut circuit = b.build().expect("valid netlist");
        circuit.set_deadlock_watchdog(Some(300));
        let expected = tokens * threads as u64;
        let budget = 300 + expected * 16;
        let done = circuit
            .run_until(budget, move |c| c.stats().total_transfers(merged) >= expected);
        prop_assert!(matches!(done, Ok(true)), "{done:?}");

        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        for t in 0..threads {
            let mut seqs: Vec<u64> = snk.captured(t).iter().map(|(_, tok)| tok.seq).collect();
            seqs.sort_unstable();
            prop_assert_eq!(&seqs, &(0..tokens).collect::<Vec<_>>(), "thread {}", t);
        }
    }
}
