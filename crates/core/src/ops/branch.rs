//! Branch: data-dependent routing (if-then-else divergence; paper, Fig. 3
//! and Fig. 7(c)).
//!
//! The condition travels *with* the token: "the active valid bit of the
//! input elastic channel reveals to which thread the condition
//! corresponds" — here the condition is a pure function of the token, so
//! each thread's token self-selects its path.

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, NextEvent, Ports,
    TickCtx, Token,
};

/// A two-way conditional router.
///
/// Tokens for which `cond` returns `true` exit on `out_true`, others on
/// `out_false`. The handshake is pass-through per thread: the input is
/// ready exactly when the selected output is ready.
///
/// # Examples
///
/// ```
/// use elastic_core::Branch;
/// use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<u64>::new();
/// let x = b.channel("x", 1);
/// let even = b.channel("even", 1);
/// let odd = b.channel("odd", 1);
/// let mut src = Source::new("src", x, 1);
/// src.extend(0, [1, 2, 3, 4]);
/// b.add(src);
/// b.add(Branch::new("br", x, even, odd, 1, |v| v % 2 == 0));
/// b.add(Sink::with_capture("se", even, 1, ReadyPolicy::Always));
/// b.add(Sink::with_capture("so", odd, 1, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(8)?;
/// let se: &Sink<u64> = circuit.get("se").expect("sink");
/// let evens: Vec<u64> = se.captured(0).iter().map(|(_, v)| *v).collect();
/// assert_eq!(evens, vec![2, 4]);
/// # Ok(())
/// # }
/// ```
pub struct Branch<T: Token> {
    name: String,
    inp: ChannelId,
    out_true: ChannelId,
    out_false: ChannelId,
    threads: usize,
    cond: Box<dyn Fn(&T) -> bool + Send>,
}

impl<T: Token> Branch<T> {
    /// A branch routing `inp` to `out_true`/`out_false` according to
    /// `cond`.
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        out_true: ChannelId,
        out_false: ChannelId,
        threads: usize,
        cond: impl Fn(&T) -> bool + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            inp,
            out_true,
            out_false,
            threads,
            cond: Box::new(cond),
        }
    }
}

impl<T: Token> Component<T> for Branch<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Route
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out_true, self.out_false])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // The condition is computed from the input token (data travels
        // with valid), steering valid to one output; ready(inp) reads the
        // input's own valid (to know which path is selected) and the
        // selected output's ready.
        vec![
            CombPath::ValidToValid {
                from: self.inp,
                to: self.out_true,
            },
            CombPath::ValidToValid {
                from: self.inp,
                to: self.out_false,
            },
            CombPath::ValidToReady {
                from: self.inp,
                to: self.inp,
            },
            CombPath::ReadyToReady {
                from: self.out_true,
                to: self.inp,
            },
            CombPath::ReadyToReady {
                from: self.out_false,
                to: self.inp,
            },
        ]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        let taken = ctx.data(self.inp).map(|d| (self.cond)(d));
        for t in 0..self.threads {
            let vin = ctx.valid(self.inp, t);
            let (sel, other) = match taken {
                Some(true) => (self.out_true, self.out_false),
                _ => (self.out_false, self.out_true),
            };
            ctx.set_valid(sel, t, vin);
            ctx.set_valid(other, t, false);
            ctx.set_ready(self.inp, t, vin && ctx.ready(sel, t));
        }
        let data = ctx.data(self.inp).cloned();
        match taken {
            Some(true) => {
                ctx.set_data(self.out_true, data);
                ctx.set_data(self.out_false, None);
            }
            _ => {
                ctx.set_data(self.out_false, data);
                ctx.set_data(self.out_true, None);
            }
        }
    }

    fn tick(&mut self, _ctx: &TickCtx<'_, T>) {}

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    fn reset(&mut self) -> bool {
        true // stateless
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;
    use crate::meb::ReducedMeb;
    use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

    #[test]
    fn routes_by_condition_preserving_order() {
        let mut b = CircuitBuilder::<u64>::new();
        let x = b.channel("x", 1);
        let hi = b.channel("hi", 1);
        let lo = b.channel("lo", 1);
        let mut src = Source::new("src", x, 1);
        src.extend(0, [5, 15, 7, 20, 1, 30]);
        b.add(src);
        b.add(Branch::new("br", x, hi, lo, 1, |v| *v >= 10));
        b.add(Sink::with_capture("sh", hi, 1, ReadyPolicy::Always));
        b.add(Sink::with_capture("sl", lo, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("clean");
        let sh: &Sink<u64> = circuit.get("sh").expect("sink");
        let sl: &Sink<u64> = circuit.get("sl").expect("sink");
        let highs: Vec<u64> = sh.captured(0).iter().map(|&(_, v)| v).collect();
        let lows: Vec<u64> = sl.captured(0).iter().map(|&(_, v)| v).collect();
        assert_eq!(highs, vec![15, 20, 30]);
        assert_eq!(lows, vec![5, 7, 1]);
    }

    #[test]
    fn blocked_path_stalls_only_tokens_routed_to_it() {
        let mut b = CircuitBuilder::<u64>::new();
        let x = b.channel("x", 1);
        let hi = b.channel("hi", 1);
        let lo = b.channel("lo", 1);
        let mut src = Source::new("src", x, 1);
        src.extend(0, [1, 2, 12, 3]);
        b.add(src);
        b.add(Branch::new("br", x, hi, lo, 1, |v| *v >= 10));
        b.add(Sink::with_capture("sh", hi, 1, ReadyPolicy::Never));
        b.add(Sink::with_capture("sl", lo, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("clean");
        let sl: &Sink<u64> = circuit.get("sl").expect("sink");
        // 1 and 2 pass; 12 blocks the head; 3 never arrives (in-order).
        let lows: Vec<u64> = sl.captured(0).iter().map(|&(_, v)| v).collect();
        assert_eq!(lows, vec![1, 2]);
    }

    /// M-Branch: threads routed independently through a shared branch,
    /// fed by a reduced MEB.
    #[test]
    fn mbranch_routes_each_threads_tokens() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let x0 = b.channel("x0", 2);
        let x1 = b.channel("x1", 2);
        let t_out = b.channel("t", 2);
        let f_out = b.channel("f", 2);
        let mut src = Source::new("src", x0, 2);
        for t in 0..2 {
            src.extend(t, (0..8).map(|i| Tagged::new(t, i, i)));
        }
        b.add(src);
        b.add(ReducedMeb::new(
            "meb",
            x0,
            x1,
            2,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(Branch::new("br", x1, t_out, f_out, 2, |tok: &Tagged| {
            tok.payload % 2 == 0
        }));
        b.add(Sink::with_capture("st", t_out, 2, ReadyPolicy::Always));
        b.add(Sink::with_capture("sf", f_out, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(40).expect("clean");
        let st: &Sink<Tagged> = circuit.get("st").expect("sink");
        let sf: &Sink<Tagged> = circuit.get("sf").expect("sink");
        for t in 0..2 {
            let evens: Vec<u64> = st.captured(t).iter().map(|(_, tok)| tok.payload).collect();
            let odds: Vec<u64> = sf.captured(t).iter().map(|(_, tok)| tok.payload).collect();
            assert_eq!(evens, vec![0, 2, 4, 6], "thread {t} even path");
            assert_eq!(odds, vec![1, 3, 5, 7], "thread {t} odd path");
        }
    }
}
