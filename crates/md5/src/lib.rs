//! # elastic-md5 — MD5 as a multithreaded elastic circuit
//!
//! The first design example of *"Hardware Primitives for the Synthesis of
//! Multithreaded Elastic Systems"* (DATE 2014, Sec. V-A): an MD5 engine in
//! which the 16 steps of each round are fully unrolled into one
//! combinational stage, each block makes four trips through that stage,
//! and a thread [`Barrier`](elastic_core::Barrier) synchronizes all
//! threads between rounds so a single global round-configuration counter
//! can drive the datapath.
//!
//! * [`algo`] — a from-scratch RFC 1321 software MD5 (the golden model);
//! * [`circuit`] — the elastic loop (M-Merge → MEB → round unit → MEB →
//!   barrier → M-Branch) and a cycle-accurate driver.
//!
//! # Example
//!
//! ```
//! use elastic_core::MebKind;
//! use elastic_md5::{algo, Md5Hasher};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let hasher = Md5Hasher::new(4, MebKind::Reduced);
//! let (digests, cycles) = hasher.hash_messages(&[b"abc" as &[u8], b"xyz"])?;
//! assert_eq!(digests[0], algo::md5(b"abc"));
//! assert!(cycles > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod algo;
pub mod circuit;

pub use circuit::{Md5Channels, Md5Circuit, Md5Error, Md5Hasher, Md5Ir, Md5Token};
