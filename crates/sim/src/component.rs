//! The component model: combinational evaluation plus a clock edge.
//!
//! Every hardware block — buffers, operators, sources, sinks, datapath
//! units — implements [`Component`]. The kernel evaluates all components'
//! [`eval`](Component::eval) repeatedly until the handshake network settles
//! (combinational fixed point), then calls [`tick`](Component::tick) once
//! (the rising clock edge).
//!
//! # Rules for implementors
//!
//! 1. **Total drive** — `eval` must drive *every* signal the component owns
//!    (`valid`/`data` on its outputs, `ready` on its inputs) on every call:
//!    signals are warm-started from the previous cycle's settled values and
//!    `eval` runs several times per cycle, so anything left undriven leaks
//!    stale values into the fixed point.
//! 2. **Idempotence** — `eval` must be a pure function of the component's
//!    registered state and the current channel signals. All state updates
//!    (and any randomness) belong in `tick`.
//! 3. **No peeking forward** — `tick` observes the *settled* signals of the
//!    cycle via [`TickCtx`] and updates registers; it must not assume
//!    anything about the next cycle.

use crate::channel::ChannelId;
use crate::circuit::{EvalCtx, TickCtx};
use crate::error::ProtocolError;
use crate::token::Token;

/// A component's next self-scheduled activity, reported through
/// [`Component::next_event`].
///
/// When a cycle ends *quiescent* (no `valid` asserted anywhere, nothing
/// fired), the kernel's fast-path asks every component when it could next
/// change its outputs without any input changing first. If every answer is
/// [`Idle`](NextEvent::Idle) or [`At`](NextEvent::At), the clock jumps
/// straight to the earliest reported cycle instead of stepping through
/// provably empty cycles one by one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NextEvent {
    /// The component may change its outputs on any cycle. This is the
    /// conservative default; a single `EveryCycle` component disables the
    /// quiescence fast-path.
    EveryCycle,
    /// Purely reactive: the component produces no activity until one of
    /// its channel signals changes.
    Idle,
    /// Spontaneous activity no earlier than the given cycle (a source
    /// releasing its next timed token, a latency timer expiring).
    At(u64),
}

/// The input/output channel sets of a component.
///
/// Used by the builder to check that every channel has exactly one driver
/// (a component listing it in `outputs`) and one reader (in `inputs`).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Ports {
    /// Channels this component consumes (it drives their `ready` bits).
    pub inputs: Vec<ChannelId>,
    /// Channels this component produces (it drives `valid` and `data`).
    pub outputs: Vec<ChannelId>,
}

impl Ports {
    /// Builds a port set from input and output channel lists.
    pub fn new(
        inputs: impl IntoIterator<Item = ChannelId>,
        outputs: impl IntoIterator<Item = ChannelId>,
    ) -> Self {
        Self {
            inputs: inputs.into_iter().collect(),
            outputs: outputs.into_iter().collect(),
        }
    }
}

/// One declared combinational path through a component, reported by
/// [`Component::comb_paths`].
///
/// Each variant names the *trigger* signal (`from`) whose same-cycle value
/// the component's [`eval`](Component::eval) reads, and the signal (`to`)
/// it combinationally drives from that value. Channel `valid` and `data`
/// are treated as one forward signal (they are always driven together);
/// `ready` is the backward signal. The build-time scheduler assembles
/// these declarations into a signal-level dependency graph: it rejects
/// all-combinational cycles, derives the rank order that lets the settle
/// loop converge in a single sweep, and narrows the event-driven kernel's
/// wake map to the signals a component actually listens to.
///
/// **Completeness contract:** the declarations must cover *every* channel
/// signal `eval` reads. An undeclared read means the component is never
/// re-evaluated when that signal changes, silently corrupting the fixed
/// point. When in doubt, keep the conservative default (every input
/// combinationally reaches every output in both directions) — it is always
/// safe, merely less schedulable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CombPath {
    /// `valid`/`data` of input `from` combinationally drives `valid`/`data`
    /// of output `to` (a pass-through datapath, e.g. a zero-latency
    /// transform or a join).
    ValidToValid {
        /// Input channel whose valid/data is read.
        from: ChannelId,
        /// Output channel whose valid/data is driven.
        to: ChannelId,
    },
    /// `valid`/`data` of input `from` combinationally drives the `ready`
    /// the component asserts on input `to` (e.g. a join: each input is
    /// ready only when the *other* inputs are valid). `from == to` is
    /// legal and means ready depends on the same channel's own valid.
    ValidToReady {
        /// Input channel whose valid/data is read.
        from: ChannelId,
        /// Input channel whose ready is driven.
        to: ChannelId,
    },
    /// `ready` of output `from` combinationally drives `valid`/`data` of
    /// output `to` (ready-aware selection: an arbiter that offers only a
    /// downstream-ready thread). `from == to` is the common self-referential
    /// form.
    ///
    /// `damped: true` marks a *hysteretic* path: the component guards the
    /// selection so that re-evaluation with unchanged inputs keeps the
    /// previous choice (monotone within a cycle). Cycles through a damped
    /// path converge under the kernel's iteration cap and are therefore
    /// legal; cycles whose every edge is strict are rejected at build time.
    ReadyToValid {
        /// Output channel whose ready is read.
        from: ChannelId,
        /// Output channel whose valid/data is driven.
        to: ChannelId,
        /// Whether the path is hysteretically damped (see above).
        damped: bool,
    },
    /// `ready` of output `from` combinationally drives the `ready` the
    /// component asserts on input `to` (classic elastic backpressure
    /// pass-through).
    ReadyToReady {
        /// Output channel whose ready is read.
        from: ChannelId,
        /// Input channel whose ready is driven.
        to: ChannelId,
    },
}

/// The conservative all-paths declaration for a port set: every input's
/// valid reaches every output's valid and every input's ready (including
/// its own), and every output's ready reaches every output's valid
/// (strict) and every input's ready.
///
/// This is the default returned by [`Component::comb_paths`]; it is always
/// safe (it can only over-approximate the true sensitivity), at the cost
/// of forcing the scheduler to assume the worst — a component using it
/// inside a feedback loop is rejected as a combinational cycle.
pub fn conservative_paths(ports: &Ports) -> Vec<CombPath> {
    let mut paths = Vec::new();
    for &i in &ports.inputs {
        for &o in &ports.outputs {
            paths.push(CombPath::ValidToValid { from: i, to: o });
        }
        for &j in &ports.inputs {
            paths.push(CombPath::ValidToReady { from: i, to: j });
        }
    }
    for &o in &ports.outputs {
        for &p in &ports.outputs {
            paths.push(CombPath::ReadyToValid {
                from: o,
                to: p,
                damped: false,
            });
        }
        for &i in &ports.inputs {
            paths.push(CombPath::ReadyToReady { from: o, to: i });
        }
    }
    paths
}

/// A snapshot of one storage slot inside a component, for trace rendering.
///
/// The Figure 5 reproduction prints, per cycle, the occupant of every MEB
/// register (per-thread mains plus the shared auxiliary slot).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SlotView {
    /// Slot name, e.g. `"main[0]"`, `"shared"`, `"eb[1].aux"`.
    pub name: String,
    /// `Some((thread, label))` when the slot holds a token.
    pub occupant: Option<(usize, String)>,
}

impl SlotView {
    /// An occupied slot.
    pub fn full(name: impl Into<String>, thread: usize, label: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            occupant: Some((thread, label.into())),
        }
    }

    /// An empty slot.
    pub fn empty(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            occupant: None,
        }
    }
}

/// A synchronous hardware component.
///
/// See the module documentation for the evaluation contract.
pub trait Component<T: Token>: Send {
    /// Instance name (unique names make traces and errors readable).
    fn name(&self) -> &str;

    /// The channels this component reads and drives.
    fn ports(&self) -> Ports;

    /// Combinational evaluation: drive `valid`/`data` on outputs and
    /// `ready` on inputs from registered state and current signals.
    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>);

    /// The combinational paths through this component — which same-cycle
    /// channel signals [`eval`](Component::eval) reads, and which signals
    /// it drives from them (see [`CombPath`]).
    ///
    /// The build-time scheduler uses the declarations to (a) reject true
    /// combinational handshake cycles at [`build`](crate::CircuitBuilder::build)
    /// time, (b) levelize the acyclic remainder into a rank order that
    /// settles in one sweep, and (c) wake a component only when a signal it
    /// declared actually changes.
    ///
    /// The default is [`conservative_paths`] — all paths combinational in
    /// both directions. Register-cut primitives (an elastic buffer cuts
    /// *every* handshake path; a MEB's `ready` comes from registered
    /// occupancy) should override this to declare exactly the paths their
    /// `eval` implements. The declarations must be *complete*: every
    /// channel signal `eval` reads must appear as a `from` in some path.
    fn comb_paths(&self) -> Vec<CombPath> {
        conservative_paths(&self.ports())
    }

    /// Rising clock edge: observe the settled handshakes and update
    /// internal registers.
    fn tick(&mut self, ctx: &TickCtx<'_, T>);

    /// Rewinds the component to its freshly built *empty* state so an
    /// elaborated circuit can be reused for another run
    /// ([`Circuit::reset`](crate::Circuit::reset)).
    ///
    /// Returns `true` when the component supports resetting; the default
    /// `false` makes [`Circuit::reset`](crate::Circuit::reset) fail with
    /// [`SimError::ResetUnsupported`](crate::SimError::ResetUnsupported)
    /// naming this component, so custom components that never opted in
    /// stay safe. Implementations rewind occupancy and policy state —
    /// stored tokens, FSMs, arbiter/rotation pointers, RNG streams —
    /// while configuration (ports, names, ready policies, latency models,
    /// transforms) persists. Tokens pre-loaded through `with_initial`-style
    /// constructors are **not** restored: reset means *empty*, and sweep
    /// jobs re-seed their own tokens.
    fn reset(&mut self) -> bool {
        false
    }

    /// Optional view of internal storage for trace rendering.
    fn slots(&self) -> Vec<SlotView> {
        Vec::new()
    }

    /// The earliest cycle (strictly after `now`) at which this component
    /// could spontaneously change its outputs while the network is idle.
    ///
    /// Used by the quiescence fast-path; see [`NextEvent`]. The default is
    /// the conservative [`NextEvent::EveryCycle`], which keeps unknown
    /// components correct at the cost of disabling the fast-path. Purely
    /// reactive components should return [`NextEvent::Idle`]; time-driven
    /// ones should report their next deadline with [`NextEvent::At`].
    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::EveryCycle
    }

    /// Takes a protocol fault latched during [`tick`](Component::tick),
    /// if any. The kernel polls this after every clock edge and converts
    /// a latched fault into
    /// [`SimError::Component`](crate::SimError::Component) — the typed
    /// path replacing in-component `panic!`s.
    fn take_fault(&mut self) -> Option<ProtocolError> {
        None
    }

    /// Structural class for netlist extraction and DOT rendering (see
    /// [`NetlistNodeKind`](crate::netlist::NetlistNodeKind)). The default
    /// is the unclassified box shape; primitives override this so an
    /// extracted graph draws buffers as cylinders, routing as diamonds,
    /// barriers as octagons and endpoints as ellipses.
    fn netlist_kind(&self) -> crate::netlist::NetlistNodeKind {
        crate::netlist::NetlistNodeKind::default()
    }

    /// Upcast for typed access via [`Circuit::get`](crate::Circuit::get).
    ///
    /// Implement as `fn as_any(&self) -> &dyn Any { self }` (the
    /// [`impl_as_any!`](crate::impl_as_any) macro writes both upcasts).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for typed access via
    /// [`Circuit::get_mut`](crate::Circuit::get_mut).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Consuming upcast: lets a lowering pass take the concrete component
    /// back out of its box (after checking the type via
    /// [`as_any`](Component::as_any)) so a fused op table can store it
    /// unboxed. Written by [`impl_as_any!`](crate::impl_as_any) alongside
    /// the borrowing upcasts.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Writes the three [`Component`] upcast methods (`as_any`, `as_any_mut`,
/// `into_any`) inside an `impl Component<T> for …` block.
///
/// # Examples
///
/// ```
/// use elastic_sim::{impl_as_any, Component, EvalCtx, TickCtx, Ports};
///
/// struct Null;
/// impl Component<u64> for Null {
///     fn name(&self) -> &str { "null" }
///     fn ports(&self) -> Ports { Ports::default() }
///     fn eval(&mut self, _ctx: &mut EvalCtx<'_, u64>) {}
///     fn tick(&mut self, _ctx: &TickCtx<'_, u64>) {}
///     impl_as_any!();
/// }
/// ```
#[macro_export]
macro_rules! impl_as_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
        fn into_any(self: ::std::boxed::Box<Self>) -> ::std::boxed::Box<dyn ::std::any::Any> {
            self
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_view_constructors() {
        let s = SlotView::full("main[1]", 1, "B3");
        assert_eq!(s.occupant, Some((1, "B3".to_string())));
        let e = SlotView::empty("shared");
        assert_eq!(e.occupant, None);
        assert_eq!(e.name, "shared");
    }

    #[test]
    fn ports_collects_channels() {
        let p = Ports::new([ChannelId(0)], [ChannelId(1), ChannelId(2)]);
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.outputs.len(), 2);
    }

    #[test]
    fn conservative_paths_cover_all_directions() {
        let p = Ports::new([ChannelId(0)], [ChannelId(1), ChannelId(2)]);
        let paths = conservative_paths(&p);
        // 1 input x 2 outputs V->V, 1x1 V->R, 2x2 R->V, 2x1 R->R.
        assert_eq!(paths.len(), 2 + 1 + 4 + 2);
        assert!(paths.contains(&CombPath::ValidToValid {
            from: ChannelId(0),
            to: ChannelId(2),
        }));
        assert!(paths.contains(&CombPath::ValidToReady {
            from: ChannelId(0),
            to: ChannelId(0),
        }));
        // Conservative ready->valid paths are strict, never damped.
        assert!(paths.contains(&CombPath::ReadyToValid {
            from: ChannelId(1),
            to: ChannelId(1),
            damped: false,
        }));
        assert!(paths.contains(&CombPath::ReadyToReady {
            from: ChannelId(2),
            to: ChannelId(0),
        }));
    }
}
