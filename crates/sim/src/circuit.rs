//! The synchronous simulation kernel.
//!
//! Each cycle proceeds in two phases, mirroring synchronous hardware:
//!
//! 1. **Combinational settle** — all channel signals are cleared, then all
//!    components' [`eval`](crate::Component::eval) run repeatedly until no
//!    signal changes (fixed point). A network whose handshakes form a
//!    zero-latency cycle never settles and is reported as a
//!    [`SimError::CombinationalLoop`] — exactly the class of circuit that
//!    is illegal in elastic design unless cut by an elastic buffer.
//! 2. **Clock edge** — the settled signals determine which transfers fire
//!    (`valid(i) && ready(i)`); every component's
//!    [`tick`](crate::Component::tick) then updates its registers.

use std::collections::BTreeMap;

use crate::channel::{ChannelId, ChannelState};
use crate::component::Component;
use crate::error::SimError;
use crate::stats::Stats;
use crate::token::Token;
use crate::trace::{ChannelTrace, CycleTrace, TraceRecorder};

/// Combinational-phase view of the circuit handed to
/// [`Component::eval`](crate::Component::eval).
///
/// Setters enforce signal ownership: a component may drive `valid`/`data`
/// only on its output channels and `ready` only on its input channels.
pub struct EvalCtx<'a, T: Token> {
    pub(crate) channels: &'a mut [ChannelState<T>],
    pub(crate) dirty: &'a mut bool,
    pub(crate) current: usize,
    pub(crate) driver: &'a [usize],
    pub(crate) reader: &'a [usize],
    pub(crate) cycle: u64,
}

impl<'a, T: Token> EvalCtx<'a, T> {
    /// Index of the cycle currently being evaluated (0-based).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Thread count of channel `ch`.
    pub fn threads(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].spec.threads
    }

    /// Current `valid(thread)` on `ch`.
    pub fn valid(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].valid[thread]
    }

    /// Current `ready(thread)` on `ch`.
    pub fn ready(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].ready[thread]
    }

    /// Current data word on `ch` (driven by the producer).
    pub fn data(&self, ch: ChannelId) -> Option<&T> {
        self.channels[ch.0].data.as_ref()
    }

    /// The single asserted thread and its data, if exactly one `valid(i)`
    /// is high and data is present.
    pub fn incoming(&self, ch: ChannelId) -> Option<(usize, &T)> {
        let st = &self.channels[ch.0];
        let t = st.single_valid()?;
        st.data.as_ref().map(|d| (t, d))
    }

    /// Drives `valid(thread)` on an output channel.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered driver of
    /// `ch` — this is a component-implementation bug.
    pub fn set_valid(&mut self, ch: ChannelId, thread: usize, value: bool) {
        assert_eq!(
            self.driver[ch.0], self.current,
            "component tried to drive valid on channel `{}` it does not own",
            self.channels[ch.0].spec.name
        );
        let slot = &mut self.channels[ch.0].valid[thread];
        if *slot != value {
            *slot = value;
            *self.dirty = true;
        }
    }

    /// Drives the data word on an output channel.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered driver of `ch`.
    pub fn set_data(&mut self, ch: ChannelId, value: Option<T>) {
        assert_eq!(
            self.driver[ch.0], self.current,
            "component tried to drive data on channel `{}` it does not own",
            self.channels[ch.0].spec.name
        );
        let slot = &mut self.channels[ch.0].data;
        if *slot != value {
            *slot = value;
            *self.dirty = true;
        }
    }

    /// Drives `ready(thread)` on an input channel.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not the registered reader of `ch`.
    pub fn set_ready(&mut self, ch: ChannelId, thread: usize, value: bool) {
        assert_eq!(
            self.reader[ch.0], self.current,
            "component tried to drive ready on channel `{}` it does not read",
            self.channels[ch.0].spec.name
        );
        let slot = &mut self.channels[ch.0].ready[thread];
        if *slot != value {
            *slot = value;
            *self.dirty = true;
        }
    }

    /// Convenience: drives all `valid` bits low and clears data on an
    /// output channel (an idle producer).
    pub fn drive_idle(&mut self, ch: ChannelId) {
        for t in 0..self.threads(ch) {
            self.set_valid(ch, t, false);
        }
        self.set_data(ch, None);
    }

    /// Convenience: asserts `valid(thread)` with `data`, deasserting every
    /// other thread's valid bit (the MT channel invariant).
    pub fn drive_token(&mut self, ch: ChannelId, thread: usize, data: T) {
        for t in 0..self.threads(ch) {
            self.set_valid(ch, t, t == thread);
        }
        self.set_data(ch, Some(data));
    }

    /// Convenience: drives every `ready` bit of an input channel low.
    pub fn drive_unready(&mut self, ch: ChannelId) {
        for t in 0..self.threads(ch) {
            self.set_ready(ch, t, false);
        }
    }
}

/// Clock-edge view of the circuit handed to
/// [`Component::tick`](crate::Component::tick): read-only access to the
/// settled signals of the finishing cycle.
pub struct TickCtx<'a, T: Token> {
    pub(crate) channels: &'a [ChannelState<T>],
    pub(crate) cycle: u64,
}

impl<'a, T: Token> TickCtx<'a, T> {
    /// Index of the cycle whose clock edge is being processed.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Thread count of channel `ch`.
    pub fn threads(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].spec.threads
    }

    /// Settled `valid(thread)`.
    pub fn valid(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].valid[thread]
    }

    /// Settled `ready(thread)`.
    pub fn ready(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].ready[thread]
    }

    /// Settled data word.
    pub fn data(&self, ch: ChannelId) -> Option<&T> {
        self.channels[ch.0].data.as_ref()
    }

    /// Whether thread `t`'s transfer fired on `ch` this cycle.
    pub fn fired(&self, ch: ChannelId, thread: usize) -> bool {
        self.channels[ch.0].fires(thread)
    }

    /// The thread and token of the transfer that fired on `ch`, if any.
    pub fn fired_any(&self, ch: ChannelId) -> Option<(usize, &T)> {
        let st = &self.channels[ch.0];
        let t = st.single_valid()?;
        if st.ready[t] {
            st.data.as_ref().map(|d| (t, d))
        } else {
            None
        }
    }
}

/// One fired transfer, as reported by [`Circuit::step`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transfer {
    /// Channel on which the transfer fired.
    pub channel: ChannelId,
    /// Name of that channel.
    pub channel_name: String,
    /// Thread that moved.
    pub thread: usize,
    /// Label of the token that moved.
    pub label: String,
}

/// Summary of one simulated cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleReport {
    /// Index of the cycle that just completed.
    pub cycle: u64,
    /// All transfers that fired.
    pub transfers: Vec<Transfer>,
    /// Number of settle iterations the combinational phase needed.
    pub settle_iterations: usize,
}

/// A fully wired synchronous elastic circuit.
///
/// Build one with [`CircuitBuilder`](crate::CircuitBuilder), then drive it
/// with [`step`](Circuit::step) / [`run`](Circuit::run).
pub struct Circuit<T: Token> {
    pub(crate) components: Vec<Box<dyn Component<T>>>,
    pub(crate) channels: Vec<ChannelState<T>>,
    pub(crate) driver: Vec<usize>,
    pub(crate) reader: Vec<usize>,
    cycle: u64,
    stats: Stats,
    recorder: Option<TraceRecorder>,
    watchdog: Option<u64>,
    idle_cycles: u64,
}

impl<T: Token> Circuit<T> {
    pub(crate) fn from_parts(
        components: Vec<Box<dyn Component<T>>>,
        channels: Vec<ChannelState<T>>,
        driver: Vec<usize>,
        reader: Vec<usize>,
    ) -> Self {
        let stats = Stats::new(channels.iter().map(|c| (c.spec.name.clone(), c.spec.threads)));
        Self {
            components,
            channels,
            driver,
            reader,
            cycle: 0,
            stats,
            recorder: None,
            watchdog: None,
            idle_cycles: 0,
        }
    }

    /// Index of the next cycle to simulate (0 before the first
    /// [`step`](Circuit::step)).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the statistics counters (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Starts recording cycle traces (unbounded).
    pub fn enable_trace(&mut self) {
        self.recorder = Some(TraceRecorder::new());
    }

    /// Starts recording cycle traces, keeping at most `limit` cycles.
    pub fn enable_trace_limited(&mut self, limit: usize) {
        self.recorder = Some(TraceRecorder::with_limit(limit));
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&TraceRecorder> {
        self.recorder.as_ref()
    }

    /// Arms a deadlock watchdog: [`step`](Circuit::step) returns
    /// [`SimError::Deadlock`] after `cycles` consecutive transfer-free
    /// cycles. Disarm with `None`.
    pub fn set_deadlock_watchdog(&mut self, cycles: Option<u64>) {
        self.watchdog = cycles;
        self.idle_cycles = 0;
    }

    /// Immutable access to a component by instance name.
    pub fn component(&self, name: &str) -> Option<&dyn Component<T>> {
        self.components.iter().find(|c| c.name() == name).map(|b| b.as_ref())
    }

    /// Typed immutable access to a component by instance name.
    ///
    /// Returns `None` if no component has that name *or* it is not a `C`.
    pub fn get<C: Component<T> + 'static>(&self, name: &str) -> Option<&C> {
        self.components
            .iter()
            .find(|c| c.name() == name)
            .and_then(|c| c.as_any().downcast_ref::<C>())
    }

    /// Typed mutable access to a component by instance name.
    pub fn get_mut<C: Component<T> + 'static>(&mut self, name: &str) -> Option<&mut C> {
        self.components
            .iter_mut()
            .find(|c| c.name() == name)
            .and_then(|c| c.as_any_mut().downcast_mut::<C>())
    }

    /// Names of all components, in evaluation order.
    pub fn component_names(&self) -> Vec<String> {
        self.components.iter().map(|c| c.name().to_string()).collect()
    }

    /// Name of channel `ch`.
    pub fn channel_name(&self, ch: ChannelId) -> &str {
        &self.channels[ch.0].spec.name
    }

    /// Thread count of channel `ch`.
    pub fn channel_threads(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].spec.threads
    }

    /// All channel ids, in creation order.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        (0..self.channels.len()).map(ChannelId).collect()
    }

    /// Evaluation-order index of the component driving channel `ch`.
    pub fn channel_driver(&self, ch: ChannelId) -> usize {
        self.driver[ch.0]
    }

    /// Evaluation-order index of the component reading channel `ch`.
    pub fn channel_reader(&self, ch: ChannelId) -> usize {
        self.reader[ch.0]
    }

    /// Simulates one clock cycle.
    ///
    /// # Errors
    ///
    /// * [`SimError::CombinationalLoop`] — the handshake network did not
    ///   settle (a zero-latency cycle not cut by a buffer);
    /// * [`SimError::ChannelInvariant`] — two threads asserted valid on the
    ///   same channel in the same cycle;
    /// * [`SimError::MissingData`] — a producer asserted valid without data;
    /// * [`SimError::Deadlock`] — the watchdog fired (if armed).
    pub fn step(&mut self) -> Result<CycleReport, SimError> {
        // Phase 1: combinational fixed point. Signals are *warm-started*
        // from the previous cycle's settled values: every component
        // re-drives all signals it owns on every pass (the total-drive
        // rule), so stale values cannot survive to the fixed point, and
        // the previous cycle is usually an excellent initial guess — both
        // faster and closer to how real combinational logic leaves the
        // previous cycle's voltages on the wires.
        let n = self.components.len();
        let max_iters = 2 * n + 8;
        let mut iterations = 0;
        let mut stable = false;
        while iterations < max_iters {
            let mut dirty = false;
            for i in 0..n {
                let mut ctx = EvalCtx {
                    channels: &mut self.channels,
                    dirty: &mut dirty,
                    current: i,
                    driver: &self.driver,
                    reader: &self.reader,
                    cycle: self.cycle,
                };
                self.components[i].eval(&mut ctx);
            }
            iterations += 1;
            if std::env::var_os("ELASTIC_SIM_DEBUG_SETTLE").is_some() && iterations + 6 >= max_iters {
                let dump: Vec<String> = self
                    .channels
                    .iter()
                    .map(|ch| {
                        format!(
                            "{}:v{:?}r{:?}",
                            ch.spec.name,
                            ch.asserted_threads(),
                            (0..ch.spec.threads).filter(|&t| ch.ready[t]).collect::<Vec<_>>()
                        )
                    })
                    .collect();
                eprintln!("settle iter {iterations}: {}", dump.join(" "));
            }
            if !dirty {
                stable = true;
                break;
            }
        }
        if !stable {
            return Err(SimError::CombinationalLoop { cycle: self.cycle, iterations });
        }

        // Phase 2: protocol invariant checks.
        for ch in &self.channels {
            let asserted = ch.asserted_threads();
            if asserted.len() > 1 {
                return Err(SimError::ChannelInvariant {
                    cycle: self.cycle,
                    channel: ch.spec.name.clone(),
                    threads: asserted,
                });
            }
            if let Some(&t) = asserted.first() {
                if ch.data.is_none() {
                    return Err(SimError::MissingData {
                        cycle: self.cycle,
                        channel: ch.spec.name.clone(),
                        thread: t,
                    });
                }
            }
        }

        // Phase 3: collect transfers, statistics, trace.
        let mut transfers = Vec::new();
        for (ci, ch) in self.channels.iter().enumerate() {
            let cs = self.stats.channel_mut(ChannelId(ci));
            if let Some(t) = ch.single_valid() {
                cs.busy_cycles += 1;
                if ch.ready[t] {
                    cs.transfers[t] += 1;
                    transfers.push(Transfer {
                        channel: ChannelId(ci),
                        channel_name: ch.spec.name.clone(),
                        thread: t,
                        label: ch.data.as_ref().map(|d| d.label()).unwrap_or_default(),
                    });
                } else {
                    cs.stall_cycles += 1;
                }
            }
        }
        self.stats.record_cycle();

        if let Some(recorder) = &mut self.recorder {
            let channels = self
                .channels
                .iter()
                .map(|ch| {
                    let t = ch.single_valid();
                    ChannelTrace {
                        valid_thread: t,
                        label: ch.data.as_ref().map(|d| d.label()),
                        fired: t.is_some_and(|t| ch.ready[t]),
                    }
                })
                .collect();
            let mut slots = BTreeMap::new();
            for c in &self.components {
                let s = c.slots();
                if !s.is_empty() {
                    slots.insert(c.name().to_string(), s);
                }
            }
            let record = CycleTrace { cycle: self.cycle, channels, slots };
            recorder.push(record);
        }

        // Watchdog: a cycle counts as "stuck" only when some token is
        // offered (a valid is asserted) yet nothing moves. A circuit with
        // no valid tokens at all is quiescent, not deadlocked.
        let any_valid = self.channels.iter().any(|ch| ch.valid.iter().any(|&v| v));
        if transfers.is_empty() && any_valid {
            self.idle_cycles += 1;
        } else {
            self.idle_cycles = 0;
        }
        if let Some(limit) = self.watchdog {
            if self.idle_cycles >= limit {
                return Err(SimError::Deadlock { cycle: self.cycle, idle_cycles: self.idle_cycles });
            }
        }

        // Phase 4: clock edge.
        let tick_ctx = TickCtx { channels: &self.channels, cycle: self.cycle };
        for c in &mut self.components {
            c.tick(&tick_ctx);
        }

        let report = CycleReport { cycle: self.cycle, transfers, settle_iterations: iterations };
        self.cycle += 1;
        Ok(report)
    }

    /// Simulates `cycles` clock cycles.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`step`](Circuit::step).
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// Steps until `pred` holds (checked *before* each step) or `max_cycles`
    /// elapse. Returns `true` if the predicate was satisfied.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`step`](Circuit::step).
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut pred: impl FnMut(&Self) -> bool,
    ) -> Result<bool, SimError> {
        for _ in 0..max_cycles {
            if pred(self) {
                return Ok(true);
            }
            self.step()?;
        }
        Ok(pred(self))
    }
}

impl<T: Token> std::fmt::Debug for Circuit<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("cycle", &self.cycle)
            .field("components", &self.component_names())
            .field("channels", &self.channels.iter().map(|c| &c.spec.name).collect::<Vec<_>>())
            .finish()
    }
}
