//! Cycle-by-cycle trace recording and ASCII rendering.
//!
//! The recorder snapshots, for every cycle, the state of every channel
//! (which thread was valid, whether the transfer fired, the token label)
//! and the occupancy of every storage slot reported by components via
//! [`Component::slots`](crate::Component::slots).
//!
//! Two renderers are provided:
//!
//! * [`render_waveform`] — a compact `valid`/`ready`/`data` waveform for a
//!   handful of channels, in the style of the paper's Figure 2(b);
//! * [`GridTrace`] — a table with one column per cycle and one row per
//!   channel or slot, in the style of the paper's Figure 5.

use std::fmt::Write as _;

use crate::channel::ChannelId;
use crate::component::SlotView;

/// The recorded state of one channel in one cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChannelTrace {
    /// Thread whose `valid` bit was asserted (at most one by protocol).
    pub valid_thread: Option<usize>,
    /// Label of the token on the data bus (when valid).
    pub label: Option<String>,
    /// Whether the transfer completed (`valid && ready`).
    pub fired: bool,
}

/// The recorded state of the whole circuit in one cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleTrace {
    /// Cycle index (0-based).
    pub cycle: u64,
    /// Per-channel state, indexed by [`ChannelId::index`].
    pub channels: Vec<ChannelTrace>,
    /// Per-component slot occupancy as `(component index, slots)` pairs,
    /// sorted by index; only components with non-empty slots appear. The
    /// index resolves to a name through the recorder's
    /// [name table](TraceRecorder::component_names) at render time, so
    /// the per-cycle snapshot allocates no keys and builds no map.
    pub slots: Vec<(usize, Vec<SlotView>)>,
}

/// Accumulates [`CycleTrace`] records while the circuit runs.
///
/// Enable with [`Circuit::enable_trace`](crate::Circuit::enable_trace);
/// retrieve with [`Circuit::trace`](crate::Circuit::trace).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TraceRecorder {
    records: Vec<CycleTrace>,
    limit: Option<usize>,
    /// Component names in evaluation order — the table that resolves the
    /// index-keyed [`CycleTrace::slots`] entries at render time.
    names: Vec<String>,
}

impl TraceRecorder {
    /// A recorder without a record limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that keeps only the first `limit` cycles (older runs of
    /// millions of cycles would otherwise exhaust memory).
    pub fn with_limit(limit: usize) -> Self {
        Self {
            records: Vec::new(),
            limit: Some(limit),
            names: Vec::new(),
        }
    }

    /// Installs the component-name table (evaluation order). Set once by
    /// [`Circuit::enable_trace`](crate::Circuit::enable_trace).
    pub fn set_names(&mut self, names: Vec<String>) {
        self.names = names;
    }

    /// The component-name table, in evaluation order.
    pub fn component_names(&self) -> &[String] {
        &self.names
    }

    pub(crate) fn push(&mut self, record: CycleTrace) {
        if self.limit.is_none_or(|l| self.records.len() < l) {
            self.records.push(record);
        }
    }

    /// All recorded cycles, oldest first.
    pub fn records(&self) -> &[CycleTrace] {
        &self.records
    }

    /// The labels transferred on `ch` (fired transfers only), in order,
    /// as `(cycle, thread, label)` triples.
    pub fn transfers_on(&self, ch: ChannelId) -> Vec<(u64, usize, String)> {
        self.records
            .iter()
            .filter_map(|r| {
                let c = &r.channels[ch.index()];
                match (c.fired, c.valid_thread, &c.label) {
                    (true, Some(t), Some(l)) => Some((r.cycle, t, l.clone())),
                    _ => None,
                }
            })
            .collect()
    }
}

/// One row of a [`GridTrace`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RowSpec {
    /// Show the token on a channel each cycle. Stalled tokens (valid but
    /// not fired) are rendered with a trailing `*`.
    Channel {
        /// Channel to display.
        id: ChannelId,
        /// Row caption.
        caption: String,
    },
    /// Show the occupant of a named storage slot of a named component.
    Slot {
        /// Component instance name (as reported by `Component::name`).
        component: String,
        /// Slot name (as reported in [`SlotView::name`]).
        slot: String,
        /// Row caption.
        caption: String,
    },
}

impl RowSpec {
    /// Row displaying channel `id` with the given caption.
    pub fn channel(id: ChannelId, caption: impl Into<String>) -> Self {
        RowSpec::Channel {
            id,
            caption: caption.into(),
        }
    }

    /// Row displaying slot `slot` of component `component`.
    pub fn slot(
        component: impl Into<String>,
        slot: impl Into<String>,
        caption: impl Into<String>,
    ) -> Self {
        RowSpec::Slot {
            component: component.into(),
            slot: slot.into(),
            caption: caption.into(),
        }
    }
}

/// Renders recorded cycles as a table with one column per cycle — the
/// format of the paper's Figure 5.
///
/// # Examples
///
/// ```no_run
/// # use elastic_sim::{GridTrace, RowSpec, TraceRecorder, ChannelId};
/// # fn demo(rec: &TraceRecorder, input: ChannelId) {
/// let grid = GridTrace::new(vec![
///     RowSpec::channel(input, "Input"),
///     RowSpec::slot("meb0", "main[0]", "MEB#0 A"),
/// ]);
/// println!("{}", grid.render(rec, 0, 9));
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GridTrace {
    rows: Vec<RowSpec>,
}

impl GridTrace {
    /// Creates a grid with the given rows (top to bottom).
    pub fn new(rows: Vec<RowSpec>) -> Self {
        Self { rows }
    }

    fn cell(&self, row: &RowSpec, rec: &CycleTrace, names: &[String]) -> String {
        match row {
            RowSpec::Channel { id, .. } => {
                let c = &rec.channels[id.index()];
                match (&c.label, c.fired) {
                    (Some(l), true) => l.clone(),
                    (Some(l), false) => format!("{l}*"),
                    (None, _) => String::new(),
                }
            }
            RowSpec::Slot {
                component, slot, ..
            } => {
                // Resolve the row's component name through the name table
                // once per cell — render time only, never on the hot path.
                let idx = names.iter().position(|n| n == component);
                idx.and_then(|idx| {
                    rec.slots
                        .iter()
                        .find(|(i, _)| *i == idx)
                        .and_then(|(_, slots)| slots.iter().find(|s| &s.name == slot))
                        .and_then(|s| s.occupant.as_ref())
                        .map(|(_, l)| l.clone())
                })
                .unwrap_or_default()
            }
        }
    }

    /// Renders cycles `from..=to` as an aligned ASCII table.
    ///
    /// Channel cells show the token label; a trailing `*` marks a token
    /// that was valid but stalled (did not fire). Slot cells show the
    /// occupant label; empty cells are blank.
    pub fn render(&self, recorder: &TraceRecorder, from: u64, to: u64) -> String {
        let records: Vec<&CycleTrace> = recorder
            .records()
            .iter()
            .filter(|r| r.cycle >= from && r.cycle <= to)
            .collect();

        let captions: Vec<&str> = self
            .rows
            .iter()
            .map(|r| match r {
                RowSpec::Channel { caption, .. } | RowSpec::Slot { caption, .. } => {
                    caption.as_str()
                }
            })
            .collect();
        let caption_w = captions.iter().map(|c| c.len()).max().unwrap_or(0).max(6);

        // Pre-compute cells to size columns.
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            cells.push(
                records
                    .iter()
                    .map(|r| self.cell(row, r, recorder.component_names()))
                    .collect(),
            );
        }
        let mut col_w: Vec<usize> = records.iter().map(|r| r.cycle.to_string().len()).collect();
        for row_cells in &cells {
            for (i, c) in row_cells.iter().enumerate() {
                col_w[i] = col_w[i].max(c.len());
            }
        }
        col_w.iter_mut().for_each(|w| *w = (*w).max(2));

        let mut out = String::new();
        // Header row with cycle numbers.
        let _ = write!(out, "{:caption_w$} |", "cycle");
        for (i, r) in records.iter().enumerate() {
            let _ = write!(out, " {:>w$} |", r.cycle, w = col_w[i]);
        }
        out.push('\n');
        let total: usize = caption_w + 2 + col_w.iter().map(|w| w + 3).sum::<usize>();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for (row_i, row_cells) in cells.iter().enumerate() {
            let _ = write!(out, "{:caption_w$} |", captions[row_i]);
            for (i, c) in row_cells.iter().enumerate() {
                let _ = write!(out, " {:>w$} |", c, w = col_w[i]);
            }
            out.push('\n');
        }
        out
    }
}

/// Renders a `valid/ready/data` waveform for the given channels, one
/// character column per cycle, in the style of the paper's Figure 2(b).
///
/// `valid`/`ready` rows use `▔` for high and `▁` for low; the data row
/// prints the token label at the cycle the transfer fires and `.`
/// otherwise.
pub fn render_waveform(
    recorder: &TraceRecorder,
    channels: &[(ChannelId, &str)],
    from: u64,
    to: u64,
) -> String {
    let records: Vec<&CycleTrace> = recorder
        .records()
        .iter()
        .filter(|r| r.cycle >= from && r.cycle <= to)
        .collect();
    let name_w = channels
        .iter()
        .map(|(_, n)| n.len() + 6)
        .max()
        .unwrap_or(10)
        .max(10);
    let mut out = String::new();

    let _ = write!(out, "{:name_w$} ", "cycle");
    for r in &records {
        let _ = write!(out, "{:>3}", r.cycle % 1000);
    }
    out.push('\n');

    for (ch, name) in channels {
        for signal in ["valid", "ready", "data"] {
            let _ = write!(out, "{:name_w$} ", format!("{name}.{signal}"));
            for r in &records {
                let c = &r.channels[ch.index()];
                match signal {
                    "valid" => {
                        let _ = write!(
                            out,
                            "{:>3}",
                            if c.valid_thread.is_some() {
                                "▔"
                            } else {
                                "▁"
                            }
                        );
                    }
                    "ready" => {
                        // A channel is shown ready when the asserted thread fired,
                        // or (with no valid) left blank-low: we only know ready
                        // through fired, which is what the figure illustrates.
                        let _ = write!(out, "{:>3}", if c.fired { "▔" } else { "▁" });
                    }
                    _ => {
                        let cell = if c.fired {
                            c.label.clone().unwrap_or_default()
                        } else {
                            ".".into()
                        };
                        let _ = write!(out, "{cell:>3}");
                    }
                }
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: u64, label: Option<&str>, fired: bool) -> CycleTrace {
        CycleTrace {
            cycle,
            channels: vec![ChannelTrace {
                valid_thread: label.map(|_| 0),
                label: label.map(str::to_string),
                fired,
            }],
            // Component index 1 ("buf" in the test name table).
            slots: vec![(1, vec![SlotView::full("main[0]", 0, format!("S{cycle}"))])],
        }
    }

    fn recorder_with_names() -> TraceRecorder {
        let mut rec = TraceRecorder::new();
        rec.set_names(vec!["src".into(), "buf".into(), "snk".into()]);
        rec
    }

    #[test]
    fn transfers_on_returns_only_fired() {
        let mut rec = TraceRecorder::new();
        rec.push(record(0, Some("A0"), true));
        rec.push(record(1, Some("A1"), false));
        rec.push(record(2, Some("A1"), true));
        let t = rec.transfers_on(ChannelId(0));
        assert_eq!(t, vec![(0, 0, "A0".into()), (2, 0, "A1".into())]);
    }

    #[test]
    fn limit_caps_recording() {
        let mut rec = TraceRecorder::with_limit(2);
        for c in 0..5 {
            rec.push(record(c, None, false));
        }
        assert_eq!(rec.records().len(), 2);
    }

    #[test]
    fn grid_renders_stall_marker_and_slots() {
        let mut rec = recorder_with_names();
        rec.push(record(0, Some("A0"), true));
        rec.push(record(1, Some("A1"), false));
        let grid = GridTrace::new(vec![
            RowSpec::channel(ChannelId(0), "in"),
            RowSpec::slot("buf", "main[0]", "buf A"),
        ]);
        let s = grid.render(&rec, 0, 1);
        assert!(s.contains("A0"), "{s}");
        assert!(s.contains("A1*"), "{s}");
        assert!(s.contains("S0"), "{s}");
        assert!(s.contains("S1"), "{s}");
    }

    #[test]
    fn grid_slot_row_for_unknown_component_is_blank() {
        let mut rec = recorder_with_names();
        rec.push(record(0, Some("A0"), true));
        let grid = GridTrace::new(vec![RowSpec::slot("nope", "main[0]", "ghost")]);
        let s = grid.render(&rec, 0, 0);
        assert!(s.contains("ghost"), "{s}");
        assert!(!s.contains("S0"), "{s}");
    }

    #[test]
    fn waveform_renders_rows_per_signal() {
        let mut rec = TraceRecorder::new();
        rec.push(record(0, Some("A0"), true));
        rec.push(record(1, None, false));
        let w = render_waveform(&rec, &[(ChannelId(0), "ch")], 0, 1);
        assert!(w.contains("ch.valid"));
        assert!(w.contains("ch.ready"));
        assert!(w.contains("ch.data"));
        assert!(w.contains("A0"));
    }
}
