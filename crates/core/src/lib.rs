//! # elastic-core — multithreaded elastic hardware primitives
//!
//! A faithful, cycle-accurate model of the primitives proposed in
//! *"Hardware Primitives for the Synthesis of Multithreaded Elastic
//! Systems"* (Dimitrakopoulos, Seitanidis, Psarras, Tsiouris, Mattheakis,
//! Cortadella — DATE 2014), built on the [`elastic_sim`] kernel:
//!
//! * the baseline single-thread [`ElasticBuffer`] with its EMPTY/HALF/FULL
//!   control FSM (paper Sec. II);
//! * multithreaded elastic buffers: the [`FullMeb`] (one EB per thread,
//!   Fig. 4), the paper's key contribution the [`ReducedMeb`] (one main
//!   register per thread plus a single dynamically shared auxiliary
//!   register, Fig. 6), and an ablation [`FifoMeb`];
//! * thread [`Arbiter`]s ([`FixedPriority`], [`RoundRobin`],
//!   [`LeastRecent`]);
//! * the elastic control operators [`Join`], [`Fork`], [`Branch`] and
//!   [`Merge`] — instantiated on multithreaded channels they are the
//!   M-Join / M-Fork / M-Branch / M-Merge of Fig. 7;
//! * the sense-reversing thread [`Barrier`] (Fig. 8);
//! * [`rtl`] — parameterized SystemVerilog emitters for every primitive;
//! * [`pipeline`] helpers to assemble MEB pipelines like the one in the
//!   paper's Fig. 5.
//!
//! # Example
//!
//! Two threads time-multiplexing a 2-stage reduced-MEB pipeline:
//!
//! ```
//! use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = PipelineConfig::free_flowing(2, 2, MebKind::Reduced, 20);
//! let mut h = PipelineHarness::build(cfg);
//! h.circuit.run(42)?;
//! assert_eq!(h.sink().consumed_total(), 40);
//! // Each of the M = 2 active threads received 1/M of the channel while
//! // the pipeline was busy.
//! let thr = h.circuit.stats().throughput(h.pipeline.output, 0);
//! assert!((thr - 0.5).abs() < 0.1, "throughput {thr}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod arbiter;
pub mod barrier;
pub mod eb;
pub mod meb;
pub mod ops;
pub mod pipeline;
pub mod rtl;
mod select;

pub use arbiter::{Arbiter, ArbiterKind, CoarseGrained, FixedPriority, LeastRecent, RoundRobin};
pub use barrier::{Barrier, BarrierState};
pub use eb::{EbState, ElasticBuffer};
pub use meb::{FifoMeb, FullMeb, MebKind, ReducedMeb};
pub use ops::{Branch, Fork, ForkMode, Join, Merge};
pub use pipeline::{build_meb_pipeline, MebPipeline, PipelineConfig, PipelineHarness};
pub use select::{advance_stall_pointer, select_output_thread, SelectState};
