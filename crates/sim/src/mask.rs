//! Packed per-thread handshake masks.
//!
//! The MT-elastic protocol (Sec. III of the paper) is per-thread
//! `valid(i)/ready(i)` *bit pairs* — in hardware these are S parallel
//! wires, not a heap structure. [`ThreadMask`] packs one such bit set
//! into machine words: a single inline `u64` covers the common S ≤ 64
//! case with zero heap traffic, and a boxed spillover slice extends the
//! same API to arbitrary thread counts. All operations (set, clear,
//! popcount, rotation search, diff-against-previous) are O(words), so
//! the settle loop's change detection and the arbiter rotations cost a
//! handful of ALU ops instead of allocator round-trips.

/// A packed set of per-thread handshake bits.
///
/// Bit `t` corresponds to thread `t`. Bits at or above
/// [`ThreadMask::threads`] are always zero, which keeps `PartialEq`,
/// popcounts and word-level diffs exact without masking at every use
/// site.
#[derive(Clone, PartialEq, Eq)]
pub struct ThreadMask {
    /// Number of valid thread slots (bits beyond this stay zero).
    threads: usize,
    /// Bits 0..64 — the fast path; the only storage when `threads <= 64`.
    head: u64,
    /// Bits 64.. for S > 64, one `u64` per 64 threads.
    rest: Option<Box<[u64]>>,
}

impl Default for ThreadMask {
    /// A zero-width mask — the useful default for lazily-sized scratch
    /// fields (resize on first use by comparing [`ThreadMask::threads`]).
    fn default() -> Self {
        Self::new(0)
    }
}

impl std::fmt::Debug for ThreadMask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render as the thread-index set, matching how the old
        // `Vec<bool>` state read in assertions and debug dumps.
        f.debug_set().entries(self.iter_ones()).finish()
    }
}

impl ThreadMask {
    /// An all-zero mask with `threads` slots.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let rest = if threads > 64 {
            Some(vec![0u64; threads.div_ceil(64) - 1].into_boxed_slice())
        } else {
            None
        };
        Self {
            threads,
            head: 0,
            rest,
        }
    }

    /// Builds a mask from a `Vec<bool>`-style slice (tests, migration).
    #[must_use]
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut m = Self::new(bits.len());
        for (t, &b) in bits.iter().enumerate() {
            if b {
                m.set(t, true);
            }
        }
        m
    }

    /// Number of thread slots.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    #[inline]
    fn word(&self, idx: usize) -> u64 {
        if idx == 0 {
            self.head
        } else {
            self.rest.as_ref().map_or(0, |r| r[idx - 1])
        }
    }

    #[inline]
    fn word_mut(&mut self, idx: usize) -> &mut u64 {
        if idx == 0 {
            &mut self.head
        } else {
            &mut self.rest.as_mut().expect("spillover words exist")[idx - 1]
        }
    }

    #[inline]
    fn word_count(&self) -> usize {
        1 + self.rest.as_ref().map_or(0, |r| r.len())
    }

    /// Reads bit `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range (mirrors slice indexing).
    #[inline]
    #[must_use]
    pub fn get(&self, t: usize) -> bool {
        assert!(t < self.threads, "thread {t} out of range {}", self.threads);
        self.word(t / 64) >> (t % 64) & 1 != 0
    }

    /// Writes bit `t`; returns `true` iff the bit changed.
    #[inline]
    pub fn set(&mut self, t: usize, value: bool) -> bool {
        assert!(t < self.threads, "thread {t} out of range {}", self.threads);
        let w = self.word_mut(t / 64);
        let bit = 1u64 << (t % 64);
        let old = *w;
        if value {
            *w |= bit;
        } else {
            *w &= !bit;
        }
        *w != old
    }

    /// Clears every bit; returns `true` iff any bit was set.
    pub fn clear(&mut self) -> bool {
        let had = self.any();
        self.head = 0;
        if let Some(r) = self.rest.as_mut() {
            r.fill(0);
        }
        had
    }

    /// Sets bit `t` and clears every other bit in one word-level pass;
    /// returns `true` iff the mask changed. This is the "drive exactly
    /// one thread's valid" idiom of the settle loop.
    pub fn set_only(&mut self, t: usize) -> bool {
        assert!(t < self.threads, "thread {t} out of range {}", self.threads);
        let target_word = t / 64;
        let target = 1u64 << (t % 64);
        let mut changed = false;
        for idx in 0..self.word_count() {
            let want = if idx == target_word { target } else { 0 };
            let w = self.word_mut(idx);
            if *w != want {
                *w = want;
                changed = true;
            }
        }
        changed
    }

    /// `true` iff any bit is set.
    #[inline]
    #[must_use]
    pub fn any(&self) -> bool {
        self.head != 0
            || self
                .rest
                .as_ref()
                .is_some_and(|r| r.iter().any(|&w| w != 0))
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        let mut n = self.head.count_ones() as usize;
        if let Some(r) = self.rest.as_ref() {
            n += r.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        }
        n
    }

    /// If exactly one bit is set, its index; otherwise `None`. This is
    /// the protocol invariant probe ("at most one valid thread").
    #[must_use]
    pub fn single(&self) -> Option<usize> {
        if self.count_ones() == 1 {
            self.first_one()
        } else {
            None
        }
    }

    /// Index of the lowest set bit, if any.
    #[must_use]
    pub fn first_one(&self) -> Option<usize> {
        for idx in 0..self.word_count() {
            let w = self.word(idx);
            if w != 0 {
                return Some(idx * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Wrapping rotation scan within one word: first set bit of `w` at
    /// index ≥ `start` (`start < 64`), else the first set bit below it.
    #[inline]
    fn rotate_word(w: u64, start: usize) -> Option<usize> {
        let above = w & (!0u64 << start);
        let found = if above != 0 { above } else { w };
        (found != 0).then(|| found.trailing_zeros() as usize)
    }

    /// First set bit at index ≥ `start`, wrapping past the end — the
    /// round-robin rotation search shared by arbiters and stall
    /// pointers. `start` may equal `threads` (treated as 0).
    #[must_use]
    pub fn next_one_wrapping(&self, start: usize) -> Option<usize> {
        if self.threads == 0 {
            return None;
        }
        // `start == threads` (treated as 0) is the only common overshoot;
        // keep the division off the hot path.
        let start = if start >= self.threads {
            start % self.threads
        } else {
            start
        };
        if self.rest.is_none() {
            // Single-word fast path (S ≤ 64): the rotation is two masked
            // scans of the inline word, no division, no loop.
            return Self::rotate_word(self.head, start);
        }
        // Scan [start, end) word-by-word, masking off bits below
        // `start` in the first word, then wrap to [0, start).
        let first_word = start / 64;
        for step in 0..=self.word_count() {
            let idx = (first_word + step) % self.word_count();
            let mut w = self.word(idx);
            if step == 0 {
                w &= !0u64 << (start % 64);
            } else if step == self.word_count() {
                // Wrapped fully around: only bits below `start` remain.
                if start.is_multiple_of(64) {
                    break;
                }
                w &= !(!0u64 << (start % 64));
            }
            if w != 0 {
                return Some(idx * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// First bit set in **both** `self` and `other` at index ≥ `start`,
    /// wrapping past the end — [`next_one_wrapping`] over the
    /// intersection, with the AND folded into the word scan. Hot
    /// selection paths (`requests = has ∩ ready`, then rotate) use this
    /// to skip materialising the intersection in a scratch mask.
    ///
    /// [`next_one_wrapping`]: ThreadMask::next_one_wrapping
    ///
    /// # Panics
    ///
    /// Panics if the masks have different thread counts.
    #[must_use]
    pub fn next_one_wrapping_and(&self, other: &Self, start: usize) -> Option<usize> {
        assert_eq!(self.threads, other.threads, "mask width mismatch");
        if self.threads == 0 {
            return None;
        }
        let start = if start >= self.threads {
            start % self.threads
        } else {
            start
        };
        if self.rest.is_none() {
            // Equal widths, so `other` is single-word too.
            return Self::rotate_word(self.head & other.head, start);
        }
        let first_word = start / 64;
        for step in 0..=self.word_count() {
            let idx = (first_word + step) % self.word_count();
            let mut w = self.word(idx) & other.word(idx);
            if step == 0 {
                w &= !0u64 << (start % 64);
            } else if step == self.word_count() {
                if start.is_multiple_of(64) {
                    break;
                }
                w &= !(!0u64 << (start % 64));
            }
            if w != 0 {
                return Some(idx * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The valid-bit mask of word `idx` (all-ones except for the final
    /// partial word, whose bits at or above `threads` stay zero).
    #[inline]
    fn tail_mask(&self, idx: usize) -> u64 {
        let used = self.threads - idx * 64;
        if used >= 64 {
            !0u64
        } else {
            (1u64 << used) - 1
        }
    }

    /// Sets every thread's bit in one word-level pass (bits at or above
    /// [`threads`](ThreadMask::threads) stay zero).
    pub fn fill(&mut self) {
        self.head = self.tail_mask(0);
        if let Some(r) = self.rest.as_mut() {
            let threads = self.threads;
            for (i, w) in r.iter_mut().enumerate() {
                let used = threads - (i + 1) * 64;
                *w = if used >= 64 {
                    !0u64
                } else {
                    (1u64 << used) - 1
                };
            }
        }
    }

    /// Assigns the complement of `other` to `self` in one word-level
    /// pass, keeping bits at or above the thread count zero.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different thread counts.
    pub fn assign_not(&mut self, other: &Self) {
        assert_eq!(self.threads, other.threads, "mask width mismatch");
        self.head = !other.head & self.tail_mask(0);
        if let (Some(dst), Some(src)) = (self.rest.as_mut(), other.rest.as_ref()) {
            let threads = self.threads;
            for (i, (d, s)) in dst.iter_mut().zip(src.iter()).enumerate() {
                let used = threads - (i + 1) * 64;
                let tail = if used >= 64 {
                    !0u64
                } else {
                    (1u64 << used) - 1
                };
                *d = !*s & tail;
            }
        }
    }

    /// Copies `other`'s bits into `self` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different thread counts.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.threads, other.threads, "mask width mismatch");
        self.head = other.head;
        if let (Some(dst), Some(src)) = (self.rest.as_mut(), other.rest.as_ref()) {
            dst.copy_from_slice(src);
        }
    }

    /// Copies `other`'s bits into `self` like
    /// [`copy_from`](ThreadMask::copy_from), additionally reporting
    /// whether any bit changed — the word-level analogue of the per-thread
    /// [`set`](ThreadMask::set) diff that the fused kernel's
    /// `set_ready_mask`/`set_valid_mask` commits are built on.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different thread counts.
    pub fn assign(&mut self, other: &Self) -> bool {
        assert_eq!(self.threads, other.threads, "mask width mismatch");
        let mut changed = self.head != other.head;
        self.head = other.head;
        if let (Some(dst), Some(src)) = (self.rest.as_mut(), other.rest.as_ref()) {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                changed |= *d != *s;
                *d = *s;
            }
        }
        changed
    }

    /// Intersects `self` with `other` in place.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different thread counts.
    pub fn and_with(&mut self, other: &Self) {
        assert_eq!(self.threads, other.threads, "mask width mismatch");
        self.head &= other.head;
        if let (Some(dst), Some(src)) = (self.rest.as_mut(), other.rest.as_ref()) {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d &= *s;
            }
        }
    }

    /// Allocation-free iterator over the set bit indices, ascending.
    #[must_use]
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            mask: self,
            word_idx: 0,
            current: self.head,
        }
    }
}

/// Iterator over the set bits of a [`ThreadMask`], lowest first.
///
/// Returned by [`ThreadMask::iter_ones`]; holds no heap state.
pub struct Ones<'a> {
    mask: &'a ThreadMask,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            if self.word_idx + 1 >= self.mask.word_count() {
                return None;
            }
            self.word_idx += 1;
            self.current = self.mask.word(self.word_idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference model: the `Vec<bool>` representation the mask replaced.
    fn ref_next_one_wrapping(bits: &[bool], start: usize) -> Option<usize> {
        let n = bits.len();
        if n == 0 {
            return None;
        }
        (0..n).map(|off| (start + off) % n).find(|&t| bits[t])
    }

    #[test]
    fn empty_mask_has_no_bits() {
        for s in [0, 1, 63, 64, 65, 130] {
            let m = ThreadMask::new(s);
            assert!(!m.any());
            assert_eq!(m.count_ones(), 0);
            assert_eq!(m.first_one(), None);
            assert_eq!(m.single(), None);
            assert_eq!(m.iter_ones().count(), 0);
        }
    }

    #[test]
    fn set_get_roundtrip_across_the_word_boundary() {
        let mut m = ThreadMask::new(65);
        assert!(m.set(64, true), "setting a clear bit reports a change");
        assert!(!m.set(64, true), "re-setting is idempotent");
        assert!(m.get(64));
        assert!(!m.get(63));
        assert_eq!(m.first_one(), Some(64));
        assert_eq!(m.single(), Some(64));
        assert!(m.set(3, true));
        assert_eq!(m.single(), None);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![3, 64]);
        assert!(m.set(64, false));
        assert_eq!(m.single(), Some(3));
    }

    #[test]
    fn set_only_is_a_word_level_replace() {
        let mut m = ThreadMask::from_bools(&[true, false, true, false]);
        assert!(m.set_only(3), "mask changed");
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![3]);
        assert!(!m.set_only(3), "already exactly this bit");
        let mut big = ThreadMask::new(130);
        big.set(0, true);
        big.set(129, true);
        assert!(big.set_only(70));
        assert_eq!(big.iter_ones().collect::<Vec<_>>(), vec![70]);
    }

    #[test]
    fn next_one_wrapping_matches_rotation_scan() {
        let m = ThreadMask::from_bools(&[false, true, false, true]);
        assert_eq!(m.next_one_wrapping(0), Some(1));
        assert_eq!(m.next_one_wrapping(1), Some(1));
        assert_eq!(m.next_one_wrapping(2), Some(3));
        assert_eq!(m.next_one_wrapping(4), Some(1), "start == threads wraps");
        let empty = ThreadMask::new(4);
        assert_eq!(empty.next_one_wrapping(2), None);
        assert_eq!(ThreadMask::new(0).next_one_wrapping(0), None);
    }

    #[test]
    fn next_one_wrapping_and_scans_the_intersection() {
        let a = ThreadMask::from_bools(&[true, true, false, true]);
        let b = ThreadMask::from_bools(&[false, true, true, true]);
        assert_eq!(a.next_one_wrapping_and(&b, 0), Some(1));
        assert_eq!(a.next_one_wrapping_and(&b, 2), Some(3));
        assert_eq!(a.next_one_wrapping_and(&b, 4), Some(1), "start wraps");
        let none = ThreadMask::from_bools(&[true, false]);
        let other = ThreadMask::from_bools(&[false, true]);
        assert_eq!(none.next_one_wrapping_and(&other, 0), None);
        // Spillover words: only common bit is past the inline word.
        let mut big_a = ThreadMask::new(130);
        let mut big_b = ThreadMask::new(130);
        big_a.set(3, true);
        big_a.set(129, true);
        big_b.set(129, true);
        assert_eq!(big_a.next_one_wrapping_and(&big_b, 0), Some(129));
        assert_eq!(big_a.next_one_wrapping_and(&big_b, 130), Some(129));
    }

    #[test]
    fn clear_reports_whether_bits_were_set() {
        let mut m = ThreadMask::from_bools(&[false, true]);
        assert!(m.clear());
        assert!(!m.clear());
        let mut big = ThreadMask::new(100);
        big.set(99, true);
        assert!(big.clear());
        assert!(!big.any());
    }

    #[test]
    fn copy_and_intersect_cover_spillover_words() {
        let a = ThreadMask::from_bools(&(0..130).map(|t| t % 3 == 0).collect::<Vec<_>>());
        let b = ThreadMask::from_bools(&(0..130).map(|t| t % 2 == 0).collect::<Vec<_>>());
        let mut c = ThreadMask::new(130);
        c.copy_from(&a);
        assert_eq!(c, a);
        c.and_with(&b);
        let expect: Vec<usize> = (0..130).filter(|t| t % 6 == 0).collect();
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn assign_reports_word_level_change() {
        let mut m = ThreadMask::from_bools(&[true, false, true]);
        let same = m.clone();
        assert!(!m.assign(&same), "identical copy reports no change");
        let other = ThreadMask::from_bools(&[false, true, true]);
        assert!(m.assign(&other));
        assert_eq!(m, other);
        let mut big = ThreadMask::new(130);
        let mut src = ThreadMask::new(130);
        src.set(129, true);
        assert!(big.assign(&src), "spillover-word change detected");
        assert!(!big.assign(&src));
        assert_eq!(big.iter_ones().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn debug_renders_the_index_set() {
        let m = ThreadMask::from_bools(&[true, false, true]);
        assert_eq!(format!("{m:?}"), "{0, 2}");
    }

    // Satellite: the S = 64/65 word-boundary equivalence campaign. Every
    // mask operation is checked against the Vec<bool> reference model at
    // widths straddling the inline-word limit.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn mask_ops_match_vec_bool_reference(
            width in 0usize..4,
            seed in any::<u64>(),
            start in 0usize..66,
        ) {
            let s = [63usize, 64, 65, 100][width];
            let bits: Vec<bool> = (0..s).map(|t| (seed >> (t % 64)) & 1 != 0 && t % 7 != 3).collect();
            let m = ThreadMask::from_bools(&bits);

            // Point reads and aggregates.
            for (t, &b) in bits.iter().enumerate() {
                prop_assert_eq!(m.get(t), b);
            }
            prop_assert_eq!(m.any(), bits.iter().any(|&b| b));
            prop_assert_eq!(m.count_ones(), bits.iter().filter(|&&b| b).count());
            prop_assert_eq!(m.first_one(), bits.iter().position(|&b| b));
            let expect_single = if bits.iter().filter(|&&b| b).count() == 1 {
                bits.iter().position(|&b| b)
            } else {
                None
            };
            prop_assert_eq!(m.single(), expect_single);
            prop_assert_eq!(
                m.iter_ones().collect::<Vec<_>>(),
                bits.iter().enumerate().filter(|(_, &b)| b).map(|(t, _)| t).collect::<Vec<_>>()
            );

            // Rotation search from an arbitrary start point.
            let start = start % (s + 1);
            prop_assert_eq!(m.next_one_wrapping(start), ref_next_one_wrapping(&bits, start));

            // Mutation: set_only at a seed-derived position.
            let t = (seed as usize).wrapping_mul(31) % s;
            let mut only = m.clone();
            only.set_only(t);
            let mut ref_only = vec![false; s];
            ref_only[t] = true;
            prop_assert_eq!(only, ThreadMask::from_bools(&ref_only));

            // Intersection against a shifted copy of the same pattern.
            let other_bits: Vec<bool> = (0..s).map(|i| bits[(i + 1) % s]).collect();
            let other = ThreadMask::from_bools(&other_bits);
            let mut anded = m.clone();
            anded.and_with(&other);
            let ref_and: Vec<bool> =
                bits.iter().zip(&other_bits).map(|(&a, &b)| a && b).collect();
            prop_assert_eq!(&anded, &ThreadMask::from_bools(&ref_and));

            // The fused rotate-over-intersection scan agrees with
            // materialising the intersection first.
            prop_assert_eq!(
                m.next_one_wrapping_and(&other, start),
                ref_next_one_wrapping(&ref_and, start)
            );

            // Word-level fill and complement respect the tail clamp.
            let mut full = m.clone();
            full.fill();
            prop_assert_eq!(&full, &ThreadMask::from_bools(&vec![true; s]));
            prop_assert_eq!(full.count_ones(), s);
            let mut inv = ThreadMask::new(s);
            inv.assign_not(&m);
            let ref_not: Vec<bool> = bits.iter().map(|&b| !b).collect();
            prop_assert_eq!(&inv, &ThreadMask::from_bools(&ref_not));
        }
    }
}
