//! # elastic-sim — a cycle-accurate kernel for (multithreaded) elastic circuits
//!
//! This crate is the simulation substrate for the reproduction of
//! *"Hardware Primitives for the Synthesis of Multithreaded Elastic
//! Systems"* (Dimitrakopoulos et al., DATE 2014). It provides:
//!
//! * [`Channel`](ChannelId)s carrying data plus per-thread `valid/ready`
//!   handshake pairs — the multithreaded elastic channel of the paper's
//!   Sec. III (a 1-thread channel is the baseline elastic channel of
//!   Sec. II);
//! * a [`Component`] model with a combinational phase ([`EvalCtx`]) and a
//!   clock edge ([`TickCtx`]), evaluated to a fixed point each cycle by
//!   [`Circuit`];
//! * structural validation via [`CircuitBuilder`];
//! * testbench endpoints ([`Source`], [`Sink`] with [`ReadyPolicy`]),
//!   variable-latency servers ([`VarLatency`]) and combinational
//!   [`Transform`] units;
//! * per-channel, per-thread [`Stats`] and a cycle [`TraceRecorder`] with
//!   ASCII renderers ([`GridTrace`], [`render_waveform`]) used to
//!   regenerate the paper's Figures 2 and 5.
//!
//! The kernel *checks the protocol*: multiple simultaneous `valid(i)` on a
//! channel, valid-without-data, unsettleable combinational loops and
//! (optionally) deadlock are reported as [`SimError`]s rather than silently
//! mis-simulated.
//!
//! The settle phase is **event-driven** by default ([`EvalMode`]): after
//! one full sweep per cycle, only components woken by a signal change on a
//! channel they declared sensitivity to ([`Component::comb_paths`]) are
//! re-evaluated, idle stretches are fast-forwarded to the next scheduled
//! component event ([`NextEvent`]), and the saved work is reported through
//! [`KernelStats`]. The builder additionally compiles the declarations
//! into a **levelized rank schedule** ([`ScheduleMode`]): components are
//! permuted so each evaluates after everything it combinationally depends
//! on, making the round-1 sweep the fixed point on acyclic nets, and
//! genuine zero-latency handshake cycles are rejected at build time with
//! the offending component names ([`BuildError::CombinationalLoop`]). The
//! exhaustive sweep of the original kernel is kept as an equivalence
//! oracle ([`EvalMode::Exhaustive`]); `docs/kernel.md` documents both and
//! the argument for why they reach identical fixed points.
//!
//! # Example
//!
//! A source feeding a sink through a wire (the smallest legal circuit):
//!
//! ```
//! use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = CircuitBuilder::<u64>::new();
//! let ch = b.channel("wire", 1);
//! let mut src = Source::new("src", ch, 1);
//! src.extend(0, [10, 20, 30]);
//! b.add(src);
//! b.add(Sink::with_capture("snk", ch, 1, ReadyPolicy::Always));
//! let mut circuit = b.build()?;
//! circuit.run(5)?;
//! let snk: &Sink<u64> = circuit.get("snk").expect("sink exists");
//! assert_eq!(snk.consumed_total(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod channel;
mod circuit;
mod component;
mod error;
mod fused;
mod latency;
mod mask;
mod netlist;
mod occupancy;
mod par;
mod rank;
mod schedule;
mod stats;
mod sweep;
mod token;
mod trace;
mod varlat;
mod vcd;

pub use builder::CircuitBuilder;
pub use channel::{ChannelId, ChannelSpec};
pub use circuit::{Circuit, CycleReport, EvalCtx, EvalMode, TickCtx, Transfer};
pub use component::{conservative_paths, CombPath, Component, NextEvent, Ports, SlotView};
pub use error::{BuildError, ProtocolError, SimError};
pub use fused::{FuseFn, FusedOpKind, FusedTable, KernelBackend, SweepCtx};
pub use latency::{token_latencies, LatencySummary, TokenLatencies};
pub use mask::{Ones, ThreadMask};
pub use netlist::{NetlistEdge, NetlistGraph, NetlistNodeKind};
pub use occupancy::{occupancy_stats, OccupancyStats};
pub use par::{
    available_workers, run_sweep, run_sweep_on, JobError, JobReport, SharedCircuit, SimJob,
    SweepReport,
};
pub use rank::ScheduleMode;
pub use schedule::{ReadyPolicy, Sink, Source};
pub use stats::{
    ChannelFeedback, ChannelStats, FeedbackProfile, KernelStats, Stats, OCCUPANCY_BUCKETS,
};
pub use sweep::{campaign_key, SweepService, DEFAULT_CACHE_CAPACITY};
pub use token::{thread_letter, Tagged, Token};
pub use trace::{render_waveform, ChannelTrace, CycleTrace, GridTrace, RowSpec, TraceRecorder};
pub use varlat::{LatencyModel, Transform, VarLatency};
pub use vcd::{write_vcd, VcdChannel, VcdError};

#[cfg(test)]
mod kernel_tests {
    use super::*;

    /// The whole simulation stack must be shippable across threads: the
    /// parallel sweep harness moves fully-built [`Circuit`]s (and the
    /// closures that build them) onto pool workers. `Component<T>` and
    /// `Token` carry `Send` bounds; this proves they compose all the way
    /// up, and guards against a future `Rc`/`RefCell` sneaking in.
    #[test]
    fn circuits_and_jobs_are_send() {
        fn assert_send<X: Send>() {}
        assert_send::<Circuit<u64>>();
        assert_send::<Circuit<Tagged<u64>>>();
        assert_send::<Circuit<String>>();
        assert_send::<Box<dyn Component<u64>>>();
        assert_send::<Source<Tagged>>();
        assert_send::<Sink<Tagged>>();
        assert_send::<SimJob<Vec<u64>>>();
        assert_send::<SweepReport<Stats>>();
    }

    /// Source → Transform → Sink end to end through the kernel.
    #[test]
    fn source_transform_sink_roundtrip() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, [1, 2, 3, 4]);
        b.add(src);
        b.add(Transform::new("double", a, c, 1, |x| x * 2));
        b.add(Sink::with_capture("snk", c, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid circuit");
        circuit.run(6).expect("no protocol error");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        let got: Vec<u64> = snk.captured(0).iter().map(|(_, t)| *t).collect();
        assert_eq!(got, vec![2, 4, 6, 8]);
    }

    /// A never-ready sink stalls the source; nothing is consumed and the
    /// source keeps re-offering the same token (valid-with-stall).
    #[test]
    fn backpressure_stalls_injection() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, [1, 2]);
        b.add(src);
        b.add(Sink::with_capture("snk", a, 1, ReadyPolicy::Never));
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("runs");
        let src: &Source<u64> = circuit.get("src").expect("source");
        assert_eq!(src.pending_total(), 2);
        assert_eq!(circuit.stats().total_transfers(a), 0);
        assert_eq!(circuit.stats().stall_rate(a), 1.0);
        assert_eq!(circuit.stats().utilization(a), 1.0);
    }

    /// Two threads share a channel: the MT invariant holds and round-robin
    /// interleaves them fairly.
    #[test]
    fn two_threads_interleave_round_robin() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 2);
        let mut src = Source::new("src", a, 2);
        src.extend(0, 0..8u64);
        src.extend(1, 100..108u64);
        b.add(src);
        b.add(Sink::with_capture("snk", a, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(16).expect("no invariant violation");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        assert_eq!(snk.consumed(0), 8);
        assert_eq!(snk.consumed(1), 8);
        // Each thread got exactly half the cycles.
        assert!((circuit.stats().throughput(a, 0) - 0.5).abs() < 1e-9);
        assert!((circuit.stats().throughput(a, 1) - 0.5).abs() < 1e-9);
    }

    /// Variable latency preserves per-thread FIFO order under random
    /// downstream stalls.
    #[test]
    fn varlatency_preserves_thread_order() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 2);
        let c = b.channel("c", 2);
        let mut src = Source::new("src", a, 2);
        src.extend(0, 0..20u64);
        src.extend(1, 100..120u64);
        b.add(src);
        b.add(VarLatency::new(
            "mem",
            a,
            c,
            2,
            3,
            LatencyModel::Uniform {
                min: 1,
                max: 4,
                seed: 99,
            },
        ));
        b.add(Sink::with_capture(
            "snk",
            c,
            2,
            ReadyPolicy::Random { p: 0.7, seed: 5 },
        ));
        let mut circuit = b.build().expect("valid");
        circuit.run(400).expect("runs clean");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        let t0: Vec<u64> = snk.captured(0).iter().map(|(_, t)| *t).collect();
        let t1: Vec<u64> = snk.captured(1).iter().map(|(_, t)| *t).collect();
        assert_eq!(t0, (0..20u64).collect::<Vec<_>>());
        assert_eq!(t1, (100..120u64).collect::<Vec<_>>());
    }

    /// The deadlock watchdog fires on a permanently blocked circuit.
    #[test]
    fn watchdog_detects_permanent_stall() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let mut src = Source::new("src", a, 1);
        src.push(0, 1);
        b.add(src);
        b.add(Sink::new("snk", a, 1, ReadyPolicy::Never));
        let mut circuit = b.build().expect("valid");
        circuit.set_deadlock_watchdog(Some(5));
        let err = circuit.run(100).expect_err("watchdog must fire");
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    /// Tracing records fired transfers with labels.
    #[test]
    fn trace_records_transfers() {
        let mut b = CircuitBuilder::<Tagged<u64>>::new();
        let a = b.channel("a", 2);
        let mut src = Source::new("src", a, 2);
        src.push(0, Tagged::new(0, 0, 1u64));
        src.push(1, Tagged::new(1, 0, 2u64));
        b.add(src);
        b.add(Sink::new("snk", a, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.enable_trace();
        circuit.run(4).expect("clean");
        let transfers = circuit.trace().expect("trace on").transfers_on(a);
        let labels: Vec<&str> = transfers.iter().map(|(_, _, l)| l.as_str()).collect();
        assert_eq!(labels.len(), 2);
        assert!(labels.contains(&"A0"));
        assert!(labels.contains(&"B0"));
    }

    /// Builds the same randomized pipeline twice and runs it under both
    /// eval modes; captures, stats and injection counts must be
    /// bit-identical (the dirty-set kernel is an optimization, not a
    /// semantics change).
    #[test]
    fn event_driven_kernel_matches_exhaustive_oracle() {
        let build = || {
            let mut b = CircuitBuilder::<u64>::new();
            let a = b.channel("a", 3);
            let c = b.channel("c", 3);
            let d = b.channel("d", 3);
            let mut src = Source::new("src", a, 3);
            src.extend(0, 0..25u64);
            src.extend(1, 100..125u64);
            src.extend(2, 200..225u64);
            b.add(src);
            b.add(VarLatency::new(
                "mem",
                a,
                c,
                3,
                2,
                LatencyModel::Uniform {
                    min: 1,
                    max: 5,
                    seed: 31,
                },
            ));
            b.add(Transform::new("inc", c, d, 3, |x| x + 1));
            b.add(Sink::with_capture(
                "snk",
                d,
                3,
                ReadyPolicy::Random { p: 0.6, seed: 77 },
            ));
            b.build().expect("valid")
        };

        let mut oracle = build();
        oracle.set_eval_mode(EvalMode::Exhaustive);
        oracle.run(600).expect("oracle runs clean");

        let mut fast = build();
        assert_eq!(fast.eval_mode(), EvalMode::EventDriven);
        fast.run(600).expect("event-driven runs clean");

        let o: &Sink<u64> = oracle.get("snk").expect("sink");
        let f: &Sink<u64> = fast.get("snk").expect("sink");
        for t in 0..3 {
            assert_eq!(o.captured(t), f.captured(t), "thread {t} capture diverged");
        }
        assert_eq!(
            oracle.stats().total_transfers(ChannelId(2)),
            fast.stats().total_transfers(ChannelId(2))
        );
        // And the dirty-set kernel must actually have skipped work.
        assert!(
            fast.stats().kernel().component_evals < oracle.stats().kernel().component_evals,
            "event-driven kernel did not save any evals ({} vs {})",
            fast.stats().kernel().component_evals,
            oracle.stats().kernel().component_evals,
        );
    }

    /// A cycle whose warm-started signals are already at the fixed point
    /// (here: a token stalled at an unready sink) converges inside the
    /// single full sweep and goes straight to the clock edge — the
    /// counters prove it.
    #[test]
    fn converged_first_sweep_skips_further_rounds() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, 0..2u64);
        b.add(src);
        b.add(Sink::new(
            "snk",
            a,
            1,
            ReadyPolicy::StallWindow { from: 0, to: 6 },
        ));
        let mut circuit = b.build().expect("valid");
        circuit.run(8).expect("clean");
        let k = circuit.stats().kernel();
        assert!(
            k.single_sweep_cycles > 0,
            "no cycle converged in one sweep: {k:?}"
        );
        assert!(
            k.rounds_per_cycle() < 3.0,
            "rounds per cycle too high: {k:?}"
        );
    }

    /// With all source tokens released far in the future, `run` jumps the
    /// quiescent gap instead of stepping empty cycles, while the end state
    /// (cycle count, deliveries) matches the exhaustive step-by-step run.
    #[test]
    fn quiescence_fast_forward_skips_idle_gap() {
        let build = || {
            let mut b = CircuitBuilder::<u64>::new();
            let a = b.channel("a", 1);
            let mut src = Source::new("src", a, 1);
            src.push(0, 7);
            src.push_at(0, 500, 8);
            b.add(src);
            b.add(Sink::with_capture("snk", a, 1, ReadyPolicy::Always));
            b.build().expect("valid")
        };

        let mut fast = build();
        fast.run(520).expect("clean");
        let k = fast.stats().kernel();
        assert!(k.quiesced_cycles > 400, "gap not skipped: {k:?}");
        assert_eq!(k.stepped_cycles + k.quiesced_cycles, 520);
        assert_eq!(fast.stats().cycles(), 520);
        assert_eq!(fast.cycle(), 520);

        let mut slow = build();
        slow.set_eval_mode(EvalMode::Exhaustive);
        slow.enable_trace(); // tracing disables the fast-path
        slow.run(520).expect("clean");
        assert_eq!(slow.stats().kernel().quiesced_cycles, 0);

        let f: &Sink<u64> = fast.get("snk").expect("sink");
        let s: &Sink<u64> = slow.get("snk").expect("sink");
        assert_eq!(
            f.captured(0),
            s.captured(0),
            "fast-forward changed delivery"
        );
    }

    /// `run_until` stops as soon as the predicate holds.
    #[test]
    fn run_until_predicate() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, 0..100u64);
        b.add(src);
        b.add(Sink::new("snk", a, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        let done = circuit
            .run_until(1000, |c| c.stats().total_transfers(a) >= 10)
            .expect("clean");
        assert!(done);
        assert_eq!(circuit.stats().total_transfers(a), 10);
    }
}
