//! Criterion bench: the packed-handshake settle-loop fast path.
//!
//! Measures the simulation kernel's inner settle loop on backpressured
//! MEB pipelines (the workload behind `BENCH_packed_handshake.json`) and
//! the raw cost of the `ThreadMask` operations the loop is built from.
//! Random sink readiness keeps every channel's valid/ready masks churning,
//! so the loop cannot quiesce early — this is the worst case the packed
//! refactor targets. See `docs/perf.md` for the full methodology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
use elastic_sim::{KernelBackend, ReadyPolicy, ThreadMask};

const CYCLES: u64 = 1_000;

fn run_backpressured_on(threads: usize, stages: usize, backend: KernelBackend) -> u64 {
    let fuser = match backend {
        KernelBackend::Fused => Some(elastic_synth::fuse as _),
        KernelBackend::Interpreted => None,
    };
    let mut cfg = PipelineConfig::free_flowing(threads, stages, MebKind::Reduced, CYCLES)
        .with_backend(backend, fuser);
    for t in 0..threads {
        cfg = cfg.with_sink_policy(
            t,
            ReadyPolicy::Random {
                p: 0.6,
                seed: 0xC0FF_EE00 ^ t as u64,
            },
        );
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(CYCLES).expect("pipeline runs clean");
    h.sink().consumed_total()
}

fn run_backpressured(threads: usize, stages: usize) -> u64 {
    run_backpressured_on(threads, stages, KernelBackend::Interpreted)
}

fn bench_settle_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("settle_hot_path");
    group.throughput(Throughput::Elements(CYCLES));
    for threads in [8usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("backpressured", threads),
            &threads,
            |b, &threads| b.iter(|| run_backpressured(threads, 4)),
        );
    }
    group.finish();
}

/// The same backpressured workloads under both settle-kernel backends:
/// the interpreted `Box<dyn Component>` reference vs the fused op table
/// (`elastic_synth::fuse`). The pair behind `BENCH_fused_kernel.json`.
fn bench_fused_vs_interpreted(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_vs_interpreted");
    group.throughput(Throughput::Elements(CYCLES));
    for threads in [8usize, 16, 64] {
        for (label, backend) in [
            ("interpreted", KernelBackend::Interpreted),
            ("fused", KernelBackend::Fused),
        ] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| run_backpressured_on(threads, 4, backend))
            });
        }
    }
    group.finish();
}

fn bench_mask_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_mask");
    for threads in [8usize, 64, 65] {
        let bits: Vec<bool> = (0..threads).map(|i| i % 3 == 0).collect();
        let mask = ThreadMask::from_bools(&bits);
        group.bench_with_input(
            BenchmarkId::new("iter_ones_sum", threads),
            &threads,
            |b, _| b.iter(|| std::hint::black_box(&mask).iter_ones().sum::<usize>()),
        );
        group.bench_with_input(
            BenchmarkId::new("next_one_wrapping", threads),
            &threads,
            |b, _| b.iter(|| std::hint::black_box(&mask).next_one_wrapping(threads / 2)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_settle_loop,
    bench_fused_vs_interpreted,
    bench_mask_ops
);
criterion_main!(benches);
