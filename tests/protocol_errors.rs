//! The kernel's protocol checks, exercised deliberately: ill-formed
//! circuits must be *reported*, not mis-simulated.

use mt_elastic::sim::{
    impl_as_any, BuildError, ChannelId, CircuitBuilder, Component, EvalCtx, Ports, ProtocolError,
    ReadyPolicy, SimError, Sink, Source, TickCtx, Transform,
};

/// A misbehaving producer that asserts two valids at once.
struct DoubleValid {
    out: ChannelId,
}

impl Component<u64> for DoubleValid {
    fn name(&self) -> &str {
        "double_valid"
    }
    fn ports(&self) -> Ports {
        Ports::new([], [self.out])
    }
    fn eval(&mut self, ctx: &mut EvalCtx<'_, u64>) {
        ctx.set_valid(self.out, 0, true);
        ctx.set_valid(self.out, 1, true);
        ctx.set_data(self.out, Some(1));
    }
    fn tick(&mut self, _ctx: &TickCtx<'_, u64>) {}
    impl_as_any!();
}

/// A producer that asserts valid but never drives data.
struct NoData {
    out: ChannelId,
}

impl Component<u64> for NoData {
    fn name(&self) -> &str {
        "no_data"
    }
    fn ports(&self) -> Ports {
        Ports::new([], [self.out])
    }
    fn eval(&mut self, ctx: &mut EvalCtx<'_, u64>) {
        ctx.set_valid(self.out, 0, true);
        ctx.set_data(self.out, None);
    }
    fn tick(&mut self, _ctx: &TickCtx<'_, u64>) {}
    impl_as_any!();
}

#[test]
fn multiple_valids_violate_the_mt_channel_invariant() {
    let mut b = CircuitBuilder::<u64>::new();
    let ch = b.channel("bus", 2);
    b.add(DoubleValid { out: ch });
    b.add(Sink::new("snk", ch, 2, ReadyPolicy::Always));
    let mut circuit = b.build().expect("structurally valid");
    let err = circuit.step().expect_err("invariant must trip");
    match err {
        SimError::ChannelInvariant {
            channel, threads, ..
        } => {
            assert_eq!(channel, "bus");
            assert_eq!(threads, vec![0, 1]);
        }
        other => panic!("unexpected: {other}"),
    }
}

#[test]
fn valid_without_data_is_reported() {
    let mut b = CircuitBuilder::<u64>::new();
    let ch = b.channel("bus", 1);
    b.add(NoData { out: ch });
    b.add(Sink::new("snk", ch, 1, ReadyPolicy::Always));
    let mut circuit = b.build().expect("structurally valid");
    let err = circuit.step().expect_err("missing data must trip");
    assert!(
        matches!(err, SimError::MissingData { thread: 0, .. }),
        "{err}"
    );
}

/// Two combinational transforms wired in a loop: structurally legal (one
/// driver/reader per channel) but has no settling fixed point — the
/// circuit class elastic design forbids without a buffer. The rank
/// schedule rejects it at build time, naming the offending components.
#[test]
fn unbuffered_combinational_loop_is_detected() {
    struct Gate {
        name: &'static str,
        invert: bool,
        inp: ChannelId,
        out: ChannelId,
    }
    impl Component<u64> for Gate {
        fn name(&self) -> &str {
            self.name
        }
        fn ports(&self) -> Ports {
            Ports::new([self.inp], [self.out])
        }
        fn eval(&mut self, ctx: &mut EvalCtx<'_, u64>) {
            let v = ctx.valid(self.inp, 0);
            ctx.set_valid(self.out, 0, v ^ self.invert);
            ctx.set_data(self.out, Some(0));
            ctx.set_ready(self.inp, 0, false);
        }
        fn tick(&mut self, _ctx: &TickCtx<'_, u64>) {}
        impl_as_any!();
    }
    // x = !y and y = x ⇒ x = !x: no fixed point exists.
    let mut b = CircuitBuilder::<u64>::new();
    let x = b.channel("x", 1);
    let y = b.channel("y", 1);
    b.add(Gate {
        name: "not",
        invert: true,
        inp: x,
        out: y,
    });
    b.add(Gate {
        name: "wire",
        invert: false,
        inp: y,
        out: x,
    });
    let err = b
        .build()
        .expect_err("combinational loop must be rejected at build()");
    match err {
        BuildError::CombinationalLoop { components } => {
            assert_eq!(
                components,
                vec!["not".to_string(), "wire".to_string()],
                "both gates on the cycle must be named"
            );
        }
        other => panic!("expected CombinationalLoop, got {other}"),
    }
}

/// A component driving a channel it does not own is a programming error
/// caught by the eval context's ownership assertions.
#[test]
fn driving_a_foreign_channel_panics() {
    struct Trespasser {
        mine: ChannelId,
        theirs: ChannelId,
    }
    impl Component<u64> for Trespasser {
        fn name(&self) -> &str {
            "trespasser"
        }
        fn ports(&self) -> Ports {
            Ports::new([], [self.mine])
        }
        fn eval(&mut self, ctx: &mut EvalCtx<'_, u64>) {
            ctx.drive_idle(self.mine);
            ctx.set_valid(self.theirs, 0, true); // not ours!
        }
        fn tick(&mut self, _ctx: &TickCtx<'_, u64>) {}
        impl_as_any!();
    }
    let mut b = CircuitBuilder::<u64>::new();
    let mine = b.channel("mine", 1);
    let theirs = b.channel("theirs", 1);
    b.add(Trespasser { mine, theirs });
    let mut src = Source::new("src", theirs, 1);
    src.push(0, 1);
    b.add(src);
    b.add(Sink::new("s1", mine, 1, ReadyPolicy::Always));
    b.add(Sink::new("s2", theirs, 1, ReadyPolicy::Always));
    let mut circuit = b.build().expect("structurally valid");
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| circuit.step()));
    assert!(r.is_err(), "ownership assertion must panic");
}

/// A component that latches a protocol fault at its clock edge is
/// reported as a typed [`SimError::Component`] by the kernel — no panic,
/// no `catch_unwind`.
#[test]
fn latched_component_fault_is_surfaced_as_typed_error() {
    struct Faulty {
        out: ChannelId,
        fault: Option<ProtocolError>,
    }
    impl Component<u64> for Faulty {
        fn name(&self) -> &str {
            "faulty_eb"
        }
        fn ports(&self) -> Ports {
            Ports::new([], [self.out])
        }
        fn eval(&mut self, ctx: &mut EvalCtx<'_, u64>) {
            ctx.drive_idle(self.out);
        }
        fn tick(&mut self, ctx: &TickCtx<'_, u64>) {
            if ctx.cycle() == 2 {
                self.fault = Some(ProtocolError::BufferUnderflow);
            }
        }
        fn take_fault(&mut self) -> Option<ProtocolError> {
            self.fault.take()
        }
        impl_as_any!();
    }
    let mut b = CircuitBuilder::<u64>::new();
    let ch = b.channel("bus", 1);
    b.add(Faulty {
        out: ch,
        fault: None,
    });
    b.add(Sink::new("snk", ch, 1, ReadyPolicy::Always));
    let mut circuit = b.build().expect("structurally valid");
    let err = circuit.run(10).expect_err("fault must surface");
    match err {
        SimError::Component {
            cycle,
            component,
            error,
        } => {
            assert_eq!(cycle, 2);
            assert_eq!(component, "faulty_eb");
            assert_eq!(error, ProtocolError::BufferUnderflow);
        }
        other => panic!("unexpected: {other}"),
    }
}

/// The elastic-buffer FSM reports violations as values, and seeding a MEB
/// beyond its per-thread capacity is a typed error too (these used to be
/// `panic!`s that tests had to catch as unwinds).
#[test]
fn buffer_protocol_violations_are_typed_values() {
    use mt_elastic::core::{ArbiterKind, EbState, ReducedMeb};

    assert_eq!(
        EbState::Empty.advance(false, true),
        Err(ProtocolError::BufferUnderflow)
    );
    assert_eq!(
        EbState::Full.advance(true, false),
        Err(ProtocolError::BufferOverflow)
    );
    assert_eq!(EbState::Half.advance(true, false), Ok(EbState::Full));

    let mut b = CircuitBuilder::<u64>::new();
    let a = b.channel("a", 2);
    let c = b.channel("c", 2);
    let err = ReducedMeb::<u64>::new("m", a, c, 2, ArbiterKind::RoundRobin.build())
        .with_initial(vec![(1, 5), (1, 6)])
        .err()
        .expect("reduced MEB holds one initial token per thread");
    assert_eq!(
        err,
        ProtocolError::ExcessInitialTokens {
            thread: 1,
            capacity: 1
        }
    );
    assert!(err.to_string().contains("thread 1"));
}

/// The same loop, legalized with an elastic buffer, settles fine — the
/// canonical fix the error message suggests.
#[test]
fn a_buffer_cuts_the_loop() {
    use mt_elastic::core::ElasticBuffer;
    let mut b = CircuitBuilder::<u64>::new();
    let x = b.channel("x", 1);
    let y = b.channel("y", 1);
    let z = b.channel("z", 1);
    let mut src = Source::new("src", x, 1);
    src.extend(0, 0..5u64);
    b.add(src);
    b.add(Transform::new("inc", x, y, 1, |v| v + 1));
    b.add(ElasticBuffer::new("eb", y, z));
    b.add(Sink::with_capture("snk", z, 1, ReadyPolicy::Always));
    let mut circuit = b.build().expect("valid");
    circuit.run(10).expect("settles every cycle");
    let snk: &Sink<u64> = circuit.get("snk").expect("sink");
    assert_eq!(snk.consumed_total(), 5);
}
