//! Area inventories for the paper's two design examples and the MEB
//! microarchitectures, mirroring the simulated circuits one-to-one.

use crate::primitives::{
    adder, arbiter, barrier, eb_control, lut_layer, mux, register, shared_gate, Inventory,
};

/// MEB microarchitecture, as in Table I's column pairs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BufferKind {
    /// One 2-slot EB per thread (paper Fig. 4).
    Full,
    /// S main registers + one shared auxiliary register (paper Fig. 6).
    Reduced,
}

impl std::fmt::Display for BufferKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferKind::Full => write!(f, "Full MEB"),
            BufferKind::Reduced => write!(f, "Reduced MEB"),
        }
    }
}

/// Itemized area of one `width`-bit, `threads`-thread MEB.
///
/// Both variants share: a 2:1 refill mux in front of each thread's main
/// register (`data_in` vs the auxiliary slot) and the S-way output
/// multiplexer. They differ in storage (`2S` vs `S+1` registers) and in
/// the reduced variant's shared-buffer FSM and HALF→FULL gate.
pub fn meb_inventory(kind: BufferKind, threads: usize, width: usize) -> Inventory {
    let s = threads;
    let mut inv = Inventory::new();
    match kind {
        BufferKind::Full => {
            inv.push("main+aux registers", 2 * s, register(width));
        }
        BufferKind::Reduced => {
            inv.push("main registers", s, register(width));
            inv.push("shared register", 1, register(width));
        }
    }
    inv.push("refill muxes", s, mux(width, 2));
    inv.push("output mux", 1, mux(width, s));
    inv.push("EB control FSMs", s, eb_control());
    if kind == BufferKind::Reduced {
        inv.push("shared-buffer gate", 1, shared_gate(s));
    }
    inv.push("arbiter", 1, arbiter(s));
    inv
}

/// A design example: shared combinational logic plus a set of MEBs.
#[derive(Clone, Debug)]
pub struct DesignSpec {
    /// Design name (row label in Table I).
    pub name: &'static str,
    /// Names and token widths of the MEB pipeline registers.
    pub meb_widths: Vec<(&'static str, usize)>,
    /// Logic depth of the critical combinational path, in LUT levels.
    pub logic_levels: f64,
    /// Builds the non-MEB (combinational + control) inventory for a
    /// thread count.
    pub comb: fn(usize) -> Inventory,
}

impl DesignSpec {
    /// Full itemized inventory for the chosen MEB kind and thread count.
    pub fn inventory(&self, kind: BufferKind, threads: usize) -> Inventory {
        let mut inv = (self.comb)(threads);
        for &(name, width) in &self.meb_widths {
            let sub = meb_inventory(kind, threads, width);
            inv.push(
                format!("MEB `{name}` ({width}b, {kind})"),
                1,
                sub.total_les(),
            );
        }
        inv
    }

    /// Total area in LEs.
    pub fn area_les(&self, kind: BufferKind, threads: usize) -> usize {
        self.inventory(kind, threads).total_les()
    }
}

fn md5_comb(threads: usize) -> Inventory {
    let mut inv = Inventory::new();
    // One fully unrolled MD5 round: 16 steps, each with four 32-bit
    // adders, the 2-LUT-level boolean function F/G/H/I and the
    // message-word select (the 512-bit block itself lives in embedded
    // memory, mirroring the paper's BRAM accounting for the processor).
    inv.push(
        "unrolled step (4 adders + F + word select)",
        16,
        4 * adder(32) + 2 * lut_layer(32) + 3 * lut_layer(32),
    );
    inv.push("round configuration mux", 1, mux(32, 3));
    inv.push("barrier", 1, barrier(threads));
    inv.push("round counter + misc control", 1, 20);
    inv
}

fn processor_comb(threads: usize) -> Inventory {
    let mut inv = Inventory::new();
    // Functional units; the multiplier maps to DSP blocks (excluded, like
    // the paper excludes DSPs and BRAMs), only its glue counts. The
    // register file maps to embedded memory (excluded by the paper).
    inv.push(
        "ALU (adder + logic + shifter + result mux)",
        1,
        adder(32) + 2 * lut_layer(32) + 3 * lut_layer(32) + 2 * mux(32, 2),
    );
    inv.push("multiplier glue (DSP excluded)", 1, 40);
    inv.push("instruction decoder", 1, 120);
    inv.push("program counters", threads, register(16));
    inv.push("scoreboard (pending bits)", threads, 32);
    inv.push("fetch thread-select", 1, 8 * threads);
    inv.push("hazard/forward control", 1, 124);
    inv
}

/// The MD5 design example (paper, Sec. V-A): two 128-bit MEBs (the
/// working-state token) around the unrolled round unit, plus the barrier
/// and global round configuration.
pub fn md5_design() -> DesignSpec {
    DesignSpec {
        name: "MD5 hash",
        meb_widths: vec![("input buffer", 128), ("output buffer", 128)],
        // 16 unrolled steps at ~4.5 LUT levels each (carry-chain adder +
        // boolean function + word select).
        logic_levels: 72.0,
        comb: md5_comb,
    }
}

/// The multithreaded processor design example (paper, Sec. V-B): five MEB
/// pipeline registers with stage-appropriate token widths.
pub fn processor_design() -> DesignSpec {
    DesignSpec {
        name: "Processor",
        meb_widths: vec![
            ("IF/ID", 36),
            ("ID/EX", 52),
            ("EX/MEM", 44),
            ("MEM/WB", 30),
            ("redirect", 18),
        ],
        // One ALU stage: 32-bit carry chain + decode/select.
        logic_levels: 6.5,
        comb: processor_comb,
    }
}

fn gcd_comb(_threads: usize) -> Inventory {
    let mut inv = Inventory::new();
    // 64-bit pair token: comparator (a == b), magnitude comparator and
    // subtractor for the step, plus merge/branch/exit control.
    inv.push("equality comparator (2x64b)", 1, 2 * lut_layer(64));
    inv.push("magnitude comparator", 1, lut_layer(64));
    inv.push("subtractor", 1, adder(64));
    inv.push("operand swap muxes", 2, mux(64, 2));
    inv.push("merge/branch control", 1, 24);
    inv
}

/// The synthesized iterative GCD circuit (extension; built by the
/// `elastic-synth` flow in `examples/gcd_synthesis.rs`): two MEBs carry
/// the 128-bit pair token around the merge → branch → subtract loop.
pub fn gcd_design() -> DesignSpec {
    DesignSpec {
        name: "GCD (synth)",
        meb_widths: vec![("loop head buffer", 130), ("step buffer", 130)],
        // 64-bit compare/subtract carry chain dominates.
        logic_levels: 10.0,
        comb: gcd_comb,
    }
}

/// Estimated maximum frequency in MHz.
///
/// `t = levels · T_LUT + ρ · LEs/1000` with `T_LUT = 1 ns` and
/// `ρ = 1.5 ns/kLE` — the second term models routing/congestion delay
/// growing with area, which is how the paper's *smaller* reduced-MEB
/// designs clock slightly *faster* ("a result of the smaller wiring
/// delays due to lower area").
pub fn frequency_mhz(logic_levels: f64, les: usize) -> f64 {
    const T_LUT_NS: f64 = 1.0;
    const RHO_NS_PER_KLE: f64 = 1.5;
    1000.0 / (logic_levels * T_LUT_NS + RHO_NS_PER_KLE * les as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meb_slot_counts_match_the_paper() {
        // Register LEs dominate; full stores 2S tokens, reduced S+1.
        let full = meb_inventory(BufferKind::Full, 8, 100);
        let reduced = meb_inventory(BufferKind::Reduced, 8, 100);
        let full_regs: usize = full.items[0].total();
        let reduced_regs: usize = reduced.items[0].total() + reduced.items[1].total();
        assert_eq!(full_regs, 16 * 100);
        assert_eq!(reduced_regs, 9 * 100);
        assert!(full.total_les() > reduced.total_les());
    }

    #[test]
    fn reduced_saves_more_as_threads_grow() {
        let spec = md5_design();
        let sav = |s: usize| {
            let f = spec.area_les(BufferKind::Full, s);
            let r = spec.area_les(BufferKind::Reduced, s);
            (f - r) as f64 / f as f64
        };
        assert!(sav(16) > sav(8));
        assert!(sav(8) > sav(2));
    }

    #[test]
    fn smaller_designs_clock_faster() {
        let spec = processor_design();
        let f_full = frequency_mhz(spec.logic_levels, spec.area_les(BufferKind::Full, 8));
        let f_red = frequency_mhz(spec.logic_levels, spec.area_les(BufferKind::Reduced, 8));
        assert!(f_red > f_full);
    }

    #[test]
    fn md5_is_much_slower_than_the_processor() {
        // 16 unrolled steps vs one ALU stage: order-of-magnitude clock gap,
        // as in Table I (11–12 MHz vs 60–68 MHz).
        let md5 = md5_design();
        let cpu = processor_design();
        let f_md5 = frequency_mhz(md5.logic_levels, md5.area_les(BufferKind::Full, 8));
        let f_cpu = frequency_mhz(cpu.logic_levels, cpu.area_les(BufferKind::Full, 8));
        assert!(
            f_cpu > 4.0 * f_md5,
            "cpu {f_cpu:.1} MHz vs md5 {f_md5:.1} MHz"
        );
    }

    #[test]
    fn inventories_are_itemized() {
        let inv = md5_design().inventory(BufferKind::Reduced, 8);
        let rendered = inv.render();
        assert!(rendered.contains("unrolled step"));
        assert!(rendered.contains("MEB `input buffer`"));
        assert!(rendered.contains("barrier"));
    }
}
