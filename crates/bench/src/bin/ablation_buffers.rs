//! Ablation studies on the design choices called out in `DESIGN.md`:
//!
//! 1. **Buffer microarchitecture / capacity** — full vs reduced vs
//!    per-thread FIFOs of depth 1–4, under uniform load and under a
//!    blocked thread, with the storage cost next to the throughput;
//! 2. **Arbiter policy** — fixed-priority vs round-robin vs
//!    least-recently-granted fairness on a shared channel.
//!
//! Every table row is an independent simulation, so both ablations run
//! their rows as [`run_sweep`] jobs (submission order = row order).
//!
//! ```text
//! cargo run --release --bin ablation_buffers
//! ```

use elastic_bench::{measure_throughput, reduced_worstcase};
use elastic_core::{ArbiterKind, MebKind, PipelineConfig, PipelineHarness};
use elastic_sim::{run_sweep, SimJob};

fn buffer_ablation() {
    const THREADS: usize = 4;
    println!("1. Buffer ablation — {THREADS} threads, 3-stage pipeline\n");
    println!(
        "{:<12} {:>6} {:>18} {:>22}",
        "buffer", "slots", "uniform aggregate", "lone-thread (blocked)"
    );
    println!("{}", "-".repeat(62));
    let kinds = [
        MebKind::Fifo { depth: 1 },
        MebKind::Reduced,
        MebKind::Fifo { depth: 2 }, // storage-equivalent to Full
        MebKind::Full,
        MebKind::Fifo { depth: 4 },
    ];
    let jobs: Vec<SimJob<(f64, f64)>> = kinds
        .iter()
        .map(|&kind| {
            SimJob::new(format!("buffer {kind}"), move || {
                let uniform = measure_throughput(kind, THREADS, THREADS, 3);
                let worst = reduced_worstcase(kind, THREADS, 3);
                Ok((uniform.aggregate, worst.active_throughput))
            })
        })
        .collect();
    let rows = run_sweep(jobs).unwrap_all();
    for (kind, (uniform, worst)) in kinds.iter().zip(rows) {
        println!(
            "{:<12} {:>6} {:>18.3} {:>22.3}",
            kind.to_string(),
            kind.slots(THREADS),
            uniform,
            worst
        );
    }
    println!(
        "\n   reduced ({} slots) matches full ({} slots) everywhere except the\n   \
         all-but-one-blocked case — the paper's Sec. III-A trade-off.\n",
        MebKind::Reduced.slots(THREADS),
        MebKind::Full.slots(THREADS)
    );
}

fn arbiter_ablation() {
    const THREADS: usize = 4;
    println!("2. Arbiter ablation — {THREADS} always-active threads on one reduced-MEB stage\n");
    println!(
        "{:<14} {:>10} {:>26}",
        "policy", "aggregate", "per-thread min/max"
    );
    println!("{}", "-".repeat(54));
    let arbiters = ArbiterKind::all();
    let jobs: Vec<SimJob<(f64, f64, f64)>> = arbiters
        .iter()
        .map(|&arbiter| {
            SimJob::new(format!("arbiter {arbiter}"), move || {
                let mut cfg = PipelineConfig::free_flowing(THREADS, 1, MebKind::Reduced, 800);
                cfg.arbiter = arbiter;
                let mut h = PipelineHarness::build(cfg);
                h.circuit.run(40)?;
                h.circuit.reset_stats();
                h.circuit.run(400)?;
                let out = h.pipeline.output;
                let per: Vec<f64> = (0..THREADS)
                    .map(|t| h.circuit.stats().throughput(out, t))
                    .collect();
                let min = per.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = per.iter().cloned().fold(0.0_f64, f64::max);
                Ok((h.circuit.stats().channel_throughput(out), min, max))
            })
        })
        .collect();
    let rows = run_sweep(jobs).unwrap_all();
    for (arbiter, (aggregate, min, max)) in arbiters.iter().zip(rows) {
        println!(
            "{:<14} {:>10.3} {:>15.3} / {:.3}",
            arbiter.to_string(),
            aggregate,
            min,
            max
        );
    }
    println!(
        "\n   all policies sustain the aggregate; fairness (min/max spread) is what\n   \
         distinguishes them — sources throttle under fixed priority only when a\n   \
         higher-priority thread keeps its slot occupied."
    );
}

fn main() {
    buffer_ablation();
    arbiter_ablation();
}
