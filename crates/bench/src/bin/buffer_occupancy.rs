//! Buffer-occupancy evidence for the reduced MEB (paper, Sec. III-A):
//! under uniform utilization "each thread will use only one buffer out of
//! the two available per thread … Only when a thread stalls, it will use
//! its second auxiliary buffer." This experiment measures exactly that —
//! how often the main slots vs the auxiliary/shared slots actually hold
//! data, with and without downstream stalls.
//!
//! The four (load, buffer) configurations are independent traced runs
//! and execute as [`run_sweep`] jobs in submission order.
//!
//! ```text
//! cargo run --release --bin buffer_occupancy
//! ```

use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
use elastic_sim::{occupancy_stats, run_sweep, OccupancyStats, ReadyPolicy, SimError, SimJob};

fn measure(kind: MebKind, stall: bool) -> Result<OccupancyStats, SimError> {
    const THREADS: usize = 8;
    let mut cfg = PipelineConfig::free_flowing(THREADS, 1, kind, 900);
    if stall {
        // Irregular stalls on half the threads so backpressure actually
        // bites (deterministic per-cycle hash, no periodic resonance).
        for t in 0..THREADS / 2 {
            cfg = cfg.with_sink_policy(
                t,
                ReadyPolicy::Random {
                    p: 0.25,
                    seed: 11 + t as u64,
                },
            );
        }
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.enable_trace();
    h.circuit.run(600)?;
    let stats = occupancy_stats(h.circuit.trace().expect("traced"));
    Ok(stats
        .get(&h.pipeline.meb_names[0])
        .expect("meb snapshots present")
        .clone())
}

fn aux_busy(stats: &OccupancyStats) -> (f64, f64) {
    let (mut main_sum, mut main_n, mut aux_sum, mut aux_n) = (0.0, 0, 0.0, 0);
    for (name, frac) in &stats.per_slot {
        if name.starts_with("main") {
            main_sum += frac;
            main_n += 1;
        } else {
            aux_sum += frac;
            aux_n += 1;
        }
    }
    (
        main_sum / main_n.max(1) as f64,
        aux_sum / aux_n.max(1) as f64,
    )
}

fn main() {
    println!(
        "Slot usage of one 8-thread MEB, 600 cycles — how often the main slots\n\
         vs the auxiliary/shared slots hold data (paper, Sec. III-A)\n"
    );
    println!(
        "{:<26} {:>7} {:>6} {:>12} {:>12}",
        "configuration", "mean", "peak", "main busy", "aux busy"
    );
    println!("{}", "-".repeat(68));

    let configs: Vec<(bool, &str, MebKind)> = [(false, "uniform"), (true, "half blocked")]
        .into_iter()
        .flat_map(|(stall, label)| {
            [MebKind::Full, MebKind::Reduced]
                .into_iter()
                .map(move |kind| (stall, label, kind))
        })
        .collect();
    let jobs: Vec<SimJob<OccupancyStats>> = configs
        .iter()
        .map(|&(stall, label, kind)| {
            SimJob::new(format!("{kind}, {label}"), move || measure(kind, stall))
        })
        .collect();
    let results = run_sweep(jobs).unwrap_all();

    for ((_, label, kind), stats) in configs.iter().zip(&results) {
        let (main, aux) = aux_busy(stats);
        println!(
            "{:<26} {:>7.2} {:>6} {:>11.1}% {:>11.1}%",
            format!("{kind}, {label}"),
            stats.mean,
            stats.max,
            100.0 * main,
            100.0 * aux
        );
    }
    println!(
        "\nuniform load: the auxiliary slots are essentially idle — the full MEB\n\
         carries 8 of them, the reduced MEB one; that difference is exactly the\n\
         register area Table I shows the reduced MEB saving. Under stalls the\n\
         aux storage earns its keep, and the reduced MEB\'s single shared slot\n\
         covers the common case (one blocked thread at a time)."
    );
}
