//! E-X3 — the elastic MD5 circuit against the RFC 1321 reference, across
//! thread counts, MEB kinds and arbitrary messages (property-based).

use mt_elastic::core::MebKind;
use mt_elastic::md5::{algo, Md5Hasher};
use proptest::prelude::*;

/// RFC 1321 appendix suite through the 8-thread circuit, both MEB kinds.
#[test]
fn rfc1321_suite_through_the_circuit() {
    let vectors: [(&[u8], &str); 7] = [
        (b"", "d41d8cd98f00b204e9800998ecf8427e"),
        (b"a", "0cc175b9c0f1b6a831c399e269772661"),
        (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
        (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
        (
            b"abcdefghijklmnopqrstuvwxyz",
            "c3fcd3d76192e4007dfb496cca67e13b",
        ),
        (
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
            "d174ab98d277d9f5a5611c2c9f419d9f",
        ),
        (
            b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
            "57edf4a22be3c955ac49da2e2107b67a",
        ),
    ];
    let messages: Vec<&[u8]> = vectors.iter().map(|(m, _)| *m).collect();
    for kind in [MebKind::Full, MebKind::Reduced] {
        let hasher = Md5Hasher::new(8, kind);
        let (digests, _) = hasher.hash_messages(&messages).expect("hashing succeeds");
        for ((_, expect), digest) in vectors.iter().zip(&digests) {
            assert_eq!(&algo::to_hex(digest), expect, "{kind}");
        }
    }
}

/// Thread-count sweep: 1..=8 threads, same messages, same digests.
#[test]
fn digests_are_thread_count_invariant() {
    let messages: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 10 + 7 * i]).collect();
    let refs: Vec<&[u8]> = messages.iter().map(|m| m.as_slice()).collect();
    let expected: Vec<String> = refs.iter().map(|m| algo::to_hex(&algo::md5(m))).collect();
    for threads in 4..=8 {
        let hasher = Md5Hasher::new(threads, MebKind::Reduced);
        let (digests, _) = hasher.hash_messages(&refs).expect("hashing succeeds");
        let got: Vec<String> = digests.iter().map(algo::to_hex).collect();
        assert_eq!(got, expected, "threads = {threads}");
    }
}

/// More threads processing the same per-thread workload should not cost
/// proportionally more cycles — the loop is time-multiplexed.
#[test]
fn cycles_scale_sublinearly_with_threads() {
    let one_msg = [b"x".repeat(40)];
    let one: Vec<&[u8]> = one_msg.iter().map(|m| m.as_slice()).collect();
    let (_, cycles_1) = Md5Hasher::new(1, MebKind::Reduced)
        .hash_messages(&one)
        .expect("ok");

    let eight_msgs: Vec<Vec<u8>> = (0..8).map(|_| b"x".repeat(40)).collect();
    let eight: Vec<&[u8]> = eight_msgs.iter().map(|m| m.as_slice()).collect();
    let (_, cycles_8) = Md5Hasher::new(8, MebKind::Reduced)
        .hash_messages(&eight)
        .expect("ok");

    // 8× the work should cost well under 8× the cycles (measured ≈ 4×:
    // the rounds serialize on one channel but latencies overlap).
    assert!(
        (cycles_8 as f64) < 5.0 * cycles_1 as f64,
        "8 threads x same work took {cycles_8} cycles vs {cycles_1} for one"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary messages (up to 3 blocks, up to 4 threads) hash
    /// identically through the circuit and the software reference.
    #[test]
    fn circuit_matches_reference_on_arbitrary_messages(
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..150), 1..4),
        full in any::<bool>(),
    ) {
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let kind = if full { MebKind::Full } else { MebKind::Reduced };
        let hasher = Md5Hasher::new(refs.len(), kind);
        let (digests, _) = hasher.hash_messages(&refs).expect("hashing succeeds");
        for (msg, digest) in refs.iter().zip(&digests) {
            prop_assert_eq!(*digest, algo::md5(msg));
        }
    }
}
