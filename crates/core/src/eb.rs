//! The baseline single-thread elastic buffer (paper, Sec. II).
//!
//! An EB replaces a plain pipeline register with a 2-slot handshaking
//! stage: with one-cycle forward and backward handshake latency, any
//! elastic buffer needs a minimum storage of **two** data items (Carloni
//! et al., latency-insensitive design). The control is the 3-state FSM of
//! the paper's Fig. 6: EMPTY, HALF (one item) and FULL (two items).

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, Ports, ProtocolError,
    SlotView, TickCtx, Token,
};

/// Occupancy state of a (per-thread) elastic buffer control FSM.
///
/// This is exactly the 3-state FSM the reduced MEB replicates per thread
/// (paper, Fig. 6): the transition HALF → FULL is what the shared-buffer
/// gate restricts to a single thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum EbState {
    /// No item stored.
    #[default]
    Empty,
    /// One item stored (in the main register).
    Half,
    /// Two items stored (main + auxiliary/shared register).
    Full,
}

impl EbState {
    /// Number of items the state represents.
    pub fn occupancy(self) -> usize {
        match self {
            EbState::Empty => 0,
            EbState::Half => 1,
            EbState::Full => 2,
        }
    }

    /// Applies one clock edge given whether an enqueue and/or a dequeue
    /// fired this cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on violations — enqueueing into FULL or
    /// dequeueing from EMPTY (the surrounding control must never let these
    /// fire). Inside a running circuit the buffer latches the error and
    /// the kernel surfaces it as
    /// [`SimError::Component`](elastic_sim::SimError::Component).
    pub fn advance(self, enq: bool, deq: bool) -> Result<EbState, ProtocolError> {
        match (self, enq, deq) {
            (s, false, false) => Ok(s),
            (EbState::Empty, true, false) => Ok(EbState::Half),
            (EbState::Half, true, false) => Ok(EbState::Full),
            (EbState::Half, false, true) => Ok(EbState::Empty),
            (EbState::Half, true, true) => Ok(EbState::Half),
            (EbState::Full, false, true) => Ok(EbState::Half),
            (EbState::Full, true, true) => Ok(EbState::Full),
            (EbState::Empty, _, true) => Err(ProtocolError::BufferUnderflow),
            (EbState::Full, true, false) => Err(ProtocolError::BufferOverflow),
        }
    }
}

/// A 2-slot single-thread elastic buffer.
///
/// * `valid` downstream ⇔ at least one item stored;
/// * `ready` upstream ⇔ fewer than two items stored;
/// * both signals are functions of *registered* state only, so an EB cuts
///   every combinational handshake path — chains of EBs always settle.
///
/// # Examples
///
/// ```
/// use elastic_core::ElasticBuffer;
/// use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<u64>::new();
/// let a = b.channel("in", 1);
/// let c = b.channel("out", 1);
/// let mut src = Source::new("src", a, 1);
/// src.extend(0, [1, 2, 3]);
/// b.add(src);
/// b.add(ElasticBuffer::new("eb", a, c));
/// b.add(Sink::with_capture("snk", c, 1, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(8)?;
/// assert_eq!(circuit.stats().total_transfers(c), 3);
/// # Ok(())
/// # }
/// ```
pub struct ElasticBuffer<T: Token> {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    state: EbState,
    /// Head item (dequeued first).
    main: Option<T>,
    /// Second item, used only while FULL.
    aux: Option<T>,
    /// Protocol fault latched at a clock edge, collected by the kernel.
    fault: Option<ProtocolError>,
}

impl<T: Token> ElasticBuffer<T> {
    /// An empty EB between `inp` and `out` (both single-thread channels).
    pub fn new(name: impl Into<String>, inp: ChannelId, out: ChannelId) -> Self {
        Self {
            name: name.into(),
            inp,
            out,
            state: EbState::Empty,
            main: None,
            aux: None,
            fault: None,
        }
    }

    /// Current occupancy state.
    pub fn state(&self) -> EbState {
        self.state
    }

    /// Number of stored items (0–2).
    pub fn occupancy(&self) -> usize {
        self.state.occupancy()
    }
}

impl<T: Token> Component<T> for ElasticBuffer<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Buffer
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Valid and ready are both functions of registered state alone —
        // the EB is a full combinational cut, which is exactly what makes
        // it a legal loop breaker for the rank schedule.
        Vec::new()
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        // Both handshake outputs depend only on registered state.
        ctx.set_ready(self.inp, 0, self.state != EbState::Full);
        match &self.main {
            Some(head) if self.state != EbState::Empty => {
                ctx.drive_token(self.out, 0, head.clone());
            }
            _ => ctx.drive_idle(self.out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        let enq = ctx.fired(self.inp, 0);
        let deq = ctx.fired(self.out, 0);
        if deq {
            // Shift: the auxiliary item (if any) becomes the new head.
            self.main = self.aux.take();
        }
        if enq {
            let item = ctx.data(self.inp).cloned();
            debug_assert!(item.is_some(), "fired enqueue must carry data");
            if self.main.is_none() {
                self.main = item;
            } else {
                debug_assert!(self.aux.is_none(), "enqueue into FULL EB");
                self.aux = item;
            }
        }
        match self.state.advance(enq, deq) {
            Ok(next) => self.state = next,
            Err(e) => {
                self.fault = Some(e);
                return;
            }
        }
        debug_assert_eq!(
            self.state.occupancy(),
            usize::from(self.main.is_some()) + usize::from(self.aux.is_some()),
            "EB state must agree with register occupancy"
        );
    }

    fn take_fault(&mut self) -> Option<ProtocolError> {
        self.fault.take()
    }

    fn reset(&mut self) -> bool {
        self.state = EbState::Empty;
        self.main = None;
        self.aux = None;
        self.fault = None;
        true
    }

    fn next_event(&self, _now: u64) -> elastic_sim::NextEvent {
        elastic_sim::NextEvent::Idle
    }

    fn slots(&self) -> Vec<SlotView> {
        let view = |name: &str, item: &Option<T>| match item {
            Some(t) => SlotView::full(name, 0, t.label()),
            None => SlotView::empty(name),
        };
        vec![view("main", &self.main), view("aux", &self.aux)]
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source};

    #[test]
    fn fsm_transitions_match_the_paper() {
        use EbState::*;
        assert_eq!(Empty.advance(true, false), Ok(Half));
        assert_eq!(Half.advance(true, false), Ok(Full));
        assert_eq!(Half.advance(false, true), Ok(Empty));
        assert_eq!(Half.advance(true, true), Ok(Half));
        assert_eq!(Full.advance(false, true), Ok(Half));
        assert_eq!(Full.advance(true, true), Ok(Full));
        assert_eq!(Empty.advance(false, false), Ok(Empty));
    }

    #[test]
    fn fsm_rejects_underflow() {
        assert_eq!(
            EbState::Empty.advance(false, true),
            Err(ProtocolError::BufferUnderflow)
        );
        assert_eq!(
            EbState::Empty.advance(true, true),
            Err(ProtocolError::BufferUnderflow)
        );
    }

    #[test]
    fn fsm_rejects_overflow() {
        assert_eq!(
            EbState::Full.advance(true, false),
            Err(ProtocolError::BufferOverflow)
        );
    }

    fn eb_chain(n_ebs: usize, tokens: u64, sink: ReadyPolicy) -> (u64, Vec<u64>) {
        let mut b = CircuitBuilder::<u64>::new();
        let chs = b.channels("ch", 1, n_ebs + 1);
        let mut src = Source::new("src", chs[0], 1);
        src.extend(0, 0..tokens);
        b.add(src);
        for i in 0..n_ebs {
            b.add(ElasticBuffer::new(format!("eb{i}"), chs[i], chs[i + 1]));
        }
        b.add(Sink::with_capture("snk", chs[n_ebs], 1, sink));
        let mut circuit = b.build().expect("valid");
        circuit
            .run(4 * tokens + 4 * n_ebs as u64 + 10)
            .expect("clean");
        let snk: &Sink<u64> = circuit.get("snk").expect("sink");
        let outs = snk.captured(0).iter().map(|(_, t)| *t).collect();
        (snk.consumed(0), outs)
    }

    #[test]
    fn chain_delivers_all_tokens_in_order() {
        let (n, outs) = eb_chain(4, 20, ReadyPolicy::Always);
        assert_eq!(n, 20);
        assert_eq!(outs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn chain_sustains_full_throughput() {
        // A pipeline of EBs must not throttle a free-flowing stream:
        // after the fill latency, one token per cycle.
        let mut b = CircuitBuilder::<u64>::new();
        let chs = b.channels("ch", 1, 4);
        let mut src = Source::new("src", chs[0], 1);
        src.extend(0, 0..100u64);
        b.add(src);
        for i in 0..3 {
            b.add(ElasticBuffer::new(format!("eb{i}"), chs[i], chs[i + 1]));
        }
        b.add(Sink::new("snk", chs[3], 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(40).expect("clean");
        // 3 cycles of fill latency, then 1 token/cycle.
        assert_eq!(circuit.stats().total_transfers(chs[3]), 40 - 3);
    }

    #[test]
    fn chain_survives_random_backpressure_in_order() {
        let (n, outs) = eb_chain(3, 50, ReadyPolicy::Random { p: 0.4, seed: 17 });
        assert_eq!(n, 50);
        assert_eq!(outs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn stalled_eb_fills_to_two_items_then_backpressures() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, 0..10u64);
        b.add(src);
        b.add(ElasticBuffer::new("eb", a, c));
        b.add(Sink::new("snk", c, 1, ReadyPolicy::Never));
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("clean");
        // Exactly two tokens entered (the EB's two slots), then stall.
        assert_eq!(circuit.stats().total_transfers(a), 2);
        let eb: &ElasticBuffer<u64> = circuit.get("eb").expect("eb");
        assert_eq!(eb.state(), EbState::Full);
        assert_eq!(eb.occupancy(), 2);
    }

    #[test]
    fn slots_expose_main_and_aux() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, [7, 8]);
        b.add(src);
        b.add(ElasticBuffer::new("eb", a, c));
        b.add(Sink::new("snk", c, 1, ReadyPolicy::Never));
        let mut circuit = b.build().expect("valid");
        circuit.run(5).expect("clean");
        let eb: &ElasticBuffer<u64> = circuit.get("eb").expect("eb");
        let slots = eb.slots();
        assert_eq!(slots[0].occupant, Some((0, "7".to_string())));
        assert_eq!(slots[1].occupant, Some((0, "8".to_string())));
    }
}
