//! E-T1 — integration tests pinning the regenerated Table I against the
//! paper's reported shape: who wins, by what factor, and how the gap
//! moves with the thread count.

use mt_elastic::cost::{
    average_savings, md5_design, paper_reference, processor_design, savings_fraction, table1_rows,
    BufferKind,
};

/// Every Table I row: the model's area is within 20 % of the paper's and
/// its frequency within 20 % (a structural model, not a synthesis flow).
#[test]
fn absolute_numbers_within_20_percent_of_paper() {
    for row in table1_rows(8) {
        let (paper_les, paper_mhz) = paper_reference(row.design, row.kind).expect("in Table I");
        let area_err = (row.area_les as f64 - paper_les as f64).abs() / paper_les as f64;
        let freq_err = (row.freq_mhz - paper_mhz).abs() / paper_mhz;
        assert!(
            area_err < 0.20,
            "{} {}: {} vs {}",
            row.design,
            row.kind,
            row.area_les,
            paper_les
        );
        assert!(
            freq_err < 0.20,
            "{} {}: {:.1} vs {}",
            row.design,
            row.kind,
            row.freq_mhz,
            paper_mhz
        );
    }
}

/// Table I's ordering: reduced < full in area for both designs, and the
/// reduced design is never slower.
#[test]
fn reduced_is_smaller_and_not_slower() {
    for spec in [md5_design(), processor_design()] {
        let full = spec.area_les(BufferKind::Full, 8);
        let reduced = spec.area_les(BufferKind::Reduced, 8);
        assert!(reduced < full, "{}", spec.name);
        let f_full = mt_elastic::cost::frequency_mhz(spec.logic_levels, full);
        let f_red = mt_elastic::cost::frequency_mhz(spec.logic_levels, reduced);
        assert!(f_red >= f_full, "{}", spec.name);
    }
}

/// The paper's "~15 % average savings" headline at 8 threads.
#[test]
fn average_savings_match_the_paper_headline() {
    let avg = average_savings(8);
    assert!((0.12..=0.19).contains(&avg), "average savings {avg:.3}");
}

/// "The savings in the processor are larger than in MD5, since it has a
/// larger ratio of MEB area vs combinational logic area."
#[test]
fn processor_savings_exceed_md5_savings() {
    assert!(savings_fraction(&processor_design(), 8) > savings_fraction(&md5_design(), 8));
}

/// "If we increase the number of threads to 16 the average savings rise"
/// — the model reproduces the direction and most of the magnitude
/// (paper: >22 %; structural model: ~19 %, see EXPERIMENTS.md).
#[test]
fn savings_rise_with_16_threads() {
    let s8 = average_savings(8);
    let s16 = average_savings(16);
    assert!(s16 > s8, "saving must grow: {s8:.3} -> {s16:.3}");
    assert!(s16 > 0.18, "16-thread saving {s16:.3}");
}

/// MD5's fully unrolled round gives it an order-of-magnitude lower clock
/// than the processor — the most striking feature of Table I.
#[test]
fn clock_gap_between_designs() {
    let rows = table1_rows(8);
    let md5_f = rows
        .iter()
        .find(|r| r.design == "MD5 hash")
        .expect("md5 row")
        .freq_mhz;
    let cpu_f = rows
        .iter()
        .find(|r| r.design == "Processor")
        .expect("cpu row")
        .freq_mhz;
    assert!(
        cpu_f > 4.0 * md5_f,
        "cpu {cpu_f:.1} MHz vs md5 {md5_f:.1} MHz"
    );
}
