//! The Figure 5 experiment: a 2-stage MEB pipeline with two threads where
//! thread B's consumer stalls for a window, traced cycle by cycle
//! (paper, Fig. 5(a) full MEBs vs Fig. 5(b) reduced MEBs).

use elastic_core::{MebKind, PipelineConfig, PipelineHarness};
use elastic_sim::{ReadyPolicy, RowSpec};

/// Parameters of the Figure 5 run.
#[derive(Clone, Debug)]
pub struct Fig5Setup {
    /// MEB microarchitecture under trace.
    pub kind: MebKind,
    /// Pipeline depth (the paper uses 2).
    pub stages: usize,
    /// Tokens injected per thread.
    pub tokens_per_thread: u64,
    /// First cycle of thread B's downstream stall.
    pub stall_from: u64,
    /// First cycle after the stall.
    pub stall_to: u64,
    /// Cycles to simulate.
    pub cycles: u64,
}

impl Fig5Setup {
    /// The paper's scenario: 2 stages, B stalls for a handful of cycles,
    /// then is released.
    pub fn paper(kind: MebKind) -> Self {
        Self {
            kind,
            stages: 2,
            tokens_per_thread: 8,
            stall_from: 3,
            stall_to: 8,
            cycles: 24,
        }
    }
}

/// Builds and runs the traced Figure 5 pipeline; returns the harness with
/// the trace recorded.
///
/// # Panics
///
/// Panics if the simulation reports a protocol error (it must not).
pub fn fig5_harness(setup: &Fig5Setup) -> PipelineHarness {
    let cfg = PipelineConfig::free_flowing(2, setup.stages, setup.kind, setup.tokens_per_thread)
        .with_sink_policy(
            1,
            ReadyPolicy::StallWindow {
                from: setup.stall_from,
                to: setup.stall_to,
            },
        );
    let mut h = PipelineHarness::build(cfg);
    h.circuit.enable_trace();
    h.circuit
        .run(setup.cycles)
        .expect("fig5 pipeline runs clean");
    h
}

/// Grid rows matching the paper's figure: input channel, each MEB's
/// per-thread and shared slots, the inter-stage channels, and the output.
pub fn fig5_rows(h: &PipelineHarness, kind: MebKind) -> Vec<RowSpec> {
    let mut rows = vec![RowSpec::channel(h.pipeline.input, "Input")];
    for (i, name) in h.pipeline.meb_names.iter().enumerate() {
        match kind {
            MebKind::Full => {
                for t in 0..2 {
                    rows.push(RowSpec::slot(
                        name,
                        format!("main[{t}]"),
                        format!("MEB#{i} main[{t}]"),
                    ));
                    rows.push(RowSpec::slot(
                        name,
                        format!("aux[{t}]"),
                        format!("MEB#{i} aux[{t}]"),
                    ));
                }
            }
            MebKind::Reduced => {
                for t in 0..2 {
                    rows.push(RowSpec::slot(
                        name,
                        format!("main[{t}]"),
                        format!("MEB#{i} main[{t}]"),
                    ));
                }
                rows.push(RowSpec::slot(name, "shared", format!("MEB#{i} shared")));
            }
            MebKind::Fifo { depth } => {
                for t in 0..2 {
                    for d in 0..depth {
                        rows.push(RowSpec::slot(
                            name,
                            format!("q[{t}][{d}]"),
                            format!("MEB#{i} q[{t}][{d}]"),
                        ));
                    }
                }
            }
        }
        rows.push(RowSpec::channel(
            h.pipeline.channels[i + 1],
            format!("Channel {i}"),
        ));
    }
    rows.pop();
    rows.push(RowSpec::channel(h.pipeline.output, "Output"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use elastic_sim::GridTrace;

    #[test]
    fn fig5_runs_and_renders_for_both_kinds() {
        for kind in [MebKind::Full, MebKind::Reduced] {
            let setup = Fig5Setup::paper(kind);
            let h = fig5_harness(&setup);
            let grid = GridTrace::new(fig5_rows(&h, kind));
            let rendered = grid.render(h.circuit.trace().expect("traced"), 0, setup.cycles - 1);
            assert!(rendered.contains("Input"), "{rendered}");
            assert!(rendered.contains("Output"));
            assert!(rendered.contains("A0"));
            assert!(rendered.contains("B0"));
        }
    }

    #[test]
    fn all_tokens_eventually_delivered_in_both_variants() {
        for kind in [MebKind::Full, MebKind::Reduced] {
            let h = fig5_harness(&Fig5Setup::paper(kind));
            assert_eq!(h.sink().consumed_total(), 16, "{kind}");
        }
    }

    #[test]
    fn shared_slot_absorbs_the_stalled_thread_in_reduced() {
        let setup = Fig5Setup::paper(MebKind::Reduced);
        let h = fig5_harness(&setup);
        let trace = h.circuit.trace().expect("traced");
        // During the stall, some MEB's shared slot must hold a B token.
        let some_shared_b = trace.records().iter().any(|r| {
            r.slots.iter().map(|(_, slots)| slots).any(|slots| {
                slots.iter().any(|s| {
                    s.name == "shared" && s.occupant.as_ref().is_some_and(|(t, _)| *t == 1)
                })
            })
        });
        assert!(
            some_shared_b,
            "shared register never held the stalled thread"
        );
    }
}
