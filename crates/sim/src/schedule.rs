//! Testbench endpoints: token sources and sinks with stall policies.

use std::collections::VecDeque;

use crate::channel::ChannelId;
use crate::circuit::{EvalCtx, TickCtx};
use crate::component::{CombPath, Component, NextEvent, Ports};
use crate::mask::ThreadMask;
use crate::netlist::NetlistNodeKind;
use crate::token::Token;

/// Deterministic 64-bit mix (splitmix64 finalizer). Used to derive
/// per-cycle pseudo-random decisions that are *stable across settle
/// iterations* — `eval` must be idempotent within a cycle.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// When a [`Sink`] asserts `ready` for a thread.
#[derive(Clone, Debug)]
pub enum ReadyPolicy {
    /// Always ready.
    Always,
    /// Never ready (a permanently blocked consumer).
    Never,
    /// Ready except during the half-open cycle range `from..to`.
    ///
    /// This reproduces scripted stalls such as "thread B stalls during
    /// cycles 2–4" in the paper's Figure 5.
    StallWindow {
        /// First stalled cycle.
        from: u64,
        /// First cycle after the stall.
        to: u64,
    },
    /// Periodically ready: `on` ready cycles followed by `off` stalled
    /// cycles, starting at `phase`.
    Period {
        /// Ready cycles per period.
        on: u64,
        /// Stalled cycles per period.
        off: u64,
        /// Offset of the pattern start.
        phase: u64,
    },
    /// Ready with probability `p` each cycle, deterministically derived
    /// from `seed` (same decision on every settle iteration of a cycle).
    Random {
        /// Probability of being ready in a given cycle (0.0–1.0).
        p: f64,
        /// Seed for the per-cycle hash.
        seed: u64,
    },
}

impl ReadyPolicy {
    /// Whether the policy is ready for `thread` at `cycle`.
    pub fn is_ready(&self, cycle: u64, thread: usize) -> bool {
        match *self {
            ReadyPolicy::Always => true,
            ReadyPolicy::Never => false,
            ReadyPolicy::StallWindow { from, to } => !(cycle >= from && cycle < to),
            ReadyPolicy::Period { on, off, phase } => {
                let period = on + off;
                if period == 0 {
                    return true;
                }
                (cycle.wrapping_add(phase)) % period < on
            }
            ReadyPolicy::Random { p, seed } => {
                let h =
                    mix64(seed ^ cycle.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ (thread as u64) << 48);
                (h as f64 / u64::MAX as f64) < p
            }
        }
    }
}

/// Injects tokens into a multithreaded elastic channel.
///
/// Each thread owns a FIFO of `(release_cycle, token)` pairs. Every cycle
/// the source considers the threads whose head token is released *and*
/// whose downstream `ready(i)` is high, and offers exactly one of them
/// (round-robin) — respecting the MT channel invariant that only one
/// `valid(i)` may be asserted per cycle.
pub struct Source<T: Token> {
    name: String,
    out: ChannelId,
    threads: usize,
    queues: Vec<VecDeque<(u64, T)>>,
    rr: usize,
    injected: Vec<u64>,
    /// Released-head word for [`Source::eval_fused`]: bit `t` set iff
    /// thread `t`'s queue head is released this cycle. Queues change only
    /// at the clock edge (or between cycles via `push*`), so one rebuild
    /// per cycle serves every settle re-evaluation.
    fused_eligible: ThreadMask,
    /// Cycle-cache stamp for `fused_eligible`: `cycle + 1` when current,
    /// 0 = invalid.
    fused_stamp: u64,
    /// Bit `t` set iff thread `t`'s queue is non-empty, maintained
    /// incrementally on `push*`/tick. While no time-gated token is queued
    /// ([`timed`](Self::timed) is 0) this *is* the eligibility word, so
    /// the per-cycle rebuild collapses to a word copy.
    fused_nonempty: ThreadMask,
    /// Number of queued tokens with a non-zero release cycle. Zero on the
    /// common release-immediately workloads; while non-zero the
    /// eligibility rebuild falls back to the per-thread head scan.
    timed: usize,
}

impl<T: Token> Source<T> {
    /// A source with empty per-thread queues driving `out`.
    pub fn new(name: impl Into<String>, out: ChannelId, threads: usize) -> Self {
        Self {
            name: name.into(),
            out,
            threads,
            queues: (0..threads).map(|_| VecDeque::new()).collect(),
            rr: 0,
            injected: vec![0; threads],
            fused_eligible: ThreadMask::new(threads),
            fused_stamp: 0,
            fused_nonempty: ThreadMask::new(threads),
            timed: 0,
        }
    }

    /// Queues `token` on `thread`, available immediately.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn push(&mut self, thread: usize, token: T) {
        self.queues[thread].push_back((0, token));
        self.fused_nonempty.set(thread, true);
    }

    /// Queues `token` on `thread`, released no earlier than `cycle`.
    ///
    /// Release cycles are clamped to stay FIFO-monotonic per thread: a
    /// `cycle` earlier than the previously queued token's release (e.g. a
    /// push "in the past" issued mid-run, after the simulation clock — or
    /// a quiescence fast-forward jump — has already passed `cycle`) makes
    /// the token eligible at the next cycle the thread's queue head can
    /// legally release, instead of panicking or wedging the
    /// [`next_event`](Component::next_event) schedule behind an
    /// unreachable timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn push_at(&mut self, thread: usize, cycle: u64, token: T) {
        let release = match self.queues[thread].back() {
            Some((last, _)) => cycle.max(*last),
            None => cycle,
        };
        if release > 0 {
            self.timed += 1;
        }
        self.queues[thread].push_back((release, token));
        self.fused_nonempty.set(thread, true);
    }

    /// Queues every token from `iter` on `thread`, available immediately.
    pub fn extend(&mut self, thread: usize, iter: impl IntoIterator<Item = T>) {
        for t in iter {
            self.push(thread, t);
        }
    }

    /// Tokens not yet injected, per thread.
    pub fn pending(&self, thread: usize) -> usize {
        self.queues[thread].len()
    }

    /// Total tokens not yet injected.
    pub fn pending_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Tokens injected so far, per thread.
    pub fn injected(&self, thread: usize) -> u64 {
        self.injected[thread]
    }

    /// True when every queue is drained.
    pub fn is_drained(&self) -> bool {
        self.pending_total() == 0
    }

    fn eligible(&self, cycle: u64) -> impl Iterator<Item = usize> + '_ {
        (0..self.threads)
            .filter(move |&t| self.queues[t].front().is_some_and(|(rel, _)| *rel <= cycle))
    }

    /// Fused-kernel evaluation: identical observable behaviour to
    /// [`Component::eval`], but the released-head scan over the
    /// per-thread queues runs once per cycle into a packed word, and the
    /// round-robin "released ∧ downstream-ready" pick becomes a word-level
    /// wrapping scan instead of per-thread queue probes.
    pub fn eval_fused(&mut self, ctx: &mut EvalCtx<'_, T>) {
        let cycle = ctx.cycle();
        if self.fused_stamp != cycle + 1 {
            if self.timed == 0 {
                // No time-gated token anywhere: every non-empty queue's
                // head is released, so the incrementally maintained
                // occupancy word is the eligibility word.
                self.fused_eligible.copy_from(&self.fused_nonempty);
            } else {
                for t in 0..self.threads {
                    self.fused_eligible.set(
                        t,
                        self.queues[t].front().is_some_and(|(rel, _)| *rel <= cycle),
                    );
                }
            }
            self.fused_stamp = cycle + 1;
        }
        // Ready-first in round-robin order, else the round-robin first
        // released thread (valid may precede ready — the offer stalls).
        // The intersection with `ready(out)` is folded into the wrapping
        // scan, so no scratch mask is touched per evaluation.
        let chosen = self
            .fused_eligible
            .next_one_wrapping_and(ctx.ready_mask(self.out), self.rr)
            .or_else(|| self.fused_eligible.next_one_wrapping(self.rr));
        match chosen {
            Some(t) => {
                let data = self.queues[t]
                    .front()
                    .map(|(_, d)| d.clone())
                    .expect("eligible head");
                ctx.drive_token(self.out, t, data);
            }
            None => ctx.drive_idle(self.out),
        }
    }
}

impl<T: Token> Component<T> for Source<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Endpoint
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // The arbiter reads `ready(out)` to pick which thread to offer, so
        // downstream ready feeds into `valid(out)`. The offer is re-derived
        // deterministically from the ready mask each sweep (ready request
        // wins, else round-robin fallback), so settle iteration converges
        // even when the channel sits on a ready→valid cycle: damped.
        vec![CombPath::ReadyToValid {
            from: self.out,
            to: self.out,
            damped: true,
        }]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        let cycle = ctx.cycle();
        // Requests: token available and downstream ready (the paper's MEB
        // arbiter likewise "takes into account which threads are ready
        // downstream").
        let mut chosen = None;
        for off in 0..self.threads {
            let t = (self.rr + off) % self.threads;
            let has = self.queues[t].front().is_some_and(|(rel, _)| *rel <= cycle);
            if has && ctx.ready(self.out, t) {
                chosen = Some(t);
                break;
            }
        }
        // If nobody is ready downstream, still offer the round-robin first
        // eligible thread so `valid` precedes `ready` (elastic protocol
        // permits valid-without-ready; the token simply stalls).
        if chosen.is_none() {
            chosen = self
                .eligible(cycle)
                .min_by_key(|&t| (t + self.threads - self.rr) % self.threads);
        }
        match chosen {
            Some(t) => {
                let data = self.queues[t]
                    .front()
                    .map(|(_, d)| d.clone())
                    .expect("eligible head");
                ctx.drive_token(self.out, t, data);
            }
            None => ctx.drive_idle(self.out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        for t in 0..self.threads {
            if ctx.fired(self.out, t) {
                if let Some((rel, _)) = self.queues[t].pop_front() {
                    if rel > 0 {
                        self.timed -= 1;
                    }
                }
                if self.queues[t].is_empty() {
                    self.fused_nonempty.set(t, false);
                }
                self.injected[t] += 1;
                self.rr = (t + 1) % self.threads;
            } else if ctx.valid(self.out, t) {
                // Stalled offer: rotate so every waiting thread is
                // eventually presented downstream (a closed barrier must
                // be able to observe all arrivals).
                self.rr = (t + 1) % self.threads;
            }
        }
    }

    fn reset(&mut self) -> bool {
        for q in &mut self.queues {
            q.clear();
        }
        self.rr = 0;
        self.injected.iter_mut().for_each(|n| *n = 0);
        self.fused_stamp = 0;
        self.fused_nonempty.clear();
        self.timed = 0;
        true
    }

    fn next_event(&self, now: u64) -> NextEvent {
        // An already-released head means the source is (or should be)
        // asserting valid — report the conservative answer. Otherwise the
        // earliest future release is the next moment this source can act.
        let mut earliest: Option<u64> = None;
        for q in &self.queues {
            if let Some(&(rel, _)) = q.front() {
                if rel <= now {
                    return NextEvent::EveryCycle;
                }
                earliest = Some(earliest.map_or(rel, |e| e.min(rel)));
            }
        }
        match earliest {
            Some(rel) => NextEvent::At(rel),
            None => NextEvent::Idle,
        }
    }

    crate::impl_as_any!();
}

/// Consumes tokens from a channel according to a per-thread
/// [`ReadyPolicy`], optionally capturing everything it accepts.
pub struct Sink<T: Token> {
    name: String,
    inp: ChannelId,
    policies: Vec<ReadyPolicy>,
    captured: Vec<Vec<(u64, T)>>,
    counts: Vec<u64>,
    capture: bool,
    /// Policy-word cache for [`eval_fused`](Sink::eval_fused): the ready
    /// mask computed for cycle `fused_stamp - 1` (`0` = invalid).
    fused_ready: ThreadMask,
    fused_stamp: u64,
}

impl<T: Token> Sink<T> {
    /// A sink applying the same `policy` to every thread, not capturing.
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        threads: usize,
        policy: ReadyPolicy,
    ) -> Self {
        Self {
            name: name.into(),
            inp,
            policies: vec![policy; threads],
            captured: (0..threads).map(|_| Vec::new()).collect(),
            counts: vec![0; threads],
            capture: false,
            fused_ready: ThreadMask::new(threads),
            fused_stamp: 0,
        }
    }

    /// A sink that records every `(cycle, token)` it consumes.
    pub fn with_capture(
        name: impl Into<String>,
        inp: ChannelId,
        threads: usize,
        policy: ReadyPolicy,
    ) -> Self {
        let mut s = Self::new(name, inp, threads, policy);
        s.capture = true;
        s
    }

    /// Overrides the policy of a single thread (e.g. "thread B stalls").
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn set_policy(&mut self, thread: usize, policy: ReadyPolicy) {
        self.policies[thread] = policy;
        // A sweep harness reconfigures policies between runs on a reused
        // circuit; the cached policy word is stale the moment one changes.
        self.fused_stamp = 0;
    }

    /// Tokens consumed by `thread`, with the cycle at which each arrived.
    pub fn captured(&self, thread: usize) -> &[(u64, T)] {
        &self.captured[thread]
    }

    /// Number of tokens consumed by `thread` (counted even when payload
    /// capture is disabled).
    pub fn consumed(&self, thread: usize) -> u64 {
        self.counts[thread]
    }

    /// Total tokens consumed across threads.
    pub fn consumed_total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fused-kernel evaluation: identical observable behaviour to
    /// [`eval`](Component::eval), but the per-thread policy word is
    /// computed once per *cycle* and cached across settle rounds —
    /// [`ReadyPolicy::Random`] hashes every thread on every call, which
    /// the interpreted path pays again each round — and committed with a
    /// single word-level mask write instead of a per-thread setter loop.
    pub fn eval_fused(&mut self, ctx: &mut EvalCtx<'_, T>) {
        let cycle = ctx.cycle();
        if self.fused_stamp != cycle + 1 {
            for (t, policy) in self.policies.iter().enumerate() {
                self.fused_ready.set(t, policy.is_ready(cycle, t));
            }
            self.fused_stamp = cycle + 1;
            // Commit once per cycle: the sink is the only driver of
            // `ready(inp)` and the word depends on the cycle number
            // alone, so re-commits on settle re-evaluations would be
            // guaranteed no-ops — skip them.
            ctx.set_ready_mask(self.inp, &self.fused_ready);
        }
    }
}

impl<T: Token> Component<T> for Sink<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Endpoint
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Ready is a pure function of the cycle number and the policy —
        // it never looks at `valid(inp)`, so there is no valid→ready path
        // (the conservative default would wrongly declare one and drag the
        // sink into a feedback cycle with its source).
        Vec::new()
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        let cycle = ctx.cycle();
        for (t, policy) in self.policies.iter().enumerate() {
            ctx.set_ready(self.inp, t, policy.is_ready(cycle, t));
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        if let Some((t, data)) = ctx.fired_any(self.inp) {
            self.counts[t] += 1;
            if self.capture {
                self.captured[t].push((ctx.cycle(), data.clone()));
            }
        }
    }

    fn reset(&mut self) -> bool {
        // Policies and the capture flag are configuration; only the
        // recorded consumption rewinds. The policy-word cache is keyed by
        // cycle, which restarts at 0, so it must be invalidated too.
        for c in &mut self.captured {
            c.clear();
        }
        self.counts.iter_mut().for_each(|n| *n = 0);
        self.fused_stamp = 0;
        true
    }

    fn next_event(&self, _now: u64) -> NextEvent {
        // Purely reactive. Ready policies do depend on the cycle number,
        // but while the network is quiescent no token exists for a ready
        // change to release, and the first stepped cycle after a jump
        // re-sweeps every component, recomputing the policies at the new
        // cycle.
        NextEvent::Idle
    }

    crate::impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_policy_windows_and_periods() {
        let w = ReadyPolicy::StallWindow { from: 2, to: 5 };
        assert!(w.is_ready(1, 0));
        assert!(!w.is_ready(2, 0));
        assert!(!w.is_ready(4, 0));
        assert!(w.is_ready(5, 0));

        let p = ReadyPolicy::Period {
            on: 1,
            off: 2,
            phase: 0,
        };
        assert!(p.is_ready(0, 0));
        assert!(!p.is_ready(1, 0));
        assert!(!p.is_ready(2, 0));
        assert!(p.is_ready(3, 0));
    }

    #[test]
    fn random_policy_is_cycle_deterministic() {
        let r = ReadyPolicy::Random { p: 0.5, seed: 42 };
        for cycle in 0..64 {
            assert_eq!(r.is_ready(cycle, 0), r.is_ready(cycle, 0));
        }
        // Roughly half ready over a long horizon.
        let ready = (0..10_000).filter(|&c| r.is_ready(c, 0)).count();
        assert!((3_000..7_000).contains(&ready), "ready={ready}");
    }

    #[test]
    fn source_release_cycles_are_clamped_monotonic() {
        // A push "before" an already-queued release keeps FIFO order by
        // clamping: the new token becomes eligible when its predecessor
        // is, rather than panicking (the old behaviour) or producing a
        // release schedule that runs backwards.
        let mut s = Source::<u64>::new("s", ChannelId(0), 1);
        s.push_at(0, 5, 1);
        s.push_at(0, 3, 2);
        assert_eq!(s.next_event(0), NextEvent::At(5));
        assert_eq!(
            s.queues[0].iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![5, 5],
            "late push clamps to the predecessor's release cycle"
        );
    }

    #[test]
    fn push_in_the_past_mid_run_releases_next_eligible_cycle() {
        // Regression: a token pushed with a release cycle the simulation
        // clock has already passed (easy to do after a quiescence
        // fast-forward jump) must flow on the next cycle, not stall and
        // not corrupt the fast-forward accounting.
        use crate::builder::CircuitBuilder;

        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("ch", 1);
        let mut src = Source::<u64>::new("src", ch, 1);
        src.push(0, 1);
        b.add(src);
        b.add(Sink::with_capture("snk", ch, 1, ReadyPolicy::Always));
        let mut c = b.build().expect("valid");

        // Token 1 is delivered at cycle 0; the rest of the window is
        // quiescent and fast-forwarded.
        c.run(40).expect("clean");
        assert_eq!(c.cycle(), 40);
        assert!(c.is_quiescent());
        assert!(c.stats().kernel().quiesced_cycles > 0, "gap was stepped");

        // Now push "at cycle 3" — 37 cycles in the past.
        let src: &mut Source<u64> = c.get_mut("src").expect("source");
        src.push_at(0, 3, 2);
        assert_eq!(
            src.next_event(40),
            NextEvent::EveryCycle,
            "released head reports conservative next_event"
        );
        c.run(5).expect("clean");

        let snk: &Sink<u64> = c.get("snk").expect("sink");
        assert_eq!(
            snk.captured(0),
            &[(0, 1), (40, 2)],
            "past-released token must fire on the first cycle after the push"
        );
        // Cycle accounting stayed consistent across the jump + late push.
        assert_eq!(c.cycle(), 45);
        assert_eq!(c.stats().cycles(), 45);
    }

    #[test]
    fn source_eval_is_idempotent_within_a_cycle() {
        // Regression for the stalled-offer fallback: with no thread ready
        // downstream, a second settle sweep must re-derive exactly the
        // same offer — `eval` may not depend on how many times it ran.
        use crate::channel::{ChannelSpec, ChannelState};

        let mut src = Source::<u64>::new("src", ChannelId(0), 3);
        src.push(0, 10);
        src.push(1, 11);
        src.push(2, 12);
        src.rr = 1; // mid-rotation, as after a few simulated cycles

        let mut channels = vec![ChannelState::<u64>::new(ChannelSpec {
            name: "ch".into(),
            threads: 3,
        })];
        let driver = vec![0usize];
        let reader = vec![0usize];
        let listen_valid = vec![false];
        let listen_ready = vec![true];
        let feedback = vec![false];
        let mut woke = crate::ThreadMask::new(1);
        let mut sweep = |src: &mut Source<u64>, channels: &mut Vec<ChannelState<u64>>| {
            let mut changed = false;
            let mut ctx = EvalCtx {
                channels,
                woke: &mut woke,
                changed: &mut changed,
                current: 0,
                driver: &driver,
                reader: &reader,
                listen_valid: &listen_valid,
                listen_ready: &listen_ready,
                feedback: &feedback,
                cycle: 4,
            };
            src.eval(&mut ctx);
            changed
        };

        // Nobody ready: the fallback offer must be stable across sweeps.
        sweep(&mut src, &mut channels);
        let first = (channels[0].valid.clone(), channels[0].data);
        let changed = sweep(&mut src, &mut channels);
        assert!(
            !changed,
            "second sweep changed signals the first already settled"
        );
        assert_eq!((channels[0].valid.clone(), channels[0].data), first);
        assert_eq!(
            channels[0].single_valid(),
            Some(1),
            "fallback follows the rr pointer"
        );

        // Downstream becomes ready for thread 2 only: again stable.
        channels[0].ready = crate::ThreadMask::from_bools(&[false, false, true]);
        sweep(&mut src, &mut channels);
        let first = (channels[0].valid.clone(), channels[0].data);
        let changed = sweep(&mut src, &mut channels);
        assert!(!changed);
        assert_eq!((channels[0].valid.clone(), channels[0].data), first);
        assert_eq!(
            channels[0].single_valid(),
            Some(2),
            "ready request wins over fallback"
        );
    }

    #[test]
    fn source_next_event_reports_earliest_release() {
        let mut s = Source::<u64>::new("s", ChannelId(0), 2);
        assert_eq!(s.next_event(0), NextEvent::Idle);
        s.push_at(0, 9, 1);
        s.push_at(1, 5, 2);
        assert_eq!(s.next_event(3), NextEvent::At(5));
        assert_eq!(s.next_event(5), NextEvent::EveryCycle);
    }

    #[test]
    fn source_tracks_pending_counts() {
        let mut s = Source::<u64>::new("s", ChannelId(0), 2);
        s.extend(0, [1, 2, 3]);
        s.push(1, 9);
        assert_eq!(s.pending(0), 3);
        assert_eq!(s.pending(1), 1);
        assert_eq!(s.pending_total(), 4);
        assert!(!s.is_drained());
    }
}
