//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! a minimal benchmark harness with criterion's API shape: groups,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: a short warm-up, then timed batches until either
//! ~200 ms or 10k iterations elapse; the mean ns/iter (and derived
//! element/byte throughput) is printed to stdout. No statistics, plots
//! or baselines — enough to compare kernels by eye and to keep
//! `cargo bench` runnable offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units for reporting throughput alongside time per iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter display.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            std_black_box(f());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < budget && iters < 10_000 {
            std_black_box(f());
            iters += 1;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let per = match throughput {
        Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / mean_ns * 1e9 / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {mean_ns:>14.0} ns/iter{per}");
}

/// A named set of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the shim runs a fixed number of
    /// iterations regardless.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores time budgets.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver (stand-in for criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&id.to_string(), b.mean_ns, None);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("inc", 1), &1u64, |b, &x| {
            ran += 1;
            b.iter(|| x + 1)
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
