//! A two-pass assembler for DTU-RISC.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! # comments with '#' or ';'
//! start:                  # labels end with ':'
//!     addi r1, r0, 10
//!     li   r2, 0x12345    # pseudo: lui+ori (or addi when it fits)
//!     mov  r3, r1         # pseudo: add r3, r1, r0
//! loop:
//!     sw   r1, 0(r2)
//!     addi r1, r1, -1
//!     bne  r1, r0, loop   # branch targets may be labels
//!     halt
//! ```
//!
//! Registers are written `r0`–`r31`. Branch targets resolve to relative
//! offsets, jump targets to absolute word addresses.

use std::collections::HashMap;

use crate::isa::Instr;

/// An assembly error with its 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Parses `r0`–`r31`.
fn reg(line: usize, tok: &str) -> Result<u8, AsmError> {
    let tok = tok.trim();
    let body = tok
        .strip_prefix('r')
        .or_else(|| tok.strip_prefix('$'))
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let n: u8 = body
        .parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))?;
    if n >= 32 {
        return Err(err(line, format!("register `{tok}` out of range")));
    }
    Ok(n)
}

/// Parses a decimal or `0x` immediate.
fn imm_i64(line: usize, tok: &str) -> Result<i64, AsmError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

fn imm16s(line: usize, tok: &str) -> Result<i16, AsmError> {
    let v = imm_i64(line, tok)?;
    i16::try_from(v).map_err(|_| err(line, format!("immediate `{tok}` exceeds 16 bits (signed)")))
}

fn imm16u(line: usize, tok: &str) -> Result<u16, AsmError> {
    let v = imm_i64(line, tok)?;
    u16::try_from(v).map_err(|_| {
        err(
            line,
            format!("immediate `{tok}` exceeds 16 bits (unsigned)"),
        )
    })
}

fn shamt5(line: usize, tok: &str) -> Result<u8, AsmError> {
    let v = imm_i64(line, tok)?;
    if !(0..32).contains(&v) {
        return Err(err(line, format!("shift amount `{tok}` must be 0–31")));
    }
    Ok(v as u8)
}

/// An operand that is either a label or a numeric value, resolved in the
/// second pass.
#[derive(Clone, Debug)]
enum Target {
    Label(String),
    Absolute(u32),
}

#[derive(Clone, Debug)]
enum Item {
    Ready(Instr),
    Branch {
        kind: BranchKind,
        rs: u8,
        rt: u8,
        target: Target,
    },
    Jump {
        link: bool,
        target: Target,
    },
    /// A raw data word (`.word`).
    Word(u32),
}

#[derive(Clone, Copy, Debug)]
enum BranchKind {
    Eq,
    Ne,
}

/// Splits `"lw r1, 4(r2)"`-style memory operands.
fn mem_operand(line: usize, tok: &str) -> Result<(i16, u8), AsmError> {
    let tok = tok.trim();
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `off(reg)`, got `{tok}`")))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off = if open == 0 {
        0
    } else {
        imm16s(line, &tok[..open])?
    };
    let base = reg(line, &close[open + 1..])?;
    Ok((off, base))
}

/// Assembles `source` into instruction words starting at word address 0.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: unknown mnemonic, bad
/// operand, duplicate or undefined label, or an out-of-range offset.
///
/// # Examples
///
/// ```
/// use elastic_proc::asm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let words = assemble("addi r1, r0, 5\nhalt\n")?;
/// assert_eq!(words.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Vec<u32>, AsmError> {
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut items: Vec<(usize, Item)> = Vec::new();

    // Pass 1: collect labels and parse instructions.
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(pos) = text.find(['#', ';']) {
            text = &text[..pos];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let label = text[..colon].trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line, format!("bad label `{label}`")));
            }
            if labels
                .insert(label.to_string(), items.len() as u32)
                .is_some()
            {
                return Err(err(line, format!("duplicate label `{label}`")));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let argc = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
                ))
            }
        };

        let target = |tok: &str| -> Result<Target, AsmError> {
            if tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                Ok(Target::Absolute(imm_i64(line, tok)? as u32))
            } else {
                Ok(Target::Label(tok.to_string()))
            }
        };

        let item = match mnemonic {
            "add" | "sub" | "and" | "or" | "xor" | "nor" | "slt" | "sltu" | "mul" => {
                argc(3)?;
                let (rd, rs, rt) = (reg(line, ops[0])?, reg(line, ops[1])?, reg(line, ops[2])?);
                Item::Ready(match mnemonic {
                    "add" => Instr::Add { rd, rs, rt },
                    "sub" => Instr::Sub { rd, rs, rt },
                    "and" => Instr::And { rd, rs, rt },
                    "or" => Instr::Or { rd, rs, rt },
                    "xor" => Instr::Xor { rd, rs, rt },
                    "nor" => Instr::Nor { rd, rs, rt },
                    "slt" => Instr::Slt { rd, rs, rt },
                    "sltu" => Instr::Sltu { rd, rs, rt },
                    _ => Instr::Mul { rd, rs, rt },
                })
            }
            "sll" | "srl" | "sra" => {
                argc(3)?;
                let (rd, rt, shamt) = (
                    reg(line, ops[0])?,
                    reg(line, ops[1])?,
                    shamt5(line, ops[2])?,
                );
                Item::Ready(match mnemonic {
                    "sll" => Instr::Sll { rd, rt, shamt },
                    "srl" => Instr::Srl { rd, rt, shamt },
                    _ => Instr::Sra { rd, rt, shamt },
                })
            }
            "addi" | "slti" => {
                argc(3)?;
                let (rt, rs, imm) = (
                    reg(line, ops[0])?,
                    reg(line, ops[1])?,
                    imm16s(line, ops[2])?,
                );
                Item::Ready(if mnemonic == "addi" {
                    Instr::Addi { rt, rs, imm }
                } else {
                    Instr::Slti { rt, rs, imm }
                })
            }
            "andi" | "ori" | "xori" => {
                argc(3)?;
                let (rt, rs, imm) = (
                    reg(line, ops[0])?,
                    reg(line, ops[1])?,
                    imm16u(line, ops[2])?,
                );
                Item::Ready(match mnemonic {
                    "andi" => Instr::Andi { rt, rs, imm },
                    "ori" => Instr::Ori { rt, rs, imm },
                    _ => Instr::Xori { rt, rs, imm },
                })
            }
            "lui" => {
                argc(2)?;
                Item::Ready(Instr::Lui {
                    rt: reg(line, ops[0])?,
                    imm: imm16u(line, ops[1])?,
                })
            }
            "lw" | "sw" => {
                argc(2)?;
                let rt = reg(line, ops[0])?;
                let (imm, rs) = mem_operand(line, ops[1])?;
                Item::Ready(if mnemonic == "lw" {
                    Instr::Lw { rt, rs, imm }
                } else {
                    Instr::Sw { rt, rs, imm }
                })
            }
            "beq" | "bne" => {
                argc(3)?;
                Item::Branch {
                    kind: if mnemonic == "beq" {
                        BranchKind::Eq
                    } else {
                        BranchKind::Ne
                    },
                    rs: reg(line, ops[0])?,
                    rt: reg(line, ops[1])?,
                    target: target(ops[2])?,
                }
            }
            // Comparison pseudo-branches, expanding to slt + beq/bne via
            // the assembler temporary r1 (clobbered — the MIPS `$at`
            // convention).
            "blt" | "bgt" | "ble" | "bge" => {
                argc(3)?;
                const AT: u8 = 1;
                let a = reg(line, ops[0])?;
                let b_reg = reg(line, ops[1])?;
                let t = target(ops[2])?;
                let (slt_rs, slt_rt, kind) = match mnemonic {
                    "blt" => (a, b_reg, BranchKind::Ne), // a <  b  ⇔ slt != 0
                    "bgt" => (b_reg, a, BranchKind::Ne), // a >  b  ⇔ b < a
                    "ble" => (b_reg, a, BranchKind::Eq), // a <= b  ⇔ !(b < a)
                    _ => (a, b_reg, BranchKind::Eq),     // a >= b  ⇔ !(a < b)
                };
                items.push((
                    line,
                    Item::Ready(Instr::Slt {
                        rd: AT,
                        rs: slt_rs,
                        rt: slt_rt,
                    }),
                ));
                Item::Branch {
                    kind,
                    rs: AT,
                    rt: 0,
                    target: t,
                }
            }
            ".word" => {
                argc(1)?;
                let v = imm_i64(line, ops[0])?;
                if !(i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
                    return Err(err(
                        line,
                        format!("`.word` value `{}` out of range", ops[0]),
                    ));
                }
                Item::Word(v as u32)
            }
            "j" | "jal" => {
                argc(1)?;
                Item::Jump {
                    link: mnemonic == "jal",
                    target: target(ops[0])?,
                }
            }
            "jr" => {
                argc(1)?;
                Item::Ready(Instr::Jr {
                    rs: reg(line, ops[0])?,
                })
            }
            "tid" => {
                argc(1)?;
                Item::Ready(Instr::Tid {
                    rd: reg(line, ops[0])?,
                })
            }
            "nop" => {
                argc(0)?;
                Item::Ready(Instr::Nop)
            }
            "halt" => {
                argc(0)?;
                Item::Ready(Instr::Halt)
            }
            // Pseudo-instructions.
            "mov" => {
                argc(2)?;
                Item::Ready(Instr::Add {
                    rd: reg(line, ops[0])?,
                    rs: reg(line, ops[1])?,
                    rt: 0,
                })
            }
            "li" => {
                argc(2)?;
                let rt = reg(line, ops[0])?;
                let v = imm_i64(line, ops[1])?;
                if let Ok(small) = i16::try_from(v) {
                    Item::Ready(Instr::Addi {
                        rt,
                        rs: 0,
                        imm: small,
                    })
                } else {
                    let v = u32::try_from(v & 0xffff_ffff).map_err(|_| {
                        err(line, format!("`li` immediate `{}` out of range", ops[1]))
                    })?;
                    // Two instructions: lui + ori.
                    items.push((
                        line,
                        Item::Ready(Instr::Lui {
                            rt,
                            imm: (v >> 16) as u16,
                        }),
                    ));
                    Item::Ready(Instr::Ori {
                        rt,
                        rs: rt,
                        imm: (v & 0xffff) as u16,
                    })
                }
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        items.push((line, item));
    }

    // Pass 2: resolve labels.
    let resolve = |line: usize, target: &Target| -> Result<u32, AsmError> {
        match target {
            Target::Absolute(a) => Ok(*a),
            Target::Label(l) => labels
                .get(l)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label `{l}`"))),
        }
    };
    let mut words = Vec::with_capacity(items.len());
    for (pc, (line, item)) in items.iter().enumerate() {
        let instr = match item {
            Item::Ready(i) => *i,
            Item::Branch {
                kind,
                rs,
                rt,
                target,
            } => {
                let dest = resolve(*line, target)? as i64;
                let off = dest - (pc as i64 + 1);
                let imm = i16::try_from(off)
                    .map_err(|_| err(*line, format!("branch offset {off} out of range")))?;
                match kind {
                    BranchKind::Eq => Instr::Beq {
                        rs: *rs,
                        rt: *rt,
                        imm,
                    },
                    BranchKind::Ne => Instr::Bne {
                        rs: *rs,
                        rt: *rt,
                        imm,
                    },
                }
            }
            Item::Jump { link, target } => {
                let dest = resolve(*line, target)?;
                if *link {
                    Instr::Jal { target: dest }
                } else {
                    Instr::J { target: dest }
                }
            }
            Item::Word(w) => {
                words.push(*w);
                continue;
            }
        };
        words.push(instr.encode());
    }
    Ok(words)
}

/// Disassembles words back to text (one instruction per line), for
/// debugging and round-trip tests.
pub fn disassemble(words: &[u32]) -> Vec<String> {
    words
        .iter()
        .map(|&w| match Instr::decode(w) {
            Ok(i) => i.to_string(),
            Err(_) => format!(".word {w:#010x}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_a_basic_program() {
        let words = assemble(
            "start: addi r1, r0, 3\n\
             loop:  addi r1, r1, -1\n\
                    bne  r1, r0, loop\n\
                    halt\n",
        )
        .expect("assembles");
        assert_eq!(words.len(), 4);
        assert_eq!(
            Instr::decode(words[2]),
            Ok(Instr::Bne {
                rs: 1,
                rt: 0,
                imm: -2
            })
        );
        assert_eq!(Instr::decode(words[3]), Ok(Instr::Halt));
    }

    #[test]
    fn forward_labels_resolve() {
        let words = assemble("beq r0, r0, end\nnop\nend: halt\n").expect("assembles");
        assert_eq!(
            Instr::decode(words[0]),
            Ok(Instr::Beq {
                rs: 0,
                rt: 0,
                imm: 1
            })
        );
    }

    #[test]
    fn memory_operands_parse() {
        let words = assemble("lw r1, 8(r2)\nsw r3, -4(r4)\nlw r5, (r6)\n").expect("assembles");
        assert_eq!(
            Instr::decode(words[0]),
            Ok(Instr::Lw {
                rt: 1,
                rs: 2,
                imm: 8
            })
        );
        assert_eq!(
            Instr::decode(words[1]),
            Ok(Instr::Sw {
                rt: 3,
                rs: 4,
                imm: -4
            })
        );
        assert_eq!(
            Instr::decode(words[2]),
            Ok(Instr::Lw {
                rt: 5,
                rs: 6,
                imm: 0
            })
        );
    }

    #[test]
    fn li_pseudo_expands_when_large() {
        let small = assemble("li r1, 100\n").expect("assembles");
        assert_eq!(small.len(), 1);
        let large = assemble("li r1, 0x12345678\n").expect("assembles");
        assert_eq!(large.len(), 2);
        assert_eq!(
            Instr::decode(large[0]),
            Ok(Instr::Lui { rt: 1, imm: 0x1234 })
        );
        assert_eq!(
            Instr::decode(large[1]),
            Ok(Instr::Ori {
                rt: 1,
                rs: 1,
                imm: 0x5678
            })
        );
    }

    #[test]
    fn label_addresses_account_for_pseudo_expansion() {
        // `li` with a large value occupies two words; the label after it
        // must account for both.
        let words = assemble("li r1, 0x10000\nj end\nnop\nend: halt\n").expect("assembles");
        assert_eq!(Instr::decode(words[2]), Ok(Instr::J { target: 4 }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("beq r0, r0, nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = assemble("addi r1, r0, 99999\n").unwrap_err();
        assert!(e.message.contains("16 bits"));

        let e = assemble("add r32, r0, r0\n").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let words = assemble("# header\n\n  ; another\nnop # trailing\n").expect("assembles");
        assert_eq!(words.len(), 1);
    }

    #[test]
    fn comparison_pseudo_branches_expand_via_at() {
        let words = assemble(
            "start: blt r2, r3, start\n\
                    bge r2, r3, start\n\
                    halt\n",
        )
        .expect("assembles");
        assert_eq!(
            words.len(),
            5,
            "two pseudo-branches expand to two words each"
        );
        assert_eq!(
            Instr::decode(words[0]),
            Ok(Instr::Slt {
                rd: 1,
                rs: 2,
                rt: 3
            })
        );
        assert_eq!(
            Instr::decode(words[1]),
            Ok(Instr::Bne {
                rs: 1,
                rt: 0,
                imm: -2
            })
        );
        assert_eq!(
            Instr::decode(words[2]),
            Ok(Instr::Slt {
                rd: 1,
                rs: 2,
                rt: 3
            })
        );
        assert_eq!(
            Instr::decode(words[3]),
            Ok(Instr::Beq {
                rs: 1,
                rt: 0,
                imm: -4
            })
        );
    }

    #[test]
    fn pseudo_branch_semantics_on_the_cpu() {
        use crate::cpu::{Cpu, CpuConfig};
        // min(r2, r3) via ble, per thread: r2 = 5 + tid, r3 = 7.
        let src = "      tid  r4\n\
                         addi r2, r4, 5\n\
                         addi r3, r0, 7\n\
                         ble  r2, r3, keep\n\
                         mov  r2, r3\n\
                   keep: halt\n";
        let mut cpu = Cpu::from_asm(CpuConfig::new(4), src).expect("assembles");
        cpu.run_to_halt(100_000).expect("halts");
        for t in 0..4u32 {
            assert_eq!(cpu.reg(t as usize, 2), (5 + t).min(7), "thread {t}");
        }
    }

    #[test]
    fn word_directive_emits_raw_data() {
        let words = assemble(
            "j code\n\
             tab: .word 0xdeadbeef\n\
                  .word 42\n\
             code: halt\n",
        )
        .expect("assembles");
        assert_eq!(words[1], 0xdead_beef);
        assert_eq!(words[2], 42);
        assert_eq!(Instr::decode(words[0]), Ok(Instr::J { target: 3 }));
    }

    #[test]
    fn disassemble_round_trips_mnemonics() {
        let src = "addi r1, r0, 5\nmul r2, r1, r1\nhalt\n";
        let words = assemble(src).expect("assembles");
        let dis = disassemble(&words);
        assert_eq!(dis[0], "addi r1, r0, 5");
        assert_eq!(dis[1], "mul r2, r1, r1");
        assert_eq!(dis[2], "halt");
    }
}
