//! A generalized MEB with a private FIFO of configurable depth per thread.
//!
//! Not a primitive from the paper — an *ablation* axis: depth 2 recovers
//! the full MEB's storage (2·S slots), depth 1 shows what happens without
//! any auxiliary storage at all (a lone active thread can never exceed
//! 50 % throughput, because a slot freed this cycle is only visible
//! upstream on the next), and larger depths quantify how much extra
//! buffering buys beyond the paper's design points.

use std::collections::VecDeque;

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, NextEvent, Ports,
    ProtocolError, SlotView, ThreadMask, TickCtx, Token,
};

use crate::arbiter::Arbiter;
use crate::select::SelectState;

/// A MEB with `depth` private slots per thread and no shared storage.
pub struct FifoMeb<T: Token> {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    threads: usize,
    depth: usize,
    queues: Vec<VecDeque<T>>,
    arbiter: Box<dyn Arbiter>,
    select: SelectState,
    /// Persistent "thread has data" mask, rebuilt in place each eval.
    has: ThreadMask,
}

impl<T: Token> FifoMeb<T> {
    /// An empty FIFO MEB with `depth` slots per thread.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `depth == 0`.
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        depth: usize,
        arbiter: Box<dyn Arbiter>,
    ) -> Self {
        assert!(threads > 0, "a MEB needs at least one thread");
        assert!(depth > 0, "per-thread FIFO depth must be at least 1");
        Self {
            name: name.into(),
            inp,
            out,
            threads,
            depth,
            queues: (0..threads)
                .map(|_| VecDeque::with_capacity(depth))
                .collect(),
            arbiter,
            select: SelectState::new(),
            has: ThreadMask::new(threads),
        }
    }

    /// Pre-loads tokens before the first cycle (the dataflow "initial
    /// token on the back edge"), at most `depth` per thread, in order.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ExcessInitialTokens`] if a thread receives
    /// more than `depth` initial tokens.
    ///
    /// # Panics
    ///
    /// Panics if a thread index is out of range.
    pub fn with_initial(
        mut self,
        tokens: impl IntoIterator<Item = (usize, T)>,
    ) -> Result<Self, ProtocolError> {
        for (t, tok) in tokens {
            if self.queues[t].len() >= self.depth {
                return Err(ProtocolError::ExcessInitialTokens {
                    thread: t,
                    capacity: self.depth,
                });
            }
            self.queues[t].push_back(tok);
        }
        Ok(self)
    }

    /// Items stored for `thread`.
    pub fn occupancy(&self, thread: usize) -> usize {
        self.queues[thread].len()
    }

    /// Items stored across all threads.
    pub fn occupancy_total(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Total storage capacity: `depth · S`.
    pub fn capacity(&self) -> usize {
        self.depth * self.threads
    }

    /// Per-thread FIFO depth.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl<T: Token> Component<T> for FifoMeb<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Buffer
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Ready is a function of registered queue occupancy; the arbiter's
        // ready-aware selection is the only combinational input, damped by
        // the anti-swap guard.
        vec![CombPath::ReadyToValid {
            from: self.out,
            to: self.out,
            damped: true,
        }]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        for t in 0..self.threads {
            ctx.set_ready(self.inp, t, self.queues[t].len() < self.depth);
            self.has.set(t, !self.queues[t].is_empty());
        }
        match self
            .select
            .select(ctx, self.out, self.arbiter.as_ref(), &self.has)
        {
            Some(t) => {
                let head = self.queues[t].front().cloned().expect("non-empty queue");
                ctx.drive_token(self.out, t, head);
            }
            None => ctx.drive_idle(self.out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        if let Some((t, _)) = ctx.fired_any(self.out) {
            self.queues[t].pop_front();
            self.arbiter.commit(t);
        }
        if let Some((t, data)) = ctx.fired_any(self.inp) {
            debug_assert!(self.queues[t].len() < self.depth, "enqueue into full FIFO");
            self.queues[t].push_back(data.clone());
        }
        self.select.on_tick(ctx, self.out);
    }

    fn slots(&self) -> Vec<SlotView> {
        let mut out = Vec::with_capacity(self.threads * self.depth);
        for t in 0..self.threads {
            for d in 0..self.depth {
                out.push(match self.queues[t].get(d) {
                    Some(item) => SlotView::full(format!("q[{t}][{d}]"), t, item.label()),
                    None => SlotView::empty(format!("q[{t}][{d}]")),
                });
            }
        }
        out
    }

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    fn reset(&mut self) -> bool {
        for q in &mut self.queues {
            q.clear();
        }
        self.arbiter.reset();
        self.select.reset();
        self.has.clear();
        true
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;
    use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source};

    fn run_single_thread(depth: usize, cycles: u64) -> f64 {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, 0..cycles);
        b.add(src);
        b.add(FifoMeb::new(
            "meb",
            a,
            c,
            1,
            depth,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(Sink::new("snk", c, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(cycles).expect("clean");
        circuit.stats().channel_throughput(c)
    }

    #[test]
    fn depth_two_sustains_full_throughput() {
        let thr = run_single_thread(2, 100);
        assert!(thr > 0.9, "depth-2 throughput {thr}");
    }

    #[test]
    fn depth_one_halves_single_thread_throughput() {
        // One slot: after each transfer the freed slot is visible upstream
        // only the following cycle — the classic "half-buffer" ceiling.
        let thr = run_single_thread(1, 100);
        assert!((thr - 0.5).abs() < 0.05, "depth-1 throughput {thr}");
    }

    #[test]
    fn blocked_thread_fills_exactly_depth_items() {
        let mut b = CircuitBuilder::<u64>::new();
        let a = b.channel("a", 1);
        let c = b.channel("c", 1);
        let mut src = Source::new("src", a, 1);
        src.extend(0, 0..20u64);
        b.add(src);
        b.add(FifoMeb::new(
            "meb",
            a,
            c,
            1,
            5,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(Sink::new("snk", c, 1, ReadyPolicy::Never));
        let mut circuit = b.build().expect("valid");
        circuit.run(20).expect("clean");
        assert_eq!(circuit.stats().total_transfers(a), 5);
        let meb: &FifoMeb<u64> = circuit.get("meb").expect("meb");
        assert_eq!(meb.occupancy(0), 5);
        assert_eq!(meb.capacity(), 5);
        assert_eq!(meb.depth(), 5);
    }
}
