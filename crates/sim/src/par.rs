//! Parallel sweep harness for simulation *campaigns*.
//!
//! Every experiment binary in this repository runs many **independent**
//! simulations — cost sweeps, throughput-vs-threads curves, kernel
//! ablations, oracle-equivalence campaigns. Each individual [`Circuit`]
//! run is strictly sequential (a synchronous fixed point cannot be
//! parallelized without changing its semantics), but the *campaign* is
//! embarrassingly parallel: jobs share nothing, so they can be spread
//! across all cores while remaining bit-deterministic.
//!
//! [`run_sweep`] executes a vector of [`SimJob`]s on a pure-`std`
//! **work-stealing** worker pool:
//!
//! * **Worker model** — [`std::thread::scope`] spawns
//!   `available_parallelism()` workers (or the requested count). Each
//!   worker owns a deque seeded with a contiguous chunk of the
//!   submission order; it pops its own jobs from the front and, when its
//!   deque runs dry, steals from the *back* of a neighbour's. Workers
//!   therefore run uncontended on their own chunk in the common case and
//!   only touch a shared lock to rebalance stragglers — the earlier
//!   design funneled every single job through one `Mutex<Receiver>`
//!   handoff, which cost more than it saved on short jobs.
//! * **Circuit reuse** — jobs built with [`SimJob::on_circuit`] share one
//!   elaborated [`Circuit`] *per worker*: the first such job on a worker
//!   builds it, later jobs [`Circuit::reset`] and re-drive it, so a
//!   thousand-point sweep elaborates the netlist `workers` times instead
//!   of a thousand.
//! * **Determinism** — each job is a self-contained deterministic
//!   function ([`Circuit::reset`] rewinds to the freshly built state, so
//!   reuse does not leak state between points); results are returned
//!   **in submission order**, so the output of a parallel sweep is
//!   byte-identical to the serial (`workers = 1`) path no matter how
//!   execution interleaves or which worker ran which point.
//! * **Isolation** — a job that returns [`SimError`] or panics produces a
//!   per-job [`JobError`]; it does not poison the pool, and every other
//!   job still completes and reports. A panic inside a shared circuit
//!   drops that worker's cached instance (its state is suspect), and the
//!   panic location is captured so the report names `file:line`.
//! * **Aggregation** — per-job [`KernelStats`] are merged into a
//!   campaign-wide total ([`SweepReport::kernel`]).
//!
//! For memoized campaigns (resubmitting overlapping job sets) see
//! [`SweepService`](crate::SweepService).
//!
//! [`Circuit`]: crate::Circuit
//!
//! # Example
//!
//! ```
//! use elastic_sim::{run_sweep, SimJob};
//!
//! let jobs: Vec<SimJob<u64>> = (0..8)
//!     .map(|i| SimJob::new(format!("square {i}"), move || Ok(i * i)))
//!     .collect();
//! let report = run_sweep(jobs);
//! let squares: Vec<u64> = report.values().cloned().collect();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once};
use std::thread;
use std::time::{Duration, Instant};

use crate::circuit::Circuit;
use crate::error::SimError;
use crate::stats::KernelStats;
use crate::token::Token;

/// A circuit prototype shared by many sweep points: the build closure is
/// elaborated **once per worker** and every subsequent
/// [`SimJob::on_circuit`] job on that worker rewinds the instance with
/// [`Circuit::reset`] instead of rebuilding it.
///
/// Cloning the handle is cheap (it shares the build closure); all clones
/// refer to the same per-worker cache slot.
pub struct SharedCircuit<T: Token> {
    key: u64,
    build: Arc<dyn Fn() -> Circuit<T> + Send + Sync>,
}

/// Process-unique keys for [`SharedCircuit`] cache slots.
static NEXT_SHARED_KEY: AtomicU64 = AtomicU64::new(1);

impl<T: Token> SharedCircuit<T> {
    /// A prototype whose `build` closure elaborates the circuit. The
    /// closure must be deterministic: a reset instance and a freshly
    /// built one must be indistinguishable, or reuse would break the
    /// sweep's bit-identity guarantee.
    pub fn new(build: impl Fn() -> Circuit<T> + Send + Sync + 'static) -> Self {
        Self {
            key: NEXT_SHARED_KEY.fetch_add(1, Ordering::Relaxed),
            build: Arc::new(build),
        }
    }

    /// The process-unique cache key identifying this prototype.
    pub fn key(&self) -> u64 {
        self.key
    }
}

impl<T: Token> Clone for SharedCircuit<T> {
    fn clone(&self) -> Self {
        Self {
            key: self.key,
            build: Arc::clone(&self.build),
        }
    }
}

/// Per-worker cache of elaborated shared circuits, keyed by
/// [`SharedCircuit::key`]. Type-erased so one pool handles sweeps over
/// any token type.
type CircuitCache = HashMap<u64, Box<dyn Any + Send>>;

/// How a job produces its result.
enum JobKind<R> {
    /// The closure owns everything it needs (including any circuit it
    /// builds) and runs exactly once.
    Owned(
        #[allow(clippy::type_complexity)]
        Box<dyn FnOnce() -> Result<(R, KernelStats), SimError> + Send>,
    ),
    /// The job drives a worker-cached [`SharedCircuit`] instance,
    /// resetting it when it is reused.
    Shared {
        key: u64,
        build: Arc<dyn Fn() -> Box<dyn Any + Send> + Send + Sync>,
        #[allow(clippy::type_complexity)]
        run: Box<
            dyn FnOnce(&mut Box<dyn Any + Send>, bool) -> Result<(R, KernelStats), SimError> + Send,
        >,
    },
}

/// One independent simulation to execute on the sweep pool.
///
/// The closure owns everything it needs (configs, seeds, token vectors)
/// and must be deterministic: the harness guarantees submission-order
/// results, so a deterministic job set yields a bit-identical campaign
/// under any worker count.
pub struct SimJob<R> {
    label: String,
    cache_key: Option<u64>,
    kind: JobKind<R>,
}

impl<R> SimJob<R> {
    /// A job whose closure returns only a result value.
    pub fn new(
        label: impl Into<String>,
        f: impl FnOnce() -> Result<R, SimError> + Send + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            cache_key: None,
            kind: JobKind::Owned(Box::new(move || f().map(|r| (r, KernelStats::default())))),
        }
    }

    /// A job that also reports the [`KernelStats`] of its run, so the
    /// sweep can aggregate settle-phase work across the whole campaign.
    pub fn instrumented(
        label: impl Into<String>,
        f: impl FnOnce() -> Result<(R, KernelStats), SimError> + Send + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            cache_key: None,
            kind: JobKind::Owned(Box::new(f)),
        }
    }

    /// A job that drives a [`SharedCircuit`] instance cached on whichever
    /// worker runs it: the first such job on a worker elaborates the
    /// prototype, later jobs receive the same instance rewound by
    /// [`Circuit::reset`]. The closure gets the circuit in its freshly
    /// built (or equivalently, freshly reset) state and may configure,
    /// run and inspect it at will.
    ///
    /// If the circuit contains a component that does not support reset,
    /// every reused point fails with
    /// [`SimError::ResetUnsupported`] — build such sweeps with
    /// [`SimJob::instrumented`] instead.
    pub fn on_circuit<T: Token>(
        label: impl Into<String>,
        shared: &SharedCircuit<T>,
        f: impl FnOnce(&mut Circuit<T>) -> Result<(R, KernelStats), SimError> + Send + 'static,
    ) -> Self {
        let build = Arc::clone(&shared.build);
        Self {
            label: label.into(),
            cache_key: None,
            kind: JobKind::Shared {
                key: shared.key,
                build: Arc::new(move || Box::new(build()) as Box<dyn Any + Send>),
                run: Box::new(move |slot, reused| {
                    let circuit = slot
                        .downcast_mut::<Circuit<T>>()
                        .expect("shared-circuit cache slot holds the prototype's circuit type");
                    if reused {
                        circuit.reset()?;
                    }
                    f(circuit)
                }),
            },
        }
    }

    /// Tags the job with a memoization key for
    /// [`SweepService`](crate::SweepService): two jobs with the same key
    /// must be interchangeable (same circuit, same config, same seed —
    /// see [`campaign_key`](crate::campaign_key)). Untagged jobs are
    /// never memoized.
    pub fn with_cache_key(mut self, key: u64) -> Self {
        self.cache_key = Some(key);
        self
    }

    /// The job's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The memoization key, if [`with_cache_key`](Self::with_cache_key)
    /// tagged one.
    pub fn cache_key(&self) -> Option<u64> {
        self.cache_key
    }
}

/// Why a job failed (the pool itself never fails).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobError {
    /// The job's simulation reported a protocol error, deadlock, etc.
    Sim(SimError),
    /// The job panicked; the payload message and (when the runtime
    /// reports one) the `file:line:column` of the panic site are
    /// preserved. The panic is confined to the job — the worker and the
    /// rest of the sweep continue.
    Panic {
        /// The panic payload, stringified.
        message: String,
        /// `file:line:column` of the panic site, captured by a panic
        /// hook on the worker that ran the job.
        location: Option<String>,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Sim(e) => write!(f, "simulation error: {e}"),
            JobError::Panic {
                message,
                location: Some(loc),
            } => write!(f, "job panicked at {loc}: {message}"),
            JobError::Panic {
                message,
                location: None,
            } => write!(f, "job panicked: {message}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Sim(e) => Some(e),
            JobError::Panic { .. } => None,
        }
    }
}

/// The outcome of one [`SimJob`], in submission order.
#[derive(Debug)]
pub struct JobReport<R> {
    /// Submission index of the job (also its position in
    /// [`SweepReport::jobs`]).
    pub index: usize,
    /// Label given at construction.
    pub label: String,
    /// Memoization key the job was tagged with, if any.
    pub cache_key: Option<u64>,
    /// The job's value, or the isolated failure.
    pub outcome: Result<R, JobError>,
    /// Kernel counters reported by the job (zeroed for plain or failed
    /// jobs).
    pub kernel: KernelStats,
    /// Wall-clock time the job spent executing (zero for memoized hits).
    pub wall: Duration,
    /// Whether the result came from a
    /// [`SweepService`](crate::SweepService) campaign cache instead of a
    /// fresh execution.
    pub memoized: bool,
}

/// Everything a sweep produced: per-job reports in submission order plus
/// campaign-level aggregates.
#[derive(Debug)]
pub struct SweepReport<R> {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobReport<R>>,
    /// Worker count the caller asked for, before clamping.
    pub workers_requested: usize,
    /// Worker count the pool actually ran (clamped to `1..=jobs`).
    pub workers_used: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Kernel counters merged over all successful jobs.
    pub kernel: KernelStats,
    /// Jobs answered from a [`SweepService`](crate::SweepService)
    /// campaign cache (always 0 for the plain [`run_sweep_on`] path).
    pub memoized_jobs: usize,
    /// Keyed jobs whose result was found in the campaign cache (equals
    /// `memoized_jobs`; kept as an explicit counter so the hit/miss
    /// arithmetic reads off the report directly).
    pub cache_hits: u64,
    /// Keyed jobs whose key was *not* in the campaign cache and had to
    /// execute. Untagged jobs count as neither hit nor miss.
    pub cache_misses: u64,
    /// Entries evicted from the capacity-limited campaign cache while
    /// inserting this submission's results (always 0 for the plain
    /// [`run_sweep_on`] path).
    pub cache_evictions: u64,
}

impl<R> SweepReport<R> {
    /// Number of jobs that completed successfully.
    pub fn ok_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_ok()).count()
    }

    /// The failed jobs, as `(label, error)` pairs in submission order.
    pub fn failures(&self) -> Vec<(&str, &JobError)> {
        self.jobs
            .iter()
            .filter_map(|j| j.outcome.as_ref().err().map(|e| (j.label.as_str(), e)))
            .collect()
    }

    /// Iterates over the successful values in submission order.
    pub fn values(&self) -> impl Iterator<Item = &R> {
        self.jobs.iter().filter_map(|j| j.outcome.as_ref().ok())
    }

    /// Unwraps every job into its value, in submission order.
    ///
    /// # Panics
    ///
    /// Panics with the label and error of the first failed job.
    pub fn unwrap_all(self) -> Vec<R> {
        self.jobs
            .into_iter()
            .map(|j| match j.outcome {
                Ok(v) => v,
                Err(e) => panic!("sweep job `{}` failed: {e}", j.label),
            })
            .collect()
    }
}

/// Worker count used by [`run_sweep`]: the machine's
/// [`available_parallelism`](thread::available_parallelism), or 1 when it
/// cannot be determined.
pub fn available_workers() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `jobs` on [`available_workers`] threads. See [`run_sweep_on`].
pub fn run_sweep<R: Send>(jobs: Vec<SimJob<R>>) -> SweepReport<R> {
    let workers = available_workers();
    run_sweep_on(jobs, workers)
}

thread_local! {
    /// `file:line:column` of the most recent panic on this thread,
    /// recorded by the sweep panic hook (`catch_unwind` only hands the
    /// payload to the catcher; the location exists only inside the hook).
    static LAST_PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

static PANIC_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stashes the panic
/// site in [`LAST_PANIC_LOCATION`] and then defers to the previous hook,
/// so panics outside the sweep keep their normal reporting.
fn install_panic_hook() {
    PANIC_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let loc = info
                .location()
                .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
            LAST_PANIC_LOCATION.with(|slot| *slot.borrow_mut() = loc);
            previous(info);
        }));
    });
}

fn execute<R>(job: SimJob<R>, index: usize, circuits: &mut CircuitCache) -> JobReport<R> {
    let SimJob {
        label,
        cache_key,
        kind,
    } = job;
    install_panic_hook();
    LAST_PANIC_LOCATION.with(|slot| slot.borrow_mut().take());
    let start = Instant::now();
    let raw = match kind {
        JobKind::Owned(run) => catch_unwind(AssertUnwindSafe(run)),
        JobKind::Shared { key, build, run } => {
            let (mut circuit, reused) = match circuits.remove(&key) {
                Some(c) => (c, true),
                None => (build(), false),
            };
            match catch_unwind(AssertUnwindSafe(move || {
                let out = run(&mut circuit, reused);
                (out, circuit)
            })) {
                Ok((out, circuit)) => {
                    // The instance stays coherent across Ok *and* SimError
                    // outcomes (errors leave a resettable circuit); only a
                    // panic poisons it, and then the unwound closure has
                    // already dropped it.
                    circuits.insert(key, circuit);
                    Ok(out)
                }
                Err(payload) => Err(payload),
            }
        }
    };
    let wall = start.elapsed();
    let (outcome, kernel) = match raw {
        Ok(Ok((value, kernel))) => (Ok(value), kernel),
        Ok(Err(e)) => (Err(JobError::Sim(e)), KernelStats::default()),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let location = LAST_PANIC_LOCATION.with(|slot| slot.borrow_mut().take());
            (
                Err(JobError::Panic { message, location }),
                KernelStats::default(),
            )
        }
    };
    JobReport {
        index,
        label,
        cache_key,
        outcome,
        kernel,
        wall,
        memoized: false,
    }
}

/// One worker's deque of `(submission index, job)` pairs.
type JobDeque<R> = Mutex<VecDeque<(usize, SimJob<R>)>>;

/// Pops the next job for worker `me`: its own deque front first, then a
/// steal from the *back* of the nearest non-empty neighbour (scanning
/// `me+1, me+2, …` cyclically). Stealing from the opposite end keeps the
/// victim's cache-warm front-of-chunk jobs with the victim.
fn next_job<R>(deques: &[JobDeque<R>], me: usize) -> Option<(usize, SimJob<R>)> {
    if let Some(pair) = deques[me].lock().expect("deque lock").pop_front() {
        return Some(pair);
    }
    let n = deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        if let Some(pair) = deques[victim].lock().expect("deque lock").pop_back() {
            return Some(pair);
        }
    }
    None
}

/// Runs indexed jobs on `workers` threads, handing each finished
/// [`JobReport`] (in completion order, on the calling thread) to
/// `on_report`. Returns the clamped worker count actually used.
///
/// This is the engine under both [`run_sweep_on`] and
/// [`SweepService`](crate::SweepService).
pub(crate) fn run_pool<R: Send>(
    jobs: Vec<(usize, SimJob<R>)>,
    workers: usize,
    on_report: &mut dyn FnMut(JobReport<R>),
) -> usize {
    let n = jobs.len();
    let workers_used = workers.clamp(1, n.max(1));

    if workers_used <= 1 {
        let mut circuits = CircuitCache::new();
        for (index, job) in jobs {
            on_report(execute(job, index, &mut circuits));
        }
        return workers_used;
    }

    // Seed each worker's deque with a contiguous chunk of the submission
    // order: worker w starts on jobs [w·n/W, (w+1)·n/W). Contiguity is
    // what makes per-worker circuit reuse pay off — neighbouring sweep
    // points share a prototype, so a chunk usually elaborates once.
    let deques: Vec<JobDeque<R>> = (0..workers_used)
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    for (pos, pair) in jobs.into_iter().enumerate() {
        let w = pos * workers_used / n;
        deques[w].lock().expect("deque lock").push_back(pair);
    }
    let deques = &deques;

    let (result_tx, result_rx) = mpsc::channel::<JobReport<R>>();
    thread::scope(|scope| {
        for w in 0..workers_used {
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                let mut circuits = CircuitCache::new();
                while let Some((index, job)) = next_job(deques, w) {
                    // A send only fails when the collector hung up, which
                    // cannot happen while this scope is alive.
                    let _ = result_tx.send(execute(job, index, &mut circuits));
                }
            });
        }
        drop(result_tx);
        for report in result_rx.iter() {
            on_report(report);
        }
    });
    workers_used
}

/// Runs `jobs` on a pool of `workers` work-stealing threads (clamped to
/// `1..=jobs.len()`), returning per-job reports **in submission order**.
///
/// `workers == 1` executes the jobs inline on the calling thread — the
/// serial baseline every parallel sweep must reproduce bit-identically.
/// Failures (simulation errors and panics alike) are isolated per job:
/// the pool always returns one report per submitted job.
pub fn run_sweep_on<R: Send>(jobs: Vec<SimJob<R>>, workers: usize) -> SweepReport<R> {
    let n = jobs.len();
    let start = Instant::now();
    let mut slots: Vec<Option<JobReport<R>>> = (0..n).map(|_| None).collect();
    let indexed: Vec<(usize, SimJob<R>)> = jobs.into_iter().enumerate().collect();
    let workers_used = run_pool(indexed, workers, &mut |report| {
        let index = report.index;
        slots[index] = Some(report);
    });

    let jobs: Vec<JobReport<R>> = slots
        .into_iter()
        .map(|s| s.expect("one report per job"))
        .collect();
    let mut kernel = KernelStats::default();
    for j in &jobs {
        kernel.merge(&j.kernel);
    }
    SweepReport {
        jobs,
        workers_requested: workers,
        workers_used,
        wall: start.elapsed(),
        kernel,
        memoized_jobs: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::circuit::EvalMode;
    use crate::schedule::{ReadyPolicy, Sink, Source};

    /// A small but real simulation job: tokens through a 1-stage wire
    /// with a seeded random sink, returning the capture.
    fn pipeline_job(seed: u64, mode: EvalMode) -> Result<(Vec<(u64, u64)>, KernelStats), SimError> {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("ch", 2);
        let mut src = Source::new("src", ch, 2);
        src.extend(0, 0..20u64);
        src.extend(1, 100..120u64);
        b.add(src);
        b.add(Sink::with_capture(
            "snk",
            ch,
            2,
            ReadyPolicy::Random { p: 0.6, seed },
        ));
        let mut c = b.build().expect("valid");
        c.set_eval_mode(mode);
        c.run(200)?;
        let snk: &Sink<u64> = c.get("snk").expect("sink");
        let mut cap: Vec<(u64, u64)> = Vec::new();
        for t in 0..2 {
            cap.extend(snk.captured(t).iter().copied());
        }
        Ok((cap, *c.stats().kernel()))
    }

    fn campaign(mode: EvalMode) -> Vec<SimJob<Vec<(u64, u64)>>> {
        (0..12)
            .map(|seed| {
                SimJob::instrumented(format!("pipeline seed {seed}"), move || {
                    pipeline_job(seed, mode)
                })
            })
            .collect()
    }

    /// The same campaign expressed over one shared prototype: every
    /// point reconfigures the sink seed on the reused circuit.
    fn shared_campaign(mode: EvalMode) -> Vec<SimJob<Vec<(u64, u64)>>> {
        let proto = SharedCircuit::new(|| {
            let mut b = CircuitBuilder::<u64>::new();
            let ch = b.channel("ch", 2);
            b.add(Source::new("src", ch, 2));
            b.add(Sink::with_capture(
                "snk",
                ch,
                2,
                ReadyPolicy::Random { p: 0.6, seed: 0 },
            ));
            b.build().expect("valid")
        });
        (0..12u64)
            .map(|seed| {
                SimJob::on_circuit(format!("pipeline seed {seed}"), &proto, move |c| {
                    c.set_eval_mode(mode);
                    {
                        let src: &mut Source<u64> = c.get_mut("src").expect("source");
                        src.extend(0, 0..20u64);
                        src.extend(1, 100..120u64);
                    }
                    {
                        let snk: &mut Sink<u64> = c.get_mut("snk").expect("sink");
                        for t in 0..2 {
                            snk.set_policy(t, ReadyPolicy::Random { p: 0.6, seed });
                        }
                    }
                    c.run(200)?;
                    let snk: &Sink<u64> = c.get("snk").expect("sink");
                    let mut cap: Vec<(u64, u64)> = Vec::new();
                    for t in 0..2 {
                        cap.extend(snk.captured(t).iter().copied());
                    }
                    Ok((cap, *c.stats().kernel()))
                })
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let report = run_sweep_on(campaign(EvalMode::EventDriven), 4);
        assert_eq!(report.jobs.len(), 12);
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.index, i);
            assert_eq!(j.label, format!("pipeline seed {i}"));
            assert!(!j.memoized);
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let serial = run_sweep_on(campaign(EvalMode::EventDriven), 1);
        let parallel = run_sweep_on(campaign(EvalMode::EventDriven), 4);
        assert_eq!(serial.workers_used, 1);
        let s: Vec<_> = serial.values().collect();
        let p: Vec<_> = parallel.values().collect();
        assert_eq!(s, p, "parallel sweep diverged from the serial baseline");
        // Kernel aggregation is order-independent, so it must agree too.
        assert_eq!(serial.kernel, parallel.kernel);
        assert!(serial.kernel.component_evals > 0);
    }

    #[test]
    fn shared_circuit_matches_owned_jobs_bit_for_bit() {
        let owned = run_sweep_on(campaign(EvalMode::EventDriven), 1);
        for workers in [1, 2, 4] {
            let shared = run_sweep_on(shared_campaign(EvalMode::EventDriven), workers);
            let o: Vec<_> = owned.values().collect();
            let s: Vec<_> = shared.values().collect();
            assert_eq!(o, s, "circuit reuse diverged at {workers} workers");
            assert_eq!(owned.kernel, shared.kernel);
        }
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let mut jobs: Vec<SimJob<u64>> = Vec::new();
        jobs.push(SimJob::new("fine before", || Ok(1)));
        jobs.push(SimJob::new("explodes", || -> Result<u64, SimError> {
            panic!("boom at job level")
        }));
        jobs.push(SimJob::new("fine after", || Ok(3)));
        let report = run_sweep_on(jobs, 2);
        assert_eq!(report.ok_count(), 2);
        assert_eq!(report.jobs[0].outcome.as_ref().ok(), Some(&1));
        assert_eq!(report.jobs[2].outcome.as_ref().ok(), Some(&3));
        match &report.jobs[1].outcome {
            Err(JobError::Panic { message, location }) => {
                assert!(message.contains("boom"), "{message}");
                let loc = location.as_deref().expect("panic site captured");
                assert!(loc.contains("par.rs"), "unexpected location {loc}");
            }
            other => panic!("expected isolated panic, got {other:?}"),
        }
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "explodes");
        assert!(
            failures[0].1.to_string().contains("par.rs"),
            "display must name the panic site: {}",
            failures[0].1
        );
    }

    #[test]
    fn shared_circuit_survives_a_panicking_job() {
        let proto = SharedCircuit::new(|| {
            let mut b = CircuitBuilder::<u64>::new();
            let ch = b.channel("ch", 1);
            b.add(Source::new("src", ch, 1));
            b.add(Sink::with_capture("snk", ch, 1, ReadyPolicy::Always));
            b.build().expect("valid")
        });
        let point = |label: &str, tokens: std::ops::Range<u64>| {
            SimJob::on_circuit(label, &proto, move |c| {
                {
                    let src: &mut Source<u64> = c.get_mut("src").expect("source");
                    src.extend(0, tokens.clone());
                }
                c.run(40)?;
                let snk: &Sink<u64> = c.get("snk").expect("sink");
                Ok((
                    snk.captured(0).iter().map(|(_, t)| *t).collect::<Vec<_>>(),
                    *c.stats().kernel(),
                ))
            })
        };
        let jobs = vec![
            point("first", 0..5),
            SimJob::on_circuit(
                "explodes",
                &proto,
                |_c| -> Result<(Vec<u64>, KernelStats), SimError> { panic!("mid-sweep boom") },
            ),
            point("after panic", 5..10),
        ];
        // Serial: all three points hit the same worker cache, so the
        // panicking job's instance must be discarded and rebuilt.
        let report = run_sweep_on(jobs, 1);
        assert_eq!(
            report.jobs[0].outcome.as_ref().ok(),
            Some(&(0..5).collect::<Vec<u64>>())
        );
        assert!(matches!(
            report.jobs[1].outcome,
            Err(JobError::Panic { .. })
        ));
        assert_eq!(
            report.jobs[2].outcome.as_ref().ok(),
            Some(&(5..10).collect::<Vec<u64>>()),
            "worker must rebuild the poisoned circuit"
        );
    }

    #[test]
    fn sim_errors_are_per_job_outcomes() {
        let deadlocked = SimJob::new("deadlocks", || {
            let mut b = CircuitBuilder::<u64>::new();
            let ch = b.channel("ch", 1);
            let mut src = Source::new("src", ch, 1);
            src.push(0, 7);
            b.add(src);
            b.add(Sink::new("snk", ch, 1, ReadyPolicy::Never));
            let mut c = b.build().expect("valid");
            c.set_deadlock_watchdog(Some(4));
            c.run(50)?;
            Ok(0u64)
        });
        let fine = SimJob::new("fine", || Ok(42u64));
        let report = run_sweep_on(vec![deadlocked, fine], 2);
        assert!(matches!(
            report.jobs[0].outcome,
            Err(JobError::Sim(SimError::Deadlock { .. }))
        ));
        assert_eq!(report.jobs[1].outcome.as_ref().ok(), Some(&42));
    }

    #[test]
    fn worker_count_is_clamped() {
        let report = run_sweep_on(campaign(EvalMode::EventDriven), 64);
        assert_eq!(report.workers_requested, 64, "requested count is recorded");
        assert_eq!(report.workers_used, 12, "workers clamp to the job count");
        let report = run_sweep_on(Vec::<SimJob<u64>>::new(), 8);
        assert!(report.jobs.is_empty());
        assert_eq!(report.workers_used, 1);
    }

    #[test]
    fn unwrap_all_panics_with_label() {
        let jobs: Vec<SimJob<u64>> = vec![SimJob::new("bad job", || {
            Err(SimError::CombinationalLoop {
                cycle: 0,
                iterations: 1,
            })
        })];
        let report = run_sweep_on(jobs, 1);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| report.unwrap_all()));
        let msg = *r
            .expect_err("must panic")
            .downcast::<String>()
            .expect("msg");
        assert!(msg.contains("bad job"), "{msg}");
    }
}
