//! Regenerates the paper's **Table I** ("FPGA implementation results of
//! the 8-thread design examples") from the structural cost model, with
//! the paper's reported numbers side by side, plus the 16-thread
//! extension behind the paper's ">22 % savings" remark.
//!
//! The per-thread-count sections are independent, so the sweep runs as
//! [`run_sweep`] jobs — results come back in submission order, making
//! the concatenated table byte-identical to the serial
//! [`elastic_cost::render`] output (asserted below).
//!
//! With `--inventory`, also prints the itemized LE breakdown of every
//! design/buffer combination.
//!
//! ```text
//! cargo run --release --bin table1_fpga [--inventory]
//! ```

use elastic_cost::{
    frequency_mhz, gcd_design, md5_design, processor_design, render, render_header, render_section,
    BufferKind,
};
use elastic_sim::{run_sweep, SimJob};

const THREAD_COUNTS: [usize; 2] = [8, 16];

fn main() {
    let inventory = std::env::args().any(|a| a == "--inventory");

    let jobs: Vec<SimJob<String>> = THREAD_COUNTS
        .iter()
        .map(|&s| SimJob::new(format!("table1 S={s}"), move || Ok(render_section(s))))
        .collect();
    let sections = run_sweep(jobs).unwrap_all();
    let table = format!("{}{}", render_header(), sections.concat());
    assert_eq!(
        table,
        render(&THREAD_COUNTS),
        "sweep-assembled Table I diverged from the serial render"
    );
    print!("{table}");

    // Extension: the same model applied to the circuit synthesized by the
    // elastic-synth flow (examples/gcd_synthesis.rs).
    println!("extension — synthesized GCD loop (not in the paper):");
    let gcd = gcd_design();
    for kind in [BufferKind::Full, BufferKind::Reduced] {
        let area = gcd.area_les(kind, 8);
        println!(
            "  {:<12} 8 threads: {:>6} LEs @ {:>5.1} MHz",
            kind.to_string(),
            area,
            frequency_mhz(gcd.logic_levels, area)
        );
    }
    println!();

    if inventory {
        for spec in [md5_design(), processor_design()] {
            for kind in [BufferKind::Full, BufferKind::Reduced] {
                println!("\n=== {} — {} (8 threads) ===", spec.name, kind);
                print!("{}", spec.inventory(kind, 8).render());
            }
        }
    } else {
        println!("(run with --inventory for the itemized LE breakdown)");
    }
}
