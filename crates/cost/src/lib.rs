//! # elastic-cost — structural FPGA area/frequency model
//!
//! Regenerates the paper's Table I ("FPGA implementation results of the
//! 8-thread design examples") without a synthesis flow: a structural
//! logic-element model over the *same component inventory* as the
//! simulated circuits, plus a delay model whose routing term grows with
//! area. See `DESIGN.md` for the substitution rationale: Table I compares
//! *relative* cost of full vs reduced MEBs, which a structural model over
//! identical inventories preserves (who wins, by roughly what factor, and
//! how the gap grows with the thread count).
//!
//! # Example
//!
//! ```
//! use elastic_cost::{average_savings, table1_rows, BufferKind};
//!
//! let rows = table1_rows(8);
//! assert_eq!(rows.len(), 4); // 2 designs × 2 buffer kinds
//! let md5_full = &rows[0];
//! assert_eq!(md5_full.kind, BufferKind::Full);
//! // The paper's headline: reduced MEBs save ~15 % on average at S = 8.
//! assert!(average_savings(8) > 0.10);
//! ```

#![warn(missing_docs)]

pub mod design;
pub mod from_ir;
pub mod primitives;
pub mod table1;

pub use design::{
    frequency_mhz, gcd_design, md5_design, meb_inventory, processor_design, BufferKind, DesignSpec,
};
pub use from_ir::{expected_les_delta, fifo_meb_inventory};
pub use primitives::{CostItem, Inventory};
pub use table1::{
    average_savings, paper_reference, render, render_header, render_section, savings_fraction,
    table1_rows, Table1Row,
};
