//! Integration coverage for the parallel sweep harness (`sim::par` +
//! `sim::sweep`): running a realistic simulation campaign — MEB
//! pipelines plus the MD5 design example — through the work-stealing
//! pool must be byte-identical to running it serially (whatever the pool
//! shape, job mix, or panic placement), per-worker circuit reuse via
//! `Circuit::reset` must be indistinguishable from building fresh,
//! failures must stay isolated to their job, the `SweepService` campaign
//! cache must answer repeat submissions from memory — while staying
//! bounded at its capacity cap under autotune-volume key churn and never
//! serving a stale result across an IR mutation — and on hosts with
//! real parallelism the wall-clock must actually scale.

use mt_elastic::core::{MebKind, PipelineConfig, PipelineHarness};
use mt_elastic::md5::Md5Hasher;
use mt_elastic::sim::{
    available_workers, campaign_key, run_sweep, run_sweep_on, Circuit, EvalMode, JobError,
    KernelStats, ReadyPolicy, SharedCircuit, SimError, SimJob, Sink, Source, SweepService, Tagged,
};
use proptest::prelude::*;

/// A deterministic stalled-pipeline run: digest of every capture.
fn pipeline_digest(seed: u64, mode: EvalMode) -> Result<(String, KernelStats), SimError> {
    const THREADS: usize = 3;
    let mut cfg =
        PipelineConfig::free_flowing(THREADS, 3, MebKind::Reduced, 24).with_eval_mode(mode);
    for t in 0..THREADS {
        cfg.sink_policies[t] = ReadyPolicy::Random {
            p: 0.5,
            seed: seed ^ t as u64,
        };
    }
    let mut h = PipelineHarness::build(cfg);
    h.circuit.run(600)?;
    let captures: Vec<Vec<(u64, u64)>> = (0..THREADS)
        .map(|t| {
            h.sink()
                .captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    Ok((format!("{captures:?}"), *h.circuit.stats().kernel()))
}

/// MD5 digests of a deterministic message set through the elastic
/// circuit — the campaign's "real design example" leg.
fn md5_digest(threads: usize) -> Result<(String, KernelStats), SimError> {
    let msgs: Vec<Vec<u8>> = (0..threads)
        .map(|i| format!("parallel sweep message {i}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    let (digests, cycles, kernel) = Md5Hasher::new(threads, MebKind::Reduced)
        .hash_messages_instrumented(&refs)
        .expect("md5 campaign runs clean");
    Ok((format!("{digests:02x?} in {cycles}"), kernel))
}

/// The mixed campaign used by the identity tests below.
fn campaign() -> Vec<SimJob<(String, KernelStats)>> {
    let mut jobs = Vec::new();
    for seed in 0..6u64 {
        for mode in [EvalMode::Exhaustive, EvalMode::EventDriven] {
            jobs.push(SimJob::new(format!("pipe {seed} {mode:?}"), move || {
                pipeline_digest(0xC0FFEE ^ seed, mode)
            }));
        }
    }
    for threads in [2usize, 4, 8] {
        jobs.push(SimJob::new(format!("md5 {threads}t"), move || {
            md5_digest(threads)
        }));
    }
    jobs
}

fn digests(results: &[(String, KernelStats)]) -> Vec<&str> {
    results.iter().map(|(d, _)| d.as_str()).collect()
}

/// The whole point of the harness: parallel execution is byte-identical
/// to serial execution — same digests, in submission order, and the
/// aggregated kernel counters match because aggregation is commutative.
#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    let serial = run_sweep_on(campaign(), 1);
    let serial_kernel = serial.kernel;
    let serial_results = serial.unwrap_all();
    for workers in [2, 4, available_workers().max(2)] {
        let par = run_sweep_on(campaign(), workers);
        assert_eq!(
            par.kernel, serial_kernel,
            "{workers} workers: kernel aggregate diverged"
        );
        let par_results = par.unwrap_all();
        assert_eq!(
            digests(&par_results),
            digests(&serial_results),
            "{workers} workers: digests diverged"
        );
    }
}

/// `run_sweep` (auto worker count) gives the same answer as the explicit
/// serial baseline.
#[test]
fn auto_worker_count_matches_serial() {
    let serial = run_sweep_on(campaign(), 1).unwrap_all();
    let auto = run_sweep(campaign()).unwrap_all();
    assert_eq!(digests(&auto), digests(&serial));
}

/// A failing job — simulation error or outright panic — must not take
/// down the sweep or disturb its neighbours' results.
#[test]
fn failures_stay_isolated_to_their_job() {
    let mut jobs: Vec<SimJob<(String, KernelStats)>> = vec![SimJob::new("ok-a", || {
        pipeline_digest(1, EvalMode::EventDriven)
    })];
    jobs.push(SimJob::new("deadlocked", || {
        // A pipeline whose sink never becomes ready trips the watchdog.
        let cfg = PipelineConfig::free_flowing(2, 2, MebKind::Reduced, 8)
            .with_sink_policy(0, ReadyPolicy::Never)
            .with_sink_policy(1, ReadyPolicy::Never);
        let mut h = PipelineHarness::build(cfg);
        h.circuit.set_deadlock_watchdog(Some(64));
        h.circuit.run(2_000)?;
        Ok(("unreachable".to_string(), KernelStats::default()))
    }));
    jobs.push(SimJob::new("panicking", || panic!("job blew up")));
    jobs.push(SimJob::new("ok-b", || {
        pipeline_digest(2, EvalMode::EventDriven)
    }));

    let report = run_sweep_on(jobs, 2);
    assert_eq!(report.ok_count(), 2);
    let failures = report.failures();
    assert_eq!(failures.len(), 2);
    assert!(matches!(
        failures[0],
        ("deadlocked", JobError::Sim(SimError::Deadlock { .. }))
    ));
    assert!(matches!(
        failures[1],
        ("panicking", JobError::Panic { message, .. }) if message.contains("blew up")
    ));
    // The panic hook captured where the panic was raised, so the report
    // names this file rather than an anonymous unwind.
    if let ("panicking", JobError::Panic { location, .. }) = failures[1] {
        let loc = location.as_deref().expect("panic location captured");
        assert!(
            loc.contains("parallel_sweep.rs"),
            "unexpected location {loc}"
        );
        let rendered = failures[1].1.to_string();
        assert!(
            rendered.contains("parallel_sweep.rs") && rendered.contains("blew up"),
            "Display lost the location or message: {rendered}"
        );
    }
    // The deadlock error carries the blocked-channel diagnosis end to end.
    let rendered = failures[0].1.to_string();
    assert!(rendered.contains("blocked:"), "diagnosis lost: {rendered}");
    // Healthy neighbours are untouched.
    assert!(report.jobs[0].outcome.is_ok());
    assert!(report.jobs[3].outcome.is_ok());
}

/// On hosts with ≥ 4 cores the replicated campaign must scale: 4 workers
/// at least 2× faster than 1. Skipped (trivially green) on smaller
/// hosts, where there is nothing to measure — `BENCH_parallel_sweep.json`
/// records the curve for whichever host ran `kernel_ablation --parallel`.
#[test]
fn four_workers_give_at_least_2x_on_a_4_core_host() {
    if available_workers() < 4 {
        eprintln!(
            "skipping speedup assertion: only {} core(s) available",
            available_workers()
        );
        return;
    }
    let heavy = || -> Vec<SimJob<(String, KernelStats)>> {
        (0..16u64)
            .map(|seed| {
                SimJob::new(format!("heavy {seed}"), move || {
                    pipeline_digest(0xBEEF ^ (seed << 4), EvalMode::Exhaustive)
                })
            })
            .collect()
    };
    // Warm up, then take the best of 3 to shake scheduler noise.
    run_sweep_on(heavy(), 4);
    let best = |workers: usize| {
        (0..3)
            .map(|_| run_sweep_on(heavy(), workers).wall)
            .min()
            .expect("three timed runs")
    };
    let serial = best(1);
    let parallel = best(4);
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "expected ≥2x speedup on {} cores, measured {speedup:.2}x",
        available_workers()
    );
}

/// The zero-token prototype of the [`pipeline_digest`] workload: pool
/// workers elaborate it once, `Circuit::reset` rewinds it between
/// points, and each point injects its own tokens and stall seeds.
fn shared_prototype() -> SharedCircuit<Tagged> {
    SharedCircuit::new(|| {
        PipelineHarness::build(PipelineConfig::free_flowing(3, 3, MebKind::Reduced, 0)).circuit
    })
}

/// Drives one point on a (fresh or reset) prototype instance — the
/// reused-circuit twin of [`pipeline_digest`].
fn drive_shared(
    c: &mut Circuit<Tagged>,
    seed: u64,
) -> Result<((String, KernelStats), KernelStats), SimError> {
    const THREADS: usize = 3;
    c.set_eval_mode(EvalMode::EventDriven);
    {
        let src: &mut Source<Tagged> = c.get_mut("src").expect("harness source");
        for t in 0..THREADS {
            src.extend(t, (0..24u64).map(|i| Tagged::new(t, i, i)));
        }
    }
    {
        let snk: &mut Sink<Tagged> = c.get_mut("snk").expect("harness sink");
        for t in 0..THREADS {
            snk.set_policy(
                t,
                ReadyPolicy::Random {
                    p: 0.5,
                    seed: seed ^ t as u64,
                },
            );
        }
    }
    c.run(600)?;
    let snk: &Sink<Tagged> = c.get("snk").expect("harness sink");
    let captures: Vec<Vec<(u64, u64)>> = (0..THREADS)
        .map(|t| {
            snk.captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    let k = *c.stats().kernel();
    Ok(((format!("{captures:?}"), k), k))
}

/// A mixed campaign: per seed one fresh-build job and one reset-reuse
/// job on the shared prototype, with an optional panicking job spliced
/// in at `panic_at`.
fn mixed_jobs(seeds: &[u64], panic_at: Option<usize>) -> Vec<SimJob<(String, KernelStats)>> {
    let proto = shared_prototype();
    let mut jobs = Vec::new();
    for (i, &seed) in seeds.iter().enumerate() {
        if panic_at == Some(i) {
            jobs.push(SimJob::new(format!("boom {i}"), || {
                panic!("injected panic")
            }));
        }
        jobs.push(SimJob::new(format!("owned {seed:#x}"), move || {
            pipeline_digest(seed, EvalMode::EventDriven)
        }));
        jobs.push(SimJob::on_circuit(
            format!("shared {seed:#x}"),
            &proto,
            move |c| drive_shared(c, seed),
        ));
    }
    jobs
}

/// Renders every outcome (label, digest or error text) in submission
/// order, so two reports can be compared byte for byte including their
/// failures.
fn rendered(report: &mt_elastic::sim::SweepReport<(String, KernelStats)>) -> Vec<String> {
    report
        .jobs
        .iter()
        .map(|j| match &j.outcome {
            Ok((d, _)) => format!("ok {}: {d}", j.label),
            Err(e) => format!("err {}: {e}", j.label),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pool shape is behaviourally invisible: whatever the worker count
    /// (and hence chunk seeding and steal pattern), however owned and
    /// reset-reuse jobs interleave, and wherever a panicking job lands,
    /// the submission-ordered outcomes — digests, errors *and* the
    /// aggregated kernel counters — are byte-identical to `workers == 1`.
    /// The per-seed owned/shared pairing additionally proves the
    /// `Circuit::reset` contract: a rewound instance reproduces a fresh
    /// build exactly.
    #[test]
    fn pool_shape_and_circuit_reuse_are_invisible(
        workers in 2usize..7,
        seeds in prop::collection::vec(any::<u64>(), 2..7),
        panic_pick in any::<u64>(),
    ) {
        let panic_at = panic_pick
            .is_multiple_of(3)
            .then(|| (panic_pick / 3) as usize % seeds.len());
        let serial = run_sweep_on(mixed_jobs(&seeds, panic_at), 1);
        prop_assert_eq!(serial.workers_used, 1);
        let par = run_sweep_on(mixed_jobs(&seeds, panic_at), workers);
        prop_assert_eq!(par.workers_requested, workers);
        prop_assert_eq!(
            rendered(&par),
            rendered(&serial),
            "{} workers diverged from serial (panic at {:?})",
            workers,
            panic_at
        );
        prop_assert_eq!(par.kernel, serial.kernel, "kernel aggregate diverged");

        // Reset-then-rerun == fresh build, point by point: within one
        // report, each shared job's digest equals its owned twin's.
        for pair in serial.jobs.chunks(2).filter(|p| p.len() == 2) {
            if !pair[0].label.starts_with("owned") {
                continue; // the spliced-in panic job offsets one chunk
            }
            let owned = pair[0].outcome.as_ref().expect("owned job runs clean");
            let shared = pair[1].outcome.as_ref().expect("shared job runs clean");
            prop_assert_eq!(&owned.0, &shared.0, "reset reuse diverged from fresh build");
        }
    }
}

/// The `SweepService` campaign cache: a second identical keyed campaign
/// answers ≥ 90% (here: all) of its points from memory, byte-identically
/// and with zero simulation work.
#[test]
fn sweep_service_memoizes_repeat_campaigns() {
    let keyed = || -> Vec<SimJob<(String, KernelStats)>> {
        (0..8u64)
            .map(|seed| {
                SimJob::new(format!("pt {seed}"), move || {
                    pipeline_digest(seed, EvalMode::EventDriven)
                })
                .with_cache_key(campaign_key(0xF00D, 0x1, seed))
            })
            .collect()
    };
    let service = SweepService::new(2);
    let first = service.run(keyed());
    assert_eq!(first.memoized_jobs, 0, "cold cache must not memoize");
    assert_eq!(first.ok_count(), 8);

    let second = service.run(keyed());
    assert!(
        second.memoized_jobs * 10 >= second.jobs.len() * 9,
        "second identical campaign memoized only {}/{} jobs",
        second.memoized_jobs,
        second.jobs.len()
    );
    assert_eq!(rendered(&second), rendered(&first));
    assert!(second
        .jobs
        .iter()
        .all(|j| j.memoized && j.wall == std::time::Duration::ZERO));
}

/// Autotune-volume cache behaviour: thousands of distinct keyed points
/// (the size of a long `synth_optimize` run) keep the campaign cache
/// bounded at its capacity cap, the freshest keys still answer from
/// memory with their original values, and long-evicted keys re-execute.
#[test]
fn campaign_cache_is_bounded_at_autotune_volume() {
    const CAP: usize = 256;
    let svc = SweepService::new(2).with_cache_capacity(CAP);
    let point = |key: u64, value: u64| -> SimJob<u64> {
        SimJob::new(format!("pt {key:x}"), move || Ok(value)).with_cache_key(key)
    };

    // Five waves of 600 distinct campaign keys — 3 000 points.
    for wave in 0..5u64 {
        let jobs: Vec<SimJob<u64>> = (0..600u64)
            .map(|i| point(campaign_key(wave * 600 + i, 0xC0DE, 0), wave * 600 + i))
            .collect();
        let report = svc.run(jobs);
        assert_eq!(report.cache_hits, 0, "wave {wave}: keys are all distinct");
        assert_eq!(report.cache_misses, 600);
        assert!(
            svc.cached_results() <= CAP,
            "cache grew past its cap after wave {wave}: {}",
            svc.cached_results()
        );
    }
    assert_eq!(svc.cache_evictions(), (3000 - CAP) as u64);

    // A fresh tail wave smaller than the cap is fully retained: the same
    // keys resubmitted with poisoned closures must answer from memory
    // with their original values.
    let tail: Vec<SimJob<u64>> = (0..200u64)
        .map(|i| point(campaign_key(0xAAAA_0000 + i, 0xC0DE, 0), 5000 + i))
        .collect();
    assert_eq!(svc.run(tail).cache_misses, 200);
    let poisoned: Vec<SimJob<u64>> =
        (0..200u64)
            .map(|i| {
                SimJob::new(format!("poison {i}"), move || Ok(u64::MAX))
                    .with_cache_key(campaign_key(0xAAAA_0000 + i, 0xC0DE, 0))
            })
            .collect();
    let report = svc.run(poisoned);
    assert_eq!(report.cache_hits, 200, "recent keys must all hit");
    let values = report.unwrap_all();
    assert!(
        values
            .iter()
            .enumerate()
            .all(|(i, &v)| v == 5000 + i as u64),
        "a poisoned (stale) value was served: {values:?}"
    );

    // Wave-0 keys were evicted thousands of insertions ago.
    let ancient: Vec<SimJob<u64>> = (0..200u64)
        .map(|i| point(campaign_key(i, 0xC0DE, 0), 9000 + i))
        .collect();
    assert_eq!(svc.run(ancient).cache_hits, 0, "evicted keys must not hit");
}

/// Campaign keys derived from `ElasticIr::structural_hash` can never
/// serve a stale result across an IR mutation: a transforming pass
/// changes the hash — and therefore the key — so the mutated design's
/// point misses and re-executes, while the unmutated design still hits.
#[test]
fn ir_mutation_changes_the_key_so_no_stale_hit() {
    use mt_elastic::core::ArbiterKind;
    use mt_elastic::synth::{ElasticIr, IrNodeKind, MebSubstitution, Pass};

    fn chain(kind: MebKind) -> ElasticIr<u64> {
        let mut ir = ElasticIr::<u64>::new();
        let a = ir.channel_with_width("a", 2, 8);
        let b = ir.channel_with_width("b", 2, 8);
        ir.add("src", IrNodeKind::Source, vec![], vec![a]);
        ir.add(
            "buf",
            IrNodeKind::Meb {
                kind,
                arbiter: ArbiterKind::RoundRobin,
                initial: Vec::new(),
                auto: true,
            },
            vec![a],
            vec![b],
        );
        ir.add(
            "snk",
            IrNodeKind::Sink {
                capture: false,
                policy: ReadyPolicy::Always,
            },
            vec![b],
            vec![],
        );
        ir
    }

    let svc = SweepService::new(1);
    // The job's "result" is the buffer microarchitecture it was built
    // from, so a stale cache entry is immediately visible in the value.
    let probe = |ir: &ElasticIr<u64>, label: &str| -> (u64, SimJob<String>) {
        let key = campaign_key(ir.structural_hash(), 0x5EED, 0);
        let tag = format!("{:?}", ir.node(ir.node_named("buf").unwrap()).tag());
        let job = SimJob::new(label.to_string(), move || Ok(tag)).with_cache_key(key);
        (key, job)
    };

    let mut ir = chain(MebKind::Full);
    let (key_before, job) = probe(&ir, "before");
    let first = svc.run(vec![job]).unwrap_all();
    assert!(first[0].contains("Full"));

    // Identical design resubmitted: served from memory.
    let (_, job) = probe(&ir, "again");
    assert_eq!(svc.run(vec![job]).cache_hits, 1);

    // Mutate the design: the key must change and the point re-execute.
    MebSubstitution::named("buf", MebKind::Fifo { depth: 4 })
        .run(&mut ir)
        .expect("substitute");
    let (key_after, job) = probe(&ir, "after");
    assert_ne!(
        key_before, key_after,
        "mutation must change the campaign key"
    );
    let report = svc.run(vec![job]);
    assert_eq!(
        report.cache_hits, 0,
        "stale hit served across an IR mutation"
    );
    let values = report.unwrap_all();
    assert!(
        values[0].contains("Fifo"),
        "stale pre-mutation result returned: {}",
        values[0]
    );
}
