//! IR round-trip equivalence — the structural-IR elaboration path must be
//! *byte-identical* to the pre-refactor direct `CircuitBuilder` path.
//!
//! For each design (GCD loop, MD5 engine, the processor) we build the
//! circuit twice: once through `ElasticIr` (the only path the library now
//! exposes) and once through a test-local replica of the old hand-written
//! construction, preserved here verbatim. Both are driven with identical
//! stimuli under the exhaustive settle oracle and must produce identical
//! capture digests — every `(cycle, token)` pair, in order, per thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mt_elastic::core::{ArbiterKind, Barrier, Branch, MebKind, Merge};
use mt_elastic::md5::algo::{apply_steps, pad_blocks, MD5_IV};
use mt_elastic::md5::{Md5Circuit, Md5Token};
use mt_elastic::proc::{assemble, programs, Cpu, CpuConfig, RegUnit, NUM_REGS};
use mt_elastic::sim::{
    Circuit, CircuitBuilder, EvalMode, LatencyModel, ReadyPolicy, Sink, Source, Transform,
    VarLatency,
};
use mt_elastic::synth::{DataflowBuilder, OpLatency, SynthConfig};

/// Debug-formatted capture digest of a sink: every `(cycle, token)` pair
/// for every thread, in arrival order.
fn capture_digest<T: mt_elastic::sim::Token>(
    circuit: &Circuit<T>,
    sink: &str,
    threads: usize,
) -> String {
    let sink: &Sink<T> = circuit.get(sink).expect("sink exists");
    (0..threads)
        .map(|t| format!("t{t}: {:?}\n", sink.captured(t)))
        .collect()
}

// ---------------------------------------------------------------------
// GCD: DataflowBuilder -> IR -> circuit  vs  direct CircuitBuilder replica
// ---------------------------------------------------------------------

type Pair = (u64, u64);

fn gcd_via_ir(threads: usize) -> Circuit<Pair> {
    let mut g = DataflowBuilder::<Pair>::new(threads);
    let fresh = g.input("pairs");
    let looped = g.input("loop");
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b): &Pair| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Fixed(1), cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step).expect("loop closes");
    g.elaborate(SynthConfig::default())
        .expect("gcd elaborates")
        .circuit
}

/// The pre-refactor elaboration of the GCD graph, wire by wire: channel
/// and component creation in exactly the order the old monolithic
/// `elaborate` emitted them.
fn gcd_direct(threads: usize) -> Circuit<Pair> {
    let mut b = CircuitBuilder::<Pair>::new();
    // Wire loop (w1 is the dead placeholder; Merge/Op outputs get an
    // auto-buffer under the default AfterOps policy).
    let w0 = b.channel("w0:pairs.0", threads);
    let w2 = b.channel("w2:entry.0", threads);
    let w2_buf = b.channel("w2:entry.0:buf", threads);
    b.add_boxed(MebKind::Reduced.build_with::<Pair>(
        "autobuf:w2",
        w2,
        w2_buf,
        threads,
        ArbiterKind::RoundRobin,
    ));
    let w3 = b.channel("w3:done?.0", threads);
    let w4 = b.channel("w4:done?.1", threads);
    let w5 = b.channel("w5:step.0", threads);
    let w5_buf = b.channel("w5:step.0:buf", threads);
    b.add_boxed(MebKind::Reduced.build_with::<Pair>(
        "autobuf:w5",
        w5,
        w5_buf,
        threads,
        ArbiterKind::RoundRobin,
    ));
    // Node loop, in insertion order (the `loop` input is dead).
    b.add(Source::<Pair>::new("in:pairs", w0, threads));
    b.add(Merge::new("entry", vec![w0, w5_buf], w2, threads));
    b.add(Branch::new(
        "done?",
        w2_buf,
        w3,
        w4,
        threads,
        |&(a, b): &Pair| a == b,
    ));
    b.add(Sink::with_capture(
        "out:gcd",
        w3,
        threads,
        ReadyPolicy::Always,
    ));
    let mid = b.channel("step:joined", threads);
    b.add(Transform::new(
        "step:fn",
        w4,
        mid,
        threads,
        |&(a, b): &Pair| {
            if a > b {
                (a - b, b)
            } else {
                (a, b - a)
            }
        },
    ));
    b.add(VarLatency::new(
        "step:unit",
        mid,
        w5,
        threads,
        threads.max(2),
        LatencyModel::Fixed(1),
    ));
    b.build().expect("gcd direct netlist is well-formed")
}

#[test]
fn gcd_ir_path_matches_direct_path() {
    const THREADS: usize = 4;
    let problems = [(1071u64, 462u64), (270, 192), (35, 64), (123456, 7890)];

    let run = |mut c: Circuit<Pair>| -> (String, u64) {
        c.set_eval_mode(EvalMode::Exhaustive);
        {
            let src: &mut Source<Pair> = c.get_mut("in:pairs").expect("source exists");
            for (t, &p) in problems.iter().enumerate() {
                src.push(t, p);
            }
        }
        c.run(2_000).expect("runs clean");
        (capture_digest(&c, "out:gcd", THREADS), c.cycle())
    };

    let (ir_digest, ir_cycles) = run(gcd_via_ir(THREADS));
    let (direct_digest, direct_cycles) = run(gcd_direct(THREADS));
    assert!(
        ir_digest.contains("(21, 21)") && ir_digest.contains("(6, 6)"),
        "sanity: gcd(1071,462)=21 run produced digests:\n{ir_digest}"
    );
    assert_eq!(ir_cycles, direct_cycles);
    assert_eq!(ir_digest, direct_digest, "GCD capture digests diverge");
}

// ---------------------------------------------------------------------
// MD5: Md5Circuit::with_stages (IR path)  vs  direct replica of the old body
// ---------------------------------------------------------------------

/// The pre-refactor `Md5Circuit::with_stages` body, specialised to one
/// round stage, returning the raw circuit.
fn md5_direct(threads: usize, participants: usize, kind: MebKind) -> Circuit<Md5Token> {
    let mut b = CircuitBuilder::<Md5Token>::new();
    let fresh = b.channel("fresh", threads);
    let loopback = b.channel("loop", threads);
    let into_buf = b.channel("in", threads);
    let stage_chs = b.channels("st", threads, 2);
    let obuf = b.channel("obuf", threads);
    let released = b.channel("rel", threads);
    let done = b.channel("done", threads);

    b.add(Source::<Md5Token>::new("feeder", fresh, threads));
    b.add(Merge::new(
        "entry",
        vec![loopback, fresh],
        into_buf,
        threads,
    ));
    b.add_boxed(kind.build_with::<Md5Token>(
        "meb_in",
        into_buf,
        stage_chs[0],
        threads,
        ArbiterKind::RoundRobin,
    ));

    let round_counter = Arc::new(AtomicUsize::new(0));
    let rc = Arc::clone(&round_counter);
    b.add(Transform::new(
        "round_stage0",
        stage_chs[0],
        stage_chs[1],
        threads,
        move |tok: &Md5Token| {
            let round = rc.load(Ordering::SeqCst) % 4;
            assert_eq!(usize::from(tok.steps_done) % 64, round * 16);
            let mut out = tok.clone();
            out.work = apply_steps(out.work, &out.block, round * 16, 16);
            out.steps_done += 16;
            out
        },
    ));

    b.add_boxed(kind.build_with::<Md5Token>(
        "meb_out",
        stage_chs[1],
        obuf,
        threads,
        ArbiterKind::RoundRobin,
    ));

    let rc = Arc::clone(&round_counter);
    let mask: Vec<bool> = (0..threads).map(|t| t < participants).collect();
    b.add(
        Barrier::new("barrier", obuf, released, threads)
            .with_participants(mask)
            .with_release_action(move |_| {
                rc.fetch_add(1, Ordering::SeqCst);
            }),
    );
    b.add(Branch::new(
        "exit",
        released,
        done,
        loopback,
        threads,
        |tok: &Md5Token| tok.steps_done >= 64,
    ));
    b.add(Sink::with_capture(
        "out",
        done,
        threads,
        ReadyPolicy::Always,
    ));
    b.build().expect("md5 direct netlist is well-formed")
}

#[test]
fn md5_ir_path_matches_direct_path() {
    const THREADS: usize = 4;
    let messages: [&[u8]; THREADS] = [b"", b"abc", b"message digest", b"roundtrip"];

    for kind in [MebKind::Full, MebKind::Reduced] {
        let run = |mut c: Circuit<Md5Token>| -> (String, u64) {
            c.set_eval_mode(EvalMode::Exhaustive);
            {
                let feeder: &mut Source<Md5Token> = c.get_mut("feeder").expect("feeder exists");
                for (t, msg) in messages.iter().enumerate() {
                    let block = pad_blocks(msg)[0];
                    feeder.push(
                        t,
                        Md5Token {
                            thread: t,
                            wave: 0,
                            block,
                            chain: MD5_IV,
                            work: MD5_IV,
                            steps_done: 0,
                            phantom: false,
                        },
                    );
                }
            }
            c.run(600).expect("runs clean");
            (capture_digest(&c, "out", THREADS), c.cycle())
        };

        let ir = Md5Circuit::with_stages(THREADS, THREADS, kind, 1);
        let (ir_digest, ir_cycles) = run(ir.circuit);
        let (direct_digest, direct_cycles) = run(md5_direct(THREADS, THREADS, kind));
        assert_eq!(ir_cycles, direct_cycles, "{kind}");
        assert_eq!(
            ir_digest, direct_digest,
            "MD5 capture digests diverge for {kind}"
        );
        // Sanity: every thread finished its four round trips.
        assert_eq!(ir_digest.matches("steps_done: 64").count(), THREADS);
    }
}

// ---------------------------------------------------------------------
// Processor: Cpu::new (IR path)  vs  direct replica of the old body
// ---------------------------------------------------------------------

/// The pre-refactor `Cpu::new` body (no speculation), returning the raw
/// circuit plus the channels needed for the transfer-count comparison.
fn cpu_direct(
    config: &CpuConfig,
    program: Vec<u32>,
    entry_pcs: Vec<u32>,
) -> (
    Circuit<mt_elastic::proc::ProcToken>,
    Vec<mt_elastic::sim::ChannelId>,
) {
    use mt_elastic::core::{Fork, ForkMode};
    use mt_elastic::proc::{execute, Fetcher, Instr, MemUnit, ProcToken};

    let s = config.threads;
    let mut b = CircuitBuilder::<ProcToken>::new();

    let fetch = b.channel("fetch", s);
    let fetched = b.channel("fetched", s);
    let decode_in = b.channel("decode_in", s);
    let issued = b.channel("issued", s);
    let ex_in = b.channel("ex_in", s);
    let ex_out = b.channel("ex_out", s);
    let route_in = b.channel("route_in", s);
    let mem_in = b.channel("mem_in", s);
    let mem_out = b.channel("mem_out", s);
    let wb = b.channel("wb", s);
    let redirect_raw = b.channel("redirect_raw", s);
    let redirect = b.channel("redirect", s);

    let imem = Arc::new(program);
    b.add(Fetcher::new("fetch", fetch, redirect, s, imem, entry_pcs));
    b.add(VarLatency::new(
        "icache",
        fetch,
        fetched,
        s,
        s.max(2),
        LatencyModel::Uniform {
            min: config.imem_latency.0,
            max: config.imem_latency.1,
            seed: config.seed ^ 0x1CAC4E,
        },
    ));
    b.add_boxed(config.meb.build_with::<ProcToken>(
        "meb_if",
        fetched,
        decode_in,
        s,
        config.arbiter,
    ));
    b.add(RegUnit::new("regs", decode_in, wb, issued, s));
    b.add_boxed(
        config
            .meb
            .build_with::<ProcToken>("meb_id", issued, ex_in, s, config.arbiter),
    );
    let mul_latency = config.mul_latency;
    b.add(
        VarLatency::new(
            "exec",
            ex_in,
            ex_out,
            s,
            s.max(2),
            LatencyModel::PerToken(Box::new(move |tok: &ProcToken| match tok {
                ProcToken::Decoded { instr, .. } if instr.is_mul() => mul_latency,
                _ => 1,
            })),
        )
        .with_transform(execute),
    );
    b.add_boxed(
        config
            .meb
            .build_with::<ProcToken>("meb_ex", ex_out, route_in, s, config.arbiter),
    );
    b.add(
        Fork::new(
            "router",
            route_in,
            vec![mem_in, redirect_raw],
            s,
            ForkMode::Eager,
        )
        .with_route(|tok: &ProcToken| {
            let ProcToken::Executed { instr, .. } = tok else {
                panic!("router received a non-executed token");
            };
            let to_wb = !instr.is_control_flow() || matches!(instr, Instr::Jal { .. });
            let to_redirect = instr.is_control_flow();
            vec![to_wb, to_redirect]
        }),
    );
    b.add(MemUnit::new(
        "dmem",
        mem_in,
        mem_out,
        s,
        s.max(2),
        config.dmem_words,
        config.dmem_latency,
        config.seed ^ 0xD3EA,
    ));
    b.add_boxed(
        config
            .meb
            .build_with::<ProcToken>("meb_wb", mem_out, wb, s, config.arbiter),
    );
    b.add_boxed(config.meb.build_with::<ProcToken>(
        "meb_rd",
        redirect_raw,
        redirect,
        s,
        config.arbiter,
    ));

    let circuit = b.build().expect("cpu direct netlist is well-formed");
    let channels = vec![
        fetch,
        fetched,
        decode_in,
        issued,
        ex_in,
        ex_out,
        route_in,
        mem_in,
        mem_out,
        wb,
        redirect_raw,
        redirect,
    ];
    (circuit, channels)
}

#[test]
fn processor_ir_path_matches_direct_path() {
    const THREADS: usize = 2;
    const CYCLES: u64 = 2_000;
    let program = assemble(programs::SUM_LOOP).expect("program assembles");
    let config = CpuConfig::new(THREADS);

    // IR path: the library's own constructor.
    let mut cpu = Cpu::new(config.clone(), program.clone(), vec![0; THREADS]);
    cpu.circuit.set_eval_mode(EvalMode::Exhaustive);
    cpu.circuit.run(CYCLES).expect("ir cpu runs clean");

    // Direct path: the pre-refactor construction.
    let (mut direct, direct_chs) = cpu_direct(&config, program, vec![0; THREADS]);
    direct.set_eval_mode(EvalMode::Exhaustive);
    direct.run(CYCLES).expect("direct cpu runs clean");

    // Architectural state must be byte-identical.
    let direct_regs: &RegUnit = direct.get("regs").expect("regs exist");
    for t in 0..THREADS {
        for r in 0..NUM_REGS {
            assert_eq!(
                cpu.reg(t, r),
                direct_regs.reg(t, r),
                "thread {t} register r{r} diverges"
            );
        }
    }

    // So must the microarchitectural trace: per-thread transfer counts on
    // every pipeline channel, in pipeline order.
    let ir_chs = [
        cpu.channels.fetch,
        cpu.channels.fetched,
        cpu.channels.decode_in,
        cpu.channels.issued,
        cpu.channels.ex_in,
        cpu.channels.ex_out,
        cpu.channels.route_in,
        cpu.channels.mem_in,
        cpu.channels.mem_out,
        cpu.channels.wb,
        cpu.channels.redirect_raw,
        cpu.channels.redirect,
    ];
    let mut executed_anything = false;
    for (a, b) in ir_chs.iter().zip(&direct_chs) {
        for t in 0..THREADS {
            let ir_n = cpu.circuit.stats().transfers(*a, t);
            assert_eq!(
                ir_n,
                direct.stats().transfers(*b, t),
                "transfers diverge on channel pair ({a:?}, {b:?}) thread {t}"
            );
            executed_anything |= ir_n > 0;
        }
    }
    assert!(executed_anything, "sanity: the program actually ran");
}
