//! Property tests for the build-time levelized rank schedule.
//!
//! Two equivalence bars, in decreasing strength:
//!
//! 1. **Kernel soundness** — for *every* schedule (ranked, insertion,
//!    reversed) and every shuffled builder insertion order, the
//!    event-driven dirty-set kernel must match the exhaustive oracle
//!    byte for byte. Holds unconditionally.
//! 2. **Schedule independence** — on *signal-acyclic* nets every eval is
//!    a pure function of the handshake state, the cycle's fixed point is
//!    unique, and the captures are identical across schedules and
//!    insertion orders (the purity argument of `docs/kernel.md`).
//!    The fork/join diamond is deliberately *excluded* from this bar:
//!    the Join's valid→ready coupling closes a (damped) signal cycle
//!    through the two variable-latency arms, and on feedback channels
//!    the anti-swap hysteresis legitimately picks an order-dependent —
//!    but individually valid — fixed point. There the weaker guarantee
//!    is token conservation per thread.

use mt_elastic::core::{ArbiterKind, Fork, ForkMode, Join, MebKind};
use mt_elastic::sim::{
    CircuitBuilder, Component, EvalMode, LatencyModel, ReadyPolicy, ScheduleMode, Sink, Source,
    Tagged, VarLatency,
};
use proptest::prelude::*;

fn meb_kind_strategy() -> impl Strategy<Value = MebKind> {
    prop_oneof![
        Just(MebKind::Full),
        Just(MebKind::Reduced),
        (2usize..4).prop_map(|depth| MebKind::Fifo { depth }),
    ]
}

/// Deterministic Fisher–Yates (LCG-driven) over the builder insertion
/// order, so the same `order_seed` always yields the same permutation.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// Randomized topology: source → MEB → (fork/join diamond over skewed
/// variable-latency arms, or a single variable-latency unit) → a short
/// MEB chain → randomly-stalling sink.
#[derive(Clone, Debug)]
struct NetParams {
    threads: usize,
    tokens: u64,
    kind: MebKind,
    diamond: bool,
    tail_stages: usize,
    p_ready: f64,
    seed: u64,
}

/// Builds and runs the network, adding components in the permutation
/// selected by `order_seed`, and returns the per-thread captures.
fn run_net(
    p: &NetParams,
    mode: EvalMode,
    schedule: ScheduleMode,
    order_seed: u64,
) -> Vec<Vec<(u64, u64)>> {
    let mut b = CircuitBuilder::<Tagged>::new();
    let src_ch = b.channel("src", p.threads);
    let work = b.channel("work", p.threads);
    let mid = b.channel("mid", p.threads);
    let tail = b.channels("tail", p.threads, p.tail_stages + 1);

    let mut comps: Vec<Box<dyn Component<Tagged>>> = Vec::new();
    let mut src = Source::new("src", src_ch, p.threads);
    for t in 0..p.threads {
        src.extend(t, (0..p.tokens).map(|i| Tagged::new(t, i, i)));
    }
    comps.push(Box::new(src));
    comps.push(p.kind.build_with::<Tagged>(
        "head",
        src_ch,
        work,
        p.threads,
        ArbiterKind::RoundRobin,
    ));
    if p.diamond {
        let arm_a = b.channel("arm_a", p.threads);
        let arm_b = b.channel("arm_b", p.threads);
        let done_a = b.channel("done_a", p.threads);
        let done_b = b.channel("done_b", p.threads);
        comps.push(Box::new(Fork::new(
            "split",
            work,
            vec![arm_a, arm_b],
            p.threads,
            ForkMode::Eager,
        )));
        comps.push(Box::new(VarLatency::new(
            "ua",
            arm_a,
            done_a,
            p.threads,
            2,
            LatencyModel::Uniform {
                min: 1,
                max: 3,
                seed: p.seed,
            },
        )));
        comps.push(Box::new(VarLatency::new(
            "ub",
            arm_b,
            done_b,
            p.threads,
            2,
            LatencyModel::Uniform {
                min: 1,
                max: 2,
                seed: p.seed ^ 7,
            },
        )));
        comps.push(Box::new(Join::new(
            "pair",
            vec![done_a, done_b],
            mid,
            p.threads,
            |ins: &[&Tagged]| ins[0].clone(),
        )));
    } else {
        comps.push(Box::new(VarLatency::new(
            "u",
            work,
            mid,
            p.threads,
            2,
            LatencyModel::Uniform {
                min: 1,
                max: 3,
                seed: p.seed,
            },
        )));
    }
    comps.push(p.kind.build_with::<Tagged>(
        "bridge",
        mid,
        tail[0],
        p.threads,
        ArbiterKind::RoundRobin,
    ));
    for i in 0..p.tail_stages {
        comps.push(p.kind.build_with::<Tagged>(
            format!("tail{i}"),
            tail[i],
            tail[i + 1],
            p.threads,
            ArbiterKind::RoundRobin,
        ));
    }
    let out = tail[p.tail_stages];
    comps.push(Box::new(Sink::with_capture(
        "snk",
        out,
        p.threads,
        ReadyPolicy::Random {
            p: p.p_ready,
            seed: p.seed ^ 13,
        },
    )));

    shuffle(&mut comps, order_seed);
    for c in comps {
        b.add_boxed(c);
    }
    b.set_schedule(schedule);
    let mut circuit = b.build().expect("random acyclic net is well-formed");
    circuit.set_eval_mode(mode);
    circuit.set_deadlock_watchdog(Some(400));
    let expected = p.tokens * p.threads as u64;
    let budget = 400 + expected * 24;
    let done = circuit.run_until(budget, move |c| c.stats().total_transfers(out) >= expected);
    assert!(matches!(done, Ok(true)), "net did not drain: {done:?}");
    let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
    (0..p.threads)
        .map(|t| {
            snk.captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both equivalence bars on random topologies, including shuffled
    /// builder insertion orders.
    #[test]
    fn schedules_and_oracle_agree_on_random_topologies(
        threads in 1usize..4,
        tokens in 1u64..12,
        kind in meb_kind_strategy(),
        diamond in any::<bool>(),
        tail_stages in 0usize..3,
        p_ready in 0.3f64..1.0,
        seed in any::<u64>(),
        order_seed in any::<u64>(),
    ) {
        let p = NetParams { threads, tokens, kind, diamond, tail_stages, p_ready, seed };
        let reference = run_net(&p, EvalMode::EventDriven, ScheduleMode::Ranked, order_seed);

        // Bar 1: the dirty-set kernel matches the exhaustive oracle
        // under every static ordering, on every topology.
        for schedule in [ScheduleMode::Ranked, ScheduleMode::Insertion, ScheduleMode::Reversed] {
            let fast = run_net(&p, EvalMode::EventDriven, schedule, order_seed);
            let oracle = run_net(&p, EvalMode::Exhaustive, schedule, order_seed);
            prop_assert_eq!(
                &fast, &oracle,
                "{:?}: event-driven kernel diverged from the exhaustive oracle", schedule
            );
            if diamond {
                // Feedback (damped) signal cycle through the join: the
                // schedules may settle on different — individually valid
                // — arbitration orders, but never lose or forge tokens.
                for (t, caps) in fast.iter().enumerate() {
                    let mut seqs: Vec<u64> = caps.iter().map(|&(_, s)| s).collect();
                    seqs.sort_unstable();
                    prop_assert_eq!(&seqs, &(0..tokens).collect::<Vec<_>>(), "thread {}", t);
                }
            } else {
                // Bar 2: signal-acyclic net — the fixed point is unique,
                // so the schedule is behaviourally invisible.
                prop_assert_eq!(
                    &reference, &fast,
                    "{:?} schedule diverged from ranked on an acyclic net", schedule
                );
            }
        }

        // A different builder insertion order must not change behaviour
        // on acyclic nets either — the rank schedule (and the fixed
        // point itself) is a property of the netlist, not of
        // construction order.
        if !diamond {
            let reshuffled = run_net(
                &p, EvalMode::EventDriven, ScheduleMode::Ranked, order_seed ^ 0xDEAD_BEEF,
            );
            prop_assert_eq!(
                &reference, &reshuffled,
                "builder insertion order leaked into behaviour"
            );
        }
    }
}
