//! A from-scratch software MD5 (RFC 1321) — the golden reference against
//! which the elastic circuit is verified.
//!
//! The algorithm processes 512-bit blocks through 64 steps organized as
//! **4 rounds of 16 steps**; the paper's hardware implements each round's
//! 16 steps as one fully unrolled combinational stage
//! ([`apply_round`]) — "the 16 steps of each round are fully unrolled and
//! implemented in a single cycle" (Sec. V-A).

/// MD5 initial chaining value (A, B, C, D).
pub const MD5_IV: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

/// Per-step left-rotation amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, // round 1
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, // round 2
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, // round 3
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, // round 4
];

/// The sine-derived additive constants: `K[i] = floor(|sin(i + 1)| · 2³²)`.
///
/// Computed (not transcribed) to match the RFC definition exactly.
pub fn k_table() -> [u32; 64] {
    let mut k = [0u32; 64];
    for (i, slot) in k.iter_mut().enumerate() {
        *slot = (f64::sin((i + 1) as f64).abs() * 4294967296.0) as u32;
    }
    k
}

fn k(i: usize) -> u32 {
    // Cheap enough to recompute; hot paths use `k_table` via `Md5Tables`.
    (f64::sin((i + 1) as f64).abs() * 4294967296.0) as u32
}

/// Message-word index accessed by step `i`.
fn msg_index(i: usize) -> usize {
    match i / 16 {
        0 => i,
        1 => (5 * i + 1) % 16,
        2 => (3 * i + 5) % 16,
        _ => (7 * i) % 16,
    }
}

/// The round boolean function applied at step `i`.
fn round_fn(i: usize, b: u32, c: u32, d: u32) -> u32 {
    match i / 16 {
        0 => (b & c) | (!b & d),
        1 => (d & b) | (!d & c),
        2 => b ^ c ^ d,
        _ => c ^ (b | !d),
    }
}

/// Applies one MD5 step to the working state.
fn step(work: [u32; 4], block: &[u32; 16], i: usize) -> [u32; 4] {
    let [a, b, c, d] = work;
    let f = round_fn(i, b, c, d)
        .wrapping_add(a)
        .wrapping_add(k(i))
        .wrapping_add(block[msg_index(i)]);
    [d, b.wrapping_add(f.rotate_left(S[i])), b, c]
}

/// Applies the 16 unrolled steps of `round` (0–3) to the working state —
/// the combinational round unit of the paper's MD5 circuit.
///
/// # Panics
///
/// Panics if `round >= 4`.
///
/// # Examples
///
/// Four round applications equal one block compression:
///
/// ```
/// use elastic_md5::algo::{apply_round, compress, MD5_IV};
///
/// let block = [7u32; 16];
/// let mut work = MD5_IV;
/// for r in 0..4 {
///     work = apply_round(work, &block, r);
/// }
/// let direct = compress(MD5_IV, &block);
/// for i in 0..4 {
///     assert_eq!(direct[i], MD5_IV[i].wrapping_add(work[i]));
/// }
/// ```
pub fn apply_round(mut work: [u32; 4], block: &[u32; 16], round: usize) -> [u32; 4] {
    assert!(round < 4, "MD5 has exactly 4 rounds");
    for i in 16 * round..16 * (round + 1) {
        work = step(work, block, i);
    }
    work
}

/// Applies steps `from..from + count` of the 64-step schedule — the
/// building block of the *pipelined* round unit (the paper notes the
/// unrolled steps "could have been pipelined with minimum changes due to
/// elasticity").
///
/// # Panics
///
/// Panics if `from + count > 64`.
///
/// # Examples
///
/// Four 4-step stages equal one 16-step round:
///
/// ```
/// use elastic_md5::algo::{apply_round, apply_steps, MD5_IV};
///
/// let block = [3u32; 16];
/// let mut staged = MD5_IV;
/// for stage in 0..4 {
///     staged = apply_steps(staged, &block, 4 * stage, 4);
/// }
/// assert_eq!(staged, apply_round(MD5_IV, &block, 0));
/// ```
pub fn apply_steps(mut work: [u32; 4], block: &[u32; 16], from: usize, count: usize) -> [u32; 4] {
    assert!(from + count <= 64, "MD5 has exactly 64 steps");
    for i in from..from + count {
        work = step(work, block, i);
    }
    work
}

/// Compresses one 512-bit block into the chaining state.
pub fn compress(chain: [u32; 4], block: &[u32; 16]) -> [u32; 4] {
    let mut work = chain;
    for round in 0..4 {
        work = apply_round(work, block, round);
    }
    [
        chain[0].wrapping_add(work[0]),
        chain[1].wrapping_add(work[1]),
        chain[2].wrapping_add(work[2]),
        chain[3].wrapping_add(work[3]),
    ]
}

/// Pads `message` per RFC 1321 and splits it into 16-word blocks
/// (little-endian words).
pub fn pad_blocks(message: &[u8]) -> Vec<[u32; 16]> {
    let bit_len = (message.len() as u64).wrapping_mul(8);
    let mut bytes = message.to_vec();
    bytes.push(0x80);
    while bytes.len() % 64 != 56 {
        bytes.push(0);
    }
    bytes.extend_from_slice(&bit_len.to_le_bytes());
    debug_assert_eq!(bytes.len() % 64, 0);
    bytes
        .chunks_exact(64)
        .map(|chunk| {
            let mut block = [0u32; 16];
            for (w, word) in chunk.chunks_exact(4).enumerate() {
                block[w] = u32::from_le_bytes([word[0], word[1], word[2], word[3]]);
            }
            block
        })
        .collect()
}

/// Serializes the final chaining state as the 16-byte digest.
pub fn digest_bytes(state: [u32; 4]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (i, w) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Computes the MD5 digest of `message`.
///
/// # Examples
///
/// ```
/// use elastic_md5::algo::{md5, to_hex};
///
/// assert_eq!(to_hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
/// ```
pub fn md5(message: &[u8]) -> [u8; 16] {
    let mut chain = MD5_IV;
    for block in pad_blocks(message) {
        chain = compress(chain, &block);
    }
    digest_bytes(chain)
}

/// Renders a digest as lowercase hex.
pub fn to_hex(digest: &[u8; 16]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The complete RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_test_suite() {
        let vectors: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (msg, expect) in vectors {
            assert_eq!(
                to_hex(&md5(msg)),
                expect,
                "message {:?}",
                String::from_utf8_lossy(msg)
            );
        }
    }

    #[test]
    fn k_table_matches_known_anchors() {
        let k = k_table();
        // First and last constants from the RFC reference implementation.
        assert_eq!(k[0], 0xd76a_a478);
        assert_eq!(k[1], 0xe8c7_b756);
        assert_eq!(k[63], 0xeb86_d391);
    }

    #[test]
    fn padding_appends_one_bit_and_length() {
        let blocks = pad_blocks(b"");
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0][0], 0x0000_0080); // 0x80 then zeros, LE
        assert_eq!(blocks[0][14], 0); // bit length low word
        let blocks = pad_blocks(&[0u8; 56]); // forces a second block
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1][14], 56 * 8);
    }

    #[test]
    fn multi_block_messages_chain() {
        // 200 bytes → 4 blocks; compare against a second, independent
        // formulation (explicit chaining through compress).
        let msg: Vec<u8> = (0..200u8).collect();
        let mut chain = MD5_IV;
        for block in pad_blocks(&msg) {
            chain = compress(chain, &block);
        }
        assert_eq!(digest_bytes(chain), md5(&msg));
    }

    #[test]
    fn rounds_compose_into_compress() {
        let block = pad_blocks(b"roundtrip")[0];
        let mut work = MD5_IV;
        for r in 0..4 {
            work = apply_round(work, &block, r);
        }
        let combined = [
            MD5_IV[0].wrapping_add(work[0]),
            MD5_IV[1].wrapping_add(work[1]),
            MD5_IV[2].wrapping_add(work[2]),
            MD5_IV[3].wrapping_add(work[3]),
        ];
        assert_eq!(combined, compress(MD5_IV, &block));
    }

    #[test]
    #[should_panic(expected = "exactly 4 rounds")]
    fn apply_round_rejects_round_4() {
        apply_round(MD5_IV, &[0; 16], 4);
    }
}
