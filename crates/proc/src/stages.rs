//! Pipeline stage components: fetch, decode/writeback (register unit),
//! execute, and the data-memory unit.
//!
//! Every pipeline register between stages is a MEB (paper, Sec. V-B:
//! "Every pipeline register has been replaced by a MEB that selects
//! independently at each stage which thread to promote for execution").
//! Each thread has "a private program counter" and "a different copy of
//! the register file"; memories and execution units are variable-latency.

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use elastic_core::{Arbiter, RoundRobin, SelectState};
use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, Ports, SlotView, ThreadMask, TickCtx,
};

use crate::isa::{Instr, NUM_REGS};
use crate::token::ProcToken;

/// Per-thread fetch status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadStatus {
    /// Fetching normally.
    Running,
    /// A control-flow instruction is in flight; fetch stalls until the
    /// redirect arrives (the elastic pipeline fills the slot with other
    /// threads — the paper's central point).
    WaitControl,
    /// `halt` predecoded; the thread fetches no more.
    Halted,
}

/// Shared speculation squash state: per-thread, per-epoch boundaries.
///
/// A token fetched in epoch `e` with per-thread fetch sequence `q` is
/// **squashed** iff `q > boundary[e]` — i.e. it was fetched *after* the
/// mispredicted branch that ended epoch `e`. Older same-epoch
/// instructions (smaller `q`) stay architecturally live even while they
/// linger in the variable-latency memory path, and post-redirect fetches
/// live in a new epoch whose boundary is still open.
#[derive(Debug)]
pub struct SpecState {
    /// `boundaries[thread][epoch]` = fetch sequence of the mispredicted
    /// branch that closed the epoch (`u64::MAX` while open).
    boundaries: Vec<Mutex<Vec<u64>>>,
}

impl SpecState {
    /// Fresh state for `threads` threads (epoch 0 open everywhere).
    pub fn new(threads: usize) -> Arc<Self> {
        Arc::new(Self {
            boundaries: (0..threads).map(|_| Mutex::new(vec![u64::MAX])).collect(),
        })
    }

    /// The thread's current (open) epoch.
    pub fn current_epoch(&self, thread: usize) -> u32 {
        (self.boundaries[thread]
            .lock()
            .expect("spec state lock")
            .len()
            - 1) as u32
    }

    /// Whether a token is on a squashed (wrong) path.
    pub fn is_squashed(&self, thread: usize, epoch: u32, seq: u64) -> bool {
        let b = self.boundaries[thread].lock().expect("spec state lock");
        seq > b[epoch as usize]
    }

    /// Records a misprediction by the branch at `(epoch, seq)`. Returns
    /// `true` if the branch was live (its epoch closes; a new one opens);
    /// `false` if the branch itself was already squashed.
    pub fn mispredict(&self, thread: usize, epoch: u32, seq: u64) -> bool {
        let mut b = self.boundaries[thread].lock().expect("spec state lock");
        if seq > b[epoch as usize] {
            return false;
        }
        debug_assert_eq!(
            epoch as usize,
            b.len() - 1,
            "live branch must be in the open epoch"
        );
        let last = b.len() - 1;
        b[last] = seq;
        b.push(u64::MAX);
        true
    }
}

/// The fetch stage: private per-thread PCs over a shared instruction
/// memory, stall-on-control-flow (or predict-not-taken speculation with
/// epoch-based squash), redirect absorption.
pub struct Fetcher {
    name: String,
    out: ChannelId,
    redirect: ChannelId,
    threads: usize,
    pcs: Vec<u32>,
    status: Vec<ThreadStatus>,
    imem: Arc<Vec<u32>>,
    arbiter: RoundRobin,
    select: SelectState,
    /// Scratch request mask rebuilt each eval (which threads can fetch).
    has: ThreadMask,
    fetched: Vec<u64>,
    /// Predict-not-taken speculation for conditional branches; direct
    /// jumps are taken at predecode; `jr` still stalls.
    speculate: bool,
    /// Shared squash state (the hardware's squash broadcast).
    spec: Option<Arc<SpecState>>,
    /// Wrong-path instructions squashed per thread (statistics).
    squashed: Vec<u64>,
}

impl Fetcher {
    /// A fetcher for `threads` threads with the given entry PCs.
    ///
    /// # Panics
    ///
    /// Panics if `entry_pcs.len() != threads`.
    pub fn new(
        name: impl Into<String>,
        out: ChannelId,
        redirect: ChannelId,
        threads: usize,
        imem: Arc<Vec<u32>>,
        entry_pcs: Vec<u32>,
    ) -> Self {
        assert_eq!(entry_pcs.len(), threads, "one entry PC per thread");
        Self {
            name: name.into(),
            out,
            redirect,
            threads,
            pcs: entry_pcs,
            status: vec![ThreadStatus::Running; threads],
            imem,
            arbiter: RoundRobin::new(),
            select: SelectState::new(),
            has: ThreadMask::new(threads),
            fetched: vec![0; threads],
            speculate: false,
            spec: None,
            squashed: vec![0; threads],
        }
    }

    /// Enables predict-not-taken speculation with the shared squash state
    /// used by the downstream units to neuter wrong-path instructions.
    #[must_use]
    pub fn with_speculation(mut self, spec: Arc<SpecState>) -> Self {
        self.speculate = true;
        self.spec = Some(spec);
        self
    }

    /// Wrong-path instructions squashed for `thread`.
    pub fn squashed(&self, thread: usize) -> u64 {
        self.squashed[thread]
    }

    fn epoch(&self, t: usize) -> u32 {
        self.spec.as_ref().map_or(0, |s| s.current_epoch(t))
    }

    /// Status of `thread`.
    pub fn status(&self, thread: usize) -> ThreadStatus {
        self.status[thread]
    }

    /// True when every thread has halted.
    pub fn all_halted(&self) -> bool {
        self.status.iter().all(|&s| s == ThreadStatus::Halted)
    }

    /// Instructions fetched by `thread`.
    pub fn fetched(&self, thread: usize) -> u64 {
        self.fetched[thread]
    }

    /// Current PC of `thread`.
    pub fn pc(&self, thread: usize) -> u32 {
        self.pcs[thread]
    }

    fn runnable(&self, t: usize) -> bool {
        self.status[t] == ThreadStatus::Running && (self.pcs[t] as usize) < self.imem.len()
    }
}

impl Component<ProcToken> for Fetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.redirect], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Redirect ready is constant; fetch selection depends only on
        // registered PC/status state plus downstream ready (the arbiter's
        // ready-first pick), damped by the anti-swap guard. Crucially, no
        // combinational path runs from the redirect input to the fetch
        // output — that is what makes the processor's control-flow
        // feedback loop legal.
        vec![CombPath::ReadyToValid {
            from: self.out,
            to: self.out,
            damped: true,
        }]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, ProcToken>) {
        // Redirects are always absorbed.
        for t in 0..self.threads {
            ctx.set_ready(self.redirect, t, true);
        }
        for t in 0..self.threads {
            let runnable = self.runnable(t);
            self.has.set(t, runnable);
        }
        match self.select.select(ctx, self.out, &self.arbiter, &self.has) {
            Some(t) => {
                let pc = self.pcs[t];
                let word = self.imem[pc as usize];
                let epoch = self.epoch(t);
                let seq = self.fetched[t];
                ctx.drive_token(
                    self.out,
                    t,
                    ProcToken::Fetched {
                        thread: t,
                        pc,
                        word,
                        epoch,
                        seq,
                    },
                );
            }
            None => ctx.drive_idle(self.out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, ProcToken>) {
        // A fetch left for the pipeline: advance or block the thread.
        if let Some((t, tok)) = ctx.fired_any(self.out) {
            let ProcToken::Fetched { word, .. } = tok else {
                unreachable!("fetch output carries Fetched tokens");
            };
            let instr = Instr::decode(*word)
                .unwrap_or_else(|e| panic!("thread {t} fetched invalid instruction: {e}"));
            self.fetched[t] += 1;
            match instr {
                Instr::Halt => self.status[t] = ThreadStatus::Halted,
                // Direct jumps: under speculation the target is known at
                // predecode — take it immediately, no stall.
                Instr::J { target } | Instr::Jal { target } if self.speculate => {
                    self.pcs[t] = target;
                }
                // Conditional branches: predict not-taken, keep fetching.
                Instr::Beq { .. } | Instr::Bne { .. } if self.speculate => self.pcs[t] += 1,
                i if i.is_control_flow() => self.status[t] = ThreadStatus::WaitControl,
                _ => self.pcs[t] += 1,
            }
            self.arbiter.commit(t);
        }
        // A control-flow instruction resolved.
        if let Some((t, tok)) = ctx.fired_any(self.redirect) {
            let ProcToken::Executed {
                instr,
                pc,
                taken,
                target,
                epoch,
                seq,
                ..
            } = tok
            else {
                unreachable!("redirect carries Executed tokens");
            };
            if self.speculate {
                let spec = self
                    .spec
                    .as_ref()
                    .expect("speculation state present")
                    .clone();
                match instr {
                    Instr::Halt | Instr::J { .. } | Instr::Jal { .. } => {
                        // Halt handled at predecode; direct jumps already
                        // taken at predecode.
                    }
                    Instr::Beq { .. } | Instr::Bne { .. } => {
                        if *taken && spec.mispredict(t, *epoch, *seq) {
                            // Misprediction: redirect and squash the wrong
                            // path fetched since this branch. Any
                            // wrong-path `halt`/`jr` froze the thread's
                            // status — that freeze was bogus, so resume.
                            self.squashed[t] += self.fetched[t] - (seq + 1);
                            self.pcs[t] = *target;
                            self.status[t] = ThreadStatus::Running;
                        }
                        // Correct prediction or stale (already squashed):
                        // nothing to do.
                    }
                    _ => {
                        // jr still uses stall-and-wait even when
                        // speculating (its target is data-dependent).
                        if !spec.is_squashed(t, *epoch, *seq) {
                            debug_assert_eq!(self.status[t], ThreadStatus::WaitControl);
                            self.pcs[t] = if *taken { *target } else { pc + 1 };
                            self.status[t] = ThreadStatus::Running;
                        }
                    }
                }
            } else {
                match instr {
                    Instr::Halt => {}
                    _ => {
                        debug_assert_eq!(self.status[t], ThreadStatus::WaitControl);
                        self.pcs[t] = if *taken { *target } else { pc + 1 };
                        self.status[t] = ThreadStatus::Running;
                    }
                }
            }
        }
        self.select.on_tick(ctx, self.out);
    }

    fn slots(&self) -> Vec<SlotView> {
        (0..self.threads)
            .map(|t| {
                let label = match self.status[t] {
                    ThreadStatus::Running => format!("pc={}", self.pcs[t]),
                    ThreadStatus::WaitControl => "wait".to_string(),
                    ThreadStatus::Halted => "halt".to_string(),
                };
                SlotView::full(format!("thread[{t}]"), t, label)
            })
            .collect()
    }

    impl_as_any!();
}

/// The decode + writeback stage: per-thread register files, per-thread
/// scoreboards, hazard-gated issue.
pub struct RegUnit {
    name: String,
    id_in: ChannelId,
    wb_in: ChannelId,
    id_out: ChannelId,
    threads: usize,
    regs: Vec<[u32; NUM_REGS]>,
    /// In-flight writers per (thread, register).
    pending: Vec<[u8; NUM_REGS]>,
    retired: Vec<u64>,
    /// Squash state (absent when not speculating): wrong-path writebacks
    /// release their scoreboard entry but leave the register file alone.
    spec: Option<Arc<SpecState>>,
}

impl RegUnit {
    /// A register unit for `threads` threads, all registers zeroed.
    pub fn new(
        name: impl Into<String>,
        id_in: ChannelId,
        wb_in: ChannelId,
        id_out: ChannelId,
        threads: usize,
    ) -> Self {
        Self {
            name: name.into(),
            id_in,
            wb_in,
            id_out,
            threads,
            regs: vec![[0; NUM_REGS]; threads],
            pending: vec![[0; NUM_REGS]; threads],
            retired: vec![0; threads],
            spec: None,
        }
    }

    /// Shares the speculation squash state (see
    /// [`Fetcher::with_speculation`]).
    #[must_use]
    pub fn with_speculation(mut self, spec: Arc<SpecState>) -> Self {
        self.spec = Some(spec);
        self
    }

    fn is_stale(&self, t: usize, epoch: u32, seq: u64) -> bool {
        self.spec
            .as_ref()
            .is_some_and(|s| s.is_squashed(t, epoch, seq))
    }

    /// Architectural register value (r0 is always 0).
    pub fn reg(&self, thread: usize, r: usize) -> u32 {
        self.regs[thread][r]
    }

    /// Presets a register before the program starts (test setup).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices; writes to r0 are ignored.
    pub fn set_reg(&mut self, thread: usize, r: usize, value: u32) {
        if r != 0 {
            self.regs[thread][r] = value;
        }
    }

    /// Instructions written back for `thread` (loads, ALU ops, stores and
    /// nops all pass through writeback; control flow retires at the
    /// fetcher instead).
    pub fn retired(&self, thread: usize) -> u64 {
        self.retired[thread]
    }

    fn hazard(&self, t: usize, instr: &Instr) -> bool {
        let busy = |r: u8| r != 0 && self.pending[t][r as usize] > 0;
        instr.sources().into_iter().any(busy) || instr.dest().is_some_and(busy)
    }

    fn decode_read(&self, t: usize, pc: u32, word: u32, tok_epoch: u32, tok_seq: u64) -> ProcToken {
        let instr = Instr::decode(word)
            .unwrap_or_else(|e| panic!("thread {t} decoded invalid instruction at pc {pc}: {e}"));
        let src = |r: u8| self.regs[t][r as usize];
        let epoch = tok_epoch;
        let seq = tok_seq;
        let (a, b) = match instr {
            Instr::Add { rs, rt, .. }
            | Instr::Sub { rs, rt, .. }
            | Instr::And { rs, rt, .. }
            | Instr::Or { rs, rt, .. }
            | Instr::Xor { rs, rt, .. }
            | Instr::Nor { rs, rt, .. }
            | Instr::Slt { rs, rt, .. }
            | Instr::Sltu { rs, rt, .. }
            | Instr::Mul { rs, rt, .. }
            | Instr::Beq { rs, rt, .. }
            | Instr::Bne { rs, rt, .. }
            | Instr::Sw { rs, rt, .. } => (src(rs), src(rt)),
            Instr::Sll { rt, .. } | Instr::Srl { rt, .. } | Instr::Sra { rt, .. } => (0, src(rt)),
            Instr::Jr { rs }
            | Instr::Addi { rs, .. }
            | Instr::Andi { rs, .. }
            | Instr::Ori { rs, .. }
            | Instr::Xori { rs, .. }
            | Instr::Slti { rs, .. }
            | Instr::Lw { rs, .. } => (src(rs), 0),
            Instr::Lui { .. }
            | Instr::Tid { .. }
            | Instr::J { .. }
            | Instr::Jal { .. }
            | Instr::Nop
            | Instr::Halt => (0, 0),
        };
        ProcToken::Decoded {
            thread: t,
            pc,
            instr,
            a,
            b,
            epoch,
            seq,
        }
    }
}

impl Component<ProcToken> for RegUnit {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.id_in, self.wb_in], [self.id_out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Writeback ready is constant (no paths from wb_in). Issue is a
        // gated pass-through: the hazard gate inspects the *offered*
        // instruction (valid/data of id_in) and the next stage's ready.
        vec![
            CombPath::ValidToValid {
                from: self.id_in,
                to: self.id_out,
            },
            CombPath::ValidToReady {
                from: self.id_in,
                to: self.id_in,
            },
            CombPath::ReadyToReady {
                from: self.id_out,
                to: self.id_in,
            },
        ]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, ProcToken>) {
        // Writeback never stalls.
        for t in 0..self.threads {
            ctx.set_ready(self.wb_in, t, true);
        }
        // Issue: pass the offered instruction through decode if it is
        // hazard-free and the next stage accepts. Only the offered thread's
        // instruction word is visible on the channel, so its gate is the
        // exact hazard check; for every other thread we answer
        // *conservatively* from the scoreboard (ready only when the thread
        // has no in-flight register writes at all — a state in which no
        // instruction can be hazarded). Conservative answers can only be
        // upgraded when a thread is actually offered, so the upstream
        // MEB's selection never chases a false ready and the settle loop
        // converges.
        let offered = ctx.incoming(self.id_in).map(|(t, tok)| (t, tok.clone()));
        for t in 0..self.threads {
            let gate = match &offered {
                Some((ot, ProcToken::Fetched { pc, word, .. })) if *ot == t => {
                    let instr = Instr::decode(*word).unwrap_or_else(|e| {
                        panic!("thread {t} offered invalid instruction at pc {pc}: {e}")
                    });
                    !self.hazard(t, &instr)
                }
                _ => self.pending[t].iter().all(|&p| p == 0),
            };
            ctx.set_ready(self.id_in, t, gate && ctx.ready(self.id_out, t));
        }
        // Drive the decoded token downstream.
        match &offered {
            Some((
                t,
                ProcToken::Fetched {
                    pc,
                    word,
                    epoch,
                    seq,
                    ..
                },
            )) => {
                let instr = Instr::decode(*word).expect("validated above");
                if self.hazard(*t, &instr) {
                    ctx.drive_idle(self.id_out);
                } else {
                    let decoded = self.decode_read(*t, *pc, *word, *epoch, *seq);
                    ctx.drive_token(self.id_out, *t, decoded);
                }
            }
            _ => ctx.drive_idle(self.id_out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, ProcToken>) {
        // Retire writebacks first (a dependent issue still waits one cycle;
        // there is no same-cycle bypass, cf. module docs).
        if let Some((t, tok)) = ctx.fired_any(self.wb_in) {
            let ProcToken::Executed {
                instr,
                result,
                epoch,
                seq,
                ..
            } = tok
            else {
                unreachable!("writeback carries Executed tokens");
            };
            let stale = self.is_stale(t, *epoch, *seq);
            if let Some(rd) = instr.dest() {
                if rd != 0 {
                    if !stale {
                        self.regs[t][rd as usize] = *result;
                    }
                    // The scoreboard entry is released either way — the
                    // wrong-path instruction did occupy the writer slot.
                    let p = &mut self.pending[t][rd as usize];
                    debug_assert!(*p > 0, "writeback without a pending issue");
                    *p -= 1;
                }
            }
            if !stale {
                self.retired[t] += 1;
            }
        }
        // Record the issue.
        if let Some((t, tok)) = ctx.fired_any(self.id_out) {
            let ProcToken::Decoded { instr, .. } = tok else {
                unreachable!("issue output carries Decoded tokens");
            };
            if let Some(rd) = instr.dest() {
                if rd != 0 {
                    self.pending[t][rd as usize] += 1;
                }
            }
        }
    }

    impl_as_any!();
}

/// Computes an [`Instr`] on its operands — the pure function the execute
/// stage applies (wired into a
/// [`VarLatency`](elastic_sim::VarLatency) with a per-token latency).
///
/// # Panics
///
/// Panics if `tok` is not a [`ProcToken::Decoded`].
pub fn execute(tok: &ProcToken) -> ProcToken {
    let ProcToken::Decoded {
        thread,
        pc,
        instr,
        a,
        b,
        epoch,
        seq,
    } = tok.clone()
    else {
        panic!("execute stage received a non-decoded token");
    };
    let (mut result, mut addr, mut taken, mut target) = (0u32, 0u32, false, 0u32);
    match instr {
        Instr::Add { .. } => result = a.wrapping_add(b),
        Instr::Sub { .. } => result = a.wrapping_sub(b),
        Instr::And { .. } => result = a & b,
        Instr::Or { .. } => result = a | b,
        Instr::Xor { .. } => result = a ^ b,
        Instr::Nor { .. } => result = !(a | b),
        Instr::Slt { .. } => result = u32::from((a as i32) < (b as i32)),
        Instr::Sltu { .. } => result = u32::from(a < b),
        Instr::Mul { .. } => result = a.wrapping_mul(b),
        Instr::Sll { shamt, .. } => result = b << shamt,
        Instr::Srl { shamt, .. } => result = b >> shamt,
        Instr::Sra { shamt, .. } => result = ((b as i32) >> shamt) as u32,
        Instr::Tid { .. } => result = thread as u32,
        Instr::Addi { imm, .. } => result = a.wrapping_add(imm as i32 as u32),
        Instr::Andi { imm, .. } => result = a & u32::from(imm),
        Instr::Ori { imm, .. } => result = a | u32::from(imm),
        Instr::Xori { imm, .. } => result = a ^ u32::from(imm),
        Instr::Slti { imm, .. } => result = u32::from((a as i32) < i32::from(imm)),
        Instr::Lui { imm, .. } => result = u32::from(imm) << 16,
        Instr::Lw { imm, .. } => addr = a.wrapping_add(imm as i32 as u32),
        Instr::Sw { imm, .. } => {
            addr = a.wrapping_add(imm as i32 as u32);
            result = b; // store value travels in `result`
        }
        Instr::Beq { imm, .. } => {
            taken = a == b;
            target = pc.wrapping_add(1).wrapping_add(imm as i32 as u32);
        }
        Instr::Bne { imm, .. } => {
            taken = a != b;
            target = pc.wrapping_add(1).wrapping_add(imm as i32 as u32);
        }
        Instr::J { target: t } => {
            taken = true;
            target = t;
        }
        Instr::Jal { target: t } => {
            taken = true;
            target = t;
            result = pc + 1; // link value
        }
        Instr::Jr { .. } => {
            taken = true;
            target = a;
        }
        Instr::Nop | Instr::Halt => {}
    }
    ProcToken::Executed {
        thread,
        pc,
        instr,
        result,
        addr,
        taken,
        target,
        epoch,
        seq,
    }
}

/// The variable-latency data-memory unit. Loads and stores take effect at
/// the *accept* edge (so per-thread program order through memory is
/// architectural); the reply is delayed by a random latency.
pub struct MemUnit {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    threads: usize,
    capacity: usize,
    lat_min: u32,
    lat_max: u32,
    mem: Vec<u32>,
    entries: Vec<(usize, ProcToken, u64)>,
    rng: StdRng,
    arbiter: RoundRobin,
    select: SelectState,
    /// Scratch request mask rebuilt each eval (threads with a completed
    /// head entry).
    has: ThreadMask,
    /// Squash state (absent when not speculating): wrong-path loads and
    /// stores must not touch memory.
    spec: Option<Arc<SpecState>>,
}

impl MemUnit {
    /// A memory of `words` words, latency uniform in `lat_min..=lat_max`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `lat_min > lat_max` or `lat_min == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        inp: ChannelId,
        out: ChannelId,
        threads: usize,
        capacity: usize,
        words: usize,
        (lat_min, lat_max): (u32, u32),
        seed: u64,
    ) -> Self {
        assert!(capacity > 0, "memory unit needs at least one slot");
        assert!(lat_min > 0 && lat_min <= lat_max, "invalid latency range");
        Self {
            name: name.into(),
            inp,
            out,
            threads,
            capacity,
            lat_min,
            lat_max,
            mem: vec![0; words],
            entries: Vec::new(),
            rng: StdRng::seed_from_u64(seed ^ 0xD3E),
            arbiter: RoundRobin::new(),
            select: SelectState::new(),
            has: ThreadMask::new(threads),
            spec: None,
        }
    }

    /// Shares the speculation squash state (see
    /// [`Fetcher::with_speculation`]).
    #[must_use]
    pub fn with_speculation(mut self, spec: Arc<SpecState>) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Reads a word (test inspection).
    pub fn read(&self, addr: usize) -> u32 {
        self.mem[addr]
    }

    /// Writes a word before the program starts (test setup).
    pub fn write(&mut self, addr: usize, value: u32) {
        self.mem[addr] = value;
    }

    /// Words of storage.
    pub fn size(&self) -> usize {
        self.mem.len()
    }

    /// Rebuilds `has` with the oldest completed entry per thread.
    fn rebuild_heads(&mut self, cycle: u64) {
        let mut seen = ThreadMask::new(self.threads);
        self.has.clear();
        for (t, _, done) in &self.entries {
            if !seen.get(*t) {
                seen.set(*t, true);
                self.has.set(*t, *done <= cycle);
            }
        }
    }

    fn head_token(&self, t: usize) -> &ProcToken {
        &self
            .entries
            .iter()
            .find(|(et, _, _)| *et == t)
            .expect("selected thread has an entry")
            .1
    }
}

impl Component<ProcToken> for MemUnit {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Like VarLatency: ready is registered occupancy, the output
        // arbiter reads downstream ready (damped), and no combinational
        // path crosses from input to output.
        vec![CombPath::ReadyToValid {
            from: self.out,
            to: self.out,
            damped: true,
        }]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, ProcToken>) {
        let free = self.entries.len() < self.capacity;
        for t in 0..self.threads {
            ctx.set_ready(self.inp, t, free);
        }
        self.rebuild_heads(ctx.cycle());
        match self.select.select(ctx, self.out, &self.arbiter, &self.has) {
            Some(t) => {
                let tok = self.head_token(t).clone();
                ctx.drive_token(self.out, t, tok);
            }
            None => ctx.drive_idle(self.out),
        }
    }

    fn tick(&mut self, ctx: &TickCtx<'_, ProcToken>) {
        if let Some((t, _)) = ctx.fired_any(self.out) {
            let pos = self
                .entries
                .iter()
                .position(|(et, _, _)| *et == t)
                .expect("emitted thread has an entry");
            self.entries.remove(pos);
            self.arbiter.commit(t);
        } else {
            self.select.on_tick(ctx, self.out);
        }
        if let Some((t, tok)) = ctx.fired_any(self.inp) {
            let mut tok = tok.clone();
            let stale = self
                .spec
                .as_ref()
                .is_some_and(|s| s.is_squashed(t, tok.epoch(), tok.seq()));
            let latency = if let ProcToken::Executed {
                instr,
                addr,
                result,
                ..
            } = &mut tok
            {
                match instr {
                    _ if stale => 1, // squashed: no side effects, no service time
                    Instr::Lw { .. } => {
                        let a = *addr as usize;
                        assert!(a < self.mem.len(), "load address {a} out of bounds");
                        *result = self.mem[a];
                        self.rng.gen_range(self.lat_min..=self.lat_max)
                    }
                    Instr::Sw { .. } => {
                        let a = *addr as usize;
                        assert!(a < self.mem.len(), "store address {a} out of bounds");
                        self.mem[a] = *result;
                        self.rng.gen_range(self.lat_min..=self.lat_max)
                    }
                    // Non-memory instructions pass through in one cycle.
                    _ => 1,
                }
            } else {
                unreachable!("memory stage receives Executed tokens");
            };
            self.entries
                .push((t, tok, ctx.cycle() + u64::from(latency)));
        }
    }

    fn slots(&self) -> Vec<SlotView> {
        (0..self.capacity)
            .map(|i| match self.entries.get(i) {
                Some((t, tok, _)) => {
                    SlotView::full(format!("slot[{i}]"), *t, elastic_sim::Token::label(tok))
                }
                None => SlotView::empty(format!("slot[{i}]")),
            })
            .collect()
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_computes_alu_results() {
        let dec = |instr, a, b| ProcToken::Decoded {
            thread: 0,
            pc: 10,
            instr,
            a,
            b,
            epoch: 0,
            seq: 0,
        };
        let get = |tok: ProcToken| match tok {
            ProcToken::Executed { result, .. } => result,
            _ => panic!("expected executed"),
        };
        assert_eq!(
            get(execute(&dec(
                Instr::Add {
                    rd: 1,
                    rs: 2,
                    rt: 3
                },
                7,
                5
            ))),
            12
        );
        assert_eq!(
            get(execute(&dec(
                Instr::Sub {
                    rd: 1,
                    rs: 2,
                    rt: 3
                },
                3,
                5
            ))),
            3u32.wrapping_sub(5)
        );
        assert_eq!(
            get(execute(&dec(
                Instr::Slt {
                    rd: 1,
                    rs: 2,
                    rt: 3
                },
                (-1i32) as u32,
                0
            ))),
            1
        );
        assert_eq!(
            get(execute(&dec(
                Instr::Sltu {
                    rd: 1,
                    rs: 2,
                    rt: 3
                },
                (-1i32) as u32,
                0
            ))),
            0
        );
        assert_eq!(
            get(execute(&dec(
                Instr::Sra {
                    rd: 1,
                    rt: 2,
                    shamt: 4
                },
                0,
                (-64i32) as u32
            ))),
            (-4i32) as u32
        );
        assert_eq!(get(execute(&dec(Instr::Tid { rd: 1 }, 0, 0))), 0);
    }

    #[test]
    fn execute_resolves_branches() {
        let dec = |instr, a, b| ProcToken::Decoded {
            thread: 0,
            pc: 10,
            instr,
            a,
            b,
            epoch: 0,
            seq: 0,
        };
        match execute(&dec(
            Instr::Beq {
                rs: 1,
                rt: 2,
                imm: -3,
            },
            9,
            9,
        )) {
            ProcToken::Executed { taken, target, .. } => {
                assert!(taken);
                assert_eq!(target, 8); // 10 + 1 - 3
            }
            _ => panic!("expected executed"),
        }
        match execute(&dec(Instr::Jal { target: 99 }, 0, 0)) {
            ProcToken::Executed {
                taken,
                target,
                result,
                ..
            } => {
                assert!(taken);
                assert_eq!(target, 99);
                assert_eq!(result, 11); // link = pc + 1
            }
            _ => panic!("expected executed"),
        }
    }

    #[test]
    fn execute_forms_memory_addresses() {
        let dec = |instr, a, b| ProcToken::Decoded {
            thread: 1,
            pc: 0,
            instr,
            a,
            b,
            epoch: 0,
            seq: 0,
        };
        match execute(&dec(
            Instr::Sw {
                rt: 2,
                rs: 1,
                imm: 4,
            },
            100,
            77,
        )) {
            ProcToken::Executed { addr, result, .. } => {
                assert_eq!(addr, 104);
                assert_eq!(result, 77);
            }
            _ => panic!("expected executed"),
        }
    }
}
