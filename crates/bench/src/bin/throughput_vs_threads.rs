//! Sweeps the number of active threads `M` over an 8-thread MEB pipeline
//! and reports per-thread and aggregate throughput — the `1/M` sharing
//! analysis of the paper's Sec. III-A, for both MEB microarchitectures
//! and the FIFO ablation.
//!
//! The 18 (buffer, M) measurement points are independent simulations, so
//! the sweep runs on the [`run_sweep`] worker pool; submission-order
//! results keep the table layout identical to the old serial loop.
//!
//! ```text
//! cargo run --release --bin throughput_vs_threads
//! ```

use elastic_bench::{measure_throughput, ThroughputPoint};
use elastic_core::MebKind;
use elastic_sim::{run_sweep, SimJob};

fn main() {
    const THREADS: usize = 8;
    const STAGES: usize = 3;
    println!(
        "Per-thread and aggregate throughput, {THREADS}-thread {STAGES}-stage MEB pipeline \
         (Sec. III-A: each of M active threads receives 1/M)\n"
    );
    println!(
        "{:<12} {:>3} {:>14} {:>8} {:>11}",
        "buffer", "M", "per-thread", "1/M", "aggregate"
    );
    println!("{}", "-".repeat(54));

    let kinds = [MebKind::Full, MebKind::Reduced, MebKind::Fifo { depth: 1 }];
    let actives = [1usize, 2, 3, 4, 6, 8];
    let mut jobs: Vec<SimJob<ThroughputPoint>> = Vec::new();
    for kind in kinds {
        for active in actives {
            jobs.push(SimJob::new(format!("{kind} M={active}"), move || {
                Ok(measure_throughput(kind, THREADS, active, STAGES))
            }));
        }
    }
    let points = run_sweep(jobs).unwrap_all();

    for (i, kind) in kinds.iter().enumerate() {
        for (j, active) in actives.iter().enumerate() {
            let p = &points[i * actives.len() + j];
            println!(
                "{:<12} {:>3} {:>14.3} {:>8.3} {:>11.3}",
                kind.to_string(),
                active,
                p.per_thread,
                1.0 / *active as f64,
                p.aggregate
            );
        }
        println!();
    }
    println!(
        "note: fifo(1) lacks any auxiliary slot — a lone thread saturates at 0.5 \
         even without stalls, which is why the EB needs two slots (Sec. II)."
    );
}
