//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the tiny subset of the `rand` 0.8 API it actually
//! uses: a seedable `StdRng` and `Rng::gen_range` over integer ranges.
//! The generator is an xoshiro256**-style mixer seeded through
//! splitmix64 — deterministic for a given seed, which is all the
//! simulation's latency models require.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
        self.start + unit * (self.end - self.start)
    }
}

/// Commonly used generators (subset of `rand::rngs`).
pub mod rngs {
    pub use super::StdRng;
}

/// Deterministic 64-bit generator (stand-in for `rand::rngs::StdRng`).
///
/// splitmix64 stream: statistically fine for simulation latencies and
/// test-case generation; not cryptographic.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(2u32..=5);
            assert!((2..=5).contains(&x));
            let y: u64 = r.gen_range(0u64..12);
            assert!(y < 12);
            let f: f64 = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[r.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }
}
