//! # elastic-proc — a multithreaded elastic pipelined processor
//!
//! The second design example of *"Hardware Primitives for the Synthesis of
//! Multithreaded Elastic Systems"* (DATE 2014, Sec. V-B): an in-order RISC
//! pipeline in which **every pipeline register is a MEB** that selects
//! independently, each cycle, which thread to promote; each thread has a
//! private program counter and register file; instruction memory, data
//! memory and the multiplier are variable-latency units.
//!
//! * [`isa`] — the DTU-RISC instruction set (standing in for the iDEA
//!   soft processor of the paper's reference \[10\]);
//! * [`asm`] — a two-pass assembler with labels and pseudo-instructions;
//! * [`stages`] — fetch, decode/writeback, execute and memory components;
//! * [`cpu`] — the assembled pipeline and run harness;
//! * [`programs`] — multithreaded benchmark workloads.
//!
//! # Example
//!
//! ```
//! use elastic_proc::{Cpu, CpuConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cpu = Cpu::from_asm(
//!     CpuConfig::new(2),
//!     "tid r1\naddi r2, r1, 40\nhalt\n",
//! )?;
//! let stats = cpu.run_to_halt(10_000)?;
//! assert_eq!(cpu.reg(0, 2), 40);
//! assert_eq!(cpu.reg(1, 2), 41);
//! assert!(stats.ipc > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod isa;
pub mod programs;
pub mod stages;
pub mod token;

pub use asm::{assemble, disassemble, AsmError};
pub use cpu::{Cpu, CpuChannels, CpuConfig, CpuError, CpuIr, CpuIrChannels, CpuRunStats};
pub use isa::{Instr, NUM_REGS};
pub use stages::{execute, Fetcher, MemUnit, RegUnit, SpecState, ThreadStatus};
pub use token::ProcToken;
