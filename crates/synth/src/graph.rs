//! The dataflow-graph intermediate representation.
//!
//! A graph is a set of [`Node`]s connected by [`Wire`]s. Every wire is
//! produced by exactly one node output and consumed by exactly one node
//! input (elastic channels are point-to-point; use an explicit
//! [fork](crate::DataflowBuilder::fork) for fan-out). The builder API in
//! [`crate::DataflowBuilder`] enforces this statically before
//! elaboration.

use elastic_core::MebKind;
use elastic_sim::Token;

/// Handle to a value in the dataflow graph (one producer, one consumer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Wire(pub(crate) usize);

impl Wire {
    /// Raw index (diagnostics).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Latency class of an operation node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OpLatency {
    /// Pure combinational logic between buffers (zero cycles).
    #[default]
    Combinational,
    /// A registered unit taking exactly `n` cycles.
    Fixed(u32),
    /// A variable-latency unit, uniform in `min..=max` cycles.
    Variable {
        /// Minimum latency (≥ 1).
        min: u32,
        /// Maximum latency.
        max: u32,
        /// RNG seed.
        seed: u64,
    },
}

/// N-ary operation function of a [`Node::Op`].
pub type OpFn<T> = Box<dyn Fn(&[&T]) -> T + Send>;

/// A node of the dataflow graph.
///
/// Functions are boxed closures so graphs can be assembled at runtime —
/// this is the "synthesis front-end" role the paper's conclusion assigns
/// to the primitives.
pub enum Node<T: Token> {
    /// External token entry (becomes a
    /// [`Source`](elastic_sim::Source)).
    Input {
        /// Port name.
        name: String,
    },
    /// External token exit (becomes a capturing
    /// [`Sink`](elastic_sim::Sink)).
    Output {
        /// Port name.
        name: String,
    },
    /// An operation combining `arity` inputs into one output.
    Op {
        /// Instance name.
        name: String,
        /// Number of inputs (≥ 1).
        arity: usize,
        /// The computed function (applied to the joined inputs).
        f: OpFn<T>,
        /// Latency class.
        latency: OpLatency,
    },
    /// Conditional two-way routing (output 0 = taken, 1 = not taken).
    Branch {
        /// Instance name.
        name: String,
        /// Routing predicate.
        cond: Box<dyn Fn(&T) -> bool + Send>,
    },
    /// N-way reconvergence onto one output.
    Merge {
        /// Instance name.
        name: String,
        /// Number of inputs (≥ 2).
        arity: usize,
    },
    /// Replication of one input to N outputs (eager).
    Fork {
        /// Instance name.
        name: String,
        /// Number of outputs (≥ 2).
        arity: usize,
    },
    /// An explicit multithreaded elastic buffer, optionally pre-loaded
    /// with initial tokens (the dataflow "token on the back edge" that
    /// seeds accumulator loops).
    Buffer {
        /// Instance name.
        name: String,
        /// Microarchitecture.
        kind: MebKind,
        /// `(thread, token)` pairs present before the first cycle.
        initial: Vec<(usize, T)>,
    },
    /// A thread barrier across all threads of the graph.
    Barrier {
        /// Instance name.
        name: String,
    },
}

impl<T: Token> Node<T> {
    /// The node's instance name.
    pub fn name(&self) -> &str {
        match self {
            Node::Input { name }
            | Node::Output { name }
            | Node::Op { name, .. }
            | Node::Branch { name, .. }
            | Node::Merge { name, .. }
            | Node::Fork { name, .. }
            | Node::Buffer { name, .. }
            | Node::Barrier { name } => name,
        }
    }

    /// Number of input wires this node consumes.
    pub fn inputs(&self) -> usize {
        match self {
            Node::Input { .. } => 0,
            Node::Output { .. }
            | Node::Branch { .. }
            | Node::Fork { .. }
            | Node::Buffer { .. }
            | Node::Barrier { .. } => 1,
            Node::Op { arity, .. } => *arity,
            Node::Merge { arity, .. } => *arity,
        }
    }

    /// Number of output wires this node produces.
    pub fn outputs(&self) -> usize {
        match self {
            Node::Output { .. } => 0,
            Node::Input { .. }
            | Node::Op { .. }
            | Node::Merge { .. }
            | Node::Buffer { .. }
            | Node::Barrier { .. } => 1,
            Node::Branch { .. } => 2,
            Node::Fork { arity, .. } => *arity,
        }
    }

    /// Whether elaboration inserts a buffer after this node under
    /// [`BufferPolicy::AfterOps`](crate::BufferPolicy::AfterOps)
    /// (state-bearing separation for ops and loop-cutting for merges).
    pub fn wants_auto_buffer(&self) -> bool {
        matches!(self, Node::Op { .. } | Node::Merge { .. })
    }
}

impl<T: Token> std::fmt::Debug for Node<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Node::Input { name } => write!(f, "Input({name})"),
            Node::Output { name } => write!(f, "Output({name})"),
            Node::Op {
                name,
                arity,
                latency,
                ..
            } => {
                write!(f, "Op({name}, arity={arity}, {latency:?})")
            }
            Node::Branch { name, .. } => write!(f, "Branch({name})"),
            Node::Merge { name, arity } => write!(f, "Merge({name}, arity={arity})"),
            Node::Fork { name, arity } => write!(f, "Fork({name}, arity={arity})"),
            Node::Buffer {
                name,
                kind,
                initial,
            } => {
                write!(f, "Buffer({name}, {kind}, {} initial)", initial.len())
            }
            Node::Barrier { name } => write!(f, "Barrier({name})"),
        }
    }
}

/// Where elaboration inserts MEBs automatically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BufferPolicy {
    /// After every operation and merge output (safe default: cuts every
    /// loop built from merge/branch reconvergence and registers every
    /// computation — the paper's "replace any simple data connection with
    /// an elastic channel").
    #[default]
    AfterOps,
    /// Only where the graph contains explicit [`Node::Buffer`]s. The
    /// simulator still detects any remaining combinational cycle at run
    /// time.
    Manual,
}

/// Errors detected while assembling or elaborating a graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SynthError {
    /// A wire was never consumed (dangling value).
    UnconsumedWire {
        /// Wire index.
        wire: usize,
        /// Producing node.
        producer: String,
    },
    /// The graph has no nodes.
    EmptyGraph,
    /// An op/merge/fork was declared with an invalid arity.
    BadArity {
        /// Offending node.
        node: String,
        /// Declared arity.
        arity: usize,
    },
    /// Elaboration produced an invalid netlist (a builder bug — please
    /// report it).
    Build(String),
    /// An IR lint rejected the lowered netlist (see
    /// [`PassError`](crate::passes::PassError)) — e.g. a feedback loop
    /// with no elastic buffer on it.
    Lint(crate::passes::PassError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::UnconsumedWire { wire, producer } => {
                write!(f, "wire #{wire} produced by `{producer}` is never consumed")
            }
            SynthError::EmptyGraph => write!(f, "dataflow graph has no nodes"),
            SynthError::BadArity { node, arity } => {
                write!(f, "node `{node}` has invalid arity {arity}")
            }
            SynthError::Build(msg) => write!(f, "elaboration produced an invalid netlist: {msg}"),
            SynthError::Lint(e) => write!(f, "lint rejected the netlist: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_port_counts() {
        let op: Node<u64> = Node::Op {
            name: "f".into(),
            arity: 3,
            f: Box::new(|ins| *ins[0]),
            latency: OpLatency::Combinational,
        };
        assert_eq!(op.inputs(), 3);
        assert_eq!(op.outputs(), 1);
        assert!(op.wants_auto_buffer());

        let br: Node<u64> = Node::Branch {
            name: "b".into(),
            cond: Box::new(|_| true),
        };
        assert_eq!(br.inputs(), 1);
        assert_eq!(br.outputs(), 2);
        assert!(!br.wants_auto_buffer());

        let fork: Node<u64> = Node::Fork {
            name: "f".into(),
            arity: 3,
        };
        assert_eq!(fork.outputs(), 3);
    }

    #[test]
    fn errors_display() {
        let e = SynthError::UnconsumedWire {
            wire: 3,
            producer: "add".into(),
        };
        assert!(e.to_string().contains("add"));
        assert!(SynthError::EmptyGraph.to_string().contains("no nodes"));
    }
}
