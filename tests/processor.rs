//! E-X4 — the multithreaded elastic processor: architectural correctness
//! across workloads, thread counts and MEB kinds, and the utilization
//! claims of the paper's introduction.

use mt_elastic::core::MebKind;
use mt_elastic::proc::{programs, Cpu, CpuConfig};

fn init_data(cpu: &mut Cpu, threads: usize) {
    for t in 0..threads {
        for i in 0..16usize {
            cpu.set_mem(t * 64 + i, (t * 100 + i + 1) as u32);
            cpu.set_mem(t * 64 + 16 + i, (2 * i + 1) as u32);
        }
    }
}

/// Architectural results are identical across MEB kinds and independent
/// of the (seeded) variable latencies.
#[test]
fn results_invariant_across_meb_kinds_and_seeds() {
    for threads in [1usize, 4] {
        let mut reference: Option<Vec<u32>> = None;
        for kind in [MebKind::Full, MebKind::Reduced, MebKind::Fifo { depth: 3 }] {
            for seed in [1u64, 999] {
                let mut cpu = Cpu::from_asm(
                    CpuConfig::new(threads).with_meb(kind).with_seed(seed),
                    programs::FIBONACCI,
                )
                .expect("assembles");
                cpu.run_to_halt(500_000).expect("halts");
                let results: Vec<u32> = (0..threads).map(|t| cpu.mem(t)).collect();
                match &reference {
                    None => reference = Some(results),
                    Some(r) => assert_eq!(&results, r, "{kind} seed {seed} threads {threads}"),
                }
            }
        }
    }
}

/// Every bundled workload halts and produces its documented results on
/// 8 threads.
#[test]
fn all_workloads_complete_on_8_threads() {
    for (name, source, _) in programs::all() {
        let mut cpu = Cpu::from_asm(CpuConfig::new(8), source).expect("assembles");
        init_data(&mut cpu, 8);
        let stats = cpu
            .run_to_halt(3_000_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(stats.ipc > 0.0, "{name}");
        assert!(
            stats.executed.iter().all(|&e| e > 0),
            "{name}: some thread never executed"
        );
    }
}

/// Fig. 1's motivation quantified: IPC grows monotonically-ish with the
/// thread count on a branchy dependent workload, and 8 threads more than
/// double single-thread IPC.
#[test]
fn ipc_scales_with_threads() {
    let mut ipcs = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut cpu =
            Cpu::from_asm(CpuConfig::new(threads), programs::SUM_LOOP).expect("assembles");
        let stats = cpu.run_to_halt(500_000).expect("halts");
        ipcs.push(stats.ipc);
    }
    assert!(
        ipcs[3] > 2.0 * ipcs[0],
        "IPC 1t {:.3} vs 8t {:.3}",
        ipcs[0],
        ipcs[3]
    );
    assert!(
        ipcs[1] > ipcs[0] * 1.2,
        "2 threads should already help: {ipcs:?}"
    );
}

/// Deterministic single-cycle units: the pipeline still interleaves
/// threads correctly (hazards are the only stalls).
#[test]
fn deterministic_config_still_correct() {
    let mut cpu =
        Cpu::from_asm(CpuConfig::new(4).deterministic(), programs::SUM_LOOP).expect("assembles");
    cpu.run_to_halt(100_000).expect("halts");
    for t in 0..4 {
        let n = 8 + t as u32;
        assert_eq!(cpu.reg(t, 2), n * (n + 1) / 2, "thread {t}");
    }
}

/// Per-thread register files are genuinely private: a pathological
/// program writing the same registers in every thread never leaks across
/// threads.
#[test]
fn register_files_are_private_per_thread() {
    let source = "tid  r7\n\
                  sll  r8, r7, 4\n\
                  addi r9, r8, 1\n\
                  mul  r10, r9, r9\n\
                  halt\n";
    let mut cpu = Cpu::from_asm(CpuConfig::new(8), source).expect("assembles");
    cpu.run_to_halt(100_000).expect("halts");
    for t in 0..8u32 {
        let expect = (16 * t + 1) * (16 * t + 1);
        assert_eq!(cpu.reg(t as usize, 10), expect, "thread {t}");
    }
}

/// Loads observe earlier stores of the same thread (memory ordering
/// through the variable-latency memory unit).
#[test]
fn memory_ordering_within_a_thread() {
    let source = "tid  r1\n\
                  sll  r2, r1, 4\n\
                  addi r3, r0, 111\n\
                  sw   r3, 0(r2)\n\
                  lw   r4, 0(r2)\n\
                  addi r5, r4, 1\n\
                  sw   r5, 1(r2)\n\
                  lw   r6, 1(r2)\n\
                  halt\n";
    let mut cpu = Cpu::from_asm(CpuConfig::new(4), source).expect("assembles");
    cpu.run_to_halt(100_000).expect("halts");
    for t in 0..4 {
        assert_eq!(cpu.reg(t, 4), 111);
        assert_eq!(cpu.reg(t, 6), 112);
    }
}
