//! Static design checks over the structural IR of every example design —
//! the CI gate that runs *before* any simulation: protocol lint (thread
//! widths, arities, single driver/reader per channel), cycle-cover lint
//! (every loop cut by an EB/MEB/latency unit), and golden-file checks on
//! the GCD circuit's DOT rendering — plain, and with transforming-pass
//! deltas highlighted (inserted buffers green, resized orange).
//!
//! ```text
//! cargo run --release -p elastic-bench --bin design_lint            # check
//! cargo run --release -p elastic-bench --bin design_lint -- --write # regenerate golden
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use elastic_core::MebKind;
use elastic_md5::Md5Circuit;
use elastic_proc::Cpu;
use elastic_sim::Token;
use elastic_synth::{
    dot_with_deltas, DataflowBuilder, ElasticIr, MebSubstitution, OpLatency, Pass, PassManager,
    PassReport, SynthConfig, TransformSpec,
};

/// Repo-relative path of the committed golden DOT file.
const GOLDEN: &str = "golden/gcd_circuit.dot";
/// Golden for the delta-highlighted rendering of a transformed GCD IR.
const GOLDEN_DELTAS: &str = "golden/gcd_deltas.dot";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../{name}"))
}

/// The GCD loop of `examples/gcd_synthesis.rs`, stopped at the IR stage.
fn gcd_ir(threads: usize) -> ElasticIr<(u64, u64)> {
    let mut g = DataflowBuilder::<(u64, u64)>::new(threads);
    let fresh = g.input("pairs");
    let looped = g.input("loop");
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Fixed(1), cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step).expect("loop closes");
    g.build_ir(SynthConfig::default())
        .expect("gcd graph builds")
        .ir
}

/// Applies a canonical transform set to the linted GCD IR and renders the
/// result with the pass deltas highlighted: the loop-cutting auto-MEB
/// resized to a FIFO ablation (orange) plus a slack buffer spliced onto
/// the step output (green). The golden pins both the rewired topology and
/// the delta styling.
fn gcd_deltas_dot(gcd: &mut ElasticIr<(u64, u64)>) -> String {
    let mut deltas = Vec::new();
    let resized = MebSubstitution::auto(MebKind::Fifo { depth: 2 })
        .run(gcd)
        .expect("gcd auto-MEBs substitute");
    deltas.extend(resized.deltas);
    let branch = gcd.node_named("done?").expect("gcd has its loop branch");
    let cont = gcd.node(branch).outputs()[1];
    let inserted = TransformSpec::InsertSlack {
        channel: gcd.channel_info(cont).name.clone(),
        kind: MebKind::Fifo { depth: 1 },
    }
    .apply(gcd)
    .expect("slack inserts on the branch continue edge");
    deltas.extend(inserted.deltas);
    PassManager::lint_suite()
        .run(gcd)
        .expect("transformed gcd still lints");
    dot_with_deltas(gcd, &deltas)
}

/// Compares (or, with `--write`, regenerates) one golden file.
fn golden_check(write: bool, name: &str, rendered: &str) -> bool {
    let path = golden_path(name);
    if write {
        std::fs::write(&path, rendered).expect("golden file is writable");
        println!("wrote {name} ({} bytes)", rendered.len());
        return true;
    }
    match std::fs::read_to_string(&path) {
        Ok(golden) if golden == rendered => {
            println!(
                "golden DOT check: {name} matches ({} bytes)",
                rendered.len()
            );
            true
        }
        Ok(_) => {
            eprintln!(
                "golden DOT check FAILED: {name} is stale — rerun with --write \
                 and commit the diff"
            );
            false
        }
        Err(e) => {
            eprintln!("golden DOT check FAILED: cannot read {name}: {e}");
            false
        }
    }
}

fn render(design: &str, reports: &[PassReport]) {
    for r in reports {
        println!(
            "  {design:<10} {:<14} checked {:>3} entities, rewrote {:>2} nodes",
            r.pass, r.checked, r.changed
        );
    }
}

fn lint<T: Token>(design: &str, ir: &mut ElasticIr<T>) -> bool {
    match PassManager::lint_suite().run(ir) {
        Ok(reports) => {
            render(design, &reports);
            true
        }
        Err(e) => {
            eprintln!("  {design:<10} FAILED: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let write = std::env::args().any(|a| a == "--write");
    let mut ok = true;

    println!("design lints (protocol + cycle cover):");
    let mut gcd = gcd_ir(4);
    ok &= lint("gcd", &mut gcd);
    let mut md5 = Md5Circuit::ir(8, 8, 1);
    ok &= lint("md5", &mut md5.ir);
    let mut md5_piped = Md5Circuit::ir(8, 8, 4);
    ok &= lint("md5x4", &mut md5_piped.ir);
    let mut cpu = Cpu::cost_ir(8);
    ok &= lint("processor", &mut cpu.ir);

    ok &= golden_check(write, GOLDEN, &gcd.to_dot());
    ok &= golden_check(write, GOLDEN_DELTAS, &gcd_deltas_dot(&mut gcd));

    if ok {
        println!("all design checks passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
