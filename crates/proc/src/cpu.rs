//! The assembled multithreaded elastic processor.
//!
//! Pipeline (paper, Sec. V-B — every pipeline register is a MEB; fetch,
//! memories and the multiplier are variable-latency):
//!
//! ```text
//! Fetcher ─► icache(varlat) ─► MEB ─► RegUnit(decode) ─► MEB ─► Exec(varlat)
//!    ▲                                    ▲                        │
//!    │                                    │ writeback              ▼
//!   MEB ◄── redirect ◄── Router ◄──────── MEB ◄── MemUnit ◄─────── MEB
//! ```
//!
//! Control-flow instructions stall only their own thread at fetch; the
//! MEBs let every other thread keep flowing through the shared datapath —
//! the utilization argument of the paper's introduction.

use std::sync::Arc;

use elastic_core::{ArbiterKind, ForkMode, MebKind};
use elastic_cost::primitives::{adder, lut_layer, mux, register};
use elastic_sim::{ChannelId, Circuit, Component, KernelBackend, LatencyModel, SimError};
use elastic_synth::{
    CycleCoverLint, ElasticIr, IrChannelId, IrNodeKind, MebSubstitution, PassManager, ProtocolLint,
};

use crate::isa::Instr;
use crate::stages::{execute, Fetcher, MemUnit, RegUnit, SpecState};
use crate::token::ProcToken;

/// Processor configuration.
#[derive(Clone, Debug)]
pub struct CpuConfig {
    /// Hardware thread count `S`.
    pub threads: usize,
    /// MEB microarchitecture used for every pipeline register.
    pub meb: MebKind,
    /// Arbitration policy in every MEB.
    pub arbiter: ArbiterKind,
    /// Instruction-fetch latency range (cycles).
    pub imem_latency: (u32, u32),
    /// Data-memory latency range (cycles).
    pub dmem_latency: (u32, u32),
    /// Multiplier latency (cycles).
    pub mul_latency: u32,
    /// Data-memory size in words.
    pub dmem_words: usize,
    /// Seed for all variable-latency draws.
    pub seed: u64,
    /// Predict-not-taken speculation for conditional branches (direct
    /// jumps resolve at predecode; `jr` still stalls). Wrong-path
    /// instructions are squashed via per-thread epochs.
    pub speculate: bool,
    /// Settle-kernel dispatch backend of the elaborated pipeline.
    pub backend: KernelBackend,
}

impl CpuConfig {
    /// A sensible default: variable 1–3 cycle fetch, 1–4 cycle data
    /// memory, 3-cycle multiplier, 64 KiW of data memory, reduced MEBs.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            meb: MebKind::Reduced,
            arbiter: ArbiterKind::RoundRobin,
            imem_latency: (1, 3),
            dmem_latency: (1, 4),
            mul_latency: 3,
            dmem_words: 1 << 16,
            seed: 0xDA7E_2014,
            speculate: false,
            backend: KernelBackend::default(),
        }
    }

    /// Selects the settle-kernel dispatch backend
    /// ([`KernelBackend::Fused`] runs the lowered op table).
    #[must_use]
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the MEB kind.
    #[must_use]
    pub fn with_meb(mut self, meb: MebKind) -> Self {
        self.meb = meb;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables predict-not-taken branch speculation.
    #[must_use]
    pub fn with_speculation(mut self) -> Self {
        self.speculate = true;
        self
    }

    /// Makes every unit single-cycle (deterministic timing for tests).
    #[must_use]
    pub fn deterministic(mut self) -> Self {
        self.imem_latency = (1, 1);
        self.dmem_latency = (1, 1);
        self.mul_latency = 1;
        self
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::new(8)
    }
}

/// Channel handles of the processor pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpuChannels {
    /// Fetcher → icache.
    pub fetch: ChannelId,
    /// icache → IF/ID MEB.
    pub fetched: ChannelId,
    /// IF/ID MEB → decode.
    pub decode_in: ChannelId,
    /// decode → ID/EX MEB.
    pub issued: ChannelId,
    /// ID/EX MEB → execute.
    pub ex_in: ChannelId,
    /// execute → EX/MEM MEB.
    pub ex_out: ChannelId,
    /// EX/MEM MEB → router.
    pub route_in: ChannelId,
    /// router → memory unit.
    pub mem_in: ChannelId,
    /// memory unit → MEM/WB MEB.
    pub mem_out: ChannelId,
    /// MEM/WB MEB → writeback.
    pub wb: ChannelId,
    /// router → redirect MEB.
    pub redirect_raw: ChannelId,
    /// redirect MEB → fetcher.
    pub redirect: ChannelId,
}

/// Statistics from a completed run.
#[derive(Clone, PartialEq, Debug)]
pub struct CpuRunStats {
    /// Cycles simulated until quiescence.
    pub cycles: u64,
    /// Instructions executed (passed the execute stage) per thread —
    /// includes wrong-path instructions when speculating.
    pub executed: Vec<u64>,
    /// Wrong-path instructions squashed per thread (zero without
    /// speculation).
    pub squashed: Vec<u64>,
    /// Aggregate instructions per cycle (wrong-path included).
    pub ipc: f64,
    /// Aggregate *useful* instructions per cycle (wrong-path squashes
    /// subtracted; equals `ipc` without speculation).
    pub useful_ipc: f64,
}

/// Errors from driving the processor.
#[derive(Debug)]
pub enum CpuError {
    /// The underlying simulation failed.
    Sim(SimError),
    /// The program did not halt within the cycle budget.
    Timeout {
        /// Budget that was exhausted.
        max_cycles: u64,
    },
}

impl std::fmt::Display for CpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpuError::Sim(e) => write!(f, "simulation error: {e}"),
            CpuError::Timeout { max_cycles } => {
                write!(f, "program did not halt within {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for CpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CpuError::Sim(e) => Some(e),
            CpuError::Timeout { .. } => None,
        }
    }
}

impl From<SimError> for CpuError {
    fn from(e: SimError) -> Self {
        CpuError::Sim(e)
    }
}

/// IR-level channel handles of the processor pipeline (same wires as
/// [`CpuChannels`], before elaboration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpuIrChannels {
    /// Fetcher → icache.
    pub fetch: IrChannelId,
    /// icache → IF/ID MEB.
    pub fetched: IrChannelId,
    /// IF/ID MEB → decode.
    pub decode_in: IrChannelId,
    /// decode → ID/EX MEB.
    pub issued: IrChannelId,
    /// ID/EX MEB → execute.
    pub ex_in: IrChannelId,
    /// execute → EX/MEM MEB.
    pub ex_out: IrChannelId,
    /// EX/MEM MEB → router.
    pub route_in: IrChannelId,
    /// router → memory unit.
    pub mem_in: IrChannelId,
    /// memory unit → MEM/WB MEB.
    pub mem_out: IrChannelId,
    /// MEM/WB MEB → writeback.
    pub wb: IrChannelId,
    /// router → redirect MEB.
    pub redirect_raw: IrChannelId,
    /// redirect MEB → fetcher.
    pub redirect: IrChannelId,
}

/// The structural IR of the processor pipeline — the one description
/// behind simulation ([`Cpu::new`] elaborates it), the cost model
/// (`Inventory::from_ir`) and DOT rendering (`ir.to_dot()`).
pub struct CpuIr {
    /// The netlist. The five pipeline-register MEBs are emitted as
    /// `auto` nodes with the placeholder `Reduced` kind; [`Cpu::new`]
    /// retargets them with [`MebSubstitution::auto`].
    pub ir: ElasticIr<ProcToken>,
    /// Channel handles.
    pub channels: CpuIrChannels,
}

/// The multithreaded elastic processor.
pub struct Cpu {
    /// The simulated pipeline netlist.
    pub circuit: Circuit<ProcToken>,
    /// Channel handles (for statistics and tracing).
    pub channels: CpuChannels,
    config: CpuConfig,
}

impl Cpu {
    /// Builds the structural IR of the pipeline, with `program` loaded
    /// into instruction memory and every thread starting at
    /// `entry_pcs[thread]`.
    ///
    /// The design-specific stages (fetcher, register unit, data memory)
    /// are [`IrNodeKind::Custom`] nodes whose factories capture the
    /// program and configuration; the generic stages (latency units, the
    /// router fork, the MEB pipeline registers) are ordinary primitive
    /// nodes, so passes can retarget the buffers and the lints can check
    /// the wiring. Channel widths carry the per-stage token widths of the
    /// cost model, and cost hints describe the combinational payload
    /// (ALU, decoder, PCs, …).
    ///
    /// # Panics
    ///
    /// Panics if `entry_pcs.len() != config.threads` or the program is
    /// empty.
    pub fn ir(config: &CpuConfig, program: Vec<u32>, entry_pcs: Vec<u32>) -> CpuIr {
        assert!(
            !program.is_empty(),
            "program must contain at least one instruction"
        );
        assert_eq!(entry_pcs.len(), config.threads, "one entry PC per thread");
        let s = config.threads;
        let mut ir = ElasticIr::<ProcToken>::new();

        let fetch = ir.channel("fetch", s);
        let fetched = ir.channel("fetched", s);
        let decode_in = ir.channel_with_width("decode_in", s, 36);
        let issued = ir.channel("issued", s);
        let ex_in = ir.channel_with_width("ex_in", s, 52);
        let ex_out = ir.channel("ex_out", s);
        let route_in = ir.channel_with_width("route_in", s, 44);
        let mem_in = ir.channel("mem_in", s);
        let mem_out = ir.channel("mem_out", s);
        let wb = ir.channel_with_width("wb", s, 30);
        let redirect_raw = ir.channel("redirect_raw", s);
        let redirect = ir.channel_with_width("redirect", s, 18);

        let meb = || IrNodeKind::Meb {
            kind: MebKind::Reduced,
            arbiter: config.arbiter,
            initial: Vec::new(),
            auto: true,
        };

        let imem = Arc::new(program);
        let spec = SpecState::new(s);
        let speculate = config.speculate;

        let fetch_spec = Arc::clone(&spec);
        let fetcher_node = ir.add(
            "fetch",
            IrNodeKind::Custom {
                build: Box::new(move |ins: &[ChannelId], outs: &[ChannelId]| {
                    let mut fetcher = Fetcher::new("fetch", outs[0], ins[0], s, imem, entry_pcs);
                    if speculate {
                        fetcher = fetcher.with_speculation(fetch_spec);
                    }
                    Box::new(fetcher) as Box<dyn Component<ProcToken>>
                }),
                // The PC registers drive fetch, but the redirect path
                // gates `valid` combinationally — not a loop cut.
                cuts: false,
            },
            vec![redirect],
            vec![fetch],
        );
        ir.add_cost_hint(fetcher_node, "program counters", s, register(16));
        ir.add_cost_hint(fetcher_node, "fetch thread-select", 1, 8 * s);

        ir.add(
            "icache",
            IrNodeKind::VarLatency {
                servers: s.max(2),
                model: LatencyModel::Uniform {
                    min: config.imem_latency.0,
                    max: config.imem_latency.1,
                    seed: config.seed ^ 0x1CAC4E,
                },
                transform: None,
            },
            vec![fetch],
            vec![fetched],
        );
        ir.add("meb_if", meb(), vec![fetched], vec![decode_in]);

        let regs_spec = Arc::clone(&spec);
        let regs_node = ir.add(
            "regs",
            IrNodeKind::Custom {
                build: Box::new(move |ins: &[ChannelId], outs: &[ChannelId]| {
                    let mut regs = RegUnit::new("regs", ins[0], ins[1], outs[0], s);
                    if speculate {
                        regs = regs.with_speculation(regs_spec);
                    }
                    Box::new(regs) as Box<dyn Component<ProcToken>>
                }),
                cuts: false,
            },
            vec![decode_in, wb],
            vec![issued],
        );
        ir.add_cost_hint(regs_node, "instruction decoder", 1, 120);
        ir.add_cost_hint(regs_node, "scoreboard (pending bits)", s, 32);
        ir.add_cost_hint(regs_node, "hazard/forward control", 1, 124);

        ir.add("meb_id", meb(), vec![issued], vec![ex_in]);

        let mul_latency = config.mul_latency;
        let exec_node = ir.add(
            "exec",
            IrNodeKind::VarLatency {
                servers: s.max(2),
                model: LatencyModel::PerToken(Box::new(move |tok: &ProcToken| match tok {
                    ProcToken::Decoded { instr, .. } if instr.is_mul() => mul_latency,
                    _ => 1,
                })),
                transform: Some(Box::new(execute)),
            },
            vec![ex_in],
            vec![ex_out],
        );
        ir.add_cost_hint(
            exec_node,
            "ALU (adder + logic + shifter + result mux)",
            1,
            adder(32) + 2 * lut_layer(32) + 3 * lut_layer(32) + 2 * mux(32, 2),
        );
        ir.add_cost_hint(exec_node, "multiplier glue (DSP excluded)", 1, 40);

        ir.add("meb_ex", meb(), vec![ex_out], vec![route_in]);
        ir.add(
            "router",
            IrNodeKind::Fork {
                mode: ForkMode::Eager,
                route: Some(Box::new(|tok: &ProcToken| {
                    let ProcToken::Executed { instr, .. } = tok else {
                        panic!("router received a non-executed token");
                    };
                    let to_wb = !instr.is_control_flow() || matches!(instr, Instr::Jal { .. });
                    let to_redirect = instr.is_control_flow();
                    vec![to_wb, to_redirect]
                })),
            },
            vec![route_in],
            vec![mem_in, redirect_raw],
        );

        let dmem_words = config.dmem_words;
        let dmem_latency = config.dmem_latency;
        let dmem_seed = config.seed ^ 0xD3EA;
        ir.add(
            "dmem",
            IrNodeKind::Custom {
                build: Box::new(move |ins: &[ChannelId], outs: &[ChannelId]| {
                    let mut dmem = MemUnit::new(
                        "dmem",
                        ins[0],
                        outs[0],
                        s,
                        s.max(2),
                        dmem_words,
                        dmem_latency,
                        dmem_seed,
                    );
                    if speculate {
                        dmem = dmem.with_speculation(spec);
                    }
                    Box::new(dmem) as Box<dyn Component<ProcToken>>
                }),
                // A variable-latency memory: every handshake path is
                // registered, so it legally cuts feedback cycles.
                cuts: true,
            },
            vec![mem_in],
            vec![mem_out],
        );
        ir.add("meb_wb", meb(), vec![mem_out], vec![wb]);
        ir.add("meb_rd", meb(), vec![redirect_raw], vec![redirect]);

        CpuIr {
            ir,
            channels: CpuIrChannels {
                fetch,
                fetched,
                decode_in,
                issued,
                ex_in,
                ex_out,
                route_in,
                mem_in,
                mem_out,
                wb,
                redirect_raw,
                redirect,
            },
        }
    }

    /// Builds an IR for *cost and rendering only* (a trivial one-word
    /// program): what `Inventory::from_ir` and the design-lint tooling
    /// consume when no real workload is at hand.
    pub fn cost_ir(threads: usize) -> CpuIr {
        Self::ir(&CpuConfig::new(threads), vec![0], vec![0; threads])
    }

    /// Builds the processor with `program` loaded into instruction memory
    /// and every thread starting at `entry_pcs[thread]`.
    ///
    /// Construction is the IR pipeline end to end: [`ir`](Self::ir) →
    /// [`MebSubstitution::auto`]`(config.meb)` → protocol + cycle-cover
    /// lints → elaboration.
    ///
    /// # Panics
    ///
    /// Panics if `entry_pcs.len() != config.threads` or the program is
    /// empty.
    pub fn new(config: CpuConfig, program: Vec<u32>, entry_pcs: Vec<u32>) -> Self {
        let CpuIr { mut ir, channels } = Self::ir(&config, program, entry_pcs);
        PassManager::new()
            .with(MebSubstitution::auto(config.meb).with_arbiter(config.arbiter))
            .with(ProtocolLint)
            .with(CycleCoverLint)
            .run(&mut ir)
            .expect("cpu netlist passes lints");
        ir.set_backend(config.backend);
        let e = ir.elaborate().expect("cpu netlist is well-formed");
        let channels = CpuChannels {
            fetch: e.channel(channels.fetch),
            fetched: e.channel(channels.fetched),
            decode_in: e.channel(channels.decode_in),
            issued: e.channel(channels.issued),
            ex_in: e.channel(channels.ex_in),
            ex_out: e.channel(channels.ex_out),
            route_in: e.channel(channels.route_in),
            mem_in: e.channel(channels.mem_in),
            mem_out: e.channel(channels.mem_out),
            wb: e.channel(channels.wb),
            redirect_raw: e.channel(channels.redirect_raw),
            redirect: e.channel(channels.redirect),
        };
        Self {
            circuit: e.circuit,
            channels,
            config,
        }
    }

    /// Convenience: assembles `source` and starts every thread at PC 0
    /// (thread-specific behaviour via the `tid` instruction).
    ///
    /// # Errors
    ///
    /// Returns the assembler error, if any.
    pub fn from_asm(config: CpuConfig, source: &str) -> Result<Self, crate::asm::AsmError> {
        let program = crate::asm::assemble(source)?;
        let entries = vec![0; config.threads];
        Ok(Self::new(config, program, entries))
    }

    /// The configuration this processor was built with.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Architectural register value.
    pub fn reg(&self, thread: usize, r: usize) -> u32 {
        self.regs().reg(thread, r)
    }

    /// Presets a register before running.
    pub fn set_reg(&mut self, thread: usize, r: usize, value: u32) {
        self.circuit
            .get_mut::<RegUnit>("regs")
            .expect("reg unit exists")
            .set_reg(thread, r, value);
    }

    /// Reads a data-memory word.
    pub fn mem(&self, addr: usize) -> u32 {
        self.dmem().read(addr)
    }

    /// Writes a data-memory word before running.
    pub fn set_mem(&mut self, addr: usize, value: u32) {
        self.circuit
            .get_mut::<MemUnit>("dmem")
            .expect("dmem exists")
            .write(addr, value);
    }

    /// The fetch stage (thread status inspection).
    pub fn fetcher(&self) -> &Fetcher {
        self.circuit.get("fetch").expect("fetcher exists")
    }

    /// The register unit.
    pub fn regs(&self) -> &RegUnit {
        self.circuit.get("regs").expect("reg unit exists")
    }

    /// The data memory unit.
    pub fn dmem(&self) -> &MemUnit {
        self.circuit.get("dmem").expect("dmem exists")
    }

    /// Runs until every thread has halted and the pipeline has drained,
    /// or until `max_cycles`.
    ///
    /// # Errors
    ///
    /// [`CpuError::Timeout`] when the budget is exhausted, or
    /// [`CpuError::Sim`] on a protocol violation/deadlock.
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<CpuRunStats, CpuError> {
        let drain_window = 8
            + 4 * (self.config.imem_latency.1.max(self.config.dmem_latency.1) as u64)
            + u64::from(self.config.mul_latency);
        let mut idle = 0u64;
        loop {
            if self.circuit.cycle() >= max_cycles {
                return Err(CpuError::Timeout { max_cycles });
            }
            let report = self.circuit.step()?;
            let halted = self.fetcher().all_halted();
            if report.transfers.is_empty() {
                idle += 1;
            } else {
                idle = 0;
            }
            if halted && idle >= drain_window {
                break;
            }
        }
        let cycles = self.circuit.cycle();
        let executed: Vec<u64> = (0..self.config.threads)
            .map(|t| self.circuit.stats().transfers(self.channels.ex_out, t))
            .collect();
        let squashed: Vec<u64> = (0..self.config.threads)
            .map(|t| self.fetcher().squashed(t))
            .collect();
        let total: u64 = executed.iter().sum();
        let useful = total.saturating_sub(squashed.iter().sum());
        Ok(CpuRunStats {
            cycles,
            executed,
            squashed,
            ipc: total as f64 / cycles as f64,
            useful_ipc: useful as f64 / cycles as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(source: &str, threads: usize) -> Cpu {
        let mut cpu = Cpu::from_asm(CpuConfig::new(threads), source).expect("assembles");
        cpu.run_to_halt(50_000).expect("halts");
        cpu
    }

    #[test]
    fn straight_line_arithmetic() {
        let cpu = run(
            "addi r1, r0, 21\n\
             add  r2, r1, r1\n\
             sll  r3, r2, 2\n\
             halt\n",
            1,
        );
        assert_eq!(cpu.reg(0, 1), 21);
        assert_eq!(cpu.reg(0, 2), 42);
        assert_eq!(cpu.reg(0, 3), 168);
    }

    #[test]
    fn raw_hazards_resolve_correctly() {
        // Each instruction depends on the previous one.
        let cpu = run(
            "addi r1, r0, 1\n\
             add  r2, r1, r1\n\
             add  r3, r2, r2\n\
             add  r4, r3, r3\n\
             mul  r5, r4, r4\n\
             add  r6, r5, r4\n\
             halt\n",
            1,
        );
        assert_eq!(cpu.reg(0, 4), 8);
        assert_eq!(cpu.reg(0, 5), 64);
        assert_eq!(cpu.reg(0, 6), 72);
    }

    #[test]
    fn loop_with_branch_counts_down() {
        let cpu = run(
            "      addi r1, r0, 10\n\
                   addi r2, r0, 0\n\
             loop: add  r2, r2, r1\n\
                   addi r1, r1, -1\n\
                   bne  r1, r0, loop\n\
                   halt\n",
            1,
        );
        assert_eq!(cpu.reg(0, 2), 55);
        assert_eq!(cpu.reg(0, 1), 0);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut cpu = Cpu::from_asm(
            CpuConfig::new(1),
            "addi r1, r0, 100\n\
             addi r2, r0, 1234\n\
             sw   r2, 0(r1)\n\
             lw   r3, 0(r1)\n\
             add  r4, r3, r3\n\
             sw   r4, 1(r1)\n\
             halt\n",
        )
        .expect("assembles");
        cpu.run_to_halt(50_000).expect("halts");
        assert_eq!(cpu.mem(100), 1234);
        assert_eq!(cpu.mem(101), 2468);
        assert_eq!(cpu.reg(0, 3), 1234);
    }

    #[test]
    fn jal_and_jr_implement_a_call() {
        let cpu = run(
            "       addi r1, r0, 5\n\
                    jal  fn\n\
                    add  r3, r2, r2\n\
                    halt\n\
             fn:    add  r2, r1, r1\n\
                    jr   r31\n",
            1,
        );
        assert_eq!(cpu.reg(0, 2), 10);
        assert_eq!(cpu.reg(0, 3), 20);
        assert_eq!(cpu.reg(0, 31), 2);
    }

    #[test]
    fn tid_gives_each_thread_its_identity() {
        let cpu = run(
            "tid  r1\n\
             addi r2, r1, 100\n\
             sw   r2, 0(r1)\n\
             halt\n",
            4,
        );
        for t in 0..4 {
            assert_eq!(cpu.reg(t, 1), t as u32);
            assert_eq!(cpu.mem(t), 100 + t as u32);
        }
    }

    #[test]
    fn threads_share_the_datapath_without_interference() {
        // Each thread computes its own sum 1..=N with N = 5 + tid; results
        // must be independent despite full datapath sharing.
        let cpu = run(
            "      tid  r1\n\
                   addi r1, r1, 5\n\
                   addi r2, r0, 0\n\
             loop: add  r2, r2, r1\n\
                   addi r1, r1, -1\n\
                   bne  r1, r0, loop\n\
                   halt\n",
            8,
        );
        for t in 0..8 {
            let n = 5 + t as u32;
            assert_eq!(cpu.reg(t, 2), n * (n + 1) / 2, "thread {t}");
        }
    }

    #[test]
    fn multithreading_improves_utilization() {
        // A branchy, dependent workload: a single thread leaves bubbles
        // (stall-on-branch + variable latency); 8 threads fill them. IPC
        // must improve substantially — the paper's motivation (Fig. 1).
        let source = "      tid  r1\n\
                            addi r1, r1, 8\n\
                            addi r2, r0, 0\n\
                      loop: add  r2, r2, r1\n\
                            addi r1, r1, -1\n\
                            bne  r1, r0, loop\n\
                            halt\n";
        let mut single = Cpu::from_asm(CpuConfig::new(1), source).expect("asm");
        let s1 = single.run_to_halt(100_000).expect("halts");
        let mut eight = Cpu::from_asm(CpuConfig::new(8), source).expect("asm");
        let s8 = eight.run_to_halt(100_000).expect("halts");
        assert!(
            s8.ipc > 2.0 * s1.ipc,
            "8-thread IPC {:.3} should be well above single-thread IPC {:.3}",
            s8.ipc,
            s1.ipc
        );
    }

    #[test]
    fn full_and_reduced_mebs_compute_identical_results() {
        let source = "      tid  r1\n\
                            addi r3, r1, 3\n\
                            addi r2, r0, 1\n\
                      loop: mul  r2, r2, r3\n\
                            addi r3, r3, -1\n\
                            bne  r3, r0, loop\n\
                            sw   r2, 0(r1)\n\
                            halt\n";
        let mut results = Vec::new();
        for kind in [MebKind::Full, MebKind::Reduced] {
            let mut cpu = Cpu::from_asm(CpuConfig::new(4).with_meb(kind), source).expect("asm");
            cpu.run_to_halt(100_000).expect("halts");
            results.push((0..4).map(|t| cpu.mem(t)).collect::<Vec<_>>());
        }
        assert_eq!(results[0], results[1]);
        // factorial(3 + tid): 6, 24, 120, 720.
        assert_eq!(results[0], vec![6, 24, 120, 720]);
    }

    #[test]
    fn speculation_preserves_architectural_results() {
        // A branchy loop whose wrong path contains a halt — speculation
        // must squash it and still produce the right sums.
        let source = "      tid  r1\n\
                            addi r1, r1, 6\n\
                            addi r2, r0, 0\n\
                      loop: add  r2, r2, r1\n\
                            addi r1, r1, -1\n\
                            bne  r1, r0, loop\n\
                            halt\n";
        for threads in [1usize, 4] {
            let mut base = Cpu::from_asm(CpuConfig::new(threads), source).expect("asm");
            base.run_to_halt(200_000).expect("halts");
            let mut spec =
                Cpu::from_asm(CpuConfig::new(threads).with_speculation(), source).expect("asm");
            let stats = spec.run_to_halt(200_000).expect("halts");
            for t in 0..threads {
                assert_eq!(spec.reg(t, 2), base.reg(t, 2), "thread {t}");
            }
            // The loop's taken back-edges mispredict: squashes observed.
            assert!(stats.squashed.iter().sum::<u64>() > 0);
        }
    }

    #[test]
    fn speculation_never_leaks_wrong_path_memory_writes() {
        // Wrong path after the (taken) branch stores a poison value; the
        // squash must keep it out of memory.
        let source = "      addi r1, r0, 1\n\
                            addi r3, r0, 42\n\
                            sw   r3, 0(r0)\n\
                            bne  r1, r0, skip\n\
                            addi r4, r0, 666\n\
                            sw   r4, 0(r0)\n\
                      skip: lw   r5, 0(r0)\n\
                            halt\n";
        let mut cpu = Cpu::from_asm(CpuConfig::new(1).with_speculation(), source).expect("asm");
        cpu.run_to_halt(100_000).expect("halts");
        assert_eq!(cpu.mem(0), 42, "wrong-path store leaked to memory");
        assert_eq!(cpu.reg(0, 5), 42);
        assert_eq!(cpu.reg(0, 4), 0, "wrong-path register write leaked");
    }

    #[test]
    fn speculation_helps_single_thread_branchy_code() {
        // Mostly not-taken forward branches: prediction is usually right,
        // so the stall-on-branch baseline loses cycles speculation saves.
        let source = "      tid  r1\n\
                            addi r2, r0, 200\n\
                            addi r3, r0, 0\n\
                      loop: addi r2, r2, -1\n\
                            beq  r2, r0, done\n\
                            addi r3, r3, 1\n\
                            beq  r2, r0, done\n\
                            addi r3, r3, 1\n\
                            bne  r2, r0, loop\n\
                      done: halt\n";
        let mut base = Cpu::from_asm(CpuConfig::new(1), source).expect("asm");
        let b = base.run_to_halt(500_000).expect("halts");
        let mut spec = Cpu::from_asm(CpuConfig::new(1).with_speculation(), source).expect("asm");
        let sp = spec.run_to_halt(500_000).expect("halts");
        assert_eq!(spec.reg(0, 3), base.reg(0, 3));
        assert!(
            sp.cycles < b.cycles * 9 / 10,
            "speculation {} cycles vs baseline {}",
            sp.cycles,
            b.cycles
        );
    }

    #[test]
    fn timeout_is_reported_for_nonhalting_programs() {
        let mut cpu = Cpu::from_asm(CpuConfig::new(1), "loop: j loop\n").expect("asm");
        let err = cpu.run_to_halt(500).unwrap_err();
        assert!(matches!(err, CpuError::Timeout { max_cycles: 500 }));
    }
}
