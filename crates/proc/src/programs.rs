//! Ready-made multithreaded workloads for the processor — the benchmark
//! programs used by the evaluation harness. All of them derive per-thread
//! behaviour from the `tid` instruction so every thread runs the same
//! binary on private data regions.

/// Sum of `1..=(8 + tid)` into `r2` — short dependent loop, branch every
/// 3 instructions (branch-heavy control workload).
pub const SUM_LOOP: &str = "      tid  r1
      addi r1, r1, 8
      addi r2, r0, 0
loop: add  r2, r2, r1
      addi r1, r1, -1
      bne  r1, r0, loop
      halt
";

/// Iterative Fibonacci: `fib(10 + tid)` left in `r4` and stored at
/// `dmem[tid]` — dependent arithmetic chain.
pub const FIBONACCI: &str = "      tid  r1
      addi r5, r1, 10      # n = 10 + tid
      addi r2, r0, 0       # a
      addi r3, r0, 1       # b
loop: add  r4, r2, r3      # c = a + b
      mov  r2, r3
      mov  r3, r4
      addi r5, r5, -1
      bne  r5, r0, loop
      sw   r2, 0(r1)       # fib(n) ends up in a
      halt
";

/// Copies 16 words from the thread's source region to its destination
/// region — memory-bound (one load + one store per iteration).
pub const MEMCPY: &str = "      tid  r1
      sll  r2, r1, 6       # src  = tid * 64
      addi r3, r2, 32      # dst  = src + 32
      addi r4, r0, 16      # count
loop: lw   r5, 0(r2)
      sw   r5, 0(r3)
      addi r2, r2, 1
      addi r3, r3, 1
      addi r4, r4, -1
      bne  r4, r0, loop
      halt
";

/// Dot product of two 16-element vectors in the thread's region, result
/// stored at `dmem[tid * 64 + 63]` — mixed loads and multiplies.
pub const DOT_PRODUCT: &str = "      tid  r1
      sll  r2, r1, 6       # x = tid * 64
      addi r3, r2, 16      # y = x + 16
      addi r4, r0, 16      # count
      addi r6, r0, 0       # acc
loop: lw   r7, 0(r2)
      lw   r8, 0(r3)
      mul  r9, r7, r8
      add  r6, r6, r9
      addi r2, r2, 1
      addi r3, r3, 1
      addi r4, r4, -1
      bne  r4, r0, loop
      sll  r10, r1, 6
      sw   r6, 63(r10)
      halt
";

/// Sieve of Eratosthenes over 64 flags in the thread's region; the number
/// of primes below 64 lands in `r9` and `dmem[tid * 128 + 127]` —
/// branch- and store-heavy.
pub const SIEVE: &str = "      tid  r1
      sll  r10, r1, 7      # base = tid * 128
      addi r2, r0, 2       # i = 2
outer:
      addi r3, r0, 64
      slt  r4, r2, r3
      beq  r4, r0, count   # i >= 64 -> count primes
      add  r5, r10, r2
      lw   r6, 0(r5)
      bne  r6, r0, next    # already marked composite
      add  r7, r2, r2      # j = 2 * i
inner:
      addi r3, r0, 64
      slt  r4, r7, r3
      beq  r4, r0, next    # j >= 64
      add  r5, r10, r7
      addi r8, r0, 1
      sw   r8, 0(r5)       # mark composite
      add  r7, r7, r2
      j    inner
next:
      addi r2, r2, 1
      j    outer
count:
      addi r2, r0, 2
      addi r9, r0, 0
cloop:
      addi r3, r0, 64
      slt  r4, r2, r3
      beq  r4, r0, done
      add  r5, r10, r2
      lw   r6, 0(r5)
      bne  r6, r0, cskip
      addi r9, r9, 1
cskip:
      addi r2, r2, 1
      j    cloop
done:
      sw   r9, 127(r10)
      halt
";

/// Bubble-sorts 8 words in place in the thread's region
/// (`dmem[tid * 32 .. tid * 32 + 8]`) — nested loops, compare-and-swap,
/// load/store heavy.
pub const BUBBLE_SORT: &str = "      tid  r1
      sll  r10, r1, 5      # base = tid * 32
      addi r2, r0, 7       # passes = n - 1
outer:
      beq  r2, r0, done
      addi r3, r0, 0       # i = 0
      mov  r4, r10         # p = base
inner:
      lw   r5, 0(r4)
      lw   r6, 1(r4)
      slt  r7, r6, r5      # r6 < r5 ?
      beq  r7, r0, noswap
      sw   r6, 0(r4)
      sw   r5, 1(r4)
noswap:
      addi r4, r4, 1
      addi r3, r3, 1
      bne  r3, r2, inner
      addi r2, r2, -1
      j    outer
done:
      halt
";

/// 4×4 matrix multiply `C = A × B` in the thread's region:
/// A at `base`, B at `base + 16`, C at `base + 32` (`base = tid * 64`) —
/// triple loop with multiplies and indexed addressing.
pub const MATMUL: &str = "      tid  r1
      sll  r10, r1, 6      # base = tid * 64
      addi r2, r0, 0       # i
iloop:
      addi r3, r0, 0       # j
jloop:
      addi r4, r0, 0       # k
      addi r5, r0, 0       # acc
kloop:
      sll  r6, r2, 2       # i * 4
      add  r6, r6, r4      # i * 4 + k
      add  r6, r6, r10
      lw   r7, 0(r6)       # A[i][k]
      sll  r8, r4, 2       # k * 4
      add  r8, r8, r3      # k * 4 + j
      add  r8, r8, r10
      lw   r9, 16(r8)      # B[k][j]
      mul  r11, r7, r9
      add  r5, r5, r11
      addi r4, r4, 1
      addi r12, r0, 4
      bne  r4, r12, kloop
      sll  r6, r2, 2
      add  r6, r6, r3
      add  r6, r6, r10
      sw   r5, 32(r6)      # C[i][j]
      addi r3, r3, 1
      addi r12, r0, 4
      bne  r3, r12, jloop
      addi r2, r2, 1
      addi r12, r0, 4
      bne  r2, r12, iloop
      halt
";

/// All named workloads, for sweeps: `(name, source, description)`.
pub fn all() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "sum_loop",
            SUM_LOOP,
            "dependent arithmetic loop, branch every 3 instructions",
        ),
        ("fibonacci", FIBONACCI, "dependent arithmetic chain"),
        ("memcpy", MEMCPY, "memory-bound copy loop"),
        (
            "dot_product",
            DOT_PRODUCT,
            "loads + long-latency multiplies",
        ),
        (
            "sieve",
            SIEVE,
            "branch- and store-heavy sieve of Eratosthenes",
        ),
        ("bubble_sort", BUBBLE_SORT, "nested compare-and-swap loops"),
        (
            "matmul",
            MATMUL,
            "4x4 matrix multiply, indexed loads + multiplies",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::{Cpu, CpuConfig};

    #[test]
    fn all_programs_assemble() {
        for (name, src, _) in all() {
            assert!(assemble(src).is_ok(), "program `{name}` must assemble");
        }
    }

    #[test]
    fn fibonacci_computes_the_sequence() {
        let mut cpu = Cpu::from_asm(CpuConfig::new(4), FIBONACCI).expect("asm");
        cpu.run_to_halt(200_000).expect("halts");
        // fib(10) = 55, fib(11) = 89, fib(12) = 144, fib(13) = 233.
        for (t, expect) in [55, 89, 144, 233].into_iter().enumerate() {
            assert_eq!(cpu.mem(t), expect, "thread {t}");
        }
    }

    #[test]
    fn memcpy_copies_each_threads_region() {
        let mut cpu = Cpu::from_asm(CpuConfig::new(4), MEMCPY).expect("asm");
        for t in 0..4usize {
            for i in 0..16usize {
                cpu.set_mem(t * 64 + i, (1000 * t + i) as u32);
            }
        }
        cpu.run_to_halt(200_000).expect("halts");
        for t in 0..4usize {
            for i in 0..16usize {
                assert_eq!(
                    cpu.mem(t * 64 + 32 + i),
                    (1000 * t + i) as u32,
                    "thread {t} word {i}"
                );
            }
        }
    }

    #[test]
    fn dot_product_matches_software() {
        let mut cpu = Cpu::from_asm(CpuConfig::new(2), DOT_PRODUCT).expect("asm");
        let mut expect = [0u32; 2];
        for (t, acc) in expect.iter_mut().enumerate() {
            for i in 0..16usize {
                let x = (t * 7 + i + 1) as u32;
                let y = (t * 3 + 2 * i + 1) as u32;
                cpu.set_mem(t * 64 + i, x);
                cpu.set_mem(t * 64 + 16 + i, y);
                *acc = acc.wrapping_add(x.wrapping_mul(y));
            }
        }
        cpu.run_to_halt(200_000).expect("halts");
        for (t, expect) in expect.into_iter().enumerate() {
            assert_eq!(cpu.mem(t * 64 + 63), expect, "thread {t}");
        }
    }

    #[test]
    fn bubble_sort_sorts_each_threads_region() {
        let mut cpu = Cpu::from_asm(CpuConfig::new(4), BUBBLE_SORT).expect("asm");
        let mut expected: Vec<Vec<u32>> = Vec::new();
        for t in 0..4usize {
            let vals: Vec<u32> = (0..8).map(|i| ((7 * i + 11 * t + 3) % 50) as u32).collect();
            for (i, &v) in vals.iter().enumerate() {
                cpu.set_mem(t * 32 + i, v);
            }
            let mut sorted = vals;
            sorted.sort_unstable();
            expected.push(sorted);
        }
        cpu.run_to_halt(800_000).expect("halts");
        for (t, expected) in expected.iter().enumerate() {
            let got: Vec<u32> = (0..8).map(|i| cpu.mem(t * 32 + i)).collect();
            assert_eq!(&got, expected, "thread {t}");
        }
    }

    #[test]
    fn matmul_matches_software() {
        let mut cpu = Cpu::from_asm(CpuConfig::new(2), MATMUL).expect("asm");
        let mut expect: Vec<[[u32; 4]; 4]> = Vec::new();
        for t in 0..2usize {
            let a: Vec<u32> = (0..16).map(|i| (i + 1 + 10 * t) as u32).collect();
            let bm: Vec<u32> = (0..16).map(|i| (2 * i + 3 + t) as u32).collect();
            for (i, (&av, &bv)) in a.iter().zip(&bm).enumerate() {
                cpu.set_mem(t * 64 + i, av);
                cpu.set_mem(t * 64 + 16 + i, bv);
            }
            let mut c = [[0u32; 4]; 4];
            for i in 0..4 {
                for j in 0..4 {
                    for k in 0..4 {
                        c[i][j] = c[i][j].wrapping_add(a[4 * i + k].wrapping_mul(bm[4 * k + j]));
                    }
                }
            }
            expect.push(c);
        }
        cpu.run_to_halt(800_000).expect("halts");
        for (t, expect) in expect.iter().enumerate() {
            for (i, row) in expect.iter().enumerate() {
                for (j, &cell) in row.iter().enumerate() {
                    assert_eq!(
                        cpu.mem(t * 64 + 32 + 4 * i + j),
                        cell,
                        "thread {t} C[{i}][{j}]"
                    );
                }
            }
        }
    }

    #[test]
    fn sorting_with_speculation_matches_baseline() {
        // Heavy data-dependent branching: the strongest squash stress.
        let init = |cpu: &mut Cpu| {
            for t in 0..2usize {
                for i in 0..8usize {
                    cpu.set_mem(t * 32 + i, ((13 * i + 5 * t) % 40) as u32);
                }
            }
        };
        let mut base = Cpu::from_asm(CpuConfig::new(2), BUBBLE_SORT).expect("asm");
        init(&mut base);
        base.run_to_halt(800_000).expect("halts");
        let mut spec =
            Cpu::from_asm(CpuConfig::new(2).with_speculation(), BUBBLE_SORT).expect("asm");
        init(&mut spec);
        spec.run_to_halt(800_000).expect("halts");
        for t in 0..2usize {
            for i in 0..8usize {
                assert_eq!(
                    spec.mem(t * 32 + i),
                    base.mem(t * 32 + i),
                    "thread {t} [{i}]"
                );
            }
        }
    }

    #[test]
    fn sieve_counts_primes_below_64() {
        let mut cpu = Cpu::from_asm(CpuConfig::new(2), SIEVE).expect("asm");
        cpu.run_to_halt(400_000).expect("halts");
        // Primes < 64: 2,3,5,7,11,13,17,19,23,29,31,37,41,43,47,53,59,61 → 18.
        for t in 0..2usize {
            assert_eq!(cpu.mem(t * 128 + 127), 18, "thread {t}");
        }
    }
}
