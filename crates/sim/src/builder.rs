//! Circuit construction and structural validation.

use std::collections::BTreeMap;

use crate::channel::{ChannelId, ChannelSpec, ChannelState};
use crate::circuit::{Circuit, ComponentStore};
use crate::component::Component;
use crate::error::BuildError;
use crate::fused::{FuseFn, KernelBackend};
use crate::rank::{compute_schedule, ScheduleMode};
use crate::token::Token;

/// Incrementally wires channels and components into a [`Circuit`].
///
/// Channels are created first (so their ids can be passed to component
/// constructors), then components are added; [`build`](CircuitBuilder::build)
/// validates that every channel has exactly one driver and one reader.
///
/// Building is the expensive step (validation plus the levelized rank
/// schedule), so sweep campaigns that run many points on one structure
/// should build a single prototype behind [`crate::SharedCircuit`] and
/// submit [`crate::SimJob::on_circuit`] jobs: each pool worker then
/// builds once and rewinds the instance with [`Circuit::reset`] between
/// points instead of re-running the builder.
///
/// # Examples
///
/// ```
/// use elastic_sim::{CircuitBuilder, Source, Sink, ReadyPolicy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<u64>::new();
/// let ch = b.channel("wire", 1);
/// let mut src = Source::new("src", ch, 1);
/// src.push(0, 7u64);
/// b.add(src);
/// b.add(Sink::with_capture("snk", ch, 1, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(3)?;
/// # Ok(())
/// # }
/// ```
pub struct CircuitBuilder<T: Token> {
    specs: Vec<ChannelSpec>,
    components: Vec<Box<dyn Component<T>>>,
    schedule: ScheduleMode,
    backend: KernelBackend,
    fuser: Option<FuseFn<T>>,
}

impl<T: Token> Default for CircuitBuilder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Token> CircuitBuilder<T> {
    /// An empty builder.
    pub fn new() -> Self {
        Self {
            specs: Vec::new(),
            components: Vec::new(),
            schedule: ScheduleMode::default(),
            backend: KernelBackend::default(),
            fuser: None,
        }
    }

    /// Selects the evaluation-order schedule [`build`](CircuitBuilder::build)
    /// will produce (default [`ScheduleMode::Ranked`]). Loop rejection and
    /// wake-map analysis are identical in every mode; only the component
    /// permutation changes, so the non-ranked modes exist for ablation.
    pub fn set_schedule(&mut self, mode: ScheduleMode) {
        self.schedule = mode;
    }

    /// Chainable form of [`set_schedule`](CircuitBuilder::set_schedule).
    pub fn with_schedule(mut self, mode: ScheduleMode) -> Self {
        self.schedule = mode;
        self
    }

    /// Selects the settle-kernel backend [`build`](CircuitBuilder::build)
    /// will produce (default [`KernelBackend::Interpreted`]).
    ///
    /// [`KernelBackend::Fused`] takes effect only when a lowering
    /// function is also installed ([`set_fuser`](CircuitBuilder::set_fuser));
    /// without one the build silently falls back to the interpreted
    /// store, since this crate defines only the fused *mechanism* — the
    /// lowering over the concrete primitive set lives in `elastic-synth`.
    pub fn set_backend(&mut self, backend: KernelBackend) {
        self.backend = backend;
    }

    /// Chainable form of [`set_backend`](CircuitBuilder::set_backend).
    pub fn with_backend(mut self, backend: KernelBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Installs the lowering function used when the backend is
    /// [`KernelBackend::Fused`] (e.g. `elastic_synth::fuse`).
    pub fn set_fuser(&mut self, fuser: FuseFn<T>) {
        self.fuser = Some(fuser);
    }

    /// Chainable form of [`set_fuser`](CircuitBuilder::set_fuser).
    pub fn with_fuser(mut self, fuser: FuseFn<T>) -> Self {
        self.fuser = Some(fuser);
        self
    }

    /// Declares a channel supporting `threads` concurrent threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn channel(&mut self, name: impl Into<String>, threads: usize) -> ChannelId {
        assert!(threads > 0, "a channel must support at least one thread");
        let id = ChannelId(self.specs.len());
        self.specs.push(ChannelSpec {
            name: name.into(),
            threads,
        });
        id
    }

    /// Declares `n` channels named `prefix0`, `prefix1`, … (handy for
    /// pipelines).
    pub fn channels(&mut self, prefix: &str, threads: usize, n: usize) -> Vec<ChannelId> {
        (0..n)
            .map(|i| self.channel(format!("{prefix}{i}"), threads))
            .collect()
    }

    /// Adds a component; returns its evaluation-order index.
    pub fn add(&mut self, component: impl Component<T> + 'static) -> usize {
        self.components.push(Box::new(component));
        self.components.len() - 1
    }

    /// Adds an already boxed component (e.g. one produced by a factory
    /// that selects the concrete type at runtime).
    pub fn add_boxed(&mut self, component: Box<dyn Component<T>>) -> usize {
        self.components.push(component);
        self.components.len() - 1
    }

    /// Validates the netlist, compiles the rank schedule and produces a
    /// runnable [`Circuit`].
    ///
    /// Components are permuted into levelized rank order (see
    /// [`ScheduleMode`]): every component evaluates after everything it
    /// combinationally depends on, as declared through
    /// [`Component::comb_paths`], so an acyclic net settles in one sweep.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when a channel is undriven/unread, driven
    /// or read more than once, a component references an unknown channel,
    /// a combinational-path declaration is malformed, the declared paths
    /// form an undamped combinational cycle
    /// ([`BuildError::CombinationalLoop`], naming the components on the
    /// cycle), or the circuit is empty.
    pub fn build(self) -> Result<Circuit<T>, BuildError> {
        if self.components.is_empty() {
            return Err(BuildError::Empty);
        }
        let n_ch = self.specs.len();
        let mut drivers: Vec<Vec<usize>> = vec![Vec::new(); n_ch];
        let mut readers: Vec<Vec<usize>> = vec![Vec::new(); n_ch];

        for (i, comp) in self.components.iter().enumerate() {
            let ports = comp.ports();
            for ch in ports.outputs {
                if ch.0 >= n_ch {
                    return Err(BuildError::UnknownChannel {
                        component: comp.name().to_string(),
                    });
                }
                drivers[ch.0].push(i);
            }
            for ch in ports.inputs {
                if ch.0 >= n_ch {
                    return Err(BuildError::UnknownChannel {
                        component: comp.name().to_string(),
                    });
                }
                readers[ch.0].push(i);
            }
        }

        let names: BTreeMap<usize, String> = self
            .components
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.name().to_string()))
            .collect();

        let mut driver = Vec::with_capacity(n_ch);
        let mut reader = Vec::with_capacity(n_ch);
        for (ci, spec) in self.specs.iter().enumerate() {
            match drivers[ci].as_slice() {
                [] => {
                    return Err(BuildError::NoDriver {
                        channel: spec.name.clone(),
                    })
                }
                [d] => driver.push(*d),
                many => {
                    return Err(BuildError::MultipleDrivers {
                        channel: spec.name.clone(),
                        drivers: many.iter().map(|i| names[i].clone()).collect(),
                    })
                }
            }
            match readers[ci].as_slice() {
                [] => {
                    return Err(BuildError::NoReader {
                        channel: spec.name.clone(),
                    })
                }
                [r] => reader.push(*r),
                many => {
                    return Err(BuildError::MultipleReaders {
                        channel: spec.name.clone(),
                        readers: many.iter().map(|i| names[i].clone()).collect(),
                    })
                }
            }
        }

        let schedule = compute_schedule(
            &self.components,
            &self.specs,
            &driver,
            &reader,
            self.schedule,
        )?;

        // Permute components into schedule order and remap the wake
        // tables: driver/reader values are component indices, so they are
        // rewritten through the inverse permutation. Channel ids are
        // untouched.
        let n = self.components.len();
        let mut inv = vec![0usize; n];
        for (k, &old) in schedule.order.iter().enumerate() {
            inv[old] = k;
        }
        let mut slots: Vec<Option<Box<dyn Component<T>>>> =
            self.components.into_iter().map(Some).collect();
        let components: Vec<Box<dyn Component<T>>> = schedule
            .order
            .iter()
            .map(|&old| slots[old].take().expect("order is a permutation"))
            .collect();
        let driver: Vec<usize> = driver.into_iter().map(|d| inv[d]).collect();
        let reader: Vec<usize> = reader.into_iter().map(|r| inv[r]).collect();

        // Lowering happens *after* the rank permutation so the op table
        // inherits the schedule order: op index == evaluation index, and
        // the linear sweep over the table is the levelized sweep.
        let store = match (self.backend, self.fuser) {
            (KernelBackend::Fused, Some(fuse)) => ComponentStore::Fused(fuse(components)),
            _ => ComponentStore::Boxed(components),
        };

        let channels = self.specs.into_iter().map(ChannelState::new).collect();
        Ok(Circuit::from_parts(
            store, channels, driver, reader, schedule,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{EvalCtx, TickCtx};
    use crate::component::Ports;

    struct Stub {
        name: String,
        ports: Ports,
    }

    impl Component<u64> for Stub {
        fn name(&self) -> &str {
            &self.name
        }
        fn ports(&self) -> Ports {
            self.ports.clone()
        }
        // The stub's eval reads nothing, so the conservative default
        // (which would see every stub pair as a strict cycle) is wrong
        // here: declare no combinational paths.
        fn comb_paths(&self) -> Vec<crate::component::CombPath> {
            Vec::new()
        }
        fn eval(&mut self, _ctx: &mut EvalCtx<'_, u64>) {}
        fn tick(&mut self, _ctx: &TickCtx<'_, u64>) {}
        crate::impl_as_any!();
    }

    fn stub(name: &str, inputs: Vec<ChannelId>, outputs: Vec<ChannelId>) -> Stub {
        Stub {
            name: name.into(),
            ports: Ports { inputs, outputs },
        }
    }

    #[test]
    fn valid_netlist_builds() {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 2);
        b.add(stub("p", vec![], vec![ch]));
        b.add(stub("q", vec![ch], vec![]));
        assert!(b.build().is_ok());
    }

    #[test]
    fn empty_circuit_is_rejected() {
        let b = CircuitBuilder::<u64>::new();
        assert_eq!(b.build().err(), Some(BuildError::Empty));
    }

    #[test]
    fn undriven_channel_is_rejected() {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 1);
        b.add(stub("q", vec![ch], vec![]));
        assert_eq!(
            b.build().err(),
            Some(BuildError::NoDriver {
                channel: "c".into()
            })
        );
    }

    #[test]
    fn unread_channel_is_rejected() {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 1);
        b.add(stub("p", vec![], vec![ch]));
        assert_eq!(
            b.build().err(),
            Some(BuildError::NoReader {
                channel: "c".into()
            })
        );
    }

    #[test]
    fn double_driver_is_rejected() {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 1);
        b.add(stub("p1", vec![], vec![ch]));
        b.add(stub("p2", vec![], vec![ch]));
        b.add(stub("q", vec![ch], vec![]));
        match b.build().err() {
            Some(BuildError::MultipleDrivers { channel, drivers }) => {
                assert_eq!(channel, "c");
                assert_eq!(drivers, vec!["p1".to_string(), "p2".to_string()]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn double_reader_is_rejected() {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("c", 1);
        b.add(stub("p", vec![], vec![ch]));
        b.add(stub("q1", vec![ch], vec![]));
        b.add(stub("q2", vec![ch], vec![]));
        assert!(matches!(
            b.build().err(),
            Some(BuildError::MultipleReaders { .. })
        ));
    }

    #[test]
    fn unknown_channel_is_rejected() {
        let mut b = CircuitBuilder::<u64>::new();
        b.add(stub("p", vec![], vec![ChannelId(5)]));
        assert!(matches!(
            b.build().err(),
            Some(BuildError::UnknownChannel { .. })
        ));
    }

    #[test]
    fn channels_helper_names_sequentially() {
        let mut b = CircuitBuilder::<u64>::new();
        let chs = b.channels("st", 4, 3);
        assert_eq!(chs.len(), 3);
        // Wire them so build succeeds and names can be checked.
        b.add(stub("p", vec![], chs.clone()));
        b.add(stub("q", chs.clone(), vec![]));
        let c = b.build().expect("valid");
        assert_eq!(c.channel_name(chs[1]), "st1");
    }
}
