//! The elaborated circuit with named external ports.

use std::collections::BTreeMap;

use elastic_sim::{ChannelId, Circuit, SimError, Sink, Source, Token};

/// Error for operations on a port name the graph does not define.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnknownPortError {
    /// The unknown name.
    pub port: String,
    /// Names that do exist (for the error message).
    pub available: Vec<String>,
}

impl std::fmt::Display for UnknownPortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown port `{}` (available: {:?})",
            self.port, self.available
        )
    }
}

impl std::error::Error for UnknownPortError {}

/// Errors from driving a [`SynthCircuit`].
#[derive(Debug)]
pub enum RunError {
    /// A named port does not exist.
    UnknownPort(UnknownPortError),
    /// The simulation failed.
    Sim(SimError),
    /// The requested output count did not arrive within the cycle budget.
    Timeout {
        /// Budget that was exhausted.
        max_cycles: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownPort(e) => write!(f, "{e}"),
            RunError::Sim(e) => write!(f, "simulation error: {e}"),
            RunError::Timeout { max_cycles } => {
                write!(f, "outputs did not arrive within {max_cycles} cycles")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::UnknownPort(e) => Some(e),
            RunError::Sim(e) => Some(e),
            RunError::Timeout { .. } => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// A synthesized elastic circuit with named input/output ports.
///
/// Produced by
/// [`DataflowBuilder::elaborate`](crate::DataflowBuilder::elaborate).
pub struct SynthCircuit<T: Token> {
    /// The underlying simulated netlist (full kernel API available:
    /// tracing, statistics, stepping).
    pub circuit: Circuit<T>,
    threads: usize,
    inputs: BTreeMap<String, String>,
    outputs: BTreeMap<String, (String, ChannelId)>,
}

impl<T: Token> SynthCircuit<T> {
    pub(crate) fn new(
        circuit: Circuit<T>,
        threads: usize,
        inputs: BTreeMap<String, String>,
        outputs: BTreeMap<String, (String, ChannelId)>,
    ) -> Self {
        Self {
            circuit,
            threads,
            inputs,
            outputs,
        }
    }

    /// Thread count of every port.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Names of the input ports.
    pub fn input_ports(&self) -> Vec<String> {
        self.inputs.keys().cloned().collect()
    }

    /// Names of the output ports.
    pub fn output_ports(&self) -> Vec<String> {
        self.outputs.keys().cloned().collect()
    }

    fn unknown(&self, port: &str, inputs: bool) -> RunError {
        RunError::UnknownPort(UnknownPortError {
            port: port.to_string(),
            available: if inputs {
                self.input_ports()
            } else {
                self.output_ports()
            },
        })
    }

    /// Queues `token` for `thread` on input port `port`.
    ///
    /// # Errors
    ///
    /// [`RunError::UnknownPort`] if the port does not exist.
    pub fn push(&mut self, port: &str, thread: usize, token: T) -> Result<(), RunError> {
        let comp = self
            .inputs
            .get(port)
            .ok_or_else(|| self.unknown(port, true))?
            .clone();
        let src: &mut Source<T> = self.circuit.get_mut(&comp).expect("input component exists");
        src.push(thread, token);
        Ok(())
    }

    /// Queues `token` for `thread` on input port `port`, released no
    /// earlier than `cycle`.
    ///
    /// # Errors
    ///
    /// [`RunError::UnknownPort`] if the port does not exist.
    pub fn push_at(
        &mut self,
        port: &str,
        thread: usize,
        cycle: u64,
        token: T,
    ) -> Result<(), RunError> {
        let comp = self
            .inputs
            .get(port)
            .ok_or_else(|| self.unknown(port, true))?
            .clone();
        let src: &mut Source<T> = self.circuit.get_mut(&comp).expect("input component exists");
        src.push_at(thread, cycle, token);
        Ok(())
    }

    /// Tokens collected so far on output `port` for `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist (use [`output_ports`] to check).
    ///
    /// [`output_ports`]: SynthCircuit::output_ports
    pub fn collected(&self, port: &str, thread: usize) -> Vec<T> {
        let (comp, _) = self.outputs.get(port).unwrap_or_else(|| {
            panic!(
                "unknown output port `{port}` (available: {:?})",
                self.output_ports()
            )
        });
        let sink: &Sink<T> = self.circuit.get(comp).expect("output component exists");
        sink.captured(thread)
            .iter()
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// Total tokens collected on output `port` across threads.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn collected_total(&self, port: &str) -> u64 {
        let (comp, _) = self.outputs.get(port).unwrap_or_else(|| {
            panic!(
                "unknown output port `{port}` (available: {:?})",
                self.output_ports()
            )
        });
        let sink: &Sink<T> = self.circuit.get(comp).expect("output component exists");
        sink.consumed_total()
    }

    /// Steps the circuit until output `port` has collected `count` tokens
    /// in total, or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// [`RunError::UnknownPort`], [`RunError::Timeout`] or a propagated
    /// [`RunError::Sim`].
    pub fn run_until_outputs(
        &mut self,
        port: &str,
        count: u64,
        max_cycles: u64,
    ) -> Result<(), RunError> {
        let (_, ch) = *self
            .outputs
            .get(port)
            .ok_or_else(|| self.unknown(port, false))?;
        let done = self
            .circuit
            .run_until(max_cycles, move |c| c.stats().total_transfers(ch) >= count)?;
        if done {
            Ok(())
        } else {
            Err(RunError::Timeout { max_cycles })
        }
    }
}

impl<T: Token> std::fmt::Debug for SynthCircuit<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthCircuit")
            .field("threads", &self.threads)
            .field("inputs", &self.input_ports())
            .field("outputs", &self.output_ports())
            .finish()
    }
}
