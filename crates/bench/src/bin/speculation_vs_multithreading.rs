//! Speculation vs multithreading — quantifying the paper's Fig. 1
//! argument: multithreading "hides the latency of each operation by
//! time-multiplexing operations of different threads", making
//! single-thread latency tricks (branch speculation) largely redundant.
//!
//! The processor supports both: stall-on-branch fetch (baseline) and
//! predict-not-taken speculation with epoch-based squash. This experiment
//! sweeps thread count × speculation for the branchy workloads.
//!
//! ```text
//! cargo run --release --bin speculation_vs_multithreading
//! ```

use elastic_proc::{programs, Cpu, CpuConfig};

fn run(threads: usize, speculate: bool, source: &str) -> (f64, u64) {
    let mut config = CpuConfig::new(threads);
    if speculate {
        config = config.with_speculation();
    }
    let mut cpu = Cpu::from_asm(config, source).expect("assembles");
    let stats = cpu.run_to_halt(2_000_000).expect("halts");
    let squashed: u64 = stats.squashed.iter().sum();
    (stats.useful_ipc, squashed)
}

fn main() {
    for (name, source, _) in programs::all() {
        if !["sum_loop", "fibonacci", "sieve"].contains(&name) {
            continue;
        }
        println!("workload `{name}` — useful IPC (wrong-path squashes in parentheses)\n");
        println!(
            "{:<10} {:>16} {:>24}",
            "threads", "stall-on-branch", "predict-not-taken"
        );
        println!("{}", "-".repeat(52));
        for threads in [1usize, 2, 4, 8] {
            let (base_ipc, _) = run(threads, false, source);
            let (spec_ipc, squashed) = run(threads, true, source);
            println!(
                "{threads:<10} {base_ipc:>16.3} {:>17.3} ({squashed:>4})",
                spec_ipc
            );
        }
        println!();
    }
    println!(
        "speculation helps only single-threaded, prediction-friendly code (sieve,\n\
         +32% at 1 thread) and is useless on taken back-edges (sum_loop). With 8\n\
         threads the MEB pipeline is already near-saturated by cross-thread\n\
         interleaving, so wrong-path work *displaces* other threads' useful\n\
         instructions and speculation turns into a net loss — the quantified\n\
         version of the argument the paper's introduction makes for\n\
         multithreaded elasticity."
    );
}
