//! Thread barrier synchronization (paper, Sec. IV-C and Fig. 8).
//!
//! The barrier "forces the threads that participate in a multithreaded
//! elastic system to wait until each one of them has reached a certain
//! phase of the algorithm's execution". It is a control-only module on a
//! multithreaded channel: an arriving token is *not* consumed — it waits
//! upstream (in the feeding MEB) until the barrier opens.
//!
//! Per-thread FSM (Fig. 8): **IDLE** → (valid data arrives: load the local
//! go flag `lgo(i) := go`, increment the counter) → **WAIT** →
//! (`lgo(i) != go`, i.e. the global flag flipped because the counter
//! reached N) → **FREE** → (selected by the downstream arbiter, the token
//! passes) → IDLE. When the counter reaches N it resets and the global
//! `go` flag flips — the sense-reversing barrier of Andrews' textbook,
//! realized in elastic handshake logic.

use elastic_sim::{
    impl_as_any, ChannelId, CombPath, Component, EvalCtx, NetlistNodeKind, NextEvent, Ports,
    SlotView, TickCtx, Token,
};

/// Per-thread barrier FSM state (paper, Fig. 8).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BarrierState {
    /// No valid data has reached the barrier in this phase.
    #[default]
    Idle,
    /// Arrived; waiting for the remaining threads.
    Wait,
    /// Barrier open; the thread may proceed when selected downstream.
    Free,
}

/// A sense-reversing elastic thread barrier.
///
/// Non-participating threads (see [`Barrier::with_participants`]) pass
/// through unaffected.
///
/// # Examples
///
/// ```
/// use elastic_core::Barrier;
/// use elastic_sim::{CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = CircuitBuilder::<Tagged>::new();
/// let x = b.channel("x", 2);
/// let y = b.channel("y", 2);
/// let mut src = Source::new("src", x, 2);
/// src.push(0, Tagged::new(0, 0, 0));
/// src.push_at(1, 6, Tagged::new(1, 0, 0)); // thread 1 arrives late
/// b.add(src);
/// b.add(Barrier::new("bar", x, y, 2));
/// b.add(Sink::with_capture("snk", y, 2, ReadyPolicy::Always));
/// let mut circuit = b.build()?;
/// circuit.run(12)?;
/// let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
/// // Thread 0 was NOT allowed through before thread 1 arrived.
/// assert!(snk.captured(0)[0].0 >= 6);
/// # Ok(())
/// # }
/// ```
pub struct Barrier<T: Token> {
    name: String,
    inp: ChannelId,
    out: ChannelId,
    threads: usize,
    participant: Vec<bool>,
    state: Vec<BarrierState>,
    lgo: Vec<bool>,
    go: bool,
    count: usize,
    /// Number of phases completed (barrier openings) — handy for tests
    /// and round counters.
    releases: u64,
    /// Invoked at the clock edge of every release (counter full → `go`
    /// flip). The paper's MD5 example uses this to advance the global
    /// round-configuration counter.
    on_release: Option<Box<dyn FnMut(u64) + Send>>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Token> Barrier<T> {
    /// A barrier over all `threads` threads of the channel.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(name: impl Into<String>, inp: ChannelId, out: ChannelId, threads: usize) -> Self {
        assert!(threads > 0, "a barrier needs at least one thread");
        Self {
            name: name.into(),
            inp,
            out,
            threads,
            participant: vec![true; threads],
            state: vec![BarrierState::Idle; threads],
            lgo: vec![false; threads],
            go: false,
            count: 0,
            releases: 0,
            on_release: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers an action to run at the clock edge of every barrier
    /// release; it receives the 1-based release count. The MD5 circuit
    /// (paper, Sec. V-A) uses this to increment the global round counter
    /// when "the data flow is released".
    #[must_use]
    pub fn with_release_action(mut self, f: impl FnMut(u64) + Send + 'static) -> Self {
        self.on_release = Some(Box::new(f));
        self
    }

    /// Restricts participation to the threads whose mask entry is `true`;
    /// other threads pass through the barrier unimpeded.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the thread count or if no
    /// thread participates.
    #[must_use]
    pub fn with_participants(mut self, mask: Vec<bool>) -> Self {
        assert_eq!(mask.len(), self.threads, "participant mask length mismatch");
        assert!(
            mask.iter().any(|&p| p),
            "a barrier needs at least one participant"
        );
        self.participant = mask;
        self
    }

    /// Current FSM state of `thread`.
    pub fn thread_state(&self, thread: usize) -> BarrierState {
        self.state[thread]
    }

    /// Threads that have arrived in the current phase.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The global sense-reversing flag.
    pub fn go(&self) -> bool {
        self.go
    }

    /// Number of times the barrier has opened.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    fn participants_total(&self) -> usize {
        self.participant.iter().filter(|&&p| p).count()
    }
}

impl<T: Token> Component<T> for Barrier<T> {
    fn netlist_kind(&self) -> NetlistNodeKind {
        NetlistNodeKind::Sync
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        Ports::new([self.inp], [self.out])
    }

    fn comb_paths(&self) -> Vec<CombPath> {
        // Gated pass-through: valid forwards when the (registered) FSM is
        // open, ready flows back likewise. The gate itself is registered
        // state, so only the through paths are combinational.
        vec![
            CombPath::ValidToValid {
                from: self.inp,
                to: self.out,
            },
            CombPath::ReadyToReady {
                from: self.out,
                to: self.inp,
            },
        ]
    }

    fn eval(&mut self, ctx: &mut EvalCtx<'_, T>) {
        for t in 0..self.threads {
            let open = !self.participant[t] || self.state[t] == BarrierState::Free;
            let vin = ctx.valid(self.inp, t);
            ctx.set_valid(self.out, t, vin && open);
            ctx.set_ready(self.inp, t, open && ctx.ready(self.out, t));
        }
        let data = ctx.data(self.inp).cloned();
        ctx.set_data(self.out, data);
    }

    fn tick(&mut self, ctx: &TickCtx<'_, T>) {
        let old_go = self.go;

        // WAIT → FREE: the flag flipped in an earlier cycle.
        for t in 0..self.threads {
            if self.state[t] == BarrierState::Wait && self.lgo[t] != old_go {
                self.state[t] = BarrierState::Free;
            }
        }

        // FREE → IDLE: the token passed downstream this cycle.
        if let Some((t, _)) = ctx.fired_any(self.out) {
            if self.participant[t] {
                debug_assert_eq!(
                    self.state[t],
                    BarrierState::Free,
                    "barrier `{}`: a participating token passed while not FREE",
                    self.name
                );
                self.state[t] = BarrierState::Idle;
            }
        }

        // IDLE → WAIT: a new (unconsumed) token reached the barrier.
        for t in 0..self.threads {
            let arriving = ctx.valid(self.inp, t)
                && !ctx.fired(self.inp, t)
                && self.participant[t]
                && self.state[t] == BarrierState::Idle;
            if arriving {
                self.state[t] = BarrierState::Wait;
                self.lgo[t] = old_go;
                self.count += 1;
            }
        }

        // Counter full: reset and flip the global flag.
        if self.count == self.participants_total() && self.count > 0 {
            self.count = 0;
            self.go = !self.go;
            self.releases += 1;
            if let Some(f) = &mut self.on_release {
                f(self.releases);
            }
        }
    }

    fn slots(&self) -> Vec<SlotView> {
        (0..self.threads)
            .map(|t| {
                let label = match self.state[t] {
                    BarrierState::Idle => None,
                    BarrierState::Wait => Some("wait"),
                    BarrierState::Free => Some("free"),
                };
                match label {
                    Some(l) => SlotView::full(format!("fsm[{t}]"), t, l),
                    None => SlotView::empty(format!("fsm[{t}]")),
                }
            })
            .collect()
    }

    fn next_event(&self, _now: u64) -> NextEvent {
        NextEvent::Idle
    }

    fn reset(&mut self) -> bool {
        // Participation and the release callback are configuration; the
        // per-thread FSMs and release history rewind.
        self.state.iter_mut().for_each(|s| *s = BarrierState::Idle);
        self.lgo.iter_mut().for_each(|b| *b = false);
        self.go = false;
        self.count = 0;
        self.releases = 0;
        true
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::ArbiterKind;
    use crate::meb::ReducedMeb;
    use elastic_sim::{Circuit, CircuitBuilder, ReadyPolicy, Sink, Source, Tagged};

    /// Builds src → MEB → barrier → sink over `threads` threads.
    fn barrier_fixture(
        threads: usize,
        arrivals: &[(usize, u64)],
    ) -> (Circuit<Tagged>, elastic_sim::ChannelId) {
        let mut b = CircuitBuilder::<Tagged>::new();
        let x = b.channel("x", threads);
        let m = b.channel("m", threads);
        let y = b.channel("y", threads);
        let mut src = Source::new("src", x, threads);
        let mut seq = vec![0u64; threads];
        for &(t, cycle) in arrivals {
            src.push_at(t, cycle, Tagged::new(t, seq[t], cycle));
            seq[t] += 1;
        }
        b.add(src);
        b.add(ReducedMeb::new(
            "meb",
            x,
            m,
            threads,
            ArbiterKind::RoundRobin.build(),
        ));
        b.add(Barrier::new("bar", m, y, threads));
        b.add(Sink::with_capture("snk", y, threads, ReadyPolicy::Always));
        (b.build().expect("valid"), y)
    }

    #[test]
    fn nobody_passes_until_all_arrive() {
        let (mut circuit, y) = barrier_fixture(3, &[(0, 0), (1, 4), (2, 12)]);
        circuit.run(11).expect("clean");
        assert_eq!(
            circuit.stats().total_transfers(y),
            0,
            "barrier still closed"
        );
        circuit.run(20).expect("clean");
        assert_eq!(circuit.stats().total_transfers(y), 3, "all released");
    }

    #[test]
    fn all_released_together_after_last_arrival() {
        let (mut circuit, _y) = barrier_fixture(3, &[(0, 0), (1, 2), (2, 8)]);
        circuit.run(40).expect("clean");
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        let cycles: Vec<u64> = (0..3).map(|t| snk.captured(t)[0].0).collect();
        let last_arrival = 8;
        for (t, &c) in cycles.iter().enumerate() {
            assert!(
                c > last_arrival,
                "thread {t} released at {c}, before the last arrival"
            );
        }
        // Release is tight: all three pass within a few cycles of each
        // other (serialized on one channel).
        let spread = cycles.iter().max().unwrap() - cycles.iter().min().unwrap();
        assert!(spread <= 3, "release spread {spread} too wide: {cycles:?}");
    }

    #[test]
    fn barrier_reopens_for_successive_phases() {
        // Every thread passes the barrier three times (three phases).
        let arrivals: Vec<(usize, u64)> = (0..3)
            .flat_map(|phase| (0..2).map(move |t| (t, 10 * phase)))
            .collect();
        let (mut circuit, y) = barrier_fixture(2, &arrivals);
        circuit.run(80).expect("clean");
        assert_eq!(circuit.stats().total_transfers(y), 6);
        let bar: &Barrier<Tagged> = circuit
            .component("bar")
            .and_then(|_| circuit.get("bar"))
            .expect("barrier");
        assert_eq!(bar.releases(), 3);
        assert_eq!(bar.count(), 0);
        for t in 0..2 {
            assert_eq!(bar.thread_state(t), BarrierState::Idle);
        }
    }

    #[test]
    fn non_participants_pass_freely() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let x = b.channel("x", 2);
        let y = b.channel("y", 2);
        let mut src = Source::new("src", x, 2);
        // Thread 1 participates alone (so it self-releases); thread 0
        // bypasses entirely.
        src.extend(0, (0..5).map(|i| Tagged::new(0, i, i)));
        b.add(src);
        b.add(Barrier::new("bar", x, y, 2).with_participants(vec![false, true]));
        b.add(Sink::with_capture("snk", y, 2, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.run(10).expect("clean");
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        assert_eq!(snk.consumed(0), 5, "bypass thread flows unimpeded");
    }

    #[test]
    fn single_participant_barrier_self_releases() {
        let mut b = CircuitBuilder::<Tagged>::new();
        let x = b.channel("x", 1);
        let y = b.channel("y", 1);
        let mut src = Source::new("src", x, 1);
        src.extend(0, (0..4).map(|i| Tagged::new(0, i, i)));
        b.add(src);
        b.add(Barrier::new("bar", x, y, 1));
        b.add(Sink::with_capture("snk", y, 1, ReadyPolicy::Always));
        let mut circuit = b.build().expect("valid");
        circuit.set_deadlock_watchdog(Some(20));
        circuit.run(40).expect("no deadlock");
        let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
        assert_eq!(snk.consumed(0), 4);
    }

    #[test]
    fn missing_thread_blocks_the_barrier_forever() {
        let (mut circuit, y) = barrier_fixture(2, &[(0, 0)]);
        circuit.run(50).expect("clean");
        assert_eq!(circuit.stats().total_transfers(y), 0);
        let bar: &Barrier<Tagged> = circuit.get("bar").expect("barrier");
        assert_eq!(bar.thread_state(0), BarrierState::Wait);
        assert_eq!(bar.thread_state(1), BarrierState::Idle);
        assert_eq!(bar.count(), 1);
    }
}
