//! Criterion bench: the dataflow-to-elastic synthesis flow (E-X10) —
//! elaboration cost and the simulation throughput of the synthesized
//! multithreaded GCD loop across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use elastic_synth::{DataflowBuilder, OpLatency, SynthCircuit, SynthConfig};

fn build_gcd(threads: usize) -> SynthCircuit<(u64, u64)> {
    let mut g = DataflowBuilder::<(u64, u64)>::new(threads);
    let fresh = g.input("pairs");
    let looped = g.input("loop");
    let head = g.merge("entry", &[fresh, looped]);
    let (done, cont) = g.branch("done?", head, |&(a, b): &(u64, u64)| a == b);
    g.output("gcd", done);
    let step = g.op1("step", OpLatency::Fixed(1), cont, |&(a, b)| {
        if a > b {
            (a - b, b)
        } else {
            (a, b - a)
        }
    });
    g.loopback("loop", step).expect("loop closes");
    g.elaborate(SynthConfig::default()).expect("elaborates")
}

fn bench_elaboration(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_elaborate");
    for threads in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| build_gcd(threads)),
        );
    }
    group.finish();
}

fn bench_gcd_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_gcd_run");
    for threads in [1usize, 4, 8] {
        group.throughput(Throughput::Elements(threads as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut s = build_gcd(threads);
                    for t in 0..threads {
                        s.push("pairs", t, (1071 + t as u64, 462)).expect("push");
                    }
                    s.run_until_outputs("gcd", threads as u64, 200_000)
                        .expect("completes");
                    s.circuit.cycle()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_elaboration, bench_gcd_run);
criterion_main!(benches);
