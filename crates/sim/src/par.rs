//! Parallel sweep harness for simulation *campaigns*.
//!
//! Every experiment binary in this repository runs many **independent**
//! simulations — cost sweeps, throughput-vs-threads curves, kernel
//! ablations, oracle-equivalence campaigns. Each individual [`Circuit`]
//! run is strictly sequential (a synchronous fixed point cannot be
//! parallelized without changing its semantics), but the *campaign* is
//! embarrassingly parallel: jobs share nothing, so they can be spread
//! across all cores while remaining bit-deterministic.
//!
//! [`run_sweep`] executes a vector of [`SimJob`]s on a pure-`std` worker
//! pool:
//!
//! * **Worker model** — [`std::thread::scope`] spawns
//!   `available_parallelism()` workers (or the requested count); jobs are
//!   pulled from a shared [`mpsc`] queue, so a long job never blocks the
//!   others (work stealing by contention, not by static partitioning).
//! * **Determinism** — each job is a self-contained deterministic
//!   function; results are returned **in submission order**, so the
//!   output of a parallel sweep is byte-identical to the serial
//!   (`workers = 1`) path no matter how execution interleaves.
//! * **Isolation** — a job that returns [`SimError`] or panics produces a
//!   per-job [`JobError`]; it does not poison the pool, and every other
//!   job still completes and reports.
//! * **Aggregation** — per-job [`KernelStats`] are merged into a
//!   campaign-wide total ([`SweepReport::kernel`]).
//!
//! [`Circuit`]: crate::Circuit
//!
//! # Example
//!
//! ```
//! use elastic_sim::{run_sweep, SimJob};
//!
//! let jobs: Vec<SimJob<u64>> = (0..8)
//!     .map(|i| SimJob::new(format!("square {i}"), move || Ok(i * i)))
//!     .collect();
//! let report = run_sweep(jobs);
//! let squares: Vec<u64> = report.values().cloned().collect();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::error::SimError;
use crate::stats::KernelStats;

/// One independent simulation to execute on the sweep pool.
///
/// The closure owns everything it needs (configs, seeds, token vectors)
/// and must be deterministic: the harness guarantees submission-order
/// results, so a deterministic job set yields a bit-identical campaign
/// under any worker count.
pub struct SimJob<R> {
    label: String,
    #[allow(clippy::type_complexity)]
    run: Box<dyn FnOnce() -> Result<(R, KernelStats), SimError> + Send>,
}

impl<R> SimJob<R> {
    /// A job whose closure returns only a result value.
    pub fn new(
        label: impl Into<String>,
        f: impl FnOnce() -> Result<R, SimError> + Send + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            run: Box::new(move || f().map(|r| (r, KernelStats::default()))),
        }
    }

    /// A job that also reports the [`KernelStats`] of its run, so the
    /// sweep can aggregate settle-phase work across the whole campaign.
    pub fn instrumented(
        label: impl Into<String>,
        f: impl FnOnce() -> Result<(R, KernelStats), SimError> + Send + 'static,
    ) -> Self {
        Self {
            label: label.into(),
            run: Box::new(f),
        }
    }

    /// The job's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Why a job failed (the pool itself never fails).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobError {
    /// The job's simulation reported a protocol error, deadlock, etc.
    Sim(SimError),
    /// The job panicked; the payload message is preserved. The panic is
    /// confined to the job — the worker and the rest of the sweep
    /// continue.
    Panic(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Sim(e) => write!(f, "simulation error: {e}"),
            JobError::Panic(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Sim(e) => Some(e),
            JobError::Panic(_) => None,
        }
    }
}

/// The outcome of one [`SimJob`], in submission order.
#[derive(Debug)]
pub struct JobReport<R> {
    /// Submission index of the job (also its position in
    /// [`SweepReport::jobs`]).
    pub index: usize,
    /// Label given at construction.
    pub label: String,
    /// The job's value, or the isolated failure.
    pub outcome: Result<R, JobError>,
    /// Kernel counters reported by the job (zeroed for plain or failed
    /// jobs).
    pub kernel: KernelStats,
    /// Wall-clock time the job spent executing.
    pub wall: Duration,
}

/// Everything a sweep produced: per-job reports in submission order plus
/// campaign-level aggregates.
#[derive(Debug)]
pub struct SweepReport<R> {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobReport<R>>,
    /// Number of workers the pool actually used.
    pub workers: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Kernel counters merged over all successful jobs.
    pub kernel: KernelStats,
}

impl<R> SweepReport<R> {
    /// Number of jobs that completed successfully.
    pub fn ok_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_ok()).count()
    }

    /// The failed jobs, as `(label, error)` pairs in submission order.
    pub fn failures(&self) -> Vec<(&str, &JobError)> {
        self.jobs
            .iter()
            .filter_map(|j| j.outcome.as_ref().err().map(|e| (j.label.as_str(), e)))
            .collect()
    }

    /// Iterates over the successful values in submission order.
    pub fn values(&self) -> impl Iterator<Item = &R> {
        self.jobs.iter().filter_map(|j| j.outcome.as_ref().ok())
    }

    /// Unwraps every job into its value, in submission order.
    ///
    /// # Panics
    ///
    /// Panics with the label and error of the first failed job.
    pub fn unwrap_all(self) -> Vec<R> {
        self.jobs
            .into_iter()
            .map(|j| match j.outcome {
                Ok(v) => v,
                Err(e) => panic!("sweep job `{}` failed: {e}", j.label),
            })
            .collect()
    }
}

/// Worker count used by [`run_sweep`]: the machine's
/// [`available_parallelism`](thread::available_parallelism), or 1 when it
/// cannot be determined.
pub fn available_workers() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `jobs` on [`available_workers`] threads. See [`run_sweep_on`].
pub fn run_sweep<R: Send>(jobs: Vec<SimJob<R>>) -> SweepReport<R> {
    let workers = available_workers();
    run_sweep_on(jobs, workers)
}

fn execute<R>(job: SimJob<R>, index: usize) -> JobReport<R> {
    let SimJob { label, run } = job;
    let start = Instant::now();
    let outcome = match catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok((value, kernel))) => Ok((value, kernel)),
        Ok(Err(e)) => Err(JobError::Sim(e)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(JobError::Panic(msg))
        }
    };
    let wall = start.elapsed();
    let (outcome, kernel) = match outcome {
        Ok((value, kernel)) => (Ok(value), kernel),
        Err(e) => (Err(e), KernelStats::default()),
    };
    JobReport {
        index,
        label,
        outcome,
        kernel,
        wall,
    }
}

/// Runs `jobs` on a pool of `workers` scoped threads (clamped to
/// `1..=jobs.len()`), returning per-job reports **in submission order**.
///
/// `workers == 1` executes the jobs inline on the calling thread — the
/// serial baseline every parallel sweep must reproduce bit-identically.
/// Failures (simulation errors and panics alike) are isolated per job:
/// the pool always returns one report per submitted job.
pub fn run_sweep_on<R: Send>(jobs: Vec<SimJob<R>>, workers: usize) -> SweepReport<R> {
    let n = jobs.len();
    let workers = workers.clamp(1, n.max(1));
    let start = Instant::now();
    let mut slots: Vec<Option<JobReport<R>>> = (0..n).map(|_| None).collect();

    if workers <= 1 {
        for (index, job) in jobs.into_iter().enumerate() {
            slots[index] = Some(execute(job, index));
        }
    } else {
        // Shared work queue: a Mutex-guarded mpsc receiver hands each
        // worker the next unclaimed job, so stragglers never serialize
        // the rest of the queue behind a static partition.
        let (job_tx, job_rx) = mpsc::channel::<(usize, SimJob<R>)>();
        let (result_tx, result_rx) = mpsc::channel::<JobReport<R>>();
        for pair in jobs.into_iter().enumerate() {
            job_tx.send(pair).expect("queue open");
        }
        drop(job_tx); // workers drain until the queue is empty
        let job_rx = Mutex::new(job_rx);

        thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = &job_rx;
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    let next = job_rx.lock().expect("queue lock").recv();
                    match next {
                        Ok((index, job)) => {
                            // A send only fails when the collector hung
                            // up, which cannot happen while this scope is
                            // alive.
                            let _ = result_tx.send(execute(job, index));
                        }
                        Err(_) => break, // queue drained
                    }
                });
            }
            drop(result_tx);
            for report in result_rx.iter() {
                let index = report.index;
                slots[index] = Some(report);
            }
        });
    }

    let jobs: Vec<JobReport<R>> = slots
        .into_iter()
        .map(|s| s.expect("one report per job"))
        .collect();
    let mut kernel = KernelStats::default();
    for j in &jobs {
        kernel.merge(&j.kernel);
    }
    SweepReport {
        jobs,
        workers,
        wall: start.elapsed(),
        kernel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::circuit::EvalMode;
    use crate::schedule::{ReadyPolicy, Sink, Source};

    /// A small but real simulation job: tokens through a 1-stage wire
    /// with a seeded random sink, returning the capture.
    fn pipeline_job(seed: u64, mode: EvalMode) -> Result<(Vec<(u64, u64)>, KernelStats), SimError> {
        let mut b = CircuitBuilder::<u64>::new();
        let ch = b.channel("ch", 2);
        let mut src = Source::new("src", ch, 2);
        src.extend(0, 0..20u64);
        src.extend(1, 100..120u64);
        b.add(src);
        b.add(Sink::with_capture(
            "snk",
            ch,
            2,
            ReadyPolicy::Random { p: 0.6, seed },
        ));
        let mut c = b.build().expect("valid");
        c.set_eval_mode(mode);
        c.run(200)?;
        let snk: &Sink<u64> = c.get("snk").expect("sink");
        let mut cap: Vec<(u64, u64)> = Vec::new();
        for t in 0..2 {
            cap.extend(snk.captured(t).iter().copied());
        }
        Ok((cap, *c.stats().kernel()))
    }

    fn campaign(mode: EvalMode) -> Vec<SimJob<Vec<(u64, u64)>>> {
        (0..12)
            .map(|seed| {
                SimJob::instrumented(format!("pipeline seed {seed}"), move || {
                    pipeline_job(seed, mode)
                })
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let report = run_sweep_on(campaign(EvalMode::EventDriven), 4);
        assert_eq!(report.jobs.len(), 12);
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.index, i);
            assert_eq!(j.label, format!("pipeline seed {i}"));
        }
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let serial = run_sweep_on(campaign(EvalMode::EventDriven), 1);
        let parallel = run_sweep_on(campaign(EvalMode::EventDriven), 4);
        assert_eq!(serial.workers, 1);
        let s: Vec<_> = serial.values().collect();
        let p: Vec<_> = parallel.values().collect();
        assert_eq!(s, p, "parallel sweep diverged from the serial baseline");
        // Kernel aggregation is order-independent, so it must agree too.
        assert_eq!(serial.kernel, parallel.kernel);
        assert!(serial.kernel.component_evals > 0);
    }

    #[test]
    fn panics_are_isolated_per_job() {
        let mut jobs: Vec<SimJob<u64>> = Vec::new();
        jobs.push(SimJob::new("fine before", || Ok(1)));
        jobs.push(SimJob::new("explodes", || -> Result<u64, SimError> {
            panic!("boom at job level")
        }));
        jobs.push(SimJob::new("fine after", || Ok(3)));
        let report = run_sweep_on(jobs, 2);
        assert_eq!(report.ok_count(), 2);
        assert_eq!(report.jobs[0].outcome.as_ref().ok(), Some(&1));
        assert_eq!(report.jobs[2].outcome.as_ref().ok(), Some(&3));
        match &report.jobs[1].outcome {
            Err(JobError::Panic(msg)) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected isolated panic, got {other:?}"),
        }
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "explodes");
    }

    #[test]
    fn sim_errors_are_per_job_outcomes() {
        let deadlocked = SimJob::new("deadlocks", || {
            let mut b = CircuitBuilder::<u64>::new();
            let ch = b.channel("ch", 1);
            let mut src = Source::new("src", ch, 1);
            src.push(0, 7);
            b.add(src);
            b.add(Sink::new("snk", ch, 1, ReadyPolicy::Never));
            let mut c = b.build().expect("valid");
            c.set_deadlock_watchdog(Some(4));
            c.run(50)?;
            Ok(0u64)
        });
        let fine = SimJob::new("fine", || Ok(42u64));
        let report = run_sweep_on(vec![deadlocked, fine], 2);
        assert!(matches!(
            report.jobs[0].outcome,
            Err(JobError::Sim(SimError::Deadlock { .. }))
        ));
        assert_eq!(report.jobs[1].outcome.as_ref().ok(), Some(&42));
    }

    #[test]
    fn worker_count_is_clamped() {
        let report = run_sweep_on(campaign(EvalMode::EventDriven), 64);
        assert_eq!(report.workers, 12, "workers clamp to the job count");
        let report = run_sweep_on(Vec::<SimJob<u64>>::new(), 8);
        assert!(report.jobs.is_empty());
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn unwrap_all_panics_with_label() {
        let jobs: Vec<SimJob<u64>> = vec![SimJob::new("bad job", || {
            Err(SimError::CombinationalLoop {
                cycle: 0,
                iterations: 1,
            })
        })];
        let report = run_sweep_on(jobs, 1);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| report.unwrap_all()));
        let msg = *r
            .expect_err("must panic")
            .downcast::<String>()
            .expect("msg");
        assert!(msg.contains("bad job"), "{msg}");
    }
}
