//! Equivalence property tests for the fused settle-kernel backend.
//!
//! The fused backend compiles the elaborated netlist into a dense op
//! table and replaces per-eval vtable dispatch with a linear `match`;
//! it must be *behaviourally invisible*. The bars, all byte-for-byte on
//! the sink captures:
//!
//! 1. **Backend transparency** — for every schedule (ranked, insertion,
//!    reversed), every shuffled builder insertion order, and both settle
//!    modes (event-driven, exhaustive oracle), the fused backend matches
//!    the interpreted backend exactly. This holds on feedback topologies
//!    too: the fused fast paths fall back to the interpreted selection
//!    logic wherever hysteretic damping makes the trajectory
//!    order-sensitive.
//! 2. **Kernel soundness under fusion** — the fused event-driven kernel
//!    matches the fused exhaustive oracle, mirroring the interpreted
//!    kernel's own soundness bar in `ranked_schedule.rs`.
//! 3. **Word-boundary widths** — a deterministic S = 65 pipeline (masks
//!    spill past the inline word) agrees across backends and modes, and
//!    the two backends perform identical evaluation counts.

use mt_elastic::core::{ArbiterKind, Fork, ForkMode, Join, MebKind};
use mt_elastic::sim::{
    CircuitBuilder, Component, EvalMode, KernelBackend, LatencyModel, ReadyPolicy, ScheduleMode,
    Sink, Source, Tagged, VarLatency,
};
use proptest::prelude::*;

fn meb_kind_strategy() -> impl Strategy<Value = MebKind> {
    prop_oneof![
        Just(MebKind::Full),
        Just(MebKind::Reduced),
        (2usize..4).prop_map(|depth| MebKind::Fifo { depth }),
    ]
}

/// Deterministic Fisher–Yates (LCG-driven) over the builder insertion
/// order, so the same `order_seed` always yields the same permutation.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

/// Randomized topology shared with `ranked_schedule.rs`: source → MEB →
/// (fork/join diamond over skewed variable-latency arms, or a single
/// variable-latency unit) → MEB chain → randomly-stalling sink.
#[derive(Clone, Debug)]
struct NetParams {
    threads: usize,
    tokens: u64,
    kind: MebKind,
    diamond: bool,
    tail_stages: usize,
    p_ready: f64,
    seed: u64,
}

/// Per-thread captures plus the evaluation count of the run.
type RunResult = (Vec<Vec<(u64, u64)>>, u64);

/// Builds and runs the network under the requested backend, adding
/// components in the permutation selected by `order_seed`.
fn run_net(
    p: &NetParams,
    backend: KernelBackend,
    mode: EvalMode,
    schedule: ScheduleMode,
    order_seed: u64,
) -> RunResult {
    let mut b = CircuitBuilder::<Tagged>::new();
    let src_ch = b.channel("src", p.threads);
    let work = b.channel("work", p.threads);
    let mid = b.channel("mid", p.threads);
    let tail = b.channels("tail", p.threads, p.tail_stages + 1);

    let mut comps: Vec<Box<dyn Component<Tagged>>> = Vec::new();
    let mut src = Source::new("src", src_ch, p.threads);
    for t in 0..p.threads {
        src.extend(t, (0..p.tokens).map(|i| Tagged::new(t, i, i)));
    }
    comps.push(Box::new(src));
    comps.push(p.kind.build_with::<Tagged>(
        "head",
        src_ch,
        work,
        p.threads,
        ArbiterKind::RoundRobin,
    ));
    if p.diamond {
        let arm_a = b.channel("arm_a", p.threads);
        let arm_b = b.channel("arm_b", p.threads);
        let done_a = b.channel("done_a", p.threads);
        let done_b = b.channel("done_b", p.threads);
        comps.push(Box::new(Fork::new(
            "split",
            work,
            vec![arm_a, arm_b],
            p.threads,
            ForkMode::Eager,
        )));
        comps.push(Box::new(VarLatency::new(
            "ua",
            arm_a,
            done_a,
            p.threads,
            2,
            LatencyModel::Uniform {
                min: 1,
                max: 3,
                seed: p.seed,
            },
        )));
        comps.push(Box::new(VarLatency::new(
            "ub",
            arm_b,
            done_b,
            p.threads,
            2,
            LatencyModel::Uniform {
                min: 1,
                max: 2,
                seed: p.seed ^ 7,
            },
        )));
        comps.push(Box::new(Join::new(
            "pair",
            vec![done_a, done_b],
            mid,
            p.threads,
            |ins: &[&Tagged]| ins[0].clone(),
        )));
    } else {
        comps.push(Box::new(VarLatency::new(
            "u",
            work,
            mid,
            p.threads,
            2,
            LatencyModel::Uniform {
                min: 1,
                max: 3,
                seed: p.seed,
            },
        )));
    }
    comps.push(p.kind.build_with::<Tagged>(
        "bridge",
        mid,
        tail[0],
        p.threads,
        ArbiterKind::RoundRobin,
    ));
    for i in 0..p.tail_stages {
        comps.push(p.kind.build_with::<Tagged>(
            format!("tail{i}"),
            tail[i],
            tail[i + 1],
            p.threads,
            ArbiterKind::RoundRobin,
        ));
    }
    let out = tail[p.tail_stages];
    comps.push(Box::new(Sink::with_capture(
        "snk",
        out,
        p.threads,
        ReadyPolicy::Random {
            p: p.p_ready,
            seed: p.seed ^ 13,
        },
    )));

    shuffle(&mut comps, order_seed);
    for c in comps {
        b.add_boxed(c);
    }
    b.set_schedule(schedule);
    b.set_backend(backend);
    if backend == KernelBackend::Fused {
        b.set_fuser(mt_elastic::synth::fuse);
    }
    let mut circuit = b.build().expect("random acyclic net is well-formed");
    circuit.set_eval_mode(mode);
    circuit.set_deadlock_watchdog(Some(400));
    let expected = p.tokens * p.threads as u64;
    let budget = 400 + expected * 24;
    let done = circuit.run_until(budget, move |c| c.stats().total_transfers(out) >= expected);
    assert!(matches!(done, Ok(true)), "net did not drain: {done:?}");
    let snk: &Sink<Tagged> = circuit.get("snk").expect("sink");
    let captures = (0..p.threads)
        .map(|t| {
            snk.captured(t)
                .iter()
                .map(|(c, tok)| (*c, tok.seq))
                .collect()
        })
        .collect();
    (captures, circuit.stats().kernel().component_evals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Backend transparency and fused-kernel soundness on random
    /// topologies, including shuffled builder insertion orders.
    #[test]
    fn fused_backend_is_behaviourally_invisible(
        threads in 1usize..4,
        tokens in 1u64..12,
        kind in meb_kind_strategy(),
        diamond in any::<bool>(),
        tail_stages in 0usize..3,
        p_ready in 0.3f64..1.0,
        seed in any::<u64>(),
        order_seed in any::<u64>(),
    ) {
        let p = NetParams { threads, tokens, kind, diamond, tail_stages, p_ready, seed };

        for schedule in [ScheduleMode::Ranked, ScheduleMode::Insertion, ScheduleMode::Reversed] {
            // Bar 1: the fused backend is invisible under both settle
            // modes — same schedule, same mode, different dispatch.
            let interp =
                run_net(&p, KernelBackend::Interpreted, EvalMode::EventDriven, schedule, order_seed);
            let fused =
                run_net(&p, KernelBackend::Fused, EvalMode::EventDriven, schedule, order_seed);
            prop_assert_eq!(
                &interp.0, &fused.0,
                "{:?}: fused backend diverged from interpreted (event-driven)", schedule
            );
            prop_assert_eq!(
                interp.1, fused.1,
                "{:?}: fused backend changed the evaluation count", schedule
            );

            // Bar 2: fused event-driven vs fused exhaustive oracle.
            let fused_oracle =
                run_net(&p, KernelBackend::Fused, EvalMode::Exhaustive, schedule, order_seed);
            prop_assert_eq!(
                &fused.0, &fused_oracle.0,
                "{:?}: fused dirty-set kernel diverged from the fused oracle", schedule
            );
        }

        // Builder insertion order must not leak through the lowering on
        // signal-acyclic nets (on the diamond the damped feedback makes
        // the fixed point legitimately order-sensitive, exactly as in
        // `ranked_schedule.rs`).
        if !diamond {
            let a = run_net(
                &p, KernelBackend::Fused, EvalMode::EventDriven, ScheduleMode::Ranked, order_seed,
            );
            let b = run_net(
                &p, KernelBackend::Fused, EvalMode::EventDriven, ScheduleMode::Ranked,
                order_seed ^ 0xDEAD_BEEF,
            );
            prop_assert_eq!(&a.0, &b.0, "insertion order leaked through the fused lowering");
        }
    }
}

/// Deterministic S = 65 word-boundary case: every `ThreadMask` in the
/// net spills past the inline word, exercising the multi-word paths of
/// the fused word-level commits, the rotation scans, and the occupancy
/// complement. Checked across backends, modes, and all three schedules.
#[test]
fn fused_backend_matches_interpreted_at_the_word_boundary() {
    let p = NetParams {
        threads: 65,
        tokens: 3,
        kind: MebKind::Reduced,
        diamond: false,
        tail_stages: 2,
        p_ready: 0.55,
        seed: 0x65,
    };
    for schedule in [
        ScheduleMode::Ranked,
        ScheduleMode::Insertion,
        ScheduleMode::Reversed,
    ] {
        let interp = run_net(
            &p,
            KernelBackend::Interpreted,
            EvalMode::EventDriven,
            schedule,
            0x5eed,
        );
        let fused = run_net(
            &p,
            KernelBackend::Fused,
            EvalMode::EventDriven,
            schedule,
            0x5eed,
        );
        let oracle = run_net(
            &p,
            KernelBackend::Fused,
            EvalMode::Exhaustive,
            schedule,
            0x5eed,
        );
        assert_eq!(
            interp.0, fused.0,
            "{schedule:?}: S=65 fused captures diverged from interpreted"
        );
        assert_eq!(
            interp.1, fused.1,
            "{schedule:?}: S=65 fused evaluation count diverged"
        );
        assert_eq!(
            fused.0, oracle.0,
            "{schedule:?}: S=65 fused kernel diverged from its oracle"
        );
    }
}
