//! Property-based invariants of the elastic protocol: under arbitrary
//! thread counts, pipeline depths, MEB kinds and random stall patterns,
//! tokens are conserved, per-thread order is preserved, and the
//! protocol-checking kernel never reports a violation.

use mt_elastic::core::{ArbiterKind, MebKind, PipelineConfig, PipelineHarness};
use mt_elastic::sim::ReadyPolicy;
use proptest::prelude::*;

fn meb_kind_strategy() -> impl Strategy<Value = MebKind> {
    prop_oneof![
        Just(MebKind::Full),
        Just(MebKind::Reduced),
        (1usize..4).prop_map(|depth| MebKind::Fifo { depth }),
    ]
}

fn arbiter_strategy() -> impl Strategy<Value = ArbiterKind> {
    prop_oneof![
        Just(ArbiterKind::Fixed),
        Just(ArbiterKind::RoundRobin),
        Just(ArbiterKind::LeastRecent),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every injected token is eventually delivered exactly once, in
    /// per-thread injection order, through any MEB pipeline under any
    /// random sink behaviour — and the kernel's channel invariant,
    /// missing-data and combinational-loop checks stay silent.
    #[test]
    fn tokens_conserved_and_ordered(
        threads in 1usize..5,
        stages in 1usize..5,
        kind in meb_kind_strategy(),
        arbiter in arbiter_strategy(),
        tokens in 1u64..25,
        p_ready in 0.15f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut cfg = PipelineConfig::free_flowing(threads, stages, kind, tokens);
        cfg.arbiter = arbiter;
        for t in 0..threads {
            cfg.sink_policies[t] = ReadyPolicy::Random { p: p_ready, seed: seed ^ t as u64 };
        }
        let mut h = PipelineHarness::build(cfg);
        // Generous budget: worst case p_ready=0.15 needs ~tokens*threads/p.
        let budget = 400 + tokens * threads as u64 * 12 + stages as u64 * 20;
        let out = h.pipeline.output;
        let expected = tokens * threads as u64;
        let done = h.circuit
            .run_until(budget * 4, move |c| c.stats().total_transfers(out) >= expected);
        prop_assert!(matches!(done, Ok(true)), "protocol violation or timeout: {done:?}");

        // Conservation: everything injected was delivered.
        for t in 0..threads {
            let delivered: Vec<u64> =
                h.sink().captured(t).iter().map(|(_, tok)| tok.seq).collect();
            prop_assert_eq!(
                &delivered,
                &(0..tokens).collect::<Vec<_>>(),
                "thread {} lost/duplicated/reordered tokens", t
            );
        }
        // Nothing left inside the pipeline.
        prop_assert!(h.source().is_drained());
    }

    /// Occupancy never exceeds the architectural capacity of the chosen
    /// MEB kind (checked through the statistics: in-flight tokens =
    /// injected − delivered ≤ pipeline capacity).
    #[test]
    fn in_flight_never_exceeds_capacity(
        threads in 1usize..4,
        stages in 1usize..4,
        kind in meb_kind_strategy(),
        cut in 1u64..60,
    ) {
        let cfg = PipelineConfig::free_flowing(threads, stages, kind, 100);
        let mut h = PipelineHarness::build(cfg);
        h.circuit.run(cut).expect("runs clean");
        let injected: u64 = (0..threads).map(|t| h.source().injected(t)).sum();
        let delivered = h.sink().consumed_total();
        let capacity = (kind.slots(threads) * stages) as u64;
        prop_assert!(
            injected - delivered <= capacity,
            "in flight {} exceeds capacity {}",
            injected - delivered,
            capacity
        );
    }
}
